// inspect_workloads: prints, for every benchmark program, its static shape
// (call-graph metrics, size bands relative to the heuristic thresholds) and
// its simulated times under three heuristics (no inlining / Jikes defaults /
// always-inline) in both compilation scenarios. Useful for understanding
// the workload suite and for sanity-checking the cost model.
//
// Usage: inspect_workloads [--suite=specjvm98|dacapo+jbb|all] [--arch=x86|ppc]
//                          [--dot=<dir>]   # also write GraphViz call graphs

#include <fstream>
#include <iostream>

#include "bytecode/analysis.hpp"
#include "bytecode/size_estimator.hpp"
#include "heuristics/heuristic.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

using namespace ith;

namespace {

struct Times {
  std::uint64_t running;
  std::uint64_t total;
  std::uint64_t compile;
};

Times measure(const wl::Workload& w, const rt::MachineModel& machine, vm::Scenario scenario,
              heur::InlineHeuristic& h) {
  vm::VmConfig cfg;
  cfg.scenario = scenario;
  vm::VirtualMachine m(w.program, machine, h, cfg);
  const vm::RunResult rr = m.run(2);
  return Times{rr.running_cycles, rr.total_cycles, rr.compile_cycles_all};
}

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  const std::string suite = cli.get_or("suite", "all");
  const rt::MachineModel machine =
      cli.get_or("arch", "x86") == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();

  std::cout << "Workload inventory (" << machine.name << ")\n\n";

  const auto dot_dir = cli.get("dot");

  for (const wl::Workload& w : wl::make_suite(suite)) {
    std::cout << w.name << " [" << w.suite << "] — " << w.description << "\n";
    std::cout << bc::metrics_to_string(bc::compute_metrics(w.program));

    if (dot_dir) {
      const std::string path = *dot_dir + "/" + w.name + ".dot";
      std::ofstream out(path);
      if (out) {
        bc::CallGraph(w.program).to_dot(out);
        std::cout << "  call graph written to " << path << "\n";
      } else {
        std::cerr << "  cannot write " << path << "\n";
      }
    }

    Table t({"scenario", "heuristic", "running (cyc)", "total (cyc)", "compile (cyc)"});
    for (const vm::Scenario sc : {vm::Scenario::kOpt, vm::Scenario::kAdapt}) {
      heur::NeverInlineHeuristic never;
      heur::JikesHeuristic dflt;  // Jikes RVM defaults
      heur::AlwaysInlineHeuristic always(10);
      const Times tn = measure(w, machine, sc, never);
      const Times td = measure(w, machine, sc, dflt);
      const Times ta = measure(w, machine, sc, always);
      t.add_row({vm::scenario_name(sc), "never", cell((long long)tn.running),
                 cell((long long)tn.total), cell((long long)tn.compile)});
      t.add_row({vm::scenario_name(sc), "default", cell((long long)td.running),
                 cell((long long)td.total), cell((long long)td.compile)});
      t.add_row({vm::scenario_name(sc), "always", cell((long long)ta.running),
                 cell((long long)ta.total), cell((long long)ta.compile)});
    }
    t.render(std::cout);
    std::cout << "\n";
  }
  return 0;
}
