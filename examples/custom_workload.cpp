// custom_workload: drive the VM and tuner from a program written in the
// textual assembly format (see bytecode/serializer.hpp).
//
// Usage:
//   custom_workload                 # uses a built-in sample program
//   custom_workload program.ithasm  # loads your own
//
// The example prints the program back (round-trip through the serializer),
// measures it under every stock heuristic, and GA-tunes parameters for it.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bytecode/serializer.hpp"
#include "heuristics/heuristic.hpp"
#include "heuristics/knapsack.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tuner/report.hpp"
#include "tuner/tuner.hpp"
#include "vm/vm.hpp"

using namespace ith;

namespace {

// A small matrix-ish workload in assembly form: row() is hot and worth
// inlining; setup() runs once.
constexpr const char* kSample = R"(
program name=matmulish globals=1024 entry=main
method dotstep args=2 locals=2 {
  load 0
  gload
  load 1
  mul
  ret
}
method row args=2 locals=3 {
  const 0
  store 2
  load 0
  load 1
  call dotstep 2
  load 2
  add
  store 2
  load 1
  load 0
  call dotstep 2
  load 2
  add
  ret
}
method setup args=1 locals=1 {
  load 0
  const 3
  mul
  const 7
  add
  load 0
  gstore
  load 0
  const 1
  add
  ret
}
method main args=0 locals=2 {
  const 0
  store 0
  const 0
  store 1
  const 17
  call setup 1
  store 1
  jmp 10
  halt
  nop
  load 0
  const 600
  cmplt
  jz 25
  load 0
  load 1
  call row 2
  load 1
  add
  store 1
  load 0
  const 1
  add
  store 0
  jmp 10
  load 1
  halt
}
)";

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);

  bc::Program program;
  if (!cli.positional().empty()) {
    std::ifstream in(cli.positional().front());
    if (!in) {
      std::cerr << "cannot open " << cli.positional().front() << "\n";
      return 1;
    }
    program = bc::parse_program(in);
    std::cout << "Loaded " << cli.positional().front() << "\n";
  } else {
    program = bc::parse_program(kSample);
    std::cout << "Using the built-in sample program (pass a .ithasm file to load your own).\n";
  }

  std::cout << "\nProgram (round-tripped through the serializer):\n"
            << bc::dump_program(program) << "\n";

  const rt::MachineModel machine = rt::pentium4_model();

  // Measure under the stock heuristics, both scenarios.
  Table t({"scenario", "heuristic", "running (cyc)", "total (cyc)", "sites inlined"});
  for (const vm::Scenario sc : {vm::Scenario::kOpt, vm::Scenario::kAdapt}) {
    heur::NeverInlineHeuristic never;
    heur::JikesHeuristic dflt;
    heur::AlwaysInlineHeuristic always;
    heur::KnapsackHeuristic knapsack(0.10);
    const std::pair<const char*, heur::InlineHeuristic*> heuristics[] = {
        {"never", &never}, {"jikes-default", &dflt}, {"always", &always}, {"knapsack-10%", &knapsack}};
    for (const auto& [label, h] : heuristics) {
      vm::VmConfig cfg;
      cfg.scenario = sc;
      vm::VirtualMachine jvm(program, machine, *h, cfg);
      const vm::RunResult r = jvm.run(2);
      t.add_row({vm::scenario_name(sc), label, cell((long long)r.running_cycles),
                 cell((long long)r.total_cycles),
                 cell((long long)r.opt_stats.inline_stats.sites_inlined)});
    }
  }
  t.render(std::cout);

  // GA-tune for this specific program.
  tuner::EvalConfig cfg;
  cfg.machine = machine;
  cfg.scenario = vm::Scenario::kOpt;
  tuner::SuiteEvaluator eval({wl::Workload{program.name(), "custom", "custom", program}}, cfg);
  const tuner::TuneResult tuned =
      tuner::tune(eval, tuner::Goal::kTotal, tuner::default_ga_config(12, 7));
  std::cout << "\nGA-tuned for total time: " << tuned.best.to_string() << "\n";
  tuner::comparison_table(
      tuner::compare_results(*eval.evaluate(tuned.best), *eval.default_results()))
      .render(std::cout);
  return 0;
}
