// quickstart: the 5-minute tour of the library.
//
//  1. Build a small program with the ProgramBuilder DSL.
//  2. Run it in the VM under both compilation scenarios with the default
//     Jikes-style inlining heuristic.
//  3. Tune the heuristic's five parameters with the genetic algorithm.
//  4. Compare tuned vs default.

#include <iostream>

#include "bytecode/builder.hpp"
#include "ga/ga.hpp"
#include "heuristics/heuristic.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/report.hpp"
#include "tuner/tuner.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

using namespace ith;

int main() {
  // --- 1. A program: sum of distance() over a loop, plus one-shot setup. ---
  bc::ProgramBuilder pb("demo", /*globals=*/256);

  pb.method("square", 1, 1).load(0).load(0).mul().ret();

  auto& dist = pb.method("distance", 2, 2);  // |a^2 - b^2|
  dist.load(0).call("square", 1);
  dist.load(1).call("square", 1);
  dist.sub();
  dist.jz("done_nonneg");  // 0 is fine as-is
  dist.load(0).call("square", 1).load(1).call("square", 1).sub();
  dist.jnz("check");
  dist.label("done_nonneg");
  dist.ret_const(0);
  dist.label("check");
  dist.load(0).call("square", 1).load(1).call("square", 1).sub().ret();

  auto& m = pb.method("main", 0, 3);
  m.const_(0).store(1);
  m.const_(0).store(0);
  m.label("loop");
  m.load(0).const_(800).cmplt().jz("exit");
  m.load(0).load(0).const_(3).add().call("distance", 2);
  m.load(1).add().store(1);
  m.load(0).const_(1).add().store(0);
  m.jmp("loop");
  m.label("exit");
  m.load(1).halt();
  pb.entry("main");

  const bc::Program program = pb.build();  // verified
  std::cout << "Built '" << program.name() << "': " << program.num_methods() << " methods, "
            << program.total_code_size() << " bytecode instructions\n\n";

  // --- 2. Run under both scenarios with the Jikes default heuristic. -------
  const rt::MachineModel machine = rt::pentium4_model();
  for (const vm::Scenario sc : {vm::Scenario::kOpt, vm::Scenario::kAdapt}) {
    heur::JikesHeuristic h;  // default parameters
    vm::VmConfig cfg;
    cfg.scenario = sc;
    vm::VirtualMachine jvm(program, machine, h, cfg);
    const vm::RunResult r = jvm.run(/*iterations=*/2);
    std::cout << vm::scenario_name(sc) << ": total=" << r.total_cycles
              << " cycles, running=" << r.running_cycles
              << " cycles, inlined " << r.opt_stats.inline_stats.sites_inlined
              << " call sites, exit value=" << r.iterations[0].exec.exit_value << "\n";
  }
  std::cout << "\n";

  // --- 3. Tune the heuristic for this program (total time, Opt). -----------
  tuner::EvalConfig eval_cfg;
  eval_cfg.machine = machine;
  eval_cfg.scenario = vm::Scenario::kOpt;
  tuner::SuiteEvaluator eval({wl::Workload{"demo", "quickstart demo", "custom", program}},
                             eval_cfg);
  ga::GaConfig ga_cfg = tuner::default_ga_config(/*generations=*/15, /*seed=*/1);
  const tuner::TuneResult tuned = tuner::tune(eval, tuner::Goal::kTotal, ga_cfg);
  std::cout << "GA tuned parameters: " << tuned.best.to_string() << "\n";
  std::cout << "fitness (normalized total time vs default): " << tuned.best_fitness << "\n\n";

  // --- 4. Side-by-side. -----------------------------------------------------
  const auto rows = tuner::compare_results(*eval.evaluate(tuned.best), *eval.default_results());
  tuner::comparison_table(rows).render(std::cout);
  return 0;
}
