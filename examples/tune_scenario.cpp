// tune_scenario: the paper's end-to-end pipeline for one compilation
// scenario — tune the inlining heuristic with a genetic algorithm on the
// SPECjvm98 training suite, then evaluate the tuned parameters on the
// unseen DaCapo+JBB test suite.
//
// Usage:
//   tune_scenario [--scenario=adapt|opt] [--goal=running|total|balance]
//                 [--arch=x86|ppc] [--generations=40] [--pop=20] [--seed=42]

#include <iostream>

#include "support/cli.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/report.hpp"
#include "tuner/tuner.hpp"

using namespace ith;

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  tuner::EvalConfig eval_cfg;
  eval_cfg.machine = cli.get_or("arch", "x86") == "ppc" ? rt::ppc_g4_model()
                                                        : rt::pentium4_model();
  eval_cfg.scenario =
      cli.get_or("scenario", "adapt") == "opt" ? vm::Scenario::kOpt : vm::Scenario::kAdapt;
  const std::string goal_str = cli.get_or("goal", "balance");
  const tuner::Goal goal = goal_str == "running"  ? tuner::Goal::kRunning
                           : goal_str == "total" ? tuner::Goal::kTotal
                                                 : tuner::Goal::kBalance;

  std::cout << "Tuning scenario=" << vm::scenario_name(eval_cfg.scenario)
            << " goal=" << tuner::goal_name(goal) << " arch=" << eval_cfg.machine.name << "\n";

  // --- Off-line tuning on the training suite -------------------------------
  tuner::SuiteEvaluator train(wl::make_suite("specjvm98"), eval_cfg);
  ga::GaConfig ga_cfg = tuner::default_ga_config(
      static_cast<int>(cli.get_int_or("generations", 40)),
      static_cast<std::uint64_t>(cli.get_int_or("seed", 42)));
  ga_cfg.population = static_cast<int>(cli.get_int_or("pop", 20));

  tuner::TuneResult tuned = tuner::tune(train, goal, ga_cfg);

  std::cout << "GA: " << tuned.ga.evaluations << " evaluations, " << tuned.ga.cache_hits
            << " cache hits, " << tuned.ga.history.size() << " generations\n";
  std::cout << "Best fitness (normalized Perf(S)): " << tuned.best_fitness << "\n";
  std::cout << "Tuned parameters: " << tuned.best.to_string() << "\n";
  std::cout << "Default parameters: " << heur::default_params().to_string() << "\n\n";

  // --- Evaluation: training suite then unseen test suite -------------------
  for (const char* suite : {"specjvm98", "dacapo+jbb"}) {
    tuner::SuiteEvaluator eval(wl::make_suite(suite), eval_cfg);
    const auto with_default = eval.default_results();
    const auto with_tuned = eval.evaluate(tuned.best);
    std::cout << suite << " (tuned vs default, <1.0 is better):\n";
    tuner::comparison_table(tuner::compare_results(*with_tuned, *with_default)).render(std::cout);
    std::cout << "\n";
  }
  return 0;
}
