// explore_heuristics: compare the heuristic families across a whole suite —
// never / Jikes default / always / knapsack oracle — and sweep one
// parameter to see its marginal effect (the Figure 2 experiment generalized
// to any parameter).
//
// Usage:
//   explore_heuristics [--suite=specjvm98|dacapo+jbb|all] [--arch=x86|ppc]
//                      [--scenario=opt|adapt] [--sweep=depth|callee|always|caller|hot]
//                      [--benchmark=<name>]

#include <iostream>

#include "heuristics/heuristic.hpp"
#include "heuristics/knapsack.hpp"
#include "heuristics/profile_directed.hpp"
#include "support/cli.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "tuner/evaluator.hpp"
#include "workloads/suite.hpp"

using namespace ith;

namespace {

struct SuiteTimes {
  double running_geomean_norm;  // vs default heuristic
  double total_geomean_norm;
};

SuiteTimes normalized(const std::vector<tuner::BenchmarkResult>& candidate,
                      const std::vector<tuner::BenchmarkResult>& base) {
  std::vector<double> run, tot;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    run.push_back(static_cast<double>(candidate[i].running_cycles) /
                  static_cast<double>(base[i].running_cycles));
    tot.push_back(static_cast<double>(candidate[i].total_cycles) /
                  static_cast<double>(base[i].total_cycles));
  }
  return {geomean(run), geomean(tot)};
}

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  tuner::EvalConfig cfg;
  cfg.machine = cli.get_or("arch", "x86") == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
  cfg.scenario = cli.get_or("scenario", "opt") == "adapt" ? vm::Scenario::kAdapt
                                                          : vm::Scenario::kOpt;
  const std::string suite = cli.get_or("suite", "specjvm98");

  tuner::SuiteEvaluator eval(wl::make_suite(suite), cfg);
  const auto base = eval.default_results();

  std::cout << "Heuristic families on " << suite << " (" << cfg.machine.name << ", "
            << vm::scenario_name(cfg.scenario) << "), geomeans normalized to the default:\n";
  {
    Table t({"heuristic", "running (geomean)", "total (geomean)"});
    heur::NeverInlineHeuristic never;
    heur::AlwaysInlineHeuristic always;
    heur::KnapsackHeuristic knap05(0.05), knap20(0.20);
    heur::ProfileDirectedHeuristic profile_directed;  // needs Adapt profiles to act
    for (heur::InlineHeuristic* h : std::initializer_list<heur::InlineHeuristic*>{
             &never, &always, &knap05, &knap20, &profile_directed}) {
      const SuiteTimes s = normalized(eval.evaluate_heuristic(*h), *base);
      t.add_row({h->name(), cell_ratio(s.running_geomean_norm), cell_ratio(s.total_geomean_norm)});
    }
    t.add_row({"jikes-default", cell_ratio(1.0), cell_ratio(1.0)});
    t.render(std::cout);
  }

  // Single-parameter sweep around the defaults.
  const std::string sweep = cli.get_or("sweep", "depth");
  std::vector<int> values;
  auto apply = [&sweep](heur::InlineParams& p, int v) {
    if (sweep == "depth") p.max_inline_depth = v;
    else if (sweep == "callee") p.callee_max_size = v;
    else if (sweep == "always") p.always_inline_size = v;
    else if (sweep == "caller") p.caller_max_size = v;
    else p.hot_callee_max_size = v;
  };
  if (sweep == "depth") values = {1, 2, 3, 5, 8, 10, 15};
  else if (sweep == "callee") values = {1, 5, 10, 23, 35, 50};
  else if (sweep == "always") values = {1, 5, 11, 20, 30};
  else if (sweep == "caller") values = {16, 64, 256, 1024, 2048, 4000};
  else values = {1, 50, 135, 250, 400};

  std::cout << "\nSweep of " << sweep << " (other parameters at defaults):\n";
  Table t({sweep, "running (geomean)", "total (geomean)"});
  for (int v : values) {
    heur::InlineParams p = heur::default_params();
    apply(p, v);
    const SuiteTimes s = normalized(*eval.evaluate(p), *base);
    t.add_row({std::to_string(v), cell_ratio(s.running_geomean_norm),
               cell_ratio(s.total_geomean_norm)});
  }
  t.render(std::cout);
  return 0;
}
