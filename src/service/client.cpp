#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "support/error.hpp"

namespace ith::svc {

ServiceClient::ServiceClient(ClientConfig config) : config_(std::move(config)) {}

ServiceClient::~ServiceClient() {
  std::lock_guard<std::mutex> lock(mu_);
  disconnect_locked();
}

void ServiceClient::bump(const char* name, std::uint64_t delta) {
  if (config_.obs != nullptr) config_.obs->counter(name).add(delta);
}

void ServiceClient::disconnect_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::note_failure_locked() {
  consecutive_failures_ = std::min(consecutive_failures_ + 1, 30);
  skip_remaining_ = std::min<std::uint64_t>(1ull << std::min(consecutive_failures_, 20),
                                            config_.max_backoff_skips);
  disconnect_locked();
  bump("svc.client_degraded");
}

void ServiceClient::note_success_locked() {
  consecutive_failures_ = 0;
  skip_remaining_ = 0;
}

bool ServiceClient::in_backoff_locked() {
  if (skip_remaining_ == 0) return false;
  --skip_remaining_;
  return skip_remaining_ != 0;  // the window's last skip re-probes the daemon
}

bool ServiceClient::ensure_connected_locked() {
  if (fatal_) return false;
  if (fd_ >= 0) return true;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() || config_.socket_path.size() >= sizeof addr.sun_path) {
    return false;
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(), config_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  // The per-request deadline: a daemon that accepts but never answers (or a
  // single-flight park outliving its welcome) unblocks here, and the client
  // falls down the degradation ladder instead of hanging the tune.
  timeval tv{};
  tv.tv_sec = config_.request_timeout_ms / 1000;
  tv.tv_usec = (config_.request_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  HelloMsg hello;
  hello.fingerprint = config_.fingerprint;
  hello.client_id = config_.client_id;
  hello.name = config_.name;
  if (!write_frame(fd, MsgType::kHello, encode_hello(hello))) {
    ::close(fd);
    return false;
  }
  Frame reply;
  if (read_frame(fd, &reply) != ReadStatus::kOk) {
    ::close(fd);
    return false;
  }
  if (reply.type == MsgType::kHelloReject) {
    // A fingerprint mismatch is a configuration error, not an outage:
    // retrying can never fix it, and serving results across the mismatch
    // would be wrong. Degrade permanently; the tune continues standalone.
    fatal_ = true;
    bump("svc.client_fatal");
    ::close(fd);
    return false;
  }
  if (reply.type != MsgType::kHelloOk) {
    ::close(fd);
    return false;
  }

  fd_ = fd;
  bump("svc.client_connects");
  flush_pending_locked();
  return true;
}

void ServiceClient::flush_pending_locked() {
  // Re-federation: everything computed while degraded is published before
  // any new request, so a daemon restart converges back to the full fleet
  // state. Publishes here carry lease 0 (their leases died with the old
  // daemon or connection).
  while (!pending_.empty() && fd_ >= 0) {
    const Pending& p = pending_.front();
    ResultsMsg msg;
    msg.signature = p.signature;
    msg.lease_id = 0;
    msg.results = p.results;
    if (!round_trip_locked(MsgType::kEvalPublish, encode_results_msg(msg)).has_value()) {
      return;  // connection died mid-flush; the rest stays queued
    }
    pending_.erase(pending_.begin());
    bump("svc.client_refederated");
  }
}

std::optional<Frame> ServiceClient::round_trip_locked(MsgType type, const std::string& payload) {
  if (fd_ < 0) return std::nullopt;
  if (!write_frame(fd_, type, payload)) {
    disconnect_locked();
    return std::nullopt;
  }
  Frame reply;
  if (read_frame(fd_, &reply) != ReadStatus::kOk) {
    disconnect_locked();
    return std::nullopt;
  }
  return reply;
}

std::optional<Frame> ServiceClient::request_locked(MsgType type, const std::string& payload) {
  for (int attempt = 0; attempt < std::max(1, config_.max_attempts); ++attempt) {
    if (attempt > 0) bump("svc.client_retries");
    if (!ensure_connected_locked()) {
      if (fatal_) return std::nullopt;
      continue;
    }
    if (std::optional<Frame> reply = round_trip_locked(type, payload)) {
      if (reply->type == MsgType::kError) {
        // Request-level refusal (e.g. an injected dispatch fault). The
        // connection is still good; burn an attempt and retry.
        continue;
      }
      note_success_locked();
      return reply;
    }
  }
  note_failure_locked();
  return std::nullopt;
}

std::optional<std::vector<tuner::BenchmarkResult>> ServiceClient::acquire(std::uint64_t sig,
                                                                          std::uint64_t* lease) {
  *lease = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_ || in_backoff_locked()) {
    bump("svc.client_local");
    return std::nullopt;
  }
  const std::optional<Frame> reply = request_locked(MsgType::kEvalAcquire, encode_u64(sig));
  if (!reply.has_value()) {
    bump("svc.client_local");
    return std::nullopt;
  }
  if (reply->type == MsgType::kEvalResult) {
    try {
      ResultsMsg msg = decode_results_msg(reply->payload);
      if (msg.signature == sig) {
        bump("svc.client_remote_hits");
        return std::move(msg.results);
      }
    } catch (const Error&) {
      // corrupt payload: fall through to local evaluation
    }
    disconnect_locked();
    bump("svc.client_local");
    return std::nullopt;
  }
  if (reply->type == MsgType::kEvalLease) {
    try {
      const auto [lease_sig, lease_id] = decode_u64_pair(reply->payload);
      if (lease_sig == sig) {
        *lease = lease_id;
        bump("svc.client_leases");
      }
    } catch (const Error&) {
    }
    return std::nullopt;
  }
  bump("svc.client_local");
  return std::nullopt;
}

void ServiceClient::publish(std::uint64_t sig, std::uint64_t lease,
                            const std::vector<tuner::BenchmarkResult>& results) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_) return;
  if (fd_ >= 0 || (skip_remaining_ == 0 && ensure_connected_locked())) {
    ResultsMsg msg;
    msg.signature = sig;
    msg.lease_id = lease;
    msg.results = results;
    if (round_trip_locked(MsgType::kEvalPublish, encode_results_msg(msg)).has_value()) {
      bump("svc.client_publishes");
      return;
    }
  }
  // Unreachable: queue for re-federation on the next successful connect.
  pending_.push_back(Pending{sig, results});
  bump("svc.client_queued");
}

std::optional<bool> ServiceClient::query_quarantine(std::uint64_t sig) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_) return std::nullopt;
  const std::optional<Frame> reply = request_locked(MsgType::kQuarantineQuery, encode_u64(sig));
  if (!reply.has_value() || reply->type != MsgType::kQuarantineState) return std::nullopt;
  try {
    const auto [reply_sig, state] = decode_u64_pair(reply->payload);
    if (reply_sig == sig) return state != 0;
  } catch (const Error&) {
  }
  return std::nullopt;
}

std::optional<bool> ServiceClient::release_quarantine(std::uint64_t sig) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_) return std::nullopt;
  const std::optional<Frame> reply = request_locked(MsgType::kQuarantineRelease, encode_u64(sig));
  if (!reply.has_value() || reply->type != MsgType::kQuarantineState) return std::nullopt;
  try {
    const auto [reply_sig, state] = decode_u64_pair(reply->payload);
    if (reply_sig == sig) return state != 0;
  } catch (const Error&) {
  }
  return std::nullopt;
}

std::optional<std::vector<std::pair<std::string, std::uint64_t>>> ServiceClient::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_) return std::nullopt;
  const std::optional<Frame> reply = request_locked(MsgType::kStats, std::string());
  if (!reply.has_value() || reply->type != MsgType::kStatsReply) return std::nullopt;
  try {
    return decode_counters(reply->payload);
  } catch (const Error&) {
    return std::nullopt;
  }
}

bool ServiceClient::fatally_degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fatal_;
}

std::size_t ServiceClient::pending_publishes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

bool ServiceClient::reattach() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fatal_) return false;
  skip_remaining_ = 0;
  consecutive_failures_ = 0;
  disconnect_locked();
  return ensure_connected_locked();
}

}  // namespace ith::svc
