// Evaluation-service wire protocol: length-prefixed frames over a unix
// domain socket.
//
// Every frame is
//
//   magic    8 bytes  "ITHSVP1\0"   (version bump = new magic)
//   type     u32      MsgType
//   reserved u32      0 (alignment / future flags)
//   size     u64      payload byte count
//   checksum u64      FNV-1a over the payload
//   payload  size bytes
//
// — the same tamper-evident envelope idiom as the ITHEVC1 snapshot and the
// ITHGACP1 checkpoint: a torn or bit-flipped frame fails loudly (bad magic
// or checksum mismatch) instead of desynchronizing the stream. The payload
// encoding is the little-endian u64/length-prefixed-string scheme those
// files use; result vectors ride as tuner::encode_results bytes, so a
// served result is byte-identical to a snapshot entry.
//
// Conversations are strictly synchronous request/response per connection
// (one outstanding request), which lets the daemon park a connection
// server-side while a leased signature is being computed elsewhere — the
// cross-process single-flight wait — without any frame interleaving rules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tuner/evaluator.hpp"

namespace ith::svc {

/// Frame types. The values are wire format — append only.
enum class MsgType : std::uint32_t {
  kHello = 1,              ///< client: fingerprint + identity
  kHelloOk = 2,            ///< daemon: accepted (cache population attached)
  kHelloReject = 3,        ///< daemon: fingerprint mismatch — do not retry
  kEvalAcquire = 4,        ///< client: signature lookup / lease request
  kEvalResult = 5,         ///< daemon: cached (or just-published) results
  kEvalLease = 6,          ///< daemon: caller owns the miss; compute + publish
  kEvalPublish = 7,        ///< client: computed results (lease 0 = unsolicited)
  kPublishAck = 8,         ///< daemon: publish accepted / deduplicated
  kQuarantineQuery = 9,    ///< client: is this signature quarantined?
  kQuarantineRelease = 10, ///< client: lift the quarantine + drop the entry
  kQuarantineState = 11,   ///< daemon: reply to query/release
  kStats = 12,             ///< client: request the svc.* counter snapshot
  kStatsReply = 13,        ///< daemon: counter snapshot
  kError = 14,             ///< daemon: request-level failure (connection stays)
};

const char* msg_type_name(MsgType t);

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Outcome of read_frame: distinguishes a clean peer close from a torn or
/// corrupt stream so callers can count the two differently.
enum class ReadStatus : std::uint8_t {
  kOk = 0,
  kClosed = 1,  ///< EOF before any header byte (clean disconnect)
  kError = 2,   ///< torn header/payload, bad magic, checksum mismatch
  /// SO_RCVTIMEO expired before *any* frame byte arrived: the stream is
  /// still frame-aligned and the read may be retried on the same fd. A
  /// deadline that fires after bytes were consumed reports kError instead —
  /// the stream is desynchronized and the connection must be closed.
  kTimeout = 3,
};

/// Reads one frame. Blocks (subject to any SO_RCVTIMEO on the fd).
ReadStatus read_frame(int fd, Frame* out, std::string* error = nullptr);

/// Writes one frame. Returns false when the peer is gone or the stream
/// fails (SIGPIPE is suppressed via MSG_NOSIGNAL).
bool write_frame(int fd, MsgType type, const std::string& payload);

/// FNV-1a over arbitrary bytes (the frame checksum).
std::uint64_t frame_checksum(const std::string& payload);

// --- payload codec -------------------------------------------------------

/// Append-only payload writer (u64 / length-prefixed string).
class PayloadWriter {
 public:
  void u64(std::uint64_t v);
  void str(const std::string& s);
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Payload reader; throws ith::Error("service frame truncated") on
/// malformed input. Borrows the payload — the string must outlive the
/// reader (decode helpers satisfy this trivially).
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& bytes) : buf_(bytes) {}

  std::uint64_t u64();
  std::string str();
  /// The rest of the payload, verbatim (for embedded encode_results bytes).
  std::string rest();
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

// --- message payloads ----------------------------------------------------

struct HelloMsg {
  std::uint64_t fingerprint = 0;
  std::uint64_t client_id = 0;
  std::string name;
};

std::string encode_hello(const HelloMsg& m);
HelloMsg decode_hello(const std::string& payload);

/// kEvalResult / kEvalPublish share this shape (publish adds the lease).
struct ResultsMsg {
  std::uint64_t signature = 0;
  std::uint64_t lease_id = 0;  ///< kEvalPublish only; 0 = unsolicited
  std::vector<tuner::BenchmarkResult> results;
};

std::string encode_results_msg(const ResultsMsg& m);
ResultsMsg decode_results_msg(const std::string& payload);

std::string encode_u64(std::uint64_t v);
std::uint64_t decode_u64(const std::string& payload);

std::string encode_u64_pair(std::uint64_t a, std::uint64_t b);
std::pair<std::uint64_t, std::uint64_t> decode_u64_pair(const std::string& payload);

std::string encode_counters(const std::vector<std::pair<std::string, std::uint64_t>>& counters);
std::vector<std::pair<std::string, std::uint64_t>> decode_counters(const std::string& payload);

}  // namespace ith::svc
