#include "service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "support/error.hpp"

namespace ith::svc {

namespace {

/// True when any benchmark in the vector failed — the daemon mirrors the
/// evaluator's quarantine rule so QuarantineQuery answers match what a
/// local SuiteEvaluator would have concluded from the same results.
bool any_failed(const std::vector<tuner::BenchmarkResult>& results) {
  for (const tuner::BenchmarkResult& br : results) {
    if (!br.outcome.ok()) return true;
  }
  return false;
}

/// SO_RCVTIMEO in milliseconds; 0 disables the deadline (block forever).
void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

EvalDaemon::EvalDaemon(DaemonConfig config) : config_(std::move(config)) {}

EvalDaemon::~EvalDaemon() { kill(); }

void EvalDaemon::bump(const char* name, std::uint64_t delta) {
  if (config_.obs != nullptr) config_.obs->counter(name).add(delta);
}

void EvalDaemon::start() {
  ITH_CHECK(!running_.load(), "evaluation daemon already running");
  ITH_CHECK(!config_.socket_path.empty(), "evaluation daemon needs a socket path");

  if (!config_.snapshot_path.empty()) {
    // A stale tmp from a crashed save is swept even if no published
    // snapshot exists yet (load_eval_cache would sweep it too, but only
    // when the published file is there to load).
    tuner::remove_stale_eval_cache_tmp(config_.snapshot_path);
    if (std::ifstream(config_.snapshot_path).good()) {
      try {
        import_snapshot(tuner::load_eval_cache(config_.snapshot_path));
      } catch (const Error&) {
        // A corrupt (or foreign-fingerprint) published snapshot must not
        // make the daemon unrestartable: set the file aside — preserved for
        // post-mortem, out of the restart path — and start with an empty
        // repository. Clients re-federate their local caches on attach, so
        // warmth recovers; a wedged fleet would not.
        std::rename(config_.snapshot_path.c_str(),
                    (config_.snapshot_path + ".corrupt").c_str());
        ++stats_.snapshots_quarantined;
        bump("svc.snapshots_quarantined");
      }
    }
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ITH_CHECK(config_.socket_path.size() < sizeof addr.sun_path,
            "socket path too long: " + config_.socket_path);
  std::memcpy(addr.sun_path, config_.socket_path.c_str(), config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ITH_CHECK(listen_fd_ >= 0, "cannot create daemon socket");
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind daemon socket: " + config_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    throw Error("cannot listen on daemon socket: " + config_.socket_path);
  }

  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void EvalDaemon::accept_loop() {
  while (!stopping_.load()) {
    reap_finished_connections();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 100);
    if (n <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    std::uint64_t conn_id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn_id = ++next_conn_id_;
      ++stats_.connections_accepted;
    }
    bump("svc.connections");

    if (config_.faults.should_inject(resilience::FaultSite::kSvcAccept, conn_id)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.connections_dropped;
        ++stats_.faults_injected;
      }
      bump("svc.faults_injected");
      ::close(fd);
      continue;
    }

    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.emplace(conn_id, fd);
    conn_threads_.emplace(conn_id,
                          std::thread([this, fd, conn_id] { serve_connection(fd, conn_id); }));
  }
}

void EvalDaemon::reap_finished_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint64_t id : done_conns_) {
      const auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        finished.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    done_conns_.clear();
  }
  // These threads announced they are done serving, so each join returns as
  // soon as the thread finishes its last few instructions — this never
  // blocks the accept loop behind a live connection.
  for (std::thread& t : finished) t.join();
}

void EvalDaemon::serve_connection(int fd, std::uint64_t conn_id) {
  // Handshake: the client must present the configuration fingerprint before
  // anything else — a mismatched client is told so (kHelloReject means "do
  // not retry") and dropped. Until the hello completes the connection is
  // unauthenticated, so it gets a receive deadline: a peer that connects
  // and sends nothing (or half a frame) is dropped instead of pinning this
  // thread in recv forever.
  set_recv_timeout(fd, config_.handshake_timeout_ms);
  Frame frame;
  bool ok = false;
  if (read_frame(fd, &frame) == ReadStatus::kOk && frame.type == MsgType::kHello) {
    HelloMsg hello;
    bool decoded = false;
    try {
      hello = decode_hello(frame.payload);
      decoded = true;
    } catch (const Error&) {
      // Checksummed but malformed: the payload arrived as the client sent
      // it, the client is just speaking nonsense. Drop it, not the daemon.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_rejected;
    }
    if (decoded && hello.fingerprint == config_.fingerprint) {
      std::uint64_t population = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        population = repo_.size();
      }
      ok = write_frame(fd, MsgType::kHelloOk, encode_u64(population));
    } else if (decoded) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hello_rejects;
      }
      bump("svc.hello_rejects");
      write_frame(fd, MsgType::kHelloReject, encode_u64(config_.fingerprint));
    }
  }
  // Authenticated clients may legitimately go quiet for a whole suite
  // evaluation while holding a lease; disconnects still wake recv with EOF,
  // so the post-handshake read blocks without a deadline.
  if (ok) set_recv_timeout(fd, 0);

  std::uint64_t seq = 0;
  while (ok && !stopping_.load()) {
    const ReadStatus rs = read_frame(fd, &frame);
    if (rs != ReadStatus::kOk) {
      if (rs == ReadStatus::kError) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_rejected;
      }
      break;
    }
    ++seq;
    if (config_.faults.should_inject(resilience::FaultSite::kSvcRead,
                                     resilience::mix_keys(conn_id, seq))) {
      // The injected failure mode is "this frame arrived torn": the framing
      // layer's only safe recovery from a torn stream is to drop the
      // connection, so that is what the client experiences.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_rejected;
        ++stats_.faults_injected;
      }
      bump("svc.faults_injected");
      break;
    }
    if (!handle_frame(fd, conn_id, seq, frame)) break;
  }

  reclaim_leases(conn_id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(conn_id);
    done_conns_.push_back(conn_id);  // accept loop joins this thread
  }
  ::close(fd);
}

bool EvalDaemon::reply(int fd, std::uint64_t conn_id, std::uint64_t seq, MsgType type,
                       const std::string& payload) {
  if (config_.faults.should_inject(resilience::FaultSite::kSvcWrite,
                                   resilience::mix_keys(conn_id, ~seq))) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.faults_injected;
    }
    bump("svc.faults_injected");
    return false;  // response never sent; connection dies, client retries
  }
  return write_frame(fd, type, payload);
}

bool EvalDaemon::handle_frame(int fd, std::uint64_t conn_id, std::uint64_t seq,
                              const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  bump("svc.requests");

  // The frame checksum only proves the payload arrived as sent — a buggy or
  // hostile client can still send a malformed one. Every decode below is
  // guarded: a decode throw drops the connection, never the daemon (an
  // uncaught exception on this thread would std::terminate the fleet's
  // shared cache).
  const auto malformed = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_rejected;
    return false;
  };

  switch (frame.type) {
    case MsgType::kEvalAcquire: {
      std::uint64_t sig = 0;
      try {
        sig = decode_u64(frame.payload);
      } catch (const Error&) {
        return malformed();
      }
      if (config_.faults.should_inject(resilience::FaultSite::kSvcDispatch, sig ^ seq)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.faults_injected;
        }
        bump("svc.faults_injected");
        return reply(fd, conn_id, seq, MsgType::kError, "injected dispatch fault");
      }

      // Resolve the signature against the repository and the lease table.
      // The wait in the middle is the cross-process single-flight: this
      // connection parks until the leaseholder publishes (-> result) or
      // disconnects (-> this waiter may claim a fresh lease: re-dispatch).
      std::unique_lock<std::mutex> lock(mu_);
      bool counted_wait = false;
      while (!stopping_.load()) {
        const auto hit = repo_.find(sig);
        if (hit != repo_.end()) {
          ++stats_.hits;
          ResultsMsg msg;
          msg.signature = sig;
          msg.results = hit->second;
          lock.unlock();
          bump("svc.hits");
          return reply(fd, conn_id, seq, MsgType::kEvalResult, encode_results_msg(msg));
        }
        if (leases_.find(sig) == leases_.end()) {
          const std::uint64_t lease_id = next_lease_id_++;
          leases_[sig] = Lease{lease_id, conn_id};
          ++stats_.leases_granted;
          ++stats_.leases_outstanding;
          lock.unlock();
          bump("svc.leases_granted");
          return reply(fd, conn_id, seq, MsgType::kEvalLease,
                       encode_u64_pair(sig, lease_id));
        }
        if (!counted_wait) {
          counted_wait = true;
          ++stats_.waits;
          bump("svc.waits");
        }
        cv_.wait(lock);
      }
      lock.unlock();
      return reply(fd, conn_id, seq, MsgType::kError, "daemon stopping");
    }

    case MsgType::kEvalPublish: {
      ResultsMsg msg;
      try {
        msg = decode_results_msg(frame.payload);
      } catch (const Error&) {
        return malformed();
      }
      bool added = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto lease = leases_.find(msg.signature);
        if (lease != leases_.end() && lease->second.id == msg.lease_id) {
          leases_.erase(lease);
          ++stats_.leases_published;
          --stats_.leases_outstanding;
          bump("svc.leases_published");
        } else {
          // Lease 0, a reclaimed lease, or a lease superseded by
          // re-dispatch: the results are still welcome (they are a pure
          // function of the signature), they just do not complete a lease.
          ++stats_.publishes_unsolicited;
        }
        added = admit_results_locked(msg.signature, msg.results);
        if (!added) ++stats_.publishes_dedup;
      }
      cv_.notify_all();
      maybe_snapshot();
      return reply(fd, conn_id, seq, MsgType::kPublishAck, encode_u64(added ? 1 : 0));
    }

    case MsgType::kQuarantineQuery: {
      std::uint64_t sig = 0;
      try {
        sig = decode_u64(frame.payload);
      } catch (const Error&) {
        return malformed();
      }
      bool quarantined = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        quarantined = quarantine_.count(sig) != 0;
      }
      return reply(fd, conn_id, seq, MsgType::kQuarantineState,
                   encode_u64_pair(sig, quarantined ? 1 : 0));
    }

    case MsgType::kQuarantineRelease: {
      std::uint64_t sig = 0;
      try {
        sig = decode_u64(frame.payload);
      } catch (const Error&) {
        return malformed();
      }
      bool released = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        // Mirrors SuiteEvaluator::release_quarantine: refuse while the
        // signature is leased (in flight somewhere), otherwise lift the
        // quarantine AND drop the penalized entry so the next acquire
        // triggers a fresh guarded run.
        if (leases_.find(sig) == leases_.end() && quarantine_.erase(sig) != 0) {
          repo_.erase(sig);
          released = true;
        }
      }
      if (released) bump("svc.quarantine_released");
      return reply(fd, conn_id, seq, MsgType::kQuarantineState,
                   encode_u64_pair(sig, released ? 1 : 0));
    }

    case MsgType::kStats: {
      DaemonStats s = stats();
      const std::vector<std::pair<std::string, std::uint64_t>> counters = {
          {"svc.connections", s.connections_accepted},
          {"svc.hits", s.hits},
          {"svc.waits", s.waits},
          {"svc.leases_granted", s.leases_granted},
          {"svc.leases_published", s.leases_published},
          {"svc.leases_reclaimed", s.leases_reclaimed},
          {"svc.leases_outstanding", s.leases_outstanding},
          {"svc.publishes_dedup", s.publishes_dedup},
          {"svc.snapshots_written", s.snapshots_written},
          {"svc.snapshots_quarantined", s.snapshots_quarantined},
          {"svc.faults_injected", s.faults_injected},
      };
      return reply(fd, conn_id, seq, MsgType::kStatsReply, encode_counters(counters));
    }

    default:
      return reply(fd, conn_id, seq, MsgType::kError,
                   std::string("unexpected frame: ") + msg_type_name(frame.type));
  }
}

bool EvalDaemon::admit_results_locked(std::uint64_t sig,
                                      const std::vector<tuner::BenchmarkResult>& results) {
  if (any_failed(results)) quarantine_.insert(sig);
  const auto it = repo_.find(sig);
  if (it == repo_.end()) {
    repo_.emplace(sig, results);
    return true;
  }
  // Concurrent publishes for one signature (possible after a reclaim) are
  // conflict-resolved with the same deterministic total order federation
  // uses, so the repository converges regardless of arrival order.
  tuner::EvalCacheSnapshot dst;
  dst.entries.push_back({sig, it->second});
  tuner::EvalCacheSnapshot src;
  src.entries.push_back({sig, results});
  tuner::merge_eval_snapshots(dst, src);
  it->second = dst.entries.front().results;
  return false;
}

void EvalDaemon::reclaim_leases(std::uint64_t conn_id) {
  std::size_t reclaimed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (it->second.conn == conn_id) {
        it = leases_.erase(it);
        ++stats_.leases_reclaimed;
        --stats_.leases_outstanding;
        ++reclaimed;
      } else {
        ++it;
      }
    }
  }
  if (reclaimed > 0) {
    bump("svc.leases_reclaimed", reclaimed);
    // Parked waiters re-check: the first to wake claims a fresh lease.
    cv_.notify_all();
  }
}

void EvalDaemon::maybe_snapshot() {
  if (config_.snapshot_path.empty() || config_.snapshot_every == 0) return;
  bool due = false;
  std::uint64_t counter = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (++publishes_since_snapshot_ >= config_.snapshot_every) {
      publishes_since_snapshot_ = 0;
      counter = ++snapshot_counter_;
      due = true;
    }
  }
  if (!due) return;
  if (config_.faults.should_inject(resilience::FaultSite::kSvcSnapshot, counter)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.snapshots_skipped;
      ++stats_.faults_injected;
    }
    bump("svc.faults_injected");
    return;
  }
  write_snapshot("periodic");
}

void EvalDaemon::write_snapshot(const char* /*why*/) {
  // Serialized: two publishers can both decide a snapshot is due, and
  // save_eval_cache writes through one fixed tmp path — unserialized, their
  // interleaved writes could rename a torn tmp into place as the published
  // snapshot. Holding snapshot_mu_ across the copy too keeps publishes
  // ordered: a later writer can never be overwritten by an earlier, staler
  // repository state.
  std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
  tuner::EvalCacheSnapshot snap = snapshot();
  try {
    tuner::save_eval_cache(config_.snapshot_path, snap);
  } catch (const Error&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.snapshots_skipped;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.snapshots_written;
  }
  bump("svc.snapshots_written");
}

tuner::EvalCacheSnapshot EvalDaemon::snapshot() const {
  tuner::EvalCacheSnapshot snap;
  snap.fingerprint = config_.fingerprint;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [sig, results] : repo_) snap.entries.push_back({sig, results});
  snap.quarantined.assign(quarantine_.begin(), quarantine_.end());
  return snap;
}

tuner::SnapshotMergeStats EvalDaemon::import_snapshot(const tuner::EvalCacheSnapshot& snap) {
  tuner::EvalCacheSnapshot dst;
  dst.fingerprint = config_.fingerprint;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [sig, results] : repo_) dst.entries.push_back({sig, results});
  dst.quarantined.assign(quarantine_.begin(), quarantine_.end());

  const tuner::SnapshotMergeStats stats = tuner::merge_eval_snapshots(dst, snap);

  repo_.clear();
  for (const tuner::EvalCacheSnapshot::Entry& e : dst.entries) repo_.emplace(e.signature, e.results);
  quarantine_.clear();
  quarantine_.insert(dst.quarantined.begin(), dst.quarantined.end());
  ++stats_.imports;
  cv_.notify_all();
  bump("svc.imports");
  return stats;
}

DaemonStats EvalDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t EvalDaemon::live_connection_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_threads_.size();
}

namespace {

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace

void EvalDaemon::shutdown_impl(bool final_snapshot) {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  cv_.notify_all();

  shutdown_fd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [conn, fd] : conn_fds_) shutdown_fd(fd);
    for (auto& [conn, t] : conn_threads_) threads.push_back(std::move(t));
    conn_threads_.clear();
    done_conns_.clear();
  }
  for (std::thread& t : threads) t.join();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (final_snapshot && !config_.snapshot_path.empty()) write_snapshot("final");
  ::unlink(config_.socket_path.c_str());
}

void EvalDaemon::stop() { shutdown_impl(/*final_snapshot=*/true); }

void EvalDaemon::kill() {
  // No final snapshot: everything since the last periodic one is lost,
  // which is the crash semantics the chaos fleet mode verifies recovery
  // from. The socket file is still removed so clients fail fast instead of
  // hanging on connect() to a dead listener.
  shutdown_impl(/*final_snapshot=*/false);
}

}  // namespace ith::svc
