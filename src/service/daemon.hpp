// EvalDaemon: the tuning-as-a-service evaluation coordinator.
//
// One daemon owns the shared signature->results repository for a fleet of
// tuning clients. Clients speak the framed protocol in protocol.hpp over a
// unix domain socket; the daemon answers each acquire with either a cached
// result, a *lease* (the caller owns the miss: compute locally, publish
// back), or — when another client already holds the lease — by parking the
// connection server-side until the leaseholder publishes. That park is the
// cross-process single-flight: N clients asking for one uncached signature
// cost the fleet exactly one real suite run.
//
// Lease lifecycle invariant (asserted by tests and the fleet CI job):
//
//   leases_granted == leases_published + leases_reclaimed + leases_outstanding
//
// A lease held by a client that disconnects is *reclaimed* on the spot —
// the signature becomes un-leased, every parked waiter is woken, and the
// first to wake is granted a fresh lease (re-dispatch). Leases are never
// leaked (no signature stays permanently "in flight" for a dead client) and
// never double-counted (a publish under a reclaimed lease id is accepted as
// an unsolicited publish, not a second lease completion).
//
// Persistence: the repository snapshots to an ITHEVC1 file (the evaluator
// cache format, tmp+rename atomic publish) every `snapshot_every` publishes
// and once more on graceful stop(). kill() simulates a crash — connections
// die, no final snapshot — which is what the chaos fleet mode exercises.
// import_snapshot() federates a foreign snapshot into the live repository
// with the deterministic merge order of tuner::merge_eval_snapshots.
//
// Fault injection: five FaultSite::kSvc* sites (accept, read, write,
// dispatch, snapshot) keyed on stable identities (connection counter,
// (conn, frame seq), signature, snapshot counter), so chaos campaigns are
// replayable by seed like every other fault site in the repo.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.hpp"
#include "resilience/fault.hpp"
#include "service/protocol.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/evaluator.hpp"

namespace ith::svc {

struct DaemonConfig {
  /// Path the unix domain socket binds to. Unlinked on bind and on stop.
  std::string socket_path;
  /// Configuration fingerprint clients must present (see
  /// SuiteEvaluator::cache_fingerprint). A mismatching hello is rejected —
  /// results from different configurations must never mix.
  std::uint64_t fingerprint = 0;
  /// ITHEVC1 snapshot file. Empty = no persistence. When the file exists at
  /// start(), it is loaded and federated into the repository.
  std::string snapshot_path;
  /// Publishes between periodic snapshots (0 = only the stop() snapshot).
  std::uint64_t snapshot_every = 8;
  /// SO_RCVTIMEO applied to an accepted connection until its hello
  /// completes: a peer that connects and sends nothing (or half a frame)
  /// is dropped instead of pinning a daemon thread forever. Cleared after
  /// the handshake — an authenticated client may legitimately idle for as
  /// long as a real suite evaluation takes. 0 = no handshake deadline.
  int handshake_timeout_ms = 10'000;
  /// Deterministic infrastructure fault plan (kSvc* sites).
  resilience::FaultPlan faults{};
  /// Non-owning, may be null. svc.* counters and kSvc events.
  obs::Context* obs = nullptr;
};

/// Monotonic daemon statistics. Readable at any time; also mirrored into
/// the obs context's svc.* counters when one is configured.
struct DaemonStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< fault-injected accept drops
  std::uint64_t hello_rejects = 0;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;             ///< acquire answered from the repository
  std::uint64_t waits = 0;            ///< acquire parked behind another lease
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_published = 0;
  std::uint64_t leases_reclaimed = 0;
  std::uint64_t leases_outstanding = 0;
  std::uint64_t publishes_unsolicited = 0;  ///< lease 0 / reclaimed-lease publishes
  std::uint64_t publishes_dedup = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshots_skipped = 0;      ///< fault-injected snapshot skips
  std::uint64_t snapshots_quarantined = 0;  ///< corrupt file set aside at start()
  std::uint64_t imports = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t frames_rejected = 0;  ///< torn/corrupt inbound frames

  /// The lease-leak check: true iff every lease ever granted is accounted
  /// for as published, reclaimed, or still legitimately outstanding.
  bool leases_balanced() const {
    return leases_granted == leases_published + leases_reclaimed + leases_outstanding;
  }
};

class EvalDaemon {
 public:
  explicit EvalDaemon(DaemonConfig config);
  ~EvalDaemon();

  EvalDaemon(const EvalDaemon&) = delete;
  EvalDaemon& operator=(const EvalDaemon&) = delete;

  /// Binds the socket, loads + federates `snapshot_path` when present, and
  /// spawns the accept loop. Throws ith::Error when the socket cannot be
  /// bound.
  void start();

  /// Graceful shutdown: stops accepting, wakes every parked waiter, closes
  /// connections, joins threads, writes a final snapshot, unlinks the
  /// socket. Idempotent.
  void stop();

  /// Crash simulation: like stop() but *no* final snapshot — the repository
  /// state since the last periodic snapshot is lost, exactly as a SIGKILL
  /// would lose it. The socket is still unlinked (a dead daemon's socket
  /// file would otherwise make every client connect() hang instead of fail
  /// fast). Idempotent.
  void kill();

  bool running() const { return running_.load(); }

  /// Federates a foreign snapshot into the live repository. Throws
  /// ith::Error on fingerprint mismatch.
  tuner::SnapshotMergeStats import_snapshot(const tuner::EvalCacheSnapshot& snap);

  /// Copy of the live repository as a snapshot (for tests / manual export).
  tuner::EvalCacheSnapshot snapshot() const;

  DaemonStats stats() const;

  /// Connection threads not yet reaped by the accept loop (tests: proves a
  /// long-lived daemon does not accumulate one thread per past connection).
  std::size_t live_connection_threads() const;

  const DaemonConfig& config() const { return config_; }

 private:
  struct Lease {
    std::uint64_t id = 0;
    std::uint64_t conn = 0;  ///< owning connection, for reclaim on disconnect
  };

  void accept_loop();
  void serve_connection(int fd, std::uint64_t conn_id);
  /// Handles one request frame; returns false when the connection must die
  /// (torn stream, injected write fault, peer gone).
  bool handle_frame(int fd, std::uint64_t conn_id, std::uint64_t seq, const Frame& frame);
  bool reply(int fd, std::uint64_t conn_id, std::uint64_t seq, MsgType type,
             const std::string& payload);
  /// Reclaims every lease owned by `conn_id` and wakes parked waiters.
  void reclaim_leases(std::uint64_t conn_id);
  /// Joins connection threads whose serve loop has exited (accept loop
  /// housekeeping, so a long-lived daemon never accumulates dead threads).
  void reap_finished_connections();
  /// Shared stop()/kill() body; `final_snapshot` is the only difference.
  void shutdown_impl(bool final_snapshot);
  /// Accepts a publish into the repository; returns true when it added a
  /// new entry (false = deduplicated/conflict-resolved against an existing
  /// one). Caller holds mu_.
  bool admit_results_locked(std::uint64_t sig, const std::vector<tuner::BenchmarkResult>& results);
  void maybe_snapshot();
  void write_snapshot(const char* why);
  void bump(const char* name, std::uint64_t delta = 1);

  DaemonConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  /// Serializes write_snapshot(): concurrent publishers may both decide a
  /// snapshot is due, and two unserialized save_eval_cache calls share one
  /// fixed tmp path — interleaved writes could publish a torn file. Ordered
  /// strictly before mu_ (write_snapshot holds it across snapshot()).
  std::mutex snapshot_mu_;
  std::condition_variable cv_;  ///< publish / reclaim / stop wakeups
  std::map<std::uint64_t, std::vector<tuner::BenchmarkResult>> repo_;
  std::set<std::uint64_t> quarantine_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t next_conn_id_ = 0;
  std::uint64_t publishes_since_snapshot_ = 0;
  std::uint64_t snapshot_counter_ = 0;
  DaemonStats stats_;
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> done_conns_;  ///< exited serve loops awaiting join
  std::map<std::uint64_t, int> conn_fds_;  ///< live connections, for shutdown
};

}  // namespace ith::svc
