#include "service/fleet.hpp"

#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "heuristics/heuristic.hpp"
#include "service/client.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/tuner.hpp"

namespace ith::svc {

namespace {

/// The daemon instance chain for one fleet run: one entry normally, two
/// when the chaos kill+restart fires. Old instances are kept (dead) so
/// their stats can be summed at the end.
struct DaemonChain {
  std::mutex mu;
  std::vector<std::unique_ptr<EvalDaemon>> instances;

  EvalDaemon& spawn(const DaemonConfig& dc) {
    std::lock_guard<std::mutex> lock(mu);
    instances.push_back(std::make_unique<EvalDaemon>(dc));
    instances.back()->start();
    return *instances.back();
  }
};

ga::GaConfig make_ga(const FleetConfig& config, int client_index) {
  ga::GaConfig ga;
  ga.population = config.population;
  ga.generations = config.generations;
  ga.seed = config.base_seed + static_cast<std::uint64_t>(client_index) * config.seed_stride;
  ga.threads = 1;
  ga.memoize = true;
  ga.obs = config.obs;
  const bool include_hot = config.eval.scenario == vm::Scenario::kAdapt;
  ga.seed_individuals.push_back(
      tuner::genome_from_params(heur::default_params(), include_hot));
  return ga;
}

}  // namespace

FleetReport run_fleet(const FleetConfig& config) {
  ITH_CHECK(config.clients >= 1, "fleet needs at least one client");
  ITH_CHECK(config.kill_daemon_at < config.generations,
            "--kill-daemon-at must name a generation the tune actually reaches");

  FleetReport report;

  // The configuration fingerprint every party must agree on. A throwaway
  // evaluator computes it — no suite run happens, the fingerprint is a pure
  // hash of the configuration.
  tuner::EvalConfig fp_config = config.eval;
  fp_config.backend = nullptr;
  fp_config.obs = nullptr;
  report.fingerprint = tuner::SuiteEvaluator(config.suite, fp_config).cache_fingerprint();

  DaemonConfig dc;
  dc.socket_path = config.socket_path;
  dc.fingerprint = report.fingerprint;
  dc.snapshot_path = config.snapshot_path;
  dc.snapshot_every = config.snapshot_every;
  dc.faults = config.service_faults;
  dc.obs = config.obs;

  DaemonChain chain;
  chain.spawn(dc);
  for (const std::string& path : config.import_paths) {
    chain.instances.back()->import_snapshot(tuner::load_eval_cache(path));
  }

  // Clients live in the main thread's scope (not the tune threads') so the
  // post-join re-federation pass can still reach them.
  std::vector<std::unique_ptr<ServiceClient>> clients;
  for (int i = 0; i < config.clients; ++i) {
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.fingerprint = report.fingerprint;
    cc.client_id = static_cast<std::uint64_t>(i) + 1;
    cc.name = "client-" + std::to_string(i);
    cc.request_timeout_ms = config.request_timeout_ms;
    cc.obs = config.obs;
    clients.push_back(std::make_unique<ServiceClient>(cc));
  }

  report.clients.resize(static_cast<std::size_t>(config.clients));
  std::vector<std::thread> threads;
  bool killed = false;
  bool restarted = false;
  for (int i = 0; i < config.clients; ++i) {
    threads.emplace_back([&, i] {
      tuner::EvalConfig ec = config.eval;
      ec.obs = config.obs;
      ec.backend = clients[static_cast<std::size_t>(i)].get();
      tuner::SuiteEvaluator evaluator(config.suite, ec);

      tuner::TuneCheckpointOptions cp;
      if (i == 0 && config.kill_daemon_at >= 0) {
        // Client 0's generation clock drives the chaos choreography: kill
        // the daemon after generation kill_daemon_at, restart it (same
        // socket, same snapshot file — it reloads its last periodic
        // snapshot) one generation later. Between the two, every client's
        // requests fail and the degradation ladder takes over.
        cp.on_generation = [&](const ga::GenerationStats& stats) {
          if (!killed && stats.generation == config.kill_daemon_at) {
            std::lock_guard<std::mutex> lock(chain.mu);
            chain.instances.back()->kill();
            killed = true;
          } else if (killed && !restarted && config.restart_daemon &&
                     stats.generation > config.kill_daemon_at) {
            chain.spawn(dc);
            restarted = true;
          }
        };
      }

      const tuner::TuneResult result =
          tuner::tune(evaluator, config.goal, make_ga(config, i), cp);

      FleetClientReport& out = report.clients[static_cast<std::size_t>(i)];
      out.winner = result.best.to_string();
      out.fitness = result.best_fitness;
      out.real_evaluations = evaluator.evaluations_performed();
      out.ga_evaluations = result.ga.evaluations;
    });
  }
  for (std::thread& t : threads) t.join();

  // Re-federation sweep: any client still holding queued publishes (it was
  // degraded when its tune ended) reattaches explicitly, which flushes the
  // queue if a daemon is up. Bounded retries: each attempt is a fresh
  // connection, so an injected accept/write fault on one attempt must not
  // strand the queue for good.
  for (int i = 0; i < config.clients; ++i) {
    ServiceClient& client = *clients[static_cast<std::size_t>(i)];
    for (int attempt = 0; attempt < 8 && client.pending_publishes() > 0; ++attempt) {
      client.reattach();
    }
    FleetClientReport& out = report.clients[static_cast<std::size_t>(i)];
    out.fatally_degraded = client.fatally_degraded();
    out.pending_unflushed = client.pending_publishes();
  }

  {
    std::lock_guard<std::mutex> lock(chain.mu);
    for (auto& d : chain.instances) d->stop();  // graceful: final snapshot
    report.daemon_instances = chain.instances.size();
    for (const auto& d : chain.instances) {
      const DaemonStats s = d->stats();
      report.daemon.connections_accepted += s.connections_accepted;
      report.daemon.connections_dropped += s.connections_dropped;
      report.daemon.hello_rejects += s.hello_rejects;
      report.daemon.requests += s.requests;
      report.daemon.hits += s.hits;
      report.daemon.waits += s.waits;
      report.daemon.leases_granted += s.leases_granted;
      report.daemon.leases_published += s.leases_published;
      report.daemon.leases_reclaimed += s.leases_reclaimed;
      report.daemon.leases_outstanding += s.leases_outstanding;
      report.daemon.publishes_unsolicited += s.publishes_unsolicited;
      report.daemon.publishes_dedup += s.publishes_dedup;
      report.daemon.snapshots_written += s.snapshots_written;
      report.daemon.snapshots_skipped += s.snapshots_skipped;
      report.daemon.imports += s.imports;
      report.daemon.faults_injected += s.faults_injected;
      report.daemon.frames_rejected += s.frames_rejected;
    }
    report.leases_balanced = report.daemon.leases_balanced();
    const tuner::EvalCacheSnapshot final_state = chain.instances.back()->snapshot();
    report.federated_entries = final_state.entries.size();
    report.federated_quarantine = final_state.quarantined.size();
  }

  for (const FleetClientReport& c : report.clients) {
    report.fleet_real_evaluations += c.real_evaluations;
  }

  if (config.verify_solo) {
    // The bit-identity check: the same tune with the daemon out of the
    // picture must land on the same winner — results are a pure function of
    // the signature, so which process computed them cannot matter.
    for (int i = 0; i < config.clients; ++i) {
      tuner::EvalConfig ec = config.eval;
      ec.obs = config.obs;
      ec.backend = nullptr;
      tuner::SuiteEvaluator solo(config.suite, ec);
      const tuner::TuneResult result =
          tuner::tune(solo, config.goal, make_ga(config, i), {});
      FleetClientReport& out = report.clients[static_cast<std::size_t>(i)];
      out.solo_winner = result.best.to_string();
      out.solo_real_evaluations = solo.evaluations_performed();
      out.solo_match = out.solo_winner == out.winner;
      report.solo_real_evaluations += out.solo_real_evaluations;
      report.winners_match = report.winners_match && out.solo_match;
    }
  }

  return report;
}

}  // namespace ith::svc
