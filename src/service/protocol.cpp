#include "service/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"
#include "tuner/eval_cache.hpp"

namespace ith::svc {

namespace {

constexpr char kMagic[8] = {'I', 'T', 'H', 'S', 'V', 'P', '1', '\0'};

/// Frames larger than this are a protocol error, not an allocation: a
/// corrupt size field must fail cleanly. Generous — the largest legitimate
/// payload is a whole-suite result vector, a few KB.
constexpr std::uint64_t kMaxPayload = 64ull << 20;

struct FrameHeader {
  char magic[8];
  std::uint32_t type;
  std::uint32_t reserved;
  std::uint64_t size;
  std::uint64_t checksum;
};
static_assert(sizeof(FrameHeader) == 32, "frame header is wire format");

/// recv() until `n` bytes or failure. Returns n on success, 0 on clean EOF
/// at a frame boundary start, -1 on error/timeout/mid-read EOF (errno set;
/// mid-read EOF reports as error with errno 0). `*consumed` always holds
/// the bytes actually read — the caller needs it to tell a retryable
/// timeout (nothing consumed, stream still frame-aligned) from a
/// desynchronizing one.
ssize_t read_exact(int fd, void* buf, std::size_t n, std::size_t* consumed) {
  std::size_t got = 0;
  *consumed = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, static_cast<char*>(buf) + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return 0;
      errno = 0;
      return -1;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
    *consumed = got;
  }
  return static_cast<ssize_t>(got);
}

bool write_all(int fd, const void* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r =
        ::send(fd, static_cast<const char*>(buf) + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloOk: return "hello_ok";
    case MsgType::kHelloReject: return "hello_reject";
    case MsgType::kEvalAcquire: return "eval_acquire";
    case MsgType::kEvalResult: return "eval_result";
    case MsgType::kEvalLease: return "eval_lease";
    case MsgType::kEvalPublish: return "eval_publish";
    case MsgType::kPublishAck: return "publish_ack";
    case MsgType::kQuarantineQuery: return "quarantine_query";
    case MsgType::kQuarantineRelease: return "quarantine_release";
    case MsgType::kQuarantineState: return "quarantine_state";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kError: return "error";
  }
  return "?";
}

std::uint64_t frame_checksum(const std::string& payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ReadStatus read_frame(int fd, Frame* out, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) *error = what;
    return ReadStatus::kError;
  };

  FrameHeader header;
  std::size_t consumed = 0;
  const ssize_t r = read_exact(fd, &header, sizeof header, &consumed);
  if (r == 0) return ReadStatus::kClosed;
  if (r < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // kTimeout only when nothing was consumed: the stream is still
      // frame-aligned and the read may be retried. A deadline firing
      // mid-header leaves the stream desynchronized — retrying would
      // misparse the remainder as a fresh header — so it must be an error.
      if (consumed == 0) return ReadStatus::kTimeout;
      return fail("torn frame header (timeout mid-frame)");
    }
    return fail(errno == 0 ? "torn frame header (mid-read EOF)" : "frame header read error");
  }
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
    return fail("bad frame magic");
  }
  if (header.size > kMaxPayload) return fail("frame payload size exceeds limit");

  std::string payload(header.size, '\0');
  if (header.size > 0) {
    const ssize_t p = read_exact(fd, payload.data(), payload.size(), &consumed);
    if (p <= 0) {
      // The header is already consumed, so even a zero-byte payload timeout
      // leaves the stream mid-frame: never kTimeout here.
      if (p < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return fail("torn frame payload (timeout mid-frame)");
      }
      return fail("torn frame payload");
    }
  }
  if (frame_checksum(payload) != header.checksum) return fail("frame checksum mismatch");

  out->type = static_cast<MsgType>(header.type);
  out->payload = std::move(payload);
  return ReadStatus::kOk;
}

bool write_frame(int fd, MsgType type, const std::string& payload) {
  FrameHeader header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.type = static_cast<std::uint32_t>(type);
  header.reserved = 0;
  header.size = payload.size();
  header.checksum = frame_checksum(payload);
  if (!write_all(fd, &header, sizeof header)) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

// --- payload codec -------------------------------------------------------

void PayloadWriter::u64(std::uint64_t v) {
  buf_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PayloadWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

std::uint64_t PayloadReader::u64() {
  if (buf_.size() - pos_ < sizeof(std::uint64_t)) throw Error("service frame truncated");
  std::uint64_t v = 0;
  std::memcpy(&v, buf_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::string PayloadReader::str() {
  const std::uint64_t n = u64();
  if (n > buf_.size() - pos_) throw Error("service frame truncated");
  std::string s(buf_.data() + pos_, n);
  pos_ += n;
  return s;
}

std::string PayloadReader::rest() {
  std::string s(buf_.data() + pos_, buf_.size() - pos_);
  pos_ = buf_.size();
  return s;
}

// --- message payloads ----------------------------------------------------

std::string encode_hello(const HelloMsg& m) {
  PayloadWriter w;
  w.u64(m.fingerprint);
  w.u64(m.client_id);
  w.str(m.name);
  return w.bytes();
}

HelloMsg decode_hello(const std::string& payload) {
  PayloadReader r(payload);
  HelloMsg m;
  m.fingerprint = r.u64();
  m.client_id = r.u64();
  m.name = r.str();
  return m;
}

std::string encode_results_msg(const ResultsMsg& m) {
  PayloadWriter w;
  w.u64(m.signature);
  w.u64(m.lease_id);
  return w.bytes() + tuner::encode_results(m.results);
}

ResultsMsg decode_results_msg(const std::string& payload) {
  PayloadReader r(payload);
  ResultsMsg m;
  m.signature = r.u64();
  m.lease_id = r.u64();
  m.results = tuner::decode_results(r.rest());
  return m;
}

std::string encode_u64(std::uint64_t v) {
  PayloadWriter w;
  w.u64(v);
  return w.bytes();
}

std::uint64_t decode_u64(const std::string& payload) {
  PayloadReader r(payload);
  return r.u64();
}

std::string encode_u64_pair(std::uint64_t a, std::uint64_t b) {
  PayloadWriter w;
  w.u64(a);
  w.u64(b);
  return w.bytes();
}

std::pair<std::uint64_t, std::uint64_t> decode_u64_pair(const std::string& payload) {
  PayloadReader r(payload);
  const std::uint64_t a = r.u64();
  const std::uint64_t b = r.u64();
  return {a, b};
}

std::string encode_counters(const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  PayloadWriter w;
  w.u64(counters.size());
  for (const auto& [name, value] : counters) {
    w.str(name);
    w.u64(value);
  }
  return w.bytes();
}

std::vector<std::pair<std::string, std::uint64_t>> decode_counters(const std::string& payload) {
  PayloadReader r(payload);
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    counters.emplace_back(std::move(name), value);
  }
  return counters;
}

}  // namespace ith::svc
