// ServiceClient: the chaos-hardened client side of the evaluation service,
// plugged into a SuiteEvaluator as its EvalBackend.
//
// The client is built so that *no* daemon misbehaviour can make a tuning
// run wrong — only slower. The degradation ladder, top to bottom:
//
//   1. healthy       — acquire() answers from the shared repository, or
//                      returns a lease and the caller computes + publishes.
//   2. retrying      — a request-level failure (kError reply, torn frame,
//                      SO_RCVTIMEO deadline, dead connection) is retried on
//                      a fresh connection, up to max_attempts per request.
//   3. backed off    — after the retry budget, the client *degrades*: the
//                      next 2^k acquire() calls skip the daemon entirely and
//                      evaluate locally (deterministic skip-count backoff,
//                      capped — no wall-clock sleeps, so tests and chaos
//                      replays stay fast and deterministic). Publishes made
//                      while degraded queue up locally.
//   4. re-attached   — when the backoff window expires and a connection
//                      succeeds again, the pending-publish queue is flushed
//                      first (re-federation: everything learned while
//                      degraded lands in the shared repository) before new
//                      acquires resume.
//   5. fatal         — a kHelloReject (configuration fingerprint mismatch)
//                      degrades *permanently*; retrying cannot fix a config
//                      mismatch and mixing results would be wrong.
//
// Correctness under every rung is structural: suite results are a pure
// function of the decision signature under a fixed fingerprint, so a local
// evaluation and a served result are bit-identical by construction, and the
// tuner's winner cannot depend on which rung the client happened to be on.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/context.hpp"
#include "service/protocol.hpp"
#include "tuner/evaluator.hpp"

namespace ith::svc {

struct ClientConfig {
  std::string socket_path;
  /// Must match the daemon's (== SuiteEvaluator::cache_fingerprint()).
  std::uint64_t fingerprint = 0;
  std::uint64_t client_id = 0;
  std::string name;
  /// Per-request deadline (SO_RCVTIMEO). Must be generous enough to cover a
  /// server-side single-flight park behind another client's suite run; a
  /// deadline that fires merely costs this client a duplicate evaluation.
  int request_timeout_ms = 30'000;
  /// Connection + request attempts before degrading for a backoff window.
  int max_attempts = 3;
  /// Cap on the exponential skip-count backoff (2^k local-only acquires,
  /// k capped so a long outage probes the daemon at a bounded period).
  std::uint64_t max_backoff_skips = 64;
  /// Non-owning, may be null. svc.client_* counters.
  obs::Context* obs = nullptr;
};

class ServiceClient final : public tuner::EvalBackend {
 public:
  explicit ServiceClient(ClientConfig config);
  ~ServiceClient() override;

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // EvalBackend: never throws; every failure mode collapses to "compute
  // locally" (acquire -> nullopt / lease 0) or "queue for later" (publish).
  std::optional<std::vector<tuner::BenchmarkResult>> acquire(std::uint64_t sig,
                                                             std::uint64_t* lease) override;
  void publish(std::uint64_t sig, std::uint64_t lease,
               const std::vector<tuner::BenchmarkResult>& results) override;

  /// Asks the daemon whether `sig` is quarantined. nullopt = unreachable.
  std::optional<bool> query_quarantine(std::uint64_t sig);
  /// Asks the daemon to lift the quarantine on `sig` (the cross-process
  /// face of SuiteEvaluator::release_quarantine). Returns whether the
  /// daemon actually released it; nullopt = unreachable.
  std::optional<bool> release_quarantine(std::uint64_t sig);
  /// Daemon-side svc.* counter snapshot. nullopt = unreachable.
  std::optional<std::vector<std::pair<std::string, std::uint64_t>>> stats();

  /// True once a fingerprint mismatch permanently degraded this client.
  bool fatally_degraded() const;
  /// Publishes queued while degraded and not yet re-federated.
  std::size_t pending_publishes() const;
  /// Attempts to connect and flush the pending queue right now, ignoring
  /// any backoff window (used after a known daemon restart).
  bool reattach();

 private:
  struct Pending {
    std::uint64_t signature = 0;
    std::vector<tuner::BenchmarkResult> results;
  };

  /// Ensures a live, hello'd connection; returns false (and counts a
  /// failure) when the daemon is unreachable or rejects the hello. Caller
  /// holds mu_.
  bool ensure_connected_locked();
  /// One request/response round trip on the live connection. Returns
  /// nullopt and tears the connection down on any transport failure.
  /// Caller holds mu_.
  std::optional<Frame> round_trip_locked(MsgType type, const std::string& payload);
  /// Like round_trip_locked but retries on a fresh connection up to
  /// max_attempts, entering backoff when the budget is exhausted.
  std::optional<Frame> request_locked(MsgType type, const std::string& payload);
  void disconnect_locked();
  void note_failure_locked();
  void note_success_locked();
  /// Re-federation: drains the pending-publish queue onto a live
  /// connection. Caller holds mu_ and has already connected.
  void flush_pending_locked();
  bool in_backoff_locked();
  void bump(const char* name, std::uint64_t delta = 1);

  ClientConfig config_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool fatal_ = false;
  int consecutive_failures_ = 0;
  std::uint64_t skip_remaining_ = 0;
  std::vector<Pending> pending_;
};

}  // namespace ith::svc
