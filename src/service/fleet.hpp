// Fleet harness: N concurrent tuning clients federated through one
// evaluation daemon — the end-to-end driver behind tools/fleet_tune and
// bench_json --fleet, and the chaos-fleet CI leg.
//
// Each client is a full chaos_tune-style tune: its own SuiteEvaluator, its
// own GA (seeded base_seed + i so the populations differ), plugged into the
// shared daemon via a ServiceClient backend. The harness can kill the
// daemon after a chosen client-0 generation and restart it one generation
// later, which exercises the whole degradation ladder: in-flight requests
// fail, clients back off and tune standalone, the restarted daemon reloads
// its last periodic snapshot, reconnecting clients flush their pending
// publishes (re-federation), and the run converges with no leaked lease.
//
// The two fleet-level claims the report carries (and CI asserts):
//   - every client's winner is bit-identical to its standalone run
//     (verify_solo reruns each client without a backend and diffs), and
//   - the fleet's total real suite evaluations are strictly fewer than the
//     sum of the standalone runs' — sharing the repository is what the
//     daemon is *for*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "resilience/fault.hpp"
#include "service/daemon.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"
#include "workloads/suite.hpp"

namespace ith::svc {

struct FleetConfig {
  std::vector<wl::Workload> suite;
  /// Shared evaluator configuration (every client must match, or the
  /// daemon's fingerprint check would — correctly — refuse them). The
  /// backend/obs fields are overwritten per client.
  tuner::EvalConfig eval{};
  int clients = 3;
  int generations = 4;
  int population = 6;
  tuner::Goal goal = tuner::Goal::kTotal;
  /// Client i's GA runs with seed base_seed + i * seed_stride. Stride 0
  /// (the default) is the canonical tuning-as-a-service deployment: every
  /// client runs the *same* campaign, so the shared repository (and the
  /// cross-process single-flight) collapses N clients' suite runs onto
  /// one set of real evaluations. A non-zero stride models a heterogeneous
  /// fleet; sharing then comes only from signature-space collisions.
  std::uint64_t base_seed = 7;
  std::uint64_t seed_stride = 0;
  std::string socket_path = "fleet.sock";
  /// Daemon persistence (ITHEVC1). Empty = in-memory only; the chaos leg
  /// needs it, or there is nothing for the restarted daemon to reload.
  std::string snapshot_path;
  std::uint64_t snapshot_every = 4;
  /// Foreign ITHEVC1 snapshots federated into the daemon before the run.
  std::vector<std::string> import_paths;
  /// Daemon-side infrastructure faults (the kSvc* sites).
  resilience::FaultPlan service_faults{};
  /// Kill the daemon right after client 0 finishes this generation
  /// (-1 = never). With restart_daemon, a fresh daemon (same socket, same
  /// snapshot file) starts one generation later.
  int kill_daemon_at = -1;
  bool restart_daemon = true;
  /// Rerun every client standalone (no backend) and diff the winners.
  bool verify_solo = false;
  /// Shared by the daemon and every client, so svc.* counters accumulate
  /// fleet-wide. Non-owning, may be null.
  obs::Context* obs = nullptr;
  int request_timeout_ms = 30'000;
};

struct FleetClientReport {
  std::string winner;
  double fitness = 0.0;
  std::uint64_t real_evaluations = 0;
  std::uint64_t ga_evaluations = 0;
  bool fatally_degraded = false;
  std::size_t pending_unflushed = 0;  ///< publishes never re-federated
  // verify_solo only:
  std::string solo_winner;
  std::uint64_t solo_real_evaluations = 0;
  bool solo_match = true;
};

struct FleetReport {
  std::vector<FleetClientReport> clients;
  std::uint64_t fleet_real_evaluations = 0;  ///< sum over clients
  std::uint64_t solo_real_evaluations = 0;   ///< sum; 0 unless verify_solo
  /// Daemon stats summed over every instance this run started (2 when the
  /// chaos kill+restart fired, else 1).
  DaemonStats daemon;
  std::size_t daemon_instances = 0;
  bool leases_balanced = false;
  bool winners_match = true;  ///< all solo_match (vacuously true otherwise)
  std::size_t federated_entries = 0;   ///< final repository size
  std::size_t federated_quarantine = 0;
  std::uint64_t fingerprint = 0;
};

FleetReport run_fleet(const FleetConfig& config);

}  // namespace ith::svc
