// OnlineController: decides whether a candidate parameter vector is worth
// installing on the serving fleet.
//
// Candidates come from a shadow GA running over the *batch* variants of the
// serving workloads (same handler methods, LCG-generated requests — see
// workloads.hpp), evaluated through a SuiteEvaluator so all the offline
// machinery applies unchanged: decision-signature collapse, guarded
// evaluation, retry-then-quarantine. On top of that the controller adds the
// serving-specific gates, in order:
//
//   1. signature skip   — the candidate's decision signature equals the
//                         installed one: the optimizer would compile
//                         identical code, so an install would pay a full
//                         recompilation storm for a guaranteed no-op.
//   2. quarantine retry — a quarantined signature gets ONE release+re-run
//                         (release_quarantine); without this, a seed genome
//                         quarantined by a transient fault pins every later
//                         retune of that genome to the penalty result
//                         forever (starvation — the offline GA just mutates
//                         away, but a controller keeps proposing the
//                         incumbent's neighborhood).
//   3. fault gate       — any benchmark with a non-ok guarded outcome
//                         rejects the candidate: never install a genome the
//                         shadow run could not complete.
//   4. SLO gate         — reject when the predicted post-install worst-case
//                         request (recompilation storm + one steady-state
//                         request) exceeds the SLO envelope.
//   5. improvement gate — install only on a strict fitness improvement over
//                         the currently-installed parameters.
#pragma once

#include <cstdint>
#include <set>

#include "heuristics/inline_params.hpp"
#include "obs/context.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"

namespace ith::serving {

struct OnlineTunerConfig {
  tuner::Goal goal = tuner::Goal::kBalance;
  /// Request-latency envelope in simulated cycles; 0 disables the SLO gate.
  std::uint64_t slo_cycles = 0;
  /// Enables gate 2 (one release+re-run per quarantined signature).
  bool retry_quarantined = true;
  obs::Context* obs = nullptr;
};

enum class RetuneAction : std::uint8_t {
  kInstalled,
  kSkippedSignature,
  kSkippedWorse,
  kRejectedFault,
  kRejectedSlo,
};

const char* retune_action_name(RetuneAction a);

struct RetuneDecision {
  RetuneAction action = RetuneAction::kSkippedSignature;
  tuner::SuiteEvaluator::Signature signature = 0;
  /// Candidate's normalized suite fitness (only when the shadow run
  /// happened, i.e. not kSkippedSignature).
  double fitness = 0.0;
  /// Predicted worst-case request after an install: recompilation storm
  /// plus one steady-state request, max over workloads.
  std::uint64_t predicted_worst = 0;
  bool released_quarantine = false;
};

class OnlineController {
 public:
  struct Stats {
    std::size_t considered = 0;
    std::size_t installed = 0;
    std::size_t skipped_signature = 0;
    std::size_t skipped_worse = 0;
    std::size_t rejected_fault = 0;
    std::size_t rejected_slo = 0;
    std::size_t quarantine_released = 0;
  };

  /// `shadow` must evaluate the kBatch serving suite and outlive the
  /// controller. The initial parameters are evaluated immediately (they are
  /// the improvement gate's baseline) — with fault injection active this can
  /// itself quarantine; consider() then applies the retry path.
  OnlineController(tuner::SuiteEvaluator& shadow, heur::InlineParams initial,
                   OnlineTunerConfig config);

  /// Runs the five gates over one candidate. Never throws on candidate
  /// failures (they are data). On kInstalled the controller's installed
  /// state advances; physically swapping the fleet's VMs is the driver's
  /// job (rollout policy).
  RetuneDecision consider(const heur::InlineParams& candidate);

  const heur::InlineParams& installed() const { return installed_; }
  double installed_fitness() const { return installed_fitness_; }
  tuner::SuiteEvaluator::Signature installed_signature() const { return installed_sig_; }
  const Stats& stats() const { return stats_; }

 private:
  double fitness_of(const tuner::SuiteEvaluator::Results& results);
  /// Max over workloads of (total - running) + ceil(running / kBatchRequests).
  static std::uint64_t predict_worst(const std::vector<tuner::BenchmarkResult>& results);

  tuner::SuiteEvaluator& shadow_;
  OnlineTunerConfig config_;
  heur::InlineParams installed_;
  tuner::SuiteEvaluator::Signature installed_sig_ = 0;
  double installed_fitness_ = 0.0;
  /// Signatures already granted their one quarantine release.
  std::set<tuner::SuiteEvaluator::Signature> released_;
  Stats stats_;
};

}  // namespace ith::serving
