// ServerInstance: one long-lived VM serving requests.
//
// The batch pipeline builds a fresh VirtualMachine per evaluation; the
// serving tier inverts that. An instance owns a persistent VM and executes
// exactly one request per run(1) call, so compiled code, profile counters
// and the instruction cache stay warm across requests, state built by the
// program's setup() persists in the globals (VmConfig::iteration_input
// suppresses the per-iteration reset), and a request that trips method
// promotion pays that recompilation inside its own latency — the
// tail-latency coupling this tier exists to measure.
//
// install() swaps the inlining parameters by rebuilding the VM: all code is
// dropped and the next requests absorb the recompilation storm plus a
// setup() re-run, exactly like a JIT flushing its code cache on a heuristic
// change. serve() never throws: a request that faults (injected fault,
// budget trip, runtime trap) reports ok=false and the instance rebuilds
// itself so later requests see a healthy VM.
#pragma once

#include <cstdint>
#include <memory>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/machine.hpp"
#include "vm/vm.hpp"

namespace ith::serving {

/// One request of the open-loop arrival stream.
struct Request {
  std::uint64_t id = 0;       ///< global sequence number (stable record slot)
  std::uint64_t arrival = 0;  ///< arrival time, simulated cycles
  std::int64_t key = 0;
  std::int64_t op = 0;
  std::int64_t size = 0;
};

/// What one serve() call measured.
struct ServeResult {
  /// Simulated cycles the request consumed (execution + any compilation it
  /// triggered). Meaningful only when ok.
  std::uint64_t service_cycles = 0;
  bool ok = false;
  resilience::EvalOutcome outcome{};
};

struct InstanceOptions {
  vm::Scenario scenario = vm::Scenario::kAdapt;
  rt::InterpreterOptions interp{};
  /// Per-request resource envelope (0 = unlimited); enforced by the VM.
  resilience::RunBudget budget{};
  /// Fault plan + per-instance key component; each request additionally
  /// mixes its id so every request sees an independent draw.
  const resilience::FaultPlan* faults = nullptr;
  std::uint64_t fault_key = 0;
  obs::Context* obs = nullptr;
};

class ServerInstance {
 public:
  /// `prog` must outlive the instance (the machine model is copied).
  ServerInstance(const bc::Program& prog, const rt::MachineModel& machine,
                 heur::InlineParams params, InstanceOptions opts);

  /// Serves one request on the persistent VM. Never throws; on failure the
  /// VM is rebuilt (fresh code + globals) so the next request starts clean.
  ServeResult serve(const Request& req);

  /// Installs new inlining parameters by rebuilding the VM. The next
  /// requests pay the full recompilation storm. Counted in installs().
  void install(const heur::InlineParams& params);

  const heur::InlineParams& params() const { return params_; }
  std::size_t installs() const { return installs_; }
  std::size_t requests_served() const { return served_; }
  std::size_t faults_seen() const { return faults_; }

  /// Next time this instance is free, simulated cycles. The driver advances
  /// it: start = max(arrival, clock), clock = start + service.
  std::uint64_t clock = 0;

 private:
  void rebuild();

  const bc::Program& prog_;
  rt::MachineModel machine_;
  heur::InlineParams params_;
  InstanceOptions opts_;
  std::unique_ptr<heur::JikesHeuristic> heuristic_;
  std::unique_ptr<vm::VirtualMachine> vm_;
  // Request-parameter mailbox read by the iteration_input hook.
  std::int64_t in_key_ = 0;
  std::int64_t in_op_ = 0;
  std::int64_t in_size_ = 0;
  std::size_t installs_ = 0;
  std::size_t served_ = 0;
  std::size_t faults_ = 0;
};

}  // namespace ith::serving
