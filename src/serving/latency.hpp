// LatencyDigest: exact per-request latency percentiles.
//
// The serving tier's latencies are *simulated cycles* — deterministic
// integers, a few thousand to a few million per request — so there is no
// reason to pay an approximation (t-digest, HDR buckets) anywhere: the
// digest simply keeps every sample and sorts lazily. Quantiles are exact
// nearest-rank, merge is concatenation, and both are associative and
// order-independent, which is what lets per-instance shards be merged into
// one suite-wide digest regardless of how the thread pool interleaved the
// instances (tested by tests/serving/latency_digest_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ith::serving {

class LatencyDigest {
 public:
  void add(std::uint64_t cycles);

  /// Absorbs every sample of `other`. Associative and commutative up to
  /// sample multiset equality: quantiles of (a+b)+c equal a+(b+c) for any
  /// grouping, so worker shards can merge in any order.
  void merge(const LatencyDigest& other);

  /// Exact nearest-rank quantile: the ceil(q*n)-th smallest sample (q in
  /// [0,1]; q=0 yields the minimum, q=1 the maximum). Requires count() > 0.
  std::uint64_t quantile(double q) const;

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }

  std::size_t count() const { return samples_.size(); }
  std::uint64_t min() const { return quantile(0.0); }
  std::uint64_t max() const { return quantile(1.0); }
  /// Arithmetic mean, rounded down. Requires count() > 0.
  std::uint64_t mean() const;
  /// Sum of all samples (exact; throws ith::Error on overflow).
  std::uint64_t total() const { return total_; }

  /// All samples in ascending order (sorts on first access after a mutation).
  const std::vector<std::uint64_t>& sorted_samples() const;

 private:
  mutable std::vector<std::uint64_t> samples_;
  mutable bool sorted_ = true;
  std::uint64_t total_ = 0;
};

}  // namespace ith::serving
