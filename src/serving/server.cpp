#include "serving/server.hpp"

#include <utility>

#include "serving/workloads.hpp"

namespace ith::serving {

ServerInstance::ServerInstance(const bc::Program& prog, const rt::MachineModel& machine,
                               heur::InlineParams params, InstanceOptions opts)
    : prog_(prog), machine_(machine), params_(params), opts_(opts) {
  rebuild();
}

void ServerInstance::rebuild() {
  heuristic_ = std::make_unique<heur::JikesHeuristic>(params_);
  vm::VmConfig cfg;
  cfg.scenario = opts_.scenario;
  cfg.interp_options = opts_.interp;
  cfg.obs = opts_.obs;
  cfg.budget = opts_.budget;
  cfg.faults = opts_.faults;
  // The hook reads the mailbox this instance's serve() fills; `this` is
  // stable because the driver holds instances by unique_ptr.
  cfg.iteration_input = [this](int /*iteration*/, std::vector<std::int64_t>& globals) {
    globals[kSlotKey] = in_key_;
    globals[kSlotOp] = in_op_;
    globals[kSlotSize] = in_size_;
  };
  vm_ = std::make_unique<vm::VirtualMachine>(prog_, machine_, *heuristic_, cfg);
}

ServeResult ServerInstance::serve(const Request& req) {
  in_key_ = req.key;
  in_op_ = req.op;
  in_size_ = req.size;
  vm_->set_fault_key(resilience::mix_keys(opts_.fault_key, req.id));
  ++served_;
  ServeResult r;
  try {
    const vm::RunResult run = vm_->run(1);
    r.service_cycles = run.total_cycles;
    r.ok = true;
    r.outcome = resilience::EvalOutcome::make_ok();
  } catch (...) {
    r.outcome = resilience::classify_current_exception();
    r.ok = false;
    ++faults_;
    if (opts_.obs != nullptr) opts_.obs->counter("serve.request_faults").add(1);
    // A faulted VM may hold partial state (half-run setup, tripped budget
    // bookkeeping); rebuild so the fault stays confined to this request.
    rebuild();
  }
  return r;
}

void ServerInstance::install(const heur::InlineParams& params) {
  params_ = params;
  rebuild();
  ++installs_;
  if (opts_.obs != nullptr) opts_.obs->counter("serve.installs").add(1);
}

}  // namespace ith::serving
