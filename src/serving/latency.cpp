#include "serving/latency.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace ith::serving {

void LatencyDigest::add(std::uint64_t cycles) {
  samples_.push_back(cycles);
  sorted_ = samples_.size() <= 1;
  ITH_CHECK(total_ + cycles >= total_, "latency digest total overflow");
  total_ += cycles;
}

void LatencyDigest::merge(const LatencyDigest& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  ITH_CHECK(total_ + other.total_ >= total_, "latency digest total overflow");
  total_ += other.total_;
}

const std::vector<std::uint64_t>& LatencyDigest::sorted_samples() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

std::uint64_t LatencyDigest::quantile(double q) const {
  ITH_CHECK(!samples_.empty(), "quantile of an empty digest");
  ITH_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  const std::vector<std::uint64_t>& s = sorted_samples();
  // Nearest rank: the smallest sample with at least q*n samples <= it.
  const double exact = q * static_cast<double>(s.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(exact));
  if (rank == 0) rank = 1;
  if (rank > s.size()) rank = s.size();
  return s[rank - 1];
}

std::uint64_t LatencyDigest::mean() const {
  ITH_CHECK(!samples_.empty(), "mean of an empty digest");
  return total_ / samples_.size();
}

}  // namespace ith::serving
