// Serving workload programs. See workloads.hpp for the model each one
// follows. Both modes of a workload build the shared request-handling
// methods first (identical builder-call order, same seeded RNG, hence
// bit-identical bodies) and differ only in main.

#include "serving/workloads.hpp"

#include <functional>

#include "bytecode/builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/shapes.hpp"

namespace ith::serving {

namespace {

using wl::emit_counted_loop;
using wl::emit_expr;
using wl::make_chain;
using wl::make_cond_chain;
using wl::make_dispatcher;
using wl::make_leaf;
using wl::make_mid;

/// Table/dictionary slots each program keeps at kSlotHeap.
constexpr std::int64_t kTable = 64;

/// In-bytecode LCG constants for kBatch pseudo-request generation.
constexpr std::int64_t kLcgMul = 1103515245;
constexpr std::int64_t kLcgAdd = 12345;
constexpr std::int64_t kLcgMod = 1073741824;  // 2^30 (const_ immediates are 32-bit signed)

/// setup(): fills the program's table through `seed_fn` (one call per slot,
/// warming its profile) and raises the setup flag. Returns the table size.
void emit_setup(bc::ProgramBuilder& pb, const std::string& seed_fn) {
  auto& s = pb.method("setup", 0, 2);
  emit_counted_loop(s, "fill", 0, kTable, [&] {
    s.load(0).const_(kSlotHeap).add();  // index
    s.load(0).call(seed_fn, 1);         // value
    s.gstore();
  });
  s.const_(kSlotSetup).const_(1).gstore();
  s.ret_const(kTable);
}

/// kServe main: lazy setup, then one request from the globals ABI through
/// `handler` (which takes the listed global slots as arguments).
void emit_serve_main(bc::ProgramBuilder& pb, const std::string& handler,
                     const std::vector<int>& arg_slots) {
  auto& m = pb.method("main", 0, 1);
  m.const_(kSlotSetup).gload().jnz("ready");
  m.call("setup", 0).pop();
  m.label("ready");
  for (const int slot : arg_slots) m.const_(slot).gload();
  m.call(handler, static_cast<int>(arg_slots.size())).store(0);
  m.const_(kSlotResult).load(0).gstore();
  m.load(0).halt();
  pb.entry("main");
}

/// kBatch main: eager setup, then kBatchRequests pseudo-requests from an
/// in-bytecode LCG. `emit_request` receives the method builder with the
/// fresh LCG value in local 2 and must leave the handler's result on the
/// stack.
template <typename RequestFn>
void emit_batch_main(bc::ProgramBuilder& pb, std::int64_t lcg_seed, RequestFn&& emit_request) {
  auto& m = pb.method("main", 0, 3);
  m.call("setup", 0).pop();
  m.const_(0).store(1);
  m.const_(lcg_seed).store(2);
  emit_counted_loop(m, "req", 0, kBatchRequests, [&] {
    m.load(2).const_(kLcgMul).mul().const_(kLcgAdd).add().const_(kLcgMod).mod().store(2);
    emit_request(m);
    m.load(1).add().store(1);
  });
  m.load(1).halt();
  pb.entry("main");
}

// kv_server: hash + bounded probe over the global table; rare whole-table
// scan. Key-value lookups are call-bound through tiny hash/compare leaves,
// so CALLEE/ALWAYS_INLINE sizes and the probe chain depth all matter.
bc::Program build_kv_server(ServingMode mode) {
  Pcg32 rng(0x5E11F00Du, 17);
  bc::ProgramBuilder pb(mode == ServingMode::kServe ? "kv_server" : "kv_server.batch", 256);

  make_leaf(pb, "hash_leaf", 2, 9, rng);
  make_chain(pb, "hash", /*levels=*/3, 2, 8, "hash_leaf", rng);  // hash_0
  make_leaf(pb, "probe_cmp", 2, 7, rng);
  make_leaf(pb, "seed_val", 1, 8, rng);
  make_chain(pb, "rebal", /*levels=*/2, 2, 10, "probe_cmp", rng);  // rebal_0

  // heavy_scan(key, h): the rare whole-table walk behind the latency tail.
  auto& hs = pb.method("heavy_scan", 2, 4);
  hs.const_(0).store(3);
  emit_counted_loop(hs, "hs", 2, 48, [&] {
    hs.load(1).load(2).add().const_(kTable).mod().const_(kSlotHeap).add().gload();
    hs.load(0).call("probe_cmp", 2);
    hs.load(3).add().store(3);
  });
  hs.load(3).ret();

  // kv_get(key, salt): hash chain, probe walk of 1 + key%7 slots, heavy
  // scan on every 97th key.
  auto& g = pb.method("kv_get", 2, 6);
  g.load(0).load(1).call("hash_0", 2);
  g.const_(kTable).mod().const_(kTable).add().const_(kTable).mod().store(2);
  g.const_(1).load(0).const_(7).mod().add().store(5);
  g.const_(0).store(4);
  g.const_(0).store(3);
  g.label("probe");
  g.load(3).load(5).cmplt().jz("probe_done");
  g.load(2).load(3).add().const_(kTable).mod().const_(kSlotHeap).add().gload();
  g.load(0).call("probe_cmp", 2).load(4).add().store(4);
  g.load(3).const_(1).add().store(3);
  g.jmp("probe");
  g.label("probe_done");
  g.load(0).const_(97).mod().jnz("skip_heavy");
  g.load(0).load(2).call("heavy_scan", 2).load(4).add().store(4);
  g.label("skip_heavy");
  g.load(4).ret();

  // kv_put(key, salt): hash, table store, rebalance chain.
  auto& p = pb.method("kv_put", 2, 4);
  p.load(0).load(1).call("hash_0", 2);
  p.const_(kTable).mod().const_(kTable).add().const_(kTable).mod().store(2);
  p.load(2).const_(kSlotHeap).add().load(0).gstore();
  p.load(0).load(2).call("rebal_0", 2).store(3);
  p.load(3).load(2).add().ret();

  // handle(key, op): op parity picks get vs put.
  auto& h = pb.method("handle", 2, 2);
  h.load(1).const_(2).mod().jnz("do_put");
  h.load(0).load(1).call("kv_get", 2).ret();
  h.label("do_put");
  h.load(0).load(1).call("kv_put", 2).ret();

  emit_setup(pb, "seed_val");
  if (mode == ServingMode::kServe) {
    emit_serve_main(pb, "handle", {kSlotKey, kSlotOp});
  } else {
    emit_batch_main(pb, 987654321, [](bc::MethodBuilder& m) {
      m.load(2).const_(4096).mod();  // key
      m.load(2);                     // op (parity taken inside handle)
      m.call("handle", 2);
    });
  }
  return pb.build();
}

// query_dispatch: two-level plan dispatch to six plan bodies. Scan plans
// loop filter+project leaves, join plans walk a probe chain per row,
// aggregate plans feed a conditional chain whose call frequency decays with
// depth (the shape that punishes over-deep inlining).
bc::Program build_query_dispatch(ServingMode mode) {
  Pcg32 rng(0xD15AA7C4u, 19);
  bc::ProgramBuilder pb(mode == ServingMode::kServe ? "query_dispatch" : "query_dispatch.batch",
                        256);

  make_leaf(pb, "filt", 2, 8, rng);
  make_leaf(pb, "proj", 2, 7, rng);
  make_leaf(pb, "agg_leaf", 2, 6, rng);
  make_leaf(pb, "cat_val", 1, 7, rng);
  make_chain(pb, "joinp", /*levels=*/3, 2, 9, "filt", rng);            // joinp_0
  make_cond_chain(pb, "agg", /*levels=*/4, 8, "agg_leaf", 2, rng);     // agg_0

  // Every plan takes (plan, packed): packed = key*32 + rows-seed. The row
  // loop length is the per-request cost knob; `inner` is the per-row body.
  const auto make_plan = [&](const std::string& name, int extra,
                             const std::function<void(bc::MethodBuilder&)>& inner) {
    auto& q = pb.method(name, 2, 6);
    q.const_(2).load(1).const_(14).mod().add().store(2);  // rows = 2 + packed%14
    q.load(1).const_(32).div().store(5);                  // key
    q.const_(0).store(4);
    q.const_(0).store(3);
    q.label("rows");
    q.load(3).load(2).cmplt().jz("done");
    inner(q);
    q.load(4).add().store(4);
    emit_expr(q, rng, {3, 4, 5}, extra, true);
    q.load(4).add().store(4);
    q.load(3).const_(1).add().store(3);
    q.jmp("rows");
    q.label("done");
    q.load(4).ret();
  };
  make_plan("plan_scan_a", 6, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(0).call("filt", 2);
    q.load(5).call("proj", 2);
  });
  make_plan("plan_scan_b", 10, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(3).call("filt", 2);
    q.load(0).call("proj", 2);
  });
  make_plan("plan_join_a", 5, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(0).call("joinp_0", 2);
  });
  make_plan("plan_join_b", 8, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(4).call("joinp_0", 2);
    q.load(5).call("proj", 2);
  });
  make_plan("plan_agg_a", 4, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(2).call("agg_0", 2);
  });
  make_plan("plan_agg_b", 7, [](bc::MethodBuilder& q) {
    q.load(5).load(3).add().load(0).call("agg_0", 2);
    q.load(3).call("filt", 2);
  });
  make_dispatcher(pb, "plan_dispatch",
                  {"plan_scan_a", "plan_scan_b", "plan_join_a", "plan_join_b", "plan_agg_a",
                   "plan_agg_b"});

  // query_req(key, plan, size): packs the request and dispatches.
  auto& r = pb.method("query_req", 3, 4);
  r.load(1);                                                       // plan selector
  r.load(0).const_(4096).mod().const_(32).mul();                   // key*32
  r.load(2).const_(32).mod().add();                                // + size%32
  r.call("plan_dispatch", 2).ret();

  emit_setup(pb, "cat_val");
  if (mode == ServingMode::kServe) {
    emit_serve_main(pb, "query_req", {kSlotKey, kSlotOp, kSlotSize});
  } else {
    emit_batch_main(pb, 24680246, [](bc::MethodBuilder& m) {
      m.load(2);                       // key
      m.load(2).const_(4).div();       // plan
      m.load(2).const_(32).div();      // size
      m.call("query_req", 3);
    });
  }
  return pb.build();
}

// text_pipe: staged pipeline (tokenize -> lookup -> score) over a
// per-request sentence length, with occasional very long sentences.
bc::Program build_text_pipe(ServingMode mode) {
  Pcg32 rng(0x7E87B19Eu, 23);
  bc::ProgramBuilder pb(mode == ServingMode::kServe ? "text_pipe" : "text_pipe.batch", 256);

  make_leaf(pb, "n1", 1, 6, rng);
  make_leaf(pb, "n2", 1, 5, rng);
  make_leaf(pb, "emit_tok", 2, 7, rng);
  make_leaf(pb, "dict_val", 1, 6, rng);
  make_mid(pb, "tokenize", 2, 14, 3, {"n1", "n2"}, rng);
  make_cond_chain(pb, "lookup", /*levels=*/4, 9, "emit_tok", 2, rng);  // lookup_0
  make_chain(pb, "score", /*levels=*/2, 2, 8, "emit_tok", rng);        // score_0

  // sentence(key, len): the per-token pipeline loop.
  auto& s = pb.method("sentence", 2, 6);
  s.const_(0).store(3);
  s.const_(0).store(2);
  s.label("tok");
  s.load(2).load(1).cmplt().jz("done");
  // tok = (key*31 + i*7 + 3) mod 211
  s.load(0).const_(31).mul().load(2).const_(7).mul().add().const_(3).add().const_(211).mod();
  s.store(4);
  s.load(4).load(2).call("tokenize", 2).store(5);
  s.load(5).load(4).call("lookup_0", 2).store(5);
  s.load(5).load(4).call("score_0", 2).load(3).add().store(3);
  s.load(4).const_(kTable).mod().const_(kSlotHeap).add().gload().load(3).add().store(3);
  s.load(2).const_(1).add().store(2);
  s.jmp("tok");
  s.label("done");
  s.load(3).ret();

  // text_req(key, size): sentence length 4 + size%24, 64 for every 89th key.
  auto& r = pb.method("text_req", 2, 3);
  r.const_(4).load(1).const_(24).mod().add().store(2);
  r.load(0).const_(89).mod().jnz("not_heavy");
  r.const_(64).store(2);
  r.label("not_heavy");
  r.load(0).load(2).call("sentence", 2).ret();

  emit_setup(pb, "dict_val");
  if (mode == ServingMode::kServe) {
    emit_serve_main(pb, "text_req", {kSlotKey, kSlotSize});
  } else {
    emit_batch_main(pb, 13579135, [](bc::MethodBuilder& m) {
      m.load(2).const_(8192).mod();    // key
      m.load(2).const_(32).div();      // size
      m.call("text_req", 2);
    });
  }
  return pb.build();
}

}  // namespace

const std::vector<std::string>& serving_names() {
  static const std::vector<std::string> kNames = {"kv_server", "query_dispatch", "text_pipe"};
  return kNames;
}

wl::Workload make_serving_workload(const std::string& name, ServingMode mode) {
  if (name == "kv_server") {
    return {"kv_server", "masstree-shaped key-value store (hash + probe chain, rare scans)",
            "serving", build_kv_server(mode)};
  }
  if (name == "query_dispatch") {
    return {"query_dispatch", "shore-shaped query-plan dispatch (6 plans, per-request rows)",
            "serving", build_query_dispatch(mode)};
  }
  if (name == "text_pipe") {
    return {"text_pipe", "moses-shaped text pipeline (tokenize/lookup/score per token)",
            "serving", build_text_pipe(mode)};
  }
  throw Error("unknown serving workload: " + name);
}

std::vector<wl::Workload> make_serving_suite(ServingMode mode) {
  std::vector<wl::Workload> suite;
  for (const std::string& n : serving_names()) suite.push_back(make_serving_workload(n, mode));
  return suite;
}

}  // namespace ith::serving
