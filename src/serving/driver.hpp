// Serving driver: a deterministic discrete-event simulation of a
// latency-critical serving tier, with optional online re-tuning.
//
// Time is simulated cycles throughout. An open-loop arrival process
// (seeded Pcg32: integer gaps uniform in [g/2, 3g/2) around the calibrated
// mean gap) generates requests that are dispatched round-robin to N
// ServerInstances. Each instance is strictly FIFO: a request starts at
// max(arrival, instance clock) and advances the clock by its service time.
// Instances are independent, so the epoch loop runs them on a ThreadPool
// with records placed by request id — the per-request latency vector is
// bit-identical regardless of thread count or scheduling (the
// latency-regression tier pins this, across both interpreter engines).
//
// Online re-tuning interleaves a shadow GA (tuner::tune over the kBatch
// suite) with serving epochs: after each GA generation the epoch boundary
// runs OnlineController::consider on that generation's best genome and the
// rollout policy swaps instance VMs (the recompilation storm lands inside
// the next epoch's latencies). Because the shadow GA *is* tune(), the final
// installed genome converges to the offline winner by construction — the
// convergence test re-derives the winner independently and compares
// decision signatures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "heuristics/inline_params.hpp"
#include "obs/context.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "serving/latency.hpp"
#include "serving/online_tuner.hpp"
#include "serving/server.hpp"
#include "tuner/fitness.hpp"
#include "vm/vm.hpp"

namespace ith::serving {

enum class Rollout : std::uint8_t {
  /// Install on every instance at the decision: a fleet-wide recompilation
  /// storm (the worst case the SLO gate must absorb).
  kAll,
  /// Install on at most half the fleet per epoch boundary; the rest follow
  /// at later boundaries, so part of the fleet always serves warm code.
  kRolling,
};

const char* rollout_name(Rollout r);

struct ServingConfig {
  /// Master seed: arrival process and request parameters derive from it.
  std::uint64_t seed = 1;
  int instances = 4;
  /// Measured requests per workload (the latency vector's length).
  std::size_t requests = 1024;
  /// Offered load as a fraction of calibrated fleet capacity (1.0 = mean
  /// arrival rate equals mean service rate).
  double load = 0.7;
  /// Requests used to calibrate mean service time (scratch instance,
  /// faults suppressed) before the measured run.
  std::size_t calibration_requests = 64;
  int keyspace = 4096;

  vm::Scenario scenario = vm::Scenario::kAdapt;
  rt::MachineModel machine = rt::pentium4_model();
  rt::EngineKind engine = rt::EngineKind::kFast;
  heur::InlineParams initial = heur::default_params();
  /// Per-request envelope forwarded to every instance (0 = unlimited).
  resilience::RunBudget request_budget{};

  bool online_tune = false;
  tuner::Goal goal = tuner::Goal::kBalance;
  int ga_generations = 6;
  int ga_population = 12;
  std::uint64_t ga_seed = 7;
  Rollout rollout = Rollout::kRolling;
  /// SLO = slo_multiplier * calibrated mean service time; also the latency
  /// charged to a faulted request. 0 disables the SLO gate and violation
  /// accounting.
  double slo_multiplier = 32.0;
  bool retry_quarantined = true;

  /// Fault plan applied to serving instances AND shadow evaluations
  /// (calibration always runs fault-free). Non-owning, may be null.
  const resilience::FaultPlan* faults = nullptr;
  std::uint64_t fault_seed = 0;
  std::size_t threads = 0;  ///< serving pool; 0 = hardware concurrency
  obs::Context* obs = nullptr;
};

/// One served request, in request-id order.
struct RequestRecord {
  std::uint64_t arrival = 0;
  std::uint64_t start = 0;    ///< max(arrival, instance clock at dequeue)
  std::uint64_t service = 0;  ///< cycles on the instance (penalty if !ok)
  std::uint64_t latency = 0;  ///< (start - arrival) + service
  int instance = 0;
  bool ok = true;
};

struct WorkloadServeReport {
  std::string name;
  LatencyDigest digest;  ///< all measured latencies
  std::vector<RequestRecord> records;

  std::uint64_t calibrated_service = 0;  ///< mean cycles/request at calibration
  std::uint64_t mean_gap = 0;            ///< mean inter-arrival gap used
  std::uint64_t slo_cycles = 0;          ///< 0 = no SLO
  std::size_t slo_violations = 0;
  std::size_t faulted_requests = 0;
  std::size_t installs = 0;  ///< VM swaps across the fleet (excl. fault rebuilds)

  heur::InlineParams final_params;
  std::uint64_t final_signature = 0;  ///< batch-suite decision signature
  double final_fitness = 1.0;         ///< normalized; 1.0 = default params
  OnlineController::Stats retune;     ///< zero when online_tune is off
};

struct ServeReport {
  std::vector<WorkloadServeReport> workloads;
};

/// Serves one workload by name (see workloads.hpp). Deterministic in every
/// field for a fixed config, including across engines and thread counts.
WorkloadServeReport serve_workload(const std::string& name, const ServingConfig& config);

/// All serving workloads in serving_names() order.
ServeReport run_serving(const ServingConfig& config);

}  // namespace ith::serving
