#include "serving/driver.hpp"

#include <algorithm>
#include <utility>

#include "ga/ga.hpp"
#include "serving/workloads.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/tuner.hpp"

namespace ith::serving {

const char* rollout_name(Rollout r) {
  switch (r) {
    case Rollout::kAll: return "all";
    case Rollout::kRolling: return "rolling";
  }
  return "?";
}

namespace {

/// Per-request parameter draws. One dedicated stream per workload keeps the
/// request sequence independent of everything else the seed feeds.
struct RequestStream {
  Pcg32 rng;
  int keyspace;

  Request next(std::uint64_t id, std::uint64_t arrival) {
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.key = rng.bounded(static_cast<std::uint32_t>(keyspace));
    r.op = rng.bounded(1u << 16);
    r.size = rng.bounded(1u << 10);
    return r;
  }
};

struct Fleet {
  std::vector<std::unique_ptr<ServerInstance>> instances;
  /// Parameters the fleet should converge to; rolling installs lag behind.
  heur::InlineParams target;

  /// Brings at most `limit` stale instances in line with `target`.
  /// Returns the number of installs performed.
  std::size_t roll(std::size_t limit) {
    std::size_t done = 0;
    for (auto& inst : instances) {
      if (done >= limit) break;
      if (!(inst->params() == target)) {
        inst->install(target);
        ++done;
      }
    }
    return done;
  }
};

/// Serves records[lo, hi) on the fleet: round-robin dispatch by id, strictly
/// FIFO per instance, instances in parallel. `requests` and `records` are
/// indexed by request id.
void serve_epoch(Fleet& fleet, ThreadPool& pool, const std::vector<Request>& requests,
                 std::vector<RequestRecord>& records, std::size_t lo, std::size_t hi,
                 std::uint64_t penalty_cycles) {
  const std::size_t n = fleet.instances.size();
  pool.parallel_for(n, [&](std::size_t i) {
    ServerInstance& inst = *fleet.instances[i];
    for (std::size_t id = lo + (n + i - lo % n) % n; id < hi; id += n) {
      const Request& req = requests[id];
      const std::uint64_t start = std::max(req.arrival, inst.clock);
      const ServeResult res = inst.serve(req);
      RequestRecord& rec = records[id];
      rec.arrival = req.arrival;
      rec.start = start;
      rec.service = res.ok ? res.service_cycles : penalty_cycles;
      rec.latency = (start - req.arrival) + rec.service;
      rec.instance = static_cast<int>(i);
      rec.ok = res.ok;
      inst.clock = start + rec.service;
    }
  });
}

/// Mean service cycles under `params`, measured on a scratch fault-free
/// instance over the calibration request stream.
std::uint64_t calibrate(const bc::Program& prog, const ServingConfig& config) {
  InstanceOptions opts;
  opts.scenario = config.scenario;
  opts.interp.engine = config.engine;
  opts.budget = config.request_budget;
  // No faults, no obs: the calibration baseline must not depend on the
  // chaos campaign or pollute serving counters.
  ServerInstance scratch(prog, config.machine, config.initial, opts);
  RequestStream stream{Pcg32(config.seed, 0xca11), config.keyspace};
  const std::size_t n = std::max<std::size_t>(config.calibration_requests, 1);
  std::uint64_t total = 0;
  for (std::size_t id = 0; id < n; ++id) {
    const ServeResult res = scratch.serve(stream.next(id, 0));
    ITH_CHECK(res.ok, "calibration request failed: " + res.outcome.to_string());
    total += res.service_cycles;
  }
  return std::max<std::uint64_t>(total / n, 1);
}

}  // namespace

WorkloadServeReport serve_workload(const std::string& name, const ServingConfig& config) {
  ITH_CHECK(config.instances >= 1, "serving needs at least one instance");
  ITH_CHECK(config.requests >= 1, "serving needs at least one request");
  ITH_CHECK(config.load > 0.0, "offered load must be positive");

  const wl::Workload serve_wl = make_serving_workload(name, ServingMode::kServe);
  obs::Context* obs = config.obs;
  obs::ScopedSpan span(obs, obs::Category::kServe, "serve.workload",
                       {{"workload", name}, {"instances", config.instances}});

  WorkloadServeReport report;
  report.name = name;

  // Calibration fixes the time scale: arrival gaps, SLO envelope, and the
  // latency charged to a faulted request all derive from it.
  report.calibrated_service = calibrate(serve_wl.program, config);
  report.mean_gap = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(report.calibrated_service) /
                                 (config.load * config.instances)),
      1);
  report.slo_cycles =
      config.slo_multiplier > 0.0
          ? static_cast<std::uint64_t>(config.slo_multiplier *
                                       static_cast<double>(report.calibrated_service))
          : 0;
  const std::uint64_t penalty_cycles =
      report.slo_cycles != 0 ? report.slo_cycles : 8 * report.calibrated_service;

  // The full arrival schedule, generated up front (the arrival process must
  // not depend on service outcomes — open loop).
  std::vector<Request> requests;
  requests.reserve(config.requests);
  {
    RequestStream stream{Pcg32(config.seed, resilience::mix_keys(0xa221, resilience::hash_string(name))),
                         config.keyspace};
    Pcg32 gaps(config.seed, resilience::mix_keys(0x9a95, resilience::hash_string(name)));
    const std::uint32_t g = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(report.mean_gap, 0x7fffffffULL));
    std::uint64_t now = 0;
    for (std::size_t id = 0; id < config.requests; ++id) {
      now += g / 2 + gaps.bounded(std::max<std::uint32_t>(g, 1));
      requests.push_back(stream.next(id, now));
    }
  }

  Fleet fleet;
  fleet.target = config.initial;
  for (int i = 0; i < config.instances; ++i) {
    InstanceOptions opts;
    opts.scenario = config.scenario;
    opts.interp.engine = config.engine;
    opts.budget = config.request_budget;
    opts.faults = config.faults;
    opts.fault_key = resilience::mix_keys(config.fault_seed,
                                          resilience::mix_keys(resilience::hash_string(name),
                                                               static_cast<std::uint64_t>(i)));
    opts.obs = obs;
    fleet.instances.push_back(std::make_unique<ServerInstance>(serve_wl.program, config.machine,
                                                               config.initial, opts));
  }

  ThreadPool pool(config.threads);
  std::vector<RequestRecord> records(config.requests);

  // Epoch plan: one epoch per GA generation plus a closing epoch; a single
  // epoch when online tuning is off.
  const std::size_t epochs =
      config.online_tune ? static_cast<std::size_t>(config.ga_generations) + 1 : 1;
  const std::size_t epoch_len = std::max<std::size_t>(config.requests / epochs, 1);
  std::size_t next_lo = 0;
  int epoch = 0;
  const std::size_t roll_limit = config.rollout == Rollout::kAll
                                     ? fleet.instances.size()
                                     : std::max<std::size_t>(fleet.instances.size() / 2, 1);
  const auto serve_next_epoch = [&](bool last) {
    if (next_lo >= config.requests) return;
    const std::size_t hi = last ? config.requests : std::min(next_lo + epoch_len, config.requests);
    obs::ScopedSpan es(obs, obs::Category::kServe, "serve.epoch",
                      {{"workload", name}, {"epoch", epoch}, {"requests", hi - next_lo}});
    serve_epoch(fleet, pool, requests, records, next_lo, hi, penalty_cycles);
    next_lo = hi;
    ++epoch;
  };

  if (config.online_tune) {
    // Shadow evaluator over this workload's batch twin: the whole offline
    // stack (signature collapse, guarded eval, quarantine) reused as-is.
    tuner::EvalConfig eval_cfg;
    eval_cfg.machine = config.machine;
    eval_cfg.scenario = config.scenario;
    eval_cfg.vm_config.interp_options.engine = config.engine;
    eval_cfg.vm_config.faults = config.faults;
    eval_cfg.vm_config.fault_key = resilience::mix_keys(config.fault_seed, 0x51ad);
    eval_cfg.obs = obs;
    tuner::SuiteEvaluator shadow({make_serving_workload(name, ServingMode::kBatch)}, eval_cfg);

    OnlineTunerConfig oc;
    oc.goal = config.goal;
    oc.slo_cycles = report.slo_cycles;
    oc.retry_quarantined = config.retry_quarantined;
    oc.obs = obs;
    OnlineController controller(shadow, config.initial, oc);

    const bool hot_gene = config.scenario == vm::Scenario::kAdapt;
    ga::GaConfig ga_cfg = tuner::default_ga_config(config.ga_generations, config.ga_seed);
    ga_cfg.population = config.ga_population;
    ga_cfg.patience = 0;  // epoch count must match the generation count
    ga_cfg.seed_individuals = {tuner::genome_from_params(config.initial, hot_gene)};
    ga_cfg.obs = obs;

    tuner::TuneCheckpointOptions hooks;
    hooks.on_generation = [&](const ga::GenerationStats& gen) {
      const heur::InlineParams cand =
          heur::clamp_to_ranges(tuner::params_from_genome(gen.best_genome));
      const RetuneDecision d = controller.consider(cand);
      if (obs != nullptr && obs->enabled(obs::Category::kServe)) {
        obs->instant(obs::Category::kServe, "serve.retune", obs::Domain::kHost, obs->host_now_us(),
                     {{"workload", name},
                      {"generation", gen.generation},
                      {"action", retune_action_name(d.action)},
                      {"fitness", d.fitness},
                      {"signature", static_cast<std::int64_t>(d.signature)}});
      }
      if (d.action == RetuneAction::kInstalled) fleet.target = controller.installed();
      fleet.roll(roll_limit);
      serve_next_epoch(/*last=*/false);
    };

    const tuner::TuneResult tuned = tuner::tune(shadow, config.goal, ga_cfg, hooks);
    // The GA's final best has the lowest fitness the search ever saw, so
    // this either signature-skips (already installed) or installs it —
    // unless the SLO/fault gates veto it, which the report makes visible.
    const RetuneDecision final_d = controller.consider(heur::clamp_to_ranges(tuned.best));
    if (final_d.action == RetuneAction::kInstalled) fleet.target = controller.installed();
    while (fleet.roll(roll_limit) > 0) {
    }
    serve_next_epoch(/*last=*/true);

    report.final_params = controller.installed();
    report.final_signature = controller.installed_signature();
    report.final_fitness = controller.installed_fitness();
    report.retune = controller.stats();
  } else {
    serve_next_epoch(/*last=*/true);
    report.final_params = config.initial;
    tuner::EvalConfig eval_cfg;
    eval_cfg.machine = config.machine;
    eval_cfg.scenario = config.scenario;
    eval_cfg.vm_config.interp_options.engine = config.engine;
    tuner::SuiteEvaluator shadow({make_serving_workload(name, ServingMode::kBatch)}, eval_cfg);
    report.final_signature = shadow.signature_of(config.initial);
  }

  for (const RequestRecord& rec : records) {
    report.digest.add(rec.latency);
    if (!rec.ok) ++report.faulted_requests;
    if (report.slo_cycles != 0 && rec.latency > report.slo_cycles) ++report.slo_violations;
  }
  for (const auto& inst : fleet.instances) report.installs += inst->installs();
  report.records = std::move(records);

  if (obs != nullptr) {
    obs->counter("serve.requests").add(report.records.size());
    obs->counter("serve.slo_violations").add(report.slo_violations);
  }
  span.arg("p99", report.digest.p99());
  span.arg("slo_violations", report.slo_violations);
  return report;
}

ServeReport run_serving(const ServingConfig& config) {
  ServeReport report;
  for (const std::string& name : serving_names()) {
    report.workloads.push_back(serve_workload(name, config));
  }
  return report;
}

}  // namespace ith::serving
