#include "serving/online_tuner.hpp"

#include <algorithm>

#include "serving/workloads.hpp"

namespace ith::serving {

const char* retune_action_name(RetuneAction a) {
  switch (a) {
    case RetuneAction::kInstalled: return "installed";
    case RetuneAction::kSkippedSignature: return "skipped-signature";
    case RetuneAction::kSkippedWorse: return "skipped-worse";
    case RetuneAction::kRejectedFault: return "rejected-fault";
    case RetuneAction::kRejectedSlo: return "rejected-slo";
  }
  return "?";
}

OnlineController::OnlineController(tuner::SuiteEvaluator& shadow, heur::InlineParams initial,
                                   OnlineTunerConfig config)
    : shadow_(shadow), config_(config), installed_(initial) {
  installed_sig_ = shadow_.signature_of(installed_);
  installed_fitness_ = fitness_of(shadow_.evaluate(installed_));
}

double OnlineController::fitness_of(const tuner::SuiteEvaluator::Results& results) {
  return tuner::suite_fitness(config_.goal, *results, *shadow_.default_results());
}

std::uint64_t OnlineController::predict_worst(const std::vector<tuner::BenchmarkResult>& results) {
  std::uint64_t worst = 0;
  for (const tuner::BenchmarkResult& r : results) {
    const std::uint64_t storm = r.total_cycles > r.running_cycles ? r.total_cycles - r.running_cycles : 0;
    const std::uint64_t per_request =
        (r.running_cycles + static_cast<std::uint64_t>(kBatchRequests) - 1) /
        static_cast<std::uint64_t>(kBatchRequests);
    worst = std::max(worst, storm + per_request);
  }
  return worst;
}

RetuneDecision OnlineController::consider(const heur::InlineParams& candidate) {
  ++stats_.considered;
  obs::Context* obs = config_.obs;
  if (obs != nullptr) obs->counter("serve.retune.considered").add(1);

  RetuneDecision d;
  d.signature = shadow_.signature_of(candidate);

  // Gate 1: identical decisions => identical code; an install would be a
  // recompilation storm buying nothing.
  if (d.signature == installed_sig_) {
    d.action = RetuneAction::kSkippedSignature;
    ++stats_.skipped_signature;
    if (obs != nullptr) obs->counter("serve.retune.skipped_signature").add(1);
    return d;
  }

  // Gate 2: one release+re-run per quarantined signature.
  if (config_.retry_quarantined && shadow_.is_quarantined(d.signature) &&
      released_.insert(d.signature).second) {
    if (shadow_.release_quarantine(d.signature)) {
      d.released_quarantine = true;
      ++stats_.quarantine_released;
      if (obs != nullptr) obs->counter("serve.retune.quarantine_released").add(1);
    }
  }

  const tuner::SuiteEvaluator::Results results = shadow_.evaluate(candidate);
  d.fitness = fitness_of(results);
  d.predicted_worst = predict_worst(*results);

  // Gate 3: a genome the shadow run could not complete never reaches the
  // fleet, whatever its (penalized) fitness says.
  const bool any_fault = std::any_of(results->begin(), results->end(),
                                     [](const tuner::BenchmarkResult& r) { return !r.outcome.ok(); });
  if (any_fault) {
    d.action = RetuneAction::kRejectedFault;
    ++stats_.rejected_fault;
    if (obs != nullptr) obs->counter("serve.retune.rejected_fault").add(1);
    return d;
  }

  // Gate 4: the install itself must fit the latency envelope.
  if (config_.slo_cycles != 0 && d.predicted_worst > config_.slo_cycles) {
    d.action = RetuneAction::kRejectedSlo;
    ++stats_.rejected_slo;
    if (obs != nullptr) obs->counter("serve.retune.rejected_slo").add(1);
    return d;
  }

  // Gate 5: strict improvement only.
  if (d.fitness >= installed_fitness_) {
    d.action = RetuneAction::kSkippedWorse;
    ++stats_.skipped_worse;
    if (obs != nullptr) obs->counter("serve.retune.skipped_worse").add(1);
    return d;
  }

  installed_ = candidate;
  installed_sig_ = d.signature;
  installed_fitness_ = d.fitness;
  d.action = RetuneAction::kInstalled;
  ++stats_.installed;
  if (obs != nullptr) obs->counter("serve.retune.installed").add(1);
  return d;
}

}  // namespace ith::serving
