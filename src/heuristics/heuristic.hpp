// InlineHeuristic: the decision procedure the optimizing compiler consults
// at every call site. Implementations include the paper's Jikes RVM
// heuristic (Figures 3 and 4), trivial always/never baselines, and a
// knapsack-style oracle modelled on Arnold et al. (related work).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bytecode/program.hpp"
#include "heuristics/inline_params.hpp"

namespace ith::heur {

/// Everything the compiler knows about one inlining opportunity.
struct InlineRequest {
  bc::MethodId caller = -1;
  bc::MethodId callee = -1;
  std::size_t call_pc = 0;       ///< pc of the kCall in the (current) caller body
  int callee_size = 0;           ///< estimated machine words of the callee
  int caller_size = 0;           ///< estimated machine words of the caller, incl. growth so far
  int depth = 0;                 ///< inlining depth at this site (0 = original call)
  bool is_hot = false;           ///< call site observed hot by the profiler (Adapt)
  std::uint64_t site_count = 0;  ///< profiled execution count of the site (0 if unknown)
  /// Estimated words of the callee's pure guard head if it has one
  /// (see opt::partial_inline_shape), -1 if the callee cannot be split.
  /// Only consulted by heuristics that support partial inlining.
  int head_size = -1;
};

/// A heuristic verdict plus the rule that produced it, for observability:
/// `rule` names the specific test that fired (e.g. "fig3:callee_too_big",
/// "fig4:hot_yes") as a static string. Heuristics that do not explain
/// themselves report "opaque".
struct InlineDecision {
  bool inline_it = false;
  const char* rule = "opaque";
  /// True when only the callee's guard head should be spliced (partial
  /// inlining); implies inline_it. should_inline() cannot express this,
  /// so partial-aware callers must consult decide().
  bool partial = false;
};

class InlineHeuristic {
 public:
  virtual ~InlineHeuristic() = default;

  /// True if the call site should be inlined.
  virtual bool should_inline(const InlineRequest& req) const = 0;

  /// Verdict plus firing rule. Default wraps should_inline() with an
  /// "opaque" rule; heuristics with explainable structure override this
  /// (and may implement should_inline in terms of it).
  virtual InlineDecision decide(const InlineRequest& req) const;

  /// Called once before a compilation session over `prog`; heuristics that
  /// need whole-program context (the knapsack oracle) hook this. Default: no-op.
  virtual void prepare(const bc::Program& prog);

  virtual std::string name() const = 0;
};

/// The paper's heuristic, verbatim:
///
///   inliningHeuristic(calleeSize, inlineDepth, callerSize)   [Figure 3]
///     if (calleeSize > CALLEE_MAX_SIZE)      return NO;
///     if (calleeSize < ALWAYS_INLINE_SIZE)   return YES;
///     if (inlineDepth > MAX_INLINE_DEPTH)    return NO;
///     if (callerSize > CALLER_MAX_SIZE)      return NO;
///     return YES;
///
///   inlineHotCallSite(calleeSize)                            [Figure 4]
///     if (calleeSize > HOT_CALLEE_MAX_SIZE)  return NO;
///     return YES;
///
/// Hot call sites (req.is_hot) use the Figure 4 test; all others Figure 3.
class JikesHeuristic final : public InlineHeuristic {
 public:
  explicit JikesHeuristic(InlineParams params = default_params());

  bool should_inline(const InlineRequest& req) const override;
  /// Reports which Figure 3/4 term fired: "fig4:hot_callee_too_big",
  /// "fig4:hot_yes", "fig3:callee_too_big", "fig3:always_inline",
  /// "fig3:too_deep", "fig3:caller_too_big" or "fig3:yes". With
  /// PARTIAL_MAX_HEAD_SIZE > 0, a size rejection whose callee exposes a
  /// small enough guard head instead returns a partial verdict
  /// ("fig4:partial_head" / "fig3:partial_head").
  InlineDecision decide(const InlineRequest& req) const override;
  std::string name() const override;

  const InlineParams& params() const { return params_; }

 private:
  InlineParams params_;
};

/// Inlines everything the compiler structurally can (depth-capped to avoid
/// unbounded recursion expansion). Upper-bound comparator.
class AlwaysInlineHeuristic final : public InlineHeuristic {
 public:
  explicit AlwaysInlineHeuristic(int depth_cap = 15);
  bool should_inline(const InlineRequest& req) const override;
  std::string name() const override { return "always"; }

 private:
  int depth_cap_;
};

/// Never inlines. This is the paper's "no inlining" baseline for Figure 1.
class NeverInlineHeuristic final : public InlineHeuristic {
 public:
  bool should_inline(const InlineRequest&) const override { return false; }
  std::string name() const override { return "never"; }
};

std::unique_ptr<InlineHeuristic> make_jikes(InlineParams params = default_params());
std::unique_ptr<InlineHeuristic> make_always(int depth_cap = 15);
std::unique_ptr<InlineHeuristic> make_never();

}  // namespace ith::heur
