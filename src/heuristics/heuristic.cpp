#include "heuristics/heuristic.hpp"

namespace ith::heur {

void InlineHeuristic::prepare(const bc::Program&) {}

JikesHeuristic::JikesHeuristic(InlineParams params) : params_(params) {}

bool JikesHeuristic::should_inline(const InlineRequest& req) const {
  if (req.is_hot) {
    // Figure 4: hot call sites are judged only by callee size.
    return req.callee_size <= params_.hot_callee_max_size;
  }
  // Figure 3, test order preserved.
  if (req.callee_size > params_.callee_max_size) return false;
  if (req.callee_size < params_.always_inline_size) return true;
  if (req.depth > params_.max_inline_depth) return false;
  if (req.caller_size > params_.caller_max_size) return false;
  return true;
}

std::string JikesHeuristic::name() const { return "jikes" + params_.to_string(); }

AlwaysInlineHeuristic::AlwaysInlineHeuristic(int depth_cap) : depth_cap_(depth_cap) {}

bool AlwaysInlineHeuristic::should_inline(const InlineRequest& req) const {
  return req.depth <= depth_cap_;
}

std::unique_ptr<InlineHeuristic> make_jikes(InlineParams params) {
  return std::make_unique<JikesHeuristic>(params);
}
std::unique_ptr<InlineHeuristic> make_always(int depth_cap) {
  return std::make_unique<AlwaysInlineHeuristic>(depth_cap);
}
std::unique_ptr<InlineHeuristic> make_never() { return std::make_unique<NeverInlineHeuristic>(); }

}  // namespace ith::heur
