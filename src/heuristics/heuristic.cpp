#include "heuristics/heuristic.hpp"

namespace ith::heur {

void InlineHeuristic::prepare(const bc::Program&) {}

InlineDecision InlineHeuristic::decide(const InlineRequest& req) const {
  return {should_inline(req), "opaque"};
}

JikesHeuristic::JikesHeuristic(InlineParams params) : params_(params) {}

bool JikesHeuristic::should_inline(const InlineRequest& req) const {
  return decide(req).inline_it;
}

InlineDecision JikesHeuristic::decide(const InlineRequest& req) const {
  // Sixth dimension: a callee rejected for size may still donate its pure
  // guard head when that head fits the PARTIAL_MAX_HEAD_SIZE budget.
  const bool partial_ok = params_.partial_max_head_size > 0 && req.head_size >= 0 &&
                          req.head_size <= params_.partial_max_head_size;
  if (req.is_hot) {
    // Figure 4: hot call sites are judged only by callee size.
    if (req.callee_size > params_.hot_callee_max_size) {
      if (partial_ok) return {true, "fig4:partial_head", true};
      return {false, "fig4:hot_callee_too_big"};
    }
    return {true, "fig4:hot_yes"};
  }
  // Figure 3, test order preserved.
  if (req.callee_size > params_.callee_max_size) {
    if (partial_ok) return {true, "fig3:partial_head", true};
    return {false, "fig3:callee_too_big"};
  }
  if (req.callee_size < params_.always_inline_size) return {true, "fig3:always_inline"};
  if (req.depth > params_.max_inline_depth) return {false, "fig3:too_deep"};
  if (req.caller_size > params_.caller_max_size) return {false, "fig3:caller_too_big"};
  return {true, "fig3:yes"};
}

std::string JikesHeuristic::name() const { return "jikes" + params_.to_string(); }

AlwaysInlineHeuristic::AlwaysInlineHeuristic(int depth_cap) : depth_cap_(depth_cap) {}

bool AlwaysInlineHeuristic::should_inline(const InlineRequest& req) const {
  return req.depth <= depth_cap_;
}

std::unique_ptr<InlineHeuristic> make_jikes(InlineParams params) {
  return std::make_unique<JikesHeuristic>(params);
}
std::unique_ptr<InlineHeuristic> make_always(int depth_cap) {
  return std::make_unique<AlwaysInlineHeuristic>(depth_cap);
}
std::unique_ptr<InlineHeuristic> make_never() { return std::make_unique<NeverInlineHeuristic>(); }

}  // namespace ith::heur
