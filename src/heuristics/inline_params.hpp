// The five tunable inlining parameters from Table 1 of the paper, plus the
// default values Jikes RVM 2.3.3 ships with (Table 4, column "Default"),
// plus one dimension beyond the paper: PARTIAL_MAX_HEAD_SIZE, the size
// threshold for partially inlining the guard head of a too-big callee
// (0 = disabled, which reproduces Table 1's original space exactly).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ith::heur {

/// One setting of the inlining heuristic. This is exactly the genome the
/// genetic algorithm evolves.
struct InlineParams {
  int callee_max_size = 23;      ///< CALLEE_MAX_SIZE: max callee size allowed to inline
  int always_inline_size = 11;   ///< ALWAYS_INLINE_SIZE: callees below this always inline
  int max_inline_depth = 5;      ///< MAX_INLINE_DEPTH: max depth at a call site
  int caller_max_size = 2048;    ///< CALLER_MAX_SIZE: max caller size to inline into
  int hot_callee_max_size = 135; ///< HOT_CALLEE_MAX_SIZE: max hot callee size (Adapt only)
  /// PARTIAL_MAX_HEAD_SIZE: when a callee is rejected for size (fig3/fig4)
  /// but its pure guard head is at most this many words, inline just the
  /// head and leave the cold tail behind the original call. 0 disables
  /// partial inlining, collapsing the space back to the paper's five
  /// dimensions with bit-identical decisions.
  int partial_max_head_size = 0;

  /// Number of tunable parameters (the genome length). Everything keyed on
  /// the flattened form — GA genomes, the SuiteEvaluator memoization key —
  /// derives its size from this constant, and the static_assert below
  /// forces anyone adding another field to update it (and to_array /
  /// from_array) in the same change.
  static constexpr std::size_t kNumParams = 6;
  using Array = std::array<int, kNumParams>;

  friend bool operator==(const InlineParams&, const InlineParams&) = default;

  /// Values in Table 1 order (the genome layout).
  Array to_array() const;
  static InlineParams from_array(const Array& v);

  std::string to_string() const;
};

static_assert(sizeof(InlineParams) == InlineParams::kNumParams * sizeof(int),
              "InlineParams field count changed: update kNumParams, to_array and from_array "
              "so flattened keys (GA genome, evaluator cache) cannot alias");

/// The Jikes RVM 2.3.3 defaults (paper Table 4, "Default" column).
InlineParams default_params();

/// Inclusive search ranges from Table 1.
struct ParamRange {
  const char* name;
  int lo;
  int hi;
};

/// Table 1 ranges (plus the PARTIAL_MAX_HEAD_SIZE extension), genome order.
/// The product of the first five spans is the paper's quoted ~3e11 search
/// space; the sixth widens it beyond what the paper explored.
const std::array<ParamRange, InlineParams::kNumParams>& param_ranges();

/// Clamps every field into its Table 1 range.
InlineParams clamp_to_ranges(const InlineParams& p);

}  // namespace ith::heur
