#include "heuristics/profile_directed.hpp"

#include <sstream>

#include "support/error.hpp"

namespace ith::heur {

ProfileDirectedHeuristic::ProfileDirectedHeuristic(double benefit_per_call, double cost_weight,
                                                   int depth_cap)
    : benefit_per_call_(benefit_per_call), cost_weight_(cost_weight), depth_cap_(depth_cap) {
  ITH_CHECK(benefit_per_call > 0.0 && cost_weight > 0.0, "weights must be positive");
  ITH_CHECK(depth_cap >= 0, "depth cap must be non-negative");
}

bool ProfileDirectedHeuristic::should_inline(const InlineRequest& req) const {
  if (req.depth > depth_cap_) return false;
  // Un-profiled sites (cold code, or the Opt scenario) are never inlined:
  // with no evidence of execution there is no evidence of benefit.
  if (req.site_count == 0) return false;
  const double benefit = static_cast<double>(req.site_count) * benefit_per_call_;
  const double cost = cost_weight_ * static_cast<double>(req.callee_size);
  return benefit >= cost;
}

std::string ProfileDirectedHeuristic::name() const {
  std::ostringstream os;
  os << "profile-directed(benefit=" << benefit_per_call_ << ", cost=" << cost_weight_ << ")";
  return os.str();
}

}  // namespace ith::heur
