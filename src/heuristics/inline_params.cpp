#include "heuristics/inline_params.hpp"

#include <algorithm>
#include <sstream>

namespace ith::heur {

InlineParams::Array InlineParams::to_array() const {
  return {callee_max_size,     always_inline_size, max_inline_depth,
          caller_max_size,     hot_callee_max_size, partial_max_head_size};
}

InlineParams InlineParams::from_array(const Array& v) {
  InlineParams p;
  p.callee_max_size = v[0];
  p.always_inline_size = v[1];
  p.max_inline_depth = v[2];
  p.caller_max_size = v[3];
  p.hot_callee_max_size = v[4];
  p.partial_max_head_size = v[5];
  return p;
}

std::string InlineParams::to_string() const {
  std::ostringstream os;
  os << "[CALLEE_MAX_SIZE=" << callee_max_size << ", ALWAYS_INLINE_SIZE=" << always_inline_size
     << ", MAX_INLINE_DEPTH=" << max_inline_depth << ", CALLER_MAX_SIZE=" << caller_max_size
     << ", HOT_CALLEE_MAX_SIZE=" << hot_callee_max_size
     << ", PARTIAL_MAX_HEAD_SIZE=" << partial_max_head_size << "]";
  return os.str();
}

InlineParams default_params() { return InlineParams{}; }

const std::array<ParamRange, InlineParams::kNumParams>& param_ranges() {
  static const std::array<ParamRange, InlineParams::kNumParams> kRanges = {{
      // The ALWAYS_INLINE_SIZE range is reconstructed (the Table 1 row is
      // garbled in available copies of the paper): 1-30 brackets both the
      // default (11) and every tuned value the paper reports (6-16). Note
      // the resulting space is ~3.6e10, not the ~3e11 the paper quotes; no
      // assignment of the printed ranges reproduces that number exactly.
      {"CALLEE_MAX_SIZE", 1, 50},
      {"ALWAYS_INLINE_SIZE", 1, 30},
      {"MAX_INLINE_DEPTH", 1, 15},
      {"CALLER_MAX_SIZE", 1, 4000},
      {"HOT_CALLEE_MAX_SIZE", 1, 400},
      // Beyond the paper: guard-head budget for partial inlining. 0 (the
      // default) disables the transform, so the legacy five-dimensional
      // space is the lo edge of this axis.
      {"PARTIAL_MAX_HEAD_SIZE", 0, 40},
  }};
  return kRanges;
}

InlineParams clamp_to_ranges(const InlineParams& p) {
  const auto& ranges = param_ranges();
  auto arr = p.to_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    arr[i] = std::clamp(arr[i], ranges[i].lo, ranges[i].hi);
  }
  return InlineParams::from_array(arr);
}

}  // namespace ith::heur
