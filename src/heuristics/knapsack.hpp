// Knapsack-style inlining oracle, modelled on Arnold, Fink, Sarkar & Sweeney
// (DYNAMO'00), which the paper discusses as related work: with *global*
// knowledge of the program, choose the set of call sites that maximizes
// estimated benefit subject to a code-expansion budget.
//
// A dynamic compiler cannot use this (it lacks the global view — the paper's
// central criticism), but it is a useful upper-bound comparator for the
// ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "heuristics/heuristic.hpp"

namespace ith::heur {

class KnapsackHeuristic final : public InlineHeuristic {
 public:
  /// `expansion_budget` is the allowed fractional growth of the program's
  /// estimated machine-code size (Arnold et al. study budgets up to ~10%).
  explicit KnapsackHeuristic(double expansion_budget = 0.10);

  /// Scans the whole program, estimates per-site benefit/cost, and greedily
  /// fills the budget by descending benefit/cost ratio.
  void prepare(const bc::Program& prog) override;

  /// Inlines exactly the selected original call sites (depth 0). Sites
  /// created *by* inlining are judged against the same selection keyed by
  /// the transitive callee, which approximates the oracle's fixed plan.
  bool should_inline(const InlineRequest& req) const override;

  std::string name() const override;

  std::size_t selected_sites() const { return selected_.size(); }

 private:
  double expansion_budget_;
  // (caller, call_pc) -> selected
  std::map<std::pair<bc::MethodId, std::size_t>, bool> selected_;
};

/// Static loop-nesting estimate for a pc: the number of backward-branch
/// spans [target, branch] that contain it. Shared with tests.
int static_loop_depth(const bc::Method& m, std::size_t pc);

}  // namespace ith::heur
