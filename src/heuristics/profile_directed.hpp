// Profile-directed inlining heuristic: an online cost/benefit comparator in
// the spirit of Dean & Chambers' "inlining trials" discussion in the
// paper's related work — instead of fixed size thresholds, weigh the
// *measured* call-site frequency against the estimated compile-time cost of
// splicing the callee.
//
//   inline iff  site_count * benefit_per_call >= cost_weight * callee_size
//
// Only meaningful under the Adapt scenario (it needs profile counts); with
// no profile it degenerates to never-inline, which is its honest cold-code
// answer.
#pragma once

#include "heuristics/heuristic.hpp"

namespace ith::heur {

class ProfileDirectedHeuristic final : public InlineHeuristic {
 public:
  /// `benefit_per_call`: estimated cycles saved per avoided call (linkage +
  /// marshalling). `cost_weight`: compile cycles charged per callee word.
  /// `depth_cap`: structural recursion guard.
  ProfileDirectedHeuristic(double benefit_per_call = 12.0, double cost_weight = 60.0,
                           int depth_cap = 10);

  bool should_inline(const InlineRequest& req) const override;
  std::string name() const override;

 private:
  double benefit_per_call_;
  double cost_weight_;
  int depth_cap_;
};

}  // namespace ith::heur
