#include "heuristics/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "bytecode/size_estimator.hpp"
#include "support/error.hpp"

namespace ith::heur {

namespace {

struct Candidate {
  bc::MethodId caller;
  std::size_t pc;
  double benefit;
  double cost;
};

}  // namespace

int static_loop_depth(const bc::Method& m, std::size_t pc) {
  int depth = 0;
  const auto& code = m.code();
  for (std::size_t branch_pc = 0; branch_pc < code.size(); ++branch_pc) {
    const bc::Instruction& insn = code[branch_pc];
    if (!bc::op_info(insn.op).is_branch) continue;
    const auto target = static_cast<std::size_t>(insn.a);
    if (target <= branch_pc && target <= pc && pc <= branch_pc) ++depth;
  }
  return depth;
}

KnapsackHeuristic::KnapsackHeuristic(double expansion_budget)
    : expansion_budget_(expansion_budget) {
  ITH_CHECK(expansion_budget >= 0.0, "expansion budget must be non-negative");
}

void KnapsackHeuristic::prepare(const bc::Program& prog) {
  selected_.clear();

  std::vector<Candidate> candidates;
  for (std::size_t mi = 0; mi < prog.num_methods(); ++mi) {
    const auto id = static_cast<bc::MethodId>(mi);
    const bc::Method& caller = prog.method(id);
    for (std::size_t pc : caller.call_sites()) {
      const bc::Instruction& call = caller.code()[pc];
      const bc::Method& callee = prog.method(call.a);
      // Estimated dynamic frequency: exponential in static loop nesting.
      const double freq = std::pow(10.0, static_loop_depth(caller, pc));
      // Benefit: call linkage eliminated per execution. Cost: net static
      // growth (callee body minus the call instruction it replaces).
      const double call_words = bc::op_info(bc::Op::kCall).machine_words;
      const double benefit = freq * call_words;
      const double cost =
          std::max(1.0, static_cast<double>(bc::estimated_method_size(callee)) - call_words);
      candidates.push_back({id, pc, benefit, cost});
    }
  }

  std::stable_sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.benefit / a.cost > b.benefit / b.cost;
  });

  double budget = expansion_budget_ * static_cast<double>(bc::estimated_program_size(prog));
  for (const Candidate& c : candidates) {
    if (c.cost > budget) continue;  // greedy: skip items that no longer fit
    budget -= c.cost;
    selected_[{c.caller, c.pc}] = true;
  }
}

bool KnapsackHeuristic::should_inline(const InlineRequest& req) const {
  if (req.depth > 0) return false;  // the oracle's plan covers original sites only
  const auto it = selected_.find({req.caller, req.call_pc});
  return it != selected_.end() && it->second;
}

std::string KnapsackHeuristic::name() const {
  std::ostringstream os;
  os << "knapsack(budget=" << expansion_budget_ << ")";
  return os.str();
}

}  // namespace ith::heur
