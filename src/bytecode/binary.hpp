// Compact binary serialization for programs ("ITHB" format).
//
// The textual assembly format (serializer.hpp) is for humans; this format
// is for caches and corpora: LEB128/zigzag varints, a magic/version header,
// and full verification on load. Round-trips exactly.
//
// Layout (all integers varint-encoded unless noted):
//   "ITHB"            4 raw bytes
//   version           u32 varint (currently 1)
//   name              length-prefixed UTF-8 bytes
//   globals_size
//   entry method id
//   method count
//   per method: name, num_args, num_locals, code length,
//               per instruction: opcode byte, zigzag(a), zigzag(b)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bytecode/program.hpp"

namespace ith::bc {

inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Serializes `prog` to the binary format.
void write_binary(const Program& prog, std::ostream& os);
std::vector<std::uint8_t> to_binary(const Program& prog);

/// Deserializes and verifies a program; throws ith::Error on malformed
/// input (bad magic, truncation, unknown version/opcode, verification
/// failure).
Program read_binary(std::istream& is);
Program from_binary(const std::vector<std::uint8_t>& bytes);

}  // namespace ith::bc
