#include "bytecode/method.hpp"

#include "support/error.hpp"

namespace ith::bc {

Method::Method(std::string name, int num_args, int num_locals)
    : name_(std::move(name)), num_args_(num_args), num_locals_(num_locals) {
  ITH_CHECK(num_args >= 0, "negative argument count");
  ITH_CHECK(num_locals >= num_args, "locals must cover arguments");
}

void Method::set_num_locals(int n) {
  ITH_CHECK(n >= num_args_, "locals must cover arguments");
  num_locals_ = n;
}

const Instruction& Method::at(std::size_t pc) const {
  ITH_CHECK(pc < code_.size(), "pc out of range in method " + name_);
  return code_[pc];
}

std::vector<std::size_t> Method::call_sites() const {
  std::vector<std::size_t> sites;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    if (code_[pc].op == Op::kCall) sites.push_back(pc);
  }
  return sites;
}

std::size_t Method::back_edge_count() const {
  std::size_t n = 0;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instruction& insn = code_[pc];
    if (op_info(insn.op).is_branch && static_cast<std::size_t>(insn.a) <= pc) ++n;
  }
  return n;
}

}  // namespace ith::bc
