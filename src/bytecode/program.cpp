#include "bytecode/program.hpp"

#include <limits>

#include "support/error.hpp"

namespace ith::bc {

Program::Program(std::string name, std::size_t globals_size)
    : name_(std::move(name)), globals_size_(globals_size) {}

MethodId Program::add_method(Method m) {
  ITH_CHECK(methods_.size() < static_cast<std::size_t>(std::numeric_limits<MethodId>::max()),
            "too many methods");
  for (const Method& existing : methods_) {
    ITH_CHECK(existing.name() != m.name(), "duplicate method name: " + m.name());
  }
  methods_.push_back(std::move(m));
  return static_cast<MethodId>(methods_.size() - 1);
}

const Method& Program::method(MethodId id) const {
  ITH_CHECK(id >= 0 && static_cast<std::size_t>(id) < methods_.size(),
            "method id out of range: " + std::to_string(id));
  return methods_[static_cast<std::size_t>(id)];
}

Method& Program::mutable_method(MethodId id) {
  ITH_CHECK(id >= 0 && static_cast<std::size_t>(id) < methods_.size(),
            "method id out of range: " + std::to_string(id));
  return methods_[static_cast<std::size_t>(id)];
}

MethodId Program::find_method(const std::string& name) const {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i].name() == name) return static_cast<MethodId>(i);
  }
  throw Error("no such method: " + name + " in program " + name_);
}

bool Program::has_method(const std::string& name) const {
  for (const Method& m : methods_) {
    if (m.name() == name) return true;
  }
  return false;
}

void Program::set_entry(MethodId id) {
  ITH_CHECK(id >= 0 && static_cast<std::size_t>(id) < methods_.size(), "entry id out of range");
  entry_ = id;
}

std::size_t Program::total_code_size() const {
  std::size_t total = 0;
  for (const Method& m : methods_) total += m.size();
  return total;
}

}  // namespace ith::bc
