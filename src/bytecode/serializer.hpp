// Human-readable assembly format for minijvm programs.
//
//   program name=demo globals=64 entry=main
//   method main args=0 locals=2 {
//     const 10
//     store 0
//     call helper 0
//     halt
//   }
//
// Branch targets are printed (and parsed) as absolute instruction indices;
// call targets by method name. dump/parse round-trip exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "bytecode/program.hpp"

namespace ith::bc {

/// Writes `prog` in the assembly format above.
void dump_program(const Program& prog, std::ostream& os);
std::string dump_program(const Program& prog);

/// Parses a program from the assembly format; throws ith::Error with a line
/// number on malformed input. The result is verified before returning.
Program parse_program(std::istream& is);
Program parse_program(const std::string& text);

}  // namespace ith::bc
