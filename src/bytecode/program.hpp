// Program: a set of methods plus an entry point and a global data segment,
// the unit the virtual machine loads and runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hpp"

namespace ith::bc {

class Program {
 public:
  Program() = default;
  explicit Program(std::string name, std::size_t globals_size = 0);

  const std::string& name() const { return name_; }

  /// Size of the global data array (elements, not bytes).
  std::size_t globals_size() const { return globals_size_; }
  void set_globals_size(std::size_t n) { globals_size_ = n; }

  MethodId add_method(Method m);
  std::size_t num_methods() const { return methods_.size(); }

  const Method& method(MethodId id) const;
  Method& mutable_method(MethodId id);
  const std::vector<Method>& methods() const { return methods_; }

  /// Looks a method up by name; throws if absent.
  MethodId find_method(const std::string& name) const;
  bool has_method(const std::string& name) const;

  MethodId entry() const { return entry_; }
  void set_entry(MethodId id);

  /// Total bytecode instruction count across all methods.
  std::size_t total_code_size() const;

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::string name_;
  std::size_t globals_size_ = 0;
  std::vector<Method> methods_;
  MethodId entry_ = -1;
};

}  // namespace ith::bc
