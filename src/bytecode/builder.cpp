#include "bytecode/builder.hpp"

#include <limits>

#include "bytecode/verifier.hpp"
#include "support/error.hpp"

namespace ith::bc {

MethodBuilder::MethodBuilder(std::string name, int num_args, int num_locals)
    : method_(std::move(name), num_args, num_locals) {}

MethodBuilder& MethodBuilder::emit(Op op, std::int32_t a, std::int32_t b) {
  method_.append(Instruction{op, a, b});
  return *this;
}

MethodBuilder& MethodBuilder::const_(std::int64_t v) {
  ITH_CHECK(v >= std::numeric_limits<std::int32_t>::min() &&
                v <= std::numeric_limits<std::int32_t>::max(),
            "const immediate out of 32-bit range");
  return emit(Op::kConst, static_cast<std::int32_t>(v));
}
MethodBuilder& MethodBuilder::load(int slot) { return emit(Op::kLoad, slot); }
MethodBuilder& MethodBuilder::store(int slot) { return emit(Op::kStore, slot); }
MethodBuilder& MethodBuilder::add() { return emit(Op::kAdd); }
MethodBuilder& MethodBuilder::sub() { return emit(Op::kSub); }
MethodBuilder& MethodBuilder::mul() { return emit(Op::kMul); }
MethodBuilder& MethodBuilder::div() { return emit(Op::kDiv); }
MethodBuilder& MethodBuilder::mod() { return emit(Op::kMod); }
MethodBuilder& MethodBuilder::neg() { return emit(Op::kNeg); }
MethodBuilder& MethodBuilder::cmplt() { return emit(Op::kCmpLt); }
MethodBuilder& MethodBuilder::cmple() { return emit(Op::kCmpLe); }
MethodBuilder& MethodBuilder::cmpeq() { return emit(Op::kCmpEq); }
MethodBuilder& MethodBuilder::cmpne() { return emit(Op::kCmpNe); }
MethodBuilder& MethodBuilder::gload() { return emit(Op::kGLoad); }
MethodBuilder& MethodBuilder::gstore() { return emit(Op::kGStore); }
MethodBuilder& MethodBuilder::pop() { return emit(Op::kPop); }
MethodBuilder& MethodBuilder::nop() { return emit(Op::kNop); }

MethodBuilder& MethodBuilder::label(const std::string& name) {
  ITH_CHECK(labels_.emplace(name, method_.size()).second,
            "duplicate label '" + name + "' in method " + method_.name());
  return *this;
}

MethodBuilder& MethodBuilder::jmp(const std::string& target) {
  pending_branches_[method_.size()] = target;
  return emit(Op::kJmp);
}
MethodBuilder& MethodBuilder::jz(const std::string& target) {
  pending_branches_[method_.size()] = target;
  return emit(Op::kJz);
}
MethodBuilder& MethodBuilder::jnz(const std::string& target) {
  pending_branches_[method_.size()] = target;
  return emit(Op::kJnz);
}

MethodBuilder& MethodBuilder::call(const std::string& callee, int nargs) {
  ITH_CHECK(nargs >= 0, "negative argument count");
  pending_calls_[method_.size()] = callee;
  return emit(Op::kCall, /*a=*/-1, /*b=*/nargs);
}

MethodBuilder& MethodBuilder::ret() { return emit(Op::kRet); }
MethodBuilder& MethodBuilder::ret_const(std::int64_t v) { return const_(v).ret(); }
MethodBuilder& MethodBuilder::halt() { return emit(Op::kHalt); }

ProgramBuilder::ProgramBuilder(std::string name, std::size_t globals_size)
    : name_(std::move(name)), globals_size_(globals_size) {}

MethodBuilder& ProgramBuilder::method(const std::string& name, int num_args, int num_locals) {
  for (const auto& mb : methods_) {
    if (mb->name() == name) {
      ITH_CHECK(mb->method_.num_args() == num_args && mb->method_.num_locals() == num_locals,
                "method '" + name + "' reopened with a different signature");
      return *mb;
    }
  }
  methods_.push_back(std::unique_ptr<MethodBuilder>(new MethodBuilder(name, num_args, num_locals)));
  return *methods_.back();
}

ProgramBuilder& ProgramBuilder::entry(const std::string& name) {
  entry_name_ = name;
  return *this;
}

Program ProgramBuilder::build(bool verify) const {
  Program prog(name_, globals_size_);

  // First pass: install methods so call targets can be resolved by name.
  for (const auto& mb : methods_) {
    prog.add_method(mb->method_);
  }

  // Second pass: patch symbolic branch targets and callee names.
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    const MethodBuilder& mb = *methods_[i];
    Method& m = prog.mutable_method(static_cast<MethodId>(i));
    for (const auto& [pc, label] : mb.pending_branches_) {
      const auto it = mb.labels_.find(label);
      ITH_CHECK(it != mb.labels_.end(),
                "undefined label '" + label + "' in method " + mb.name());
      m.mutable_code()[pc].a = static_cast<std::int32_t>(it->second);
    }
    for (const auto& [pc, callee] : mb.pending_calls_) {
      m.mutable_code()[pc].a = prog.find_method(callee);
    }
  }

  ITH_CHECK(!entry_name_.empty(), "program '" + name_ + "' has no entry method");
  prog.set_entry(prog.find_method(entry_name_));

  if (verify) verify_program(prog);
  return prog;
}

}  // namespace ith::bc
