#include "bytecode/verifier.hpp"

#include <algorithm>
#include <deque>
#include <string>

#include "support/error.hpp"

namespace ith::bc {

namespace {

[[noreturn]] void fail(const Program& prog, MethodId id, std::size_t pc, const std::string& why) {
  throw Error("verify: method '" + prog.method(id).name() + "' pc " + std::to_string(pc) + ": " +
              why);
}

}  // namespace

MethodVerifyInfo verify_method(const Program& prog, MethodId id) {
  const Method& m = prog.method(id);
  const auto n = m.code().size();
  ITH_CHECK(n > 0, "verify: method '" + m.name() + "' has no code");

  // Pass 1: per-instruction operand validity.
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Instruction& insn = m.code()[pc];
    const OpInfo& info = op_info(insn.op);
    switch (insn.op) {
      case Op::kLoad:
      case Op::kStore:
        if (insn.a < 0 || insn.a >= m.num_locals()) fail(prog, id, pc, "local slot out of range");
        break;
      case Op::kCall: {
        if (insn.a < 0 || static_cast<std::size_t>(insn.a) >= prog.num_methods()) {
          fail(prog, id, pc, "call target out of range");
        }
        const Method& callee = prog.method(insn.a);
        if (insn.b != callee.num_args()) {
          fail(prog, id, pc,
               "call arity mismatch: " + std::to_string(insn.b) + " args passed to '" +
                   callee.name() + "' which takes " + std::to_string(callee.num_args()));
        }
        break;
      }
      default:
        if (info.is_branch && (insn.a < 0 || static_cast<std::size_t>(insn.a) >= n)) {
          fail(prog, id, pc, "branch target out of range");
        }
        break;
    }
  }

  // Pass 2: abstract interpretation of stack depth. Every reachable pc must
  // have one consistent entry depth; no pop from empty; no fallthrough past
  // the last instruction.
  constexpr int kUnvisited = -1;
  std::vector<int> depth_at(n, kUnvisited);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);
  std::size_t reachable = 0;
  int max_stack = 0;

  auto propagate = [&](std::size_t from_pc, std::size_t to_pc, int depth) {
    if (to_pc >= n) fail(prog, id, from_pc, "control falls off the end of the method");
    if (depth_at[to_pc] == kUnvisited) {
      depth_at[to_pc] = depth;
      worklist.push_back(to_pc);
    } else if (depth_at[to_pc] != depth) {
      fail(prog, id, to_pc,
           "inconsistent stack depth at join: " + std::to_string(depth_at[to_pc]) + " vs " +
               std::to_string(depth));
    }
  };

  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    ++reachable;
    const Instruction& insn = m.code()[pc];
    const int in_depth = depth_at[pc];

    // Popped operand count per opcode.
    int pops = 0;
    switch (insn.op) {
      case Op::kStore:
      case Op::kNeg:
      case Op::kJz:
      case Op::kJnz:
      case Op::kRet:
      case Op::kGLoad:
      case Op::kPop:
        pops = 1;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kGStore:
        pops = 2;
        break;
      case Op::kCall:
        pops = insn.b;
        break;
      default:
        pops = 0;
        break;
    }
    if (in_depth < pops) fail(prog, id, pc, "operand stack underflow");

    const int out_depth = in_depth + stack_effect(insn);
    max_stack = std::max(max_stack, std::max(in_depth, out_depth));

    switch (insn.op) {
      case Op::kJmp:
        propagate(pc, static_cast<std::size_t>(insn.a), out_depth);
        break;
      case Op::kJz:
      case Op::kJnz:
        propagate(pc, static_cast<std::size_t>(insn.a), out_depth);
        propagate(pc, pc + 1, out_depth);
        break;
      case Op::kRet:
      case Op::kHalt:
        break;  // terminators: nothing to propagate
      default:
        propagate(pc, pc + 1, out_depth);
        break;
    }
  }

  return MethodVerifyInfo{max_stack, reachable};
}

std::vector<MethodVerifyInfo> verify_program(const Program& prog) {
  ITH_CHECK(prog.num_methods() > 0, "verify: program has no methods");
  ITH_CHECK(prog.entry() >= 0, "verify: program has no entry method");
  ITH_CHECK(prog.method(prog.entry()).num_args() == 0,
            "verify: entry method must take zero arguments");

  std::vector<MethodVerifyInfo> infos;
  infos.reserve(prog.num_methods());
  for (std::size_t i = 0; i < prog.num_methods(); ++i) {
    infos.push_back(verify_method(prog, static_cast<MethodId>(i)));
  }
  return infos;
}

}  // namespace ith::bc
