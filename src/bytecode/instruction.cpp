#include "bytecode/instruction.hpp"

#include <array>

#include "support/error.hpp"

namespace ith::bc {

namespace {
// Machine-word estimates model a simple RISC-ish lowering: arithmetic is one
// instruction, division expands, branches need a compare+branch pair, and a
// call expands into argument marshalling + linkage (this is what makes call
// elimination by inlining shrink the *dynamic* footprint but inlined bodies
// grow the *static* one).
constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    /*kConst*/ {"const", +1, false, false, 1},
    /*kLoad*/ {"load", +1, false, false, 1},
    /*kStore*/ {"store", -1, false, false, 1},
    /*kAdd*/ {"add", -1, false, false, 1},
    /*kSub*/ {"sub", -1, false, false, 1},
    /*kMul*/ {"mul", -1, false, false, 1},
    // Workload divisors are compile-time constants; real compilers lower
    // those to a multiply/shift pair, hence 2 words rather than a full
    // hardware divide.
    /*kDiv*/ {"div", -1, false, false, 2},
    /*kMod*/ {"mod", -1, false, false, 2},
    /*kNeg*/ {"neg", 0, false, false, 1},
    /*kCmpLt*/ {"cmplt", -1, false, false, 1},
    /*kCmpLe*/ {"cmple", -1, false, false, 1},
    /*kCmpEq*/ {"cmpeq", -1, false, false, 1},
    /*kCmpNe*/ {"cmpne", -1, false, false, 1},
    /*kJmp*/ {"jmp", 0, true, true, 1},
    /*kJz*/ {"jz", -1, true, false, 2},
    /*kJnz*/ {"jnz", -1, true, false, 2},
    /*kCall*/ {"call", 0 /*special*/, false, false, 4},
    /*kRet*/ {"ret", -1, false, true, 2},
    /*kGLoad*/ {"gload", 0, false, false, 3},
    /*kGStore*/ {"gstore", -2, false, false, 3},
    // kPop compiles to nothing: with register allocation a discarded stack
    // value simply never leaves its register.
    /*kPop*/ {"pop", -1, false, false, 0},
    /*kNop*/ {"nop", 0, false, false, 0},
    /*kHalt*/ {"halt", 0, false, true, 1},
}};
}  // namespace

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<std::size_t>(op);
  ITH_CHECK(idx < kOpTable.size(), "invalid opcode byte");
  return kOpTable[idx];
}

bool op_from_name(std::string_view name, Op& out) {
  for (std::size_t i = 0; i < kOpTable.size(); ++i) {
    if (kOpTable[i].name == name) {
      out = static_cast<Op>(i);
      return true;
    }
  }
  return false;
}

int stack_effect(const Instruction& insn) {
  if (insn.op == Op::kCall) {
    return 1 - insn.b;  // pop b args, push one result
  }
  return op_info(insn.op).stack_delta;
}

}  // namespace ith::bc
