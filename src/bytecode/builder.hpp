// Fluent construction DSL for minijvm programs.
//
// Workload generators, tests and examples assemble programs through this
// builder: labels instead of raw pcs, callee names instead of method ids.
// All symbolic references are resolved (and the result verified) in
// ProgramBuilder::build().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bytecode/program.hpp"

namespace ith::bc {

class ProgramBuilder;

class MethodBuilder {
 public:
  // Straight-line ops -------------------------------------------------------
  MethodBuilder& const_(std::int64_t v);
  MethodBuilder& load(int slot);
  MethodBuilder& store(int slot);
  MethodBuilder& add();
  MethodBuilder& sub();
  MethodBuilder& mul();
  MethodBuilder& div();
  MethodBuilder& mod();
  MethodBuilder& neg();
  MethodBuilder& cmplt();
  MethodBuilder& cmple();
  MethodBuilder& cmpeq();
  MethodBuilder& cmpne();
  MethodBuilder& gload();
  MethodBuilder& gstore();
  MethodBuilder& pop();
  MethodBuilder& nop();

  // Control flow ------------------------------------------------------------
  /// Binds `name` to the next instruction's pc.
  MethodBuilder& label(const std::string& name);
  MethodBuilder& jmp(const std::string& target);
  MethodBuilder& jz(const std::string& target);
  MethodBuilder& jnz(const std::string& target);
  MethodBuilder& call(const std::string& callee, int nargs);
  MethodBuilder& ret();
  /// Shorthand for const_(v).ret().
  MethodBuilder& ret_const(std::int64_t v);
  MethodBuilder& halt();

  const std::string& name() const { return method_.name(); }
  std::size_t size() const { return method_.size(); }

 private:
  friend class ProgramBuilder;
  MethodBuilder(std::string name, int num_args, int num_locals);

  MethodBuilder& emit(Op op, std::int32_t a = 0, std::int32_t b = 0);

  Method method_;
  std::map<std::string, std::size_t> labels_;
  // pc -> label for branches awaiting resolution
  std::map<std::size_t, std::string> pending_branches_;
  // pc -> callee name for calls awaiting resolution
  std::map<std::size_t, std::string> pending_calls_;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name, std::size_t globals_size = 0);

  /// Starts (or continues) a method; the returned reference stays valid for
  /// the builder's lifetime. Method names must be unique.
  MethodBuilder& method(const std::string& name, int num_args, int num_locals);

  /// Marks the program entry point (a zero-argument method).
  ProgramBuilder& entry(const std::string& name);

  /// Resolves labels and callee names, verifies, and returns the program.
  /// Pass verify=false only in tests that deliberately build broken code.
  Program build(bool verify = true) const;

 private:
  std::string name_;
  std::size_t globals_size_;
  std::string entry_name_;
  std::vector<std::unique_ptr<MethodBuilder>> methods_;
};

}  // namespace ith::bc
