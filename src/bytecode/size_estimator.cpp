#include "bytecode/size_estimator.hpp"

namespace ith::bc {

int estimated_words(const Instruction& insn) { return op_info(insn.op).machine_words; }

int estimated_method_size(const Method& m) {
  int words = kFrameOverheadWords;
  for (const Instruction& insn : m.code()) words += estimated_words(insn);
  return words;
}

std::size_t estimated_program_size(const Program& prog) {
  std::size_t total = 0;
  for (const Method& m : prog.methods()) {
    total += static_cast<std::size_t>(estimated_method_size(m));
  }
  return total;
}

}  // namespace ith::bc
