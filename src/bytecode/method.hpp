// Method: one compilation unit of the minijvm IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/instruction.hpp"

namespace ith::bc {

/// Index of a method within its Program.
using MethodId = std::int32_t;

class Method {
 public:
  Method() = default;
  Method(std::string name, int num_args, int num_locals);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Arguments occupy locals [0, num_args).
  int num_args() const { return num_args_; }
  int num_locals() const { return num_locals_; }
  void set_num_locals(int n);

  const std::vector<Instruction>& code() const { return code_; }
  std::vector<Instruction>& mutable_code() { return code_; }

  void append(Instruction insn) { code_.push_back(insn); }
  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  const Instruction& at(std::size_t pc) const;

  /// All pcs holding kCall instructions, in order.
  std::vector<std::size_t> call_sites() const;

  /// Number of backward branches (used by the profiler to weight loops).
  std::size_t back_edge_count() const;

  friend bool operator==(const Method&, const Method&) = default;

 private:
  std::string name_;
  int num_args_ = 0;
  int num_locals_ = 0;
  std::vector<Instruction> code_;
};

}  // namespace ith::bc
