// Machine-code size estimation.
//
// Jikes RVM's inlining heuristic operates on the *estimated number of
// machine instructions* a method will compile to, not its bytecode length.
// This estimator plays that role: every threshold in the tuned heuristic
// (CALLEE_MAX_SIZE, CALLER_MAX_SIZE, ...) is compared against these values.
#pragma once

#include <cstddef>

#include "bytecode/method.hpp"
#include "bytecode/program.hpp"

namespace ith::bc {

/// Estimated machine instructions for one IR instruction.
int estimated_words(const Instruction& insn);

/// Estimated machine instructions for a whole method body, including the
/// fixed prologue/epilogue frame overhead a real compiler emits.
int estimated_method_size(const Method& m);

/// Sum of estimated_method_size over all methods.
std::size_t estimated_program_size(const Program& prog);

/// Frame setup/teardown overhead included in estimated_method_size. Exposed
/// so tests and the inliner's size accounting agree on the constant.
inline constexpr int kFrameOverheadWords = 2;

}  // namespace ith::bc
