// Static program analysis: call-graph construction, SCC-based recursion
// detection, reachability, and the size/shape metrics the workload
// characterization (and the inliner's structural reasoning) is built on.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "bytecode/program.hpp"

namespace ith::bc {

/// The static call graph: one node per method, one edge per distinct
/// (caller, callee) pair (parallel edges collapsed, multiplicity kept).
class CallGraph {
 public:
  explicit CallGraph(const Program& prog);

  std::size_t num_methods() const { return callees_.size(); }

  /// Distinct callees of `m`, ascending.
  const std::vector<MethodId>& callees(MethodId m) const;
  /// Distinct callers of `m`, ascending.
  const std::vector<MethodId>& callers(MethodId m) const;
  /// Number of call sites in `m` targeting `callee`.
  std::size_t multiplicity(MethodId m, MethodId callee) const;

  /// Methods reachable from the entry (including the entry), ascending.
  std::vector<MethodId> reachable_from_entry() const;

  /// Strongly connected components (Tarjan), in reverse topological order.
  /// A method is recursive iff its SCC has >1 member or it calls itself.
  std::vector<std::vector<MethodId>> sccs() const;

  /// True if `m` can (transitively) call itself.
  bool is_recursive(MethodId m) const;

  /// Length of the longest acyclic call chain starting at the entry, where
  /// every method in a cycle counts once (depth over the SCC condensation).
  std::size_t max_call_depth() const;

  /// GraphViz dot rendering; node labels are method names, penwidth scales
  /// with call-site multiplicity.
  void to_dot(std::ostream& os) const;

 private:
  const Program& prog_;
  std::vector<std::vector<MethodId>> callees_;
  std::vector<std::vector<MethodId>> callers_;
  // (caller, callee) -> #sites, stored sparsely.
  std::vector<std::vector<std::pair<MethodId, std::size_t>>> multiplicity_;
};

/// Aggregate static metrics for one program.
struct ProgramMetrics {
  std::size_t num_methods = 0;
  std::size_t reachable_methods = 0;
  std::size_t bytecode_instructions = 0;
  std::size_t estimated_words = 0;
  std::size_t call_sites = 0;
  std::size_t recursive_methods = 0;
  std::size_t leaf_methods = 0;       ///< methods with no call sites
  std::size_t max_call_depth = 0;
  int min_method_words = 0;
  int max_method_words = 0;
  double mean_method_words = 0.0;
  /// Methods whose estimated size is below ALWAYS_INLINE_SIZE (11) /
  /// within (11, 23] / above CALLEE_MAX_SIZE (23) at the Jikes defaults —
  /// the split that decides what the default heuristic does with them.
  std::size_t always_inline_band = 0;
  std::size_t conditional_band = 0;
  std::size_t too_big_band = 0;
};

ProgramMetrics compute_metrics(const Program& prog);

/// Renders metrics as "key: value" lines.
std::string metrics_to_string(const ProgramMetrics& m);

}  // namespace ith::bc
