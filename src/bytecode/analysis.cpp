#include "bytecode/analysis.hpp"

#include <algorithm>
#include <deque>
#include <ostream>
#include <sstream>

#include "bytecode/size_estimator.hpp"
#include "support/error.hpp"

namespace ith::bc {

CallGraph::CallGraph(const Program& prog)
    : prog_(prog),
      callees_(prog.num_methods()),
      callers_(prog.num_methods()),
      multiplicity_(prog.num_methods()) {
  for (std::size_t mi = 0; mi < prog.num_methods(); ++mi) {
    const auto caller = static_cast<MethodId>(mi);
    for (std::size_t pc : prog.method(caller).call_sites()) {
      const MethodId callee = prog.method(caller).code()[pc].a;
      auto& mults = multiplicity_[mi];
      const auto it = std::find_if(mults.begin(), mults.end(),
                                   [callee](const auto& p) { return p.first == callee; });
      if (it == mults.end()) {
        mults.emplace_back(callee, 1);
        callees_[mi].push_back(callee);
        callers_[static_cast<std::size_t>(callee)].push_back(caller);
      } else {
        ++it->second;
      }
    }
  }
  for (auto& v : callees_) std::sort(v.begin(), v.end());
  for (auto& v : callers_) std::sort(v.begin(), v.end());
}

const std::vector<MethodId>& CallGraph::callees(MethodId m) const {
  ITH_CHECK(m >= 0 && static_cast<std::size_t>(m) < callees_.size(), "method id out of range");
  return callees_[static_cast<std::size_t>(m)];
}

const std::vector<MethodId>& CallGraph::callers(MethodId m) const {
  ITH_CHECK(m >= 0 && static_cast<std::size_t>(m) < callers_.size(), "method id out of range");
  return callers_[static_cast<std::size_t>(m)];
}

std::size_t CallGraph::multiplicity(MethodId m, MethodId callee) const {
  ITH_CHECK(m >= 0 && static_cast<std::size_t>(m) < multiplicity_.size(), "method id out of range");
  for (const auto& [c, n] : multiplicity_[static_cast<std::size_t>(m)]) {
    if (c == callee) return n;
  }
  return 0;
}

std::vector<MethodId> CallGraph::reachable_from_entry() const {
  std::vector<bool> seen(num_methods(), false);
  std::deque<MethodId> worklist{prog_.entry()};
  seen[static_cast<std::size_t>(prog_.entry())] = true;
  while (!worklist.empty()) {
    const MethodId m = worklist.front();
    worklist.pop_front();
    for (MethodId c : callees_[static_cast<std::size_t>(m)]) {
      if (!seen[static_cast<std::size_t>(c)]) {
        seen[static_cast<std::size_t>(c)] = true;
        worklist.push_back(c);
      }
    }
  }
  std::vector<MethodId> out;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) out.push_back(static_cast<MethodId>(i));
  }
  return out;
}

namespace {

/// Iterative Tarjan SCC (explicit stack: programs can have long chains).
struct TarjanState {
  const std::vector<std::vector<MethodId>>& adj;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<MethodId> stack;
  std::vector<std::vector<MethodId>> sccs;
  int next_index = 0;

  explicit TarjanState(const std::vector<std::vector<MethodId>>& a)
      : adj(a), index(a.size(), -1), lowlink(a.size(), 0), on_stack(a.size(), false) {}

  void run(MethodId root) {
    struct Frame {
      MethodId v;
      std::size_t child;
    };
    std::vector<Frame> call_stack{{root, 0}};
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      const auto v = static_cast<std::size_t>(fr.v);
      if (fr.child < adj[v].size()) {
        const MethodId w = adj[v][fr.child++];
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          index[wi] = lowlink[wi] = next_index++;
          stack.push_back(w);
          on_stack[wi] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[wi]) {
          lowlink[v] = std::min(lowlink[v], index[wi]);
        }
        continue;
      }
      // v finished: pop an SCC if v is a root.
      if (lowlink[v] == index[v]) {
        std::vector<MethodId> scc;
        for (;;) {
          const MethodId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          scc.push_back(w);
          if (w == fr.v) break;
        }
        std::sort(scc.begin(), scc.end());
        sccs.push_back(std::move(scc));
      }
      const MethodId finished = fr.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const auto parent = static_cast<std::size_t>(call_stack.back().v);
        lowlink[parent] =
            std::min(lowlink[parent], lowlink[static_cast<std::size_t>(finished)]);
      }
    }
  }
};

}  // namespace

std::vector<std::vector<MethodId>> CallGraph::sccs() const {
  TarjanState t(callees_);
  for (std::size_t i = 0; i < num_methods(); ++i) {
    if (t.index[i] == -1) t.run(static_cast<MethodId>(i));
  }
  return t.sccs;
}

bool CallGraph::is_recursive(MethodId m) const {
  const auto& direct = callees(m);
  if (std::find(direct.begin(), direct.end(), m) != direct.end()) return true;
  for (const auto& scc : sccs()) {
    if (scc.size() > 1 && std::find(scc.begin(), scc.end(), m) != scc.end()) return true;
  }
  return false;
}

std::size_t CallGraph::max_call_depth() const {
  // Depth over the SCC condensation: assign each method its SCC id, then
  // longest path from the entry's component. SCCs come out of Tarjan in
  // reverse topological order, so one backward sweep computes depths.
  const auto components = sccs();
  std::vector<std::size_t> comp_of(num_methods(), 0);
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (MethodId m : components[c]) comp_of[static_cast<std::size_t>(m)] = c;
  }
  // depth[c] = longest chain starting at component c (in components).
  std::vector<std::size_t> depth(components.size(), 1);
  for (std::size_t c = 0; c < components.size(); ++c) {  // reverse topo: callees first
    for (MethodId m : components[c]) {
      for (MethodId callee : callees(m)) {
        const std::size_t cc = comp_of[static_cast<std::size_t>(callee)];
        if (cc != c) depth[c] = std::max(depth[c], depth[cc] + 1);
      }
    }
  }
  return depth[comp_of[static_cast<std::size_t>(prog_.entry())]];
}

void CallGraph::to_dot(std::ostream& os) const {
  os << "digraph \"" << prog_.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (std::size_t i = 0; i < num_methods(); ++i) {
    const Method& m = prog_.method(static_cast<MethodId>(i));
    os << "  m" << i << " [label=\"" << m.name() << "\\n" << estimated_method_size(m) << "w\"";
    if (static_cast<MethodId>(i) == prog_.entry()) os << ", style=bold";
    os << "];\n";
  }
  for (std::size_t i = 0; i < num_methods(); ++i) {
    for (const auto& [callee, n] : multiplicity_[i]) {
      os << "  m" << i << " -> m" << callee;
      if (n > 1) os << " [label=\"x" << n << "\", penwidth=" << std::min<std::size_t>(1 + n / 2, 5) << "]";
      os << ";\n";
    }
  }
  os << "}\n";
}

ProgramMetrics compute_metrics(const Program& prog) {
  ProgramMetrics out;
  out.num_methods = prog.num_methods();
  const CallGraph cg(prog);
  out.reachable_methods = cg.reachable_from_entry().size();
  out.max_call_depth = cg.max_call_depth();

  // Jikes RVM default thresholds (see heuristics/inline_params.hpp); kept
  // as literals here so the IR library does not depend on the heuristics
  // library.
  constexpr int kAlwaysInlineSize = 11;
  constexpr int kCalleeMaxSize = 23;
  double word_sum = 0.0;
  for (std::size_t i = 0; i < prog.num_methods(); ++i) {
    const Method& m = prog.method(static_cast<MethodId>(i));
    out.bytecode_instructions += m.size();
    const int words = estimated_method_size(m);
    out.estimated_words += static_cast<std::size_t>(words);
    word_sum += words;
    if (i == 0) {
      out.min_method_words = out.max_method_words = words;
    } else {
      out.min_method_words = std::min(out.min_method_words, words);
      out.max_method_words = std::max(out.max_method_words, words);
    }
    out.call_sites += m.call_sites().size();
    if (m.call_sites().empty()) ++out.leaf_methods;
    if (cg.is_recursive(static_cast<MethodId>(i))) ++out.recursive_methods;
    if (words < kAlwaysInlineSize) {
      ++out.always_inline_band;
    } else if (words <= kCalleeMaxSize) {
      ++out.conditional_band;
    } else {
      ++out.too_big_band;
    }
  }
  out.mean_method_words = word_sum / static_cast<double>(prog.num_methods());
  return out;
}

std::string metrics_to_string(const ProgramMetrics& m) {
  std::ostringstream os;
  os << "methods: " << m.num_methods << " (" << m.reachable_methods << " reachable, "
     << m.leaf_methods << " leaves, " << m.recursive_methods << " recursive)\n";
  os << "bytecode: " << m.bytecode_instructions << " instructions, est. " << m.estimated_words
     << " machine words (method min/mean/max: " << m.min_method_words << "/"
     << m.mean_method_words << "/" << m.max_method_words << ")\n";
  os << "call sites: " << m.call_sites << ", max call depth: " << m.max_call_depth << "\n";
  os << "size bands at Jikes defaults: <ALWAYS " << m.always_inline_band << ", (ALWAYS,CALLEE] "
     << m.conditional_band << ", >CALLEE " << m.too_big_band << "\n";
  return os.str();
}

}  // namespace ith::bc
