// The minijvm stack-machine instruction set.
//
// The IR is deliberately small but complete enough to express the workload
// programs (loops, arithmetic, branching, calls, global-array data access)
// and to make inlining a *real* transformation: calls are ordinary
// instructions whose removal changes both the dynamic instruction stream and
// the static code size.
#pragma once

#include <cstdint>
#include <string_view>

namespace ith::bc {

enum class Op : std::uint8_t {
  kConst,   // push a                       (a = immediate value)
  kLoad,    // push locals[a]
  kStore,   // locals[a] = pop
  kAdd,     // push(pop() + pop())  -- operands in program order: lhs pushed first
  kSub,
  kMul,
  kDiv,     // division by zero yields 0 (total semantics keep programs deterministic)
  kMod,
  kNeg,     // push(-pop())
  kCmpLt,   // push(lhs < rhs ? 1 : 0)
  kCmpLe,
  kCmpEq,
  kCmpNe,
  kJmp,     // pc = a                       (a = absolute index into method code)
  kJz,      // if (pop() == 0) pc = a
  kJnz,     // if (pop() != 0) pc = a
  kCall,    // invoke method a with b arguments; args popped, result pushed
  kRet,     // return pop() to caller
  kGLoad,   // idx = pop(); push(globals[idx mod |globals|])
  kGStore,  // v = pop(); idx = pop(); globals[idx mod |globals|] = v
  kPop,     // discard top of stack (emitted by dead-store elimination)
  kNop,
  kHalt,    // stop the whole program (entry method only)
};

/// Number of distinct opcodes (for iteration/validation).
inline constexpr int kNumOps = static_cast<int>(Op::kHalt) + 1;

/// One IR instruction. `a` is the immediate / local slot / branch target /
/// callee method index depending on the opcode; `b` is the argument count
/// for kCall and unused otherwise.
struct Instruction {
  Op op = Op::kNop;
  std::int32_t a = 0;
  std::int32_t b = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Static per-opcode metadata.
struct OpInfo {
  std::string_view name;       // mnemonic used by the serializer
  int stack_delta;             // net operand-stack effect (kCall handled specially)
  bool is_branch;              // a is a branch target to rewrite when splicing
  bool is_terminator;          // control never falls through (kJmp/kRet/kHalt)
  int machine_words;           // estimated machine instructions when compiled
                               // (mirrors Jikes RVM's "estimated size of the
                               // generated machine code" used by the heuristic)
};

/// Metadata for `op`; throws ith::Error on an out-of-range opcode byte.
const OpInfo& op_info(Op op);

/// Mnemonic lookup for the parser; returns false if `name` is unknown.
bool op_from_name(std::string_view name, Op& out);

/// Net stack effect of `insn` (accounts for kCall's argument count).
int stack_effect(const Instruction& insn);

}  // namespace ith::bc
