#include "bytecode/serializer.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "bytecode/verifier.hpp"
#include "support/error.hpp"

namespace ith::bc {

void dump_program(const Program& prog, std::ostream& os) {
  os << "program name=" << prog.name() << " globals=" << prog.globals_size()
     << " entry=" << prog.method(prog.entry()).name() << "\n";
  for (const Method& m : prog.methods()) {
    os << "method " << m.name() << " args=" << m.num_args() << " locals=" << m.num_locals()
       << " {\n";
    for (const Instruction& insn : m.code()) {
      const OpInfo& info = op_info(insn.op);
      os << "  " << info.name;
      switch (insn.op) {
        case Op::kConst:
        case Op::kLoad:
        case Op::kStore:
          os << ' ' << insn.a;
          break;
        case Op::kJmp:
        case Op::kJz:
        case Op::kJnz:
          os << ' ' << insn.a;
          break;
        case Op::kCall:
          os << ' ' << prog.method(insn.a).name() << ' ' << insn.b;
          break;
        default:
          break;
      }
      os << '\n';
    }
    os << "}\n";
  }
}

std::string dump_program(const Program& prog) {
  std::ostringstream os;
  dump_program(prog, os);
  return os.str();
}

namespace {

struct PendingCall {
  MethodId method;
  std::size_t pc;
  std::string callee;
  int line;
};

[[noreturn]] void parse_fail(int line, const std::string& why) {
  throw Error("parse: line " + std::to_string(line) + ": " + why);
}

/// Extracts "key=value" from a token; throws on mismatch.
std::string expect_kv(const std::string& token, const std::string& key, int line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) parse_fail(line, "expected '" + key + "=...', got '" + token + "'");
  return token.substr(prefix.size());
}

long long to_int(const std::string& s, int line) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) parse_fail(line, "trailing characters in integer '" + s + "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    parse_fail(line, "not an integer: '" + s + "'");
  }
}

}  // namespace

Program parse_program(std::istream& is) {
  Program prog;
  std::string entry_name;
  std::vector<PendingCall> pending_calls;

  Method* current = nullptr;
  MethodId current_id = -1;
  std::string line;
  int lineno = 0;
  bool saw_header = false;

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank line
    if (tok[0] == '#') continue; // comment

    if (tok == "program") {
      if (saw_header) parse_fail(lineno, "duplicate program header");
      saw_header = true;
      std::string name_kv, globals_kv, entry_kv;
      if (!(ls >> name_kv >> globals_kv >> entry_kv)) parse_fail(lineno, "malformed program header");
      prog = Program(expect_kv(name_kv, "name", lineno),
                     static_cast<std::size_t>(to_int(expect_kv(globals_kv, "globals", lineno), lineno)));
      entry_name = expect_kv(entry_kv, "entry", lineno);
      continue;
    }

    if (tok == "method") {
      if (!saw_header) parse_fail(lineno, "method before program header");
      if (current != nullptr) parse_fail(lineno, "method inside unterminated method");
      std::string name, args_kv, locals_kv, brace;
      if (!(ls >> name >> args_kv >> locals_kv >> brace) || brace != "{") {
        parse_fail(lineno, "malformed method header");
      }
      const int args = static_cast<int>(to_int(expect_kv(args_kv, "args", lineno), lineno));
      const int locals = static_cast<int>(to_int(expect_kv(locals_kv, "locals", lineno), lineno));
      current_id = prog.add_method(Method(name, args, locals));
      current = &prog.mutable_method(current_id);
      continue;
    }

    if (tok == "}") {
      if (current == nullptr) parse_fail(lineno, "'}' outside a method");
      current = nullptr;
      continue;
    }

    // Ordinary instruction line.
    if (current == nullptr) parse_fail(lineno, "instruction outside a method");
    Op op;
    if (!op_from_name(tok, op)) parse_fail(lineno, "unknown opcode '" + tok + "'");
    Instruction insn{op, 0, 0};
    switch (op) {
      case Op::kConst:
      case Op::kLoad:
      case Op::kStore:
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz: {
        std::string a;
        if (!(ls >> a)) parse_fail(lineno, "missing operand");
        insn.a = static_cast<std::int32_t>(to_int(a, lineno));
        break;
      }
      case Op::kCall: {
        std::string callee, nargs;
        if (!(ls >> callee >> nargs)) parse_fail(lineno, "call needs 'callee nargs'");
        insn.a = -1;  // patched after all methods are known
        insn.b = static_cast<std::int32_t>(to_int(nargs, lineno));
        pending_calls.push_back({current_id, current->size(), callee, lineno});
        break;
      }
      default:
        break;
    }
    std::string extra;
    if (ls >> extra) parse_fail(lineno, "unexpected trailing token '" + extra + "'");
    current->append(insn);
  }

  if (!saw_header) throw Error("parse: missing program header");
  if (current != nullptr) throw Error("parse: unterminated method at end of input");

  for (const PendingCall& pc : pending_calls) {
    if (!prog.has_method(pc.callee)) parse_fail(pc.line, "call to unknown method '" + pc.callee + "'");
    prog.mutable_method(pc.method).mutable_code()[pc.pc].a = prog.find_method(pc.callee);
  }

  prog.set_entry(prog.find_method(entry_name));
  verify_program(prog);
  return prog;
}

Program parse_program(const std::string& text) {
  std::istringstream is(text);
  return parse_program(is);
}

}  // namespace ith::bc
