// Bytecode verifier: static well-formedness checks plus stack-shape
// inference. Both the VM (before loading) and the optimizer (after every
// transformation, in tests) rely on it — the inliner's correctness argument
// is "the verifier accepts its output and the interpreter computes the same
// values".
#pragma once

#include <cstddef>
#include <vector>

#include "bytecode/program.hpp"

namespace ith::bc {

/// Per-method verification artifacts.
struct MethodVerifyInfo {
  int max_stack = 0;             ///< deepest operand stack along any path
  std::size_t reachable = 0;     ///< number of reachable instructions
};

/// Verifies a single method against its program (call targets/arity).
/// Throws ith::Error with a precise location on the first violation.
MethodVerifyInfo verify_method(const Program& prog, MethodId id);

/// Verifies every method plus program-level rules (valid entry taking zero
/// arguments). Returns per-method info indexed by MethodId.
std::vector<MethodVerifyInfo> verify_program(const Program& prog);

}  // namespace ith::bc
