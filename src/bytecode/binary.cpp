#include "bytecode/binary.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "bytecode/verifier.hpp"
#include "support/error.hpp"

namespace ith::bc {

namespace {

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    ITH_CHECK(c != std::char_traits<char>::eof(), "binary: truncated varint");
    ITH_CHECK(shift < 64, "binary: varint too long");
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

void put_string(std::ostream& os, const std::string& s) {
  put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const std::uint64_t n = get_varint(is);
  ITH_CHECK(n <= 1 << 20, "binary: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  ITH_CHECK(static_cast<std::uint64_t>(is.gcount()) == n, "binary: truncated string");
  return s;
}

std::int32_t narrow32(std::int64_t v, const char* what) {
  ITH_CHECK(v >= std::numeric_limits<std::int32_t>::min() &&
                v <= std::numeric_limits<std::int32_t>::max(),
            std::string("binary: ") + what + " out of 32-bit range");
  return static_cast<std::int32_t>(v);
}

}  // namespace

void write_binary(const Program& prog, std::ostream& os) {
  os.write("ITHB", 4);
  put_varint(os, kBinaryFormatVersion);
  put_string(os, prog.name());
  put_varint(os, prog.globals_size());
  put_varint(os, static_cast<std::uint64_t>(prog.entry()));
  put_varint(os, prog.num_methods());
  for (const Method& m : prog.methods()) {
    put_string(os, m.name());
    put_varint(os, static_cast<std::uint64_t>(m.num_args()));
    put_varint(os, static_cast<std::uint64_t>(m.num_locals()));
    put_varint(os, m.size());
    for (const Instruction& insn : m.code()) {
      os.put(static_cast<char>(insn.op));
      put_varint(os, zigzag(insn.a));
      put_varint(os, zigzag(insn.b));
    }
  }
  ITH_CHECK(os.good(), "binary: write failed");
}

std::vector<std::uint8_t> to_binary(const Program& prog) {
  std::ostringstream os;
  write_binary(prog, os);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

Program read_binary(std::istream& is) {
  char magic[4] = {};
  is.read(magic, 4);
  ITH_CHECK(is.gcount() == 4 && std::string(magic, 4) == "ITHB", "binary: bad magic");
  const std::uint64_t version = get_varint(is);
  ITH_CHECK(version == kBinaryFormatVersion,
            "binary: unsupported version " + std::to_string(version));

  const std::string name = get_string(is);
  const auto globals = static_cast<std::size_t>(get_varint(is));
  const auto entry = static_cast<MethodId>(get_varint(is));
  const std::uint64_t num_methods = get_varint(is);
  ITH_CHECK(num_methods > 0 && num_methods <= 1 << 20, "binary: implausible method count");

  Program prog(name, globals);
  for (std::uint64_t mi = 0; mi < num_methods; ++mi) {
    const std::string mname = get_string(is);
    const auto args = static_cast<int>(get_varint(is));
    const auto locals = static_cast<int>(get_varint(is));
    Method m(mname, args, locals);
    const std::uint64_t code_len = get_varint(is);
    ITH_CHECK(code_len <= 1 << 24, "binary: implausible method length");
    for (std::uint64_t pc = 0; pc < code_len; ++pc) {
      const int opbyte = is.get();
      ITH_CHECK(opbyte != std::char_traits<char>::eof(), "binary: truncated code");
      ITH_CHECK(opbyte >= 0 && opbyte < kNumOps, "binary: unknown opcode byte");
      Instruction insn;
      insn.op = static_cast<Op>(opbyte);
      insn.a = narrow32(unzigzag(get_varint(is)), "operand a");
      insn.b = narrow32(unzigzag(get_varint(is)), "operand b");
      m.append(insn);
    }
    prog.add_method(std::move(m));
  }
  prog.set_entry(entry);
  verify_program(prog);
  return prog;
}

Program from_binary(const std::vector<std::uint8_t>& bytes) {
  std::istringstream is(std::string(bytes.begin(), bytes.end()));
  return read_binary(is);
}

}  // namespace ith::bc
