// Persistent evaluation cache: serializes an EvalCacheSnapshot (the
// SuiteEvaluator's signature->results map plus the quarantine) to a single
// binary file, so a later tuning run against the same evaluator
// configuration starts warm and skips every suite execution it has already
// paid for. Format "ITHEVC1": 8-byte magic, payload size, FNV-1a checksum,
// payload — the same tamper-evident envelope (and tmp+rename atomic
// publish) as the GA checkpoint in resilience/checkpoint.hpp.
//
// The configuration fingerprint inside the snapshot is what makes reuse
// safe: SuiteEvaluator::restore() refuses a snapshot whose fingerprint does
// not match the live evaluator, so a cache recorded under a different
// machine model / scenario / fault plan / workload set can never leak stale
// results into a run.
#pragma once

#include <string>

#include "tuner/evaluator.hpp"

namespace ith::tuner {

/// Writes the snapshot to `path` atomically (tmp file + rename): readers see
/// the old cache or the new one, never a torn file. Throws ith::Error on I/O
/// failure.
void save_eval_cache(const std::string& path, const EvalCacheSnapshot& snap);

/// Loads and validates a cache file. Throws ith::Error with a distinct
/// message for each failure mode: unopenable file, bad magic, truncation,
/// trailing bytes, checksum mismatch. Fingerprint compatibility is *not*
/// checked here — that is SuiteEvaluator::restore()'s job, against the live
/// configuration.
EvalCacheSnapshot load_eval_cache(const std::string& path);

}  // namespace ith::tuner
