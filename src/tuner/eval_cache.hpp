// Persistent evaluation cache: serializes an EvalCacheSnapshot (the
// SuiteEvaluator's signature->results map plus the quarantine) to a single
// binary file, so a later tuning run against the same evaluator
// configuration starts warm and skips every suite execution it has already
// paid for. Format "ITHEVC1": 8-byte magic, payload size, FNV-1a checksum,
// payload — the same tamper-evident envelope (and tmp+rename atomic
// publish) as the GA checkpoint in resilience/checkpoint.hpp.
//
// The configuration fingerprint inside the snapshot is what makes reuse
// safe: SuiteEvaluator::restore() refuses a snapshot whose fingerprint does
// not match the live evaluator, so a cache recorded under a different
// machine model / scenario / fault plan / workload set can never leak stale
// results into a run.
#pragma once

#include <string>

#include "tuner/evaluator.hpp"

namespace ith::tuner {

/// Writes the snapshot to `path` atomically (tmp file + rename): readers see
/// the old cache or the new one, never a torn file. Throws ith::Error on I/O
/// failure.
void save_eval_cache(const std::string& path, const EvalCacheSnapshot& snap);

/// Loads and validates a cache file. Throws ith::Error with a distinct
/// message for each failure mode: unopenable file, bad magic, truncation,
/// trailing bytes, checksum mismatch. Fingerprint compatibility is *not*
/// checked here — that is SuiteEvaluator::restore()'s job, against the live
/// configuration. A stale `path + ".tmp"` sibling (a partially written save
/// abandoned by a crash) is removed first — rename() already guarantees the
/// published file is whole, so the tmp is garbage by construction.
EvalCacheSnapshot load_eval_cache(const std::string& path);

/// Removes a stale `path + ".tmp"` left behind by a save that died between
/// write and rename. Returns true when one existed. load_eval_cache() calls
/// this itself; exposed so daemons can sweep before their first save too.
bool remove_stale_eval_cache_tmp(const std::string& path);

/// Wire encoding of one suite-run result vector (count + per-result
/// fields) — byte-identical to how snapshot entries embed results, and the
/// payload encoding the evaluation-service protocol ships per signature.
std::string encode_results(const std::vector<BenchmarkResult>& results);

/// Inverse of encode_results. Throws ith::Error on truncation or trailing
/// bytes.
std::vector<BenchmarkResult> decode_results(const std::string& bytes);

/// Federation: merging two snapshots of the same configuration.
struct SnapshotMergeStats {
  std::size_t added = 0;       ///< signatures only `src` knew
  std::size_t duplicates = 0;  ///< identical entries on both sides
  std::size_t conflicts = 0;   ///< same signature, different results bytes
};

/// Merges `src` into `dst`. Throws ith::Error when the fingerprints differ
/// (results from different configurations must never mix). Conflicting
/// entries — possible because host wall-clock budget verdicts are timing-
/// dependent — are resolved by a deterministic total order (fewest failed
/// benchmarks first, then smallest encoding), which makes federation
/// commutative and associative: any merge order of any snapshot set yields
/// one canonical cache. `dst`'s entries come out sorted by signature.
SnapshotMergeStats merge_eval_snapshots(EvalCacheSnapshot& dst, const EvalCacheSnapshot& src);

}  // namespace ith::tuner
