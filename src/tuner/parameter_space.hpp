// Genome <-> InlineParams mapping over the Table 1 search space.
//
// Under the Opt scenario no call site is ever profiled hot, so
// HOT_CALLEE_MAX_SIZE is dead ("NA" in Table 4) and the genome drops to four
// genes — searching a dead gene only adds noise.
//
// PARTIAL_MAX_HEAD_SIZE (the sixth dimension, not in the paper) is opt-in:
// genome arity stays positional — 4 genes = Table 1 base, 5 = +hot,
// 6 = +hot+partial — so every pre-existing checkpoint and seed genome keeps
// its meaning.
#pragma once

#include "ga/genome.hpp"
#include "heuristics/inline_params.hpp"

namespace ith::tuner {

/// The Table 1 search space. `include_hot_gene` = false for Opt-scenario
/// tuning (4 genes), true for Adapt (5 genes). `include_partial_gene` adds
/// PARTIAL_MAX_HEAD_SIZE as a sixth gene and requires the hot gene (the
/// genome encoding is positional, so a 5-gene genome always means +hot).
ga::GenomeSpace inline_param_space(bool include_hot_gene, bool include_partial_gene = false);

/// Decodes a genome (4, 5 or 6 genes, Table 1 order plus
/// PARTIAL_MAX_HEAD_SIZE). A 4-gene genome keeps the default
/// HOT_CALLEE_MAX_SIZE (it is never consulted under Opt); a genome without
/// the sixth gene keeps partial inlining off.
heur::InlineParams params_from_genome(const ga::Genome& g);

/// Encodes parameters as a genome of the requested arity.
ga::Genome genome_from_params(const heur::InlineParams& p, bool include_hot_gene,
                              bool include_partial_gene = false);

}  // namespace ith::tuner
