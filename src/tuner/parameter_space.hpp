// Genome <-> InlineParams mapping over the Table 1 search space.
//
// Under the Opt scenario no call site is ever profiled hot, so
// HOT_CALLEE_MAX_SIZE is dead ("NA" in Table 4) and the genome drops to four
// genes — searching a dead gene only adds noise.
#pragma once

#include "ga/genome.hpp"
#include "heuristics/inline_params.hpp"

namespace ith::tuner {

/// The Table 1 search space. `include_hot_gene` = false for Opt-scenario
/// tuning (4 genes), true for Adapt (5 genes).
ga::GenomeSpace inline_param_space(bool include_hot_gene);

/// Decodes a genome (4 or 5 genes, Table 1 order). A 4-gene genome keeps the
/// default HOT_CALLEE_MAX_SIZE (it is never consulted under Opt).
heur::InlineParams params_from_genome(const ga::Genome& g);

/// Encodes parameters as a genome of the requested arity.
ga::Genome genome_from_params(const heur::InlineParams& p, bool include_hot_gene);

}  // namespace ith::tuner
