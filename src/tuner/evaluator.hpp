// SuiteEvaluator: runs a benchmark suite under a candidate heuristic and
// reports per-benchmark running/total cycles. This is the expensive inner
// loop of tuning, so results are memoized by parameter value.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/machine.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

namespace ith::tuner {

struct BenchmarkResult {
  std::string name;
  std::uint64_t running_cycles = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t compile_cycles = 0;
  /// Verdict of the guarded run. When not ok(), the cycle fields are zero
  /// and fitness substitutes kFailurePenalty — never NaN/inf, never a throw.
  resilience::EvalOutcome outcome{};
  /// Guarded attempts consumed (1 = first try succeeded; 0 = quarantined,
  /// never run).
  int attempts = 1;
};

struct EvalConfig {
  rt::MachineModel machine = rt::pentium4_model();
  vm::Scenario scenario = vm::Scenario::kAdapt;
  int iterations = 2;          ///< the paper's "iterate at least twice"
  vm::VmConfig vm_config{};    ///< scenario field is overwritten per run
  /// Observability context. Non-owning, may be null (= tracing off, zero
  /// cost); must outlive the evaluator. Overwrites vm_config.obs, so every
  /// VM the evaluator spins up traces into the same sink. Categories: kEval
  /// (per-benchmark/per-suite spans, cache hit/miss/single-flight events).
  obs::Context* obs = nullptr;
  /// Extra guarded attempts per benchmark after a *retryable* failure —
  /// one whose verdict can change on retry: injected faults (the fault key
  /// mixes in the attempt number), wall-clock deadline misses, foreign
  /// crashes, and — when compile-inflation faults are armed — compile-cycle
  /// budget trips (the signature of an inflated compile). Other sim-domain
  /// failures (cycle/frame/arena budgets, runtime traps) are deterministic
  /// and final on the first attempt.
  int max_retries = 2;
};

class SuiteEvaluator {
 public:
  SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config);

  /// One memoized suite run. Shared ownership: the pointer (and everything
  /// it reaches) stays valid for as long as the caller holds it, even after
  /// the evaluator is destroyed — callers that previously held the old
  /// `const vector&` past the evaluator's lifetime were dangling.
  using Results = std::shared_ptr<const std::vector<BenchmarkResult>>;

  /// Runs every benchmark under the Figure 3/4 heuristic with `params`.
  /// Memoized — repeated calls with equal params return the *same* shared
  /// vector (pointer-identical). Concurrent calls with the same uncached
  /// params are single-flighted: one caller runs the suite, the others
  /// block until its result lands in the cache instead of recomputing it.
  ///
  /// Every benchmark executes under vm_config.budget via a guarded run:
  /// failures become penalized BenchmarkResults (see BenchmarkResult::
  /// outcome), never exceptions. Params whose suite still fails after the
  /// retry allowance are quarantined: later evaluations short-circuit to
  /// the penalized result without re-running anything.
  Results evaluate(const heur::InlineParams& params);

  /// Runs every benchmark under an arbitrary heuristic (not memoized).
  /// `fault_salt` differentiates fault-injection draws between logical
  /// evaluations (the memoized path salts with the params hash).
  std::vector<BenchmarkResult> evaluate_heuristic(heur::InlineHeuristic& h,
                                                  std::uint64_t fault_salt = 0) const;

  /// Results under the shipped default parameters (computed lazily once;
  /// the denominator for normalized figures and the balance factor).
  /// Always runs with fault injection suppressed — a chaos campaign must
  /// never corrupt the normalization baseline.
  Results default_results();

  const std::vector<wl::Workload>& suite() const { return suite_; }
  const EvalConfig& config() const { return config_; }
  std::size_t cache_size() const;
  /// Number of full-suite evaluations actually performed by evaluate()
  /// (cache hits and single-flight waiters excluded).
  std::uint64_t evaluations_performed() const;

  /// Quarantined parameter vectors, widened for checkpoint serialization.
  std::vector<std::vector<int>> quarantined_keys() const;
  /// Re-arms the quarantine from a checkpoint; entries with the wrong arity
  /// are ignored (a checkpoint from a different space fails its fingerprint
  /// check long before this).
  void preload_quarantine(const std::vector<std::vector<int>>& keys);

 private:
  /// Memoization key: the flattened parameter vector. Sized from
  /// InlineParams::kNumParams (not a literal) so growing InlineParams by a
  /// field can never silently alias cache entries — the sizeof bridge in
  /// inline_params.hpp refuses to compile until kNumParams (and with it
  /// this key) is widened too.
  using CacheKey = heur::InlineParams::Array;
  static_assert(std::tuple_size_v<CacheKey> == heur::InlineParams::kNumParams);

  /// The uncached evaluation path: every benchmark through guarded_run with
  /// the retry loop. `allow_faults` is false for the default-params baseline.
  std::vector<BenchmarkResult> run_suite(heur::InlineHeuristic& h, std::uint64_t fault_salt,
                                         bool allow_faults) const;

  std::vector<wl::Workload> suite_;
  EvalConfig config_;
  std::map<CacheKey, Results> cache_;
  /// Keys currently being evaluated by some thread; guarded by mu_.
  /// Waiters block on cv_ until the owning thread caches the result (or
  /// abandons the key by exception) rather than re-running the suite.
  std::set<CacheKey> in_flight_;
  /// Params whose suite failed even after retries; guarded by mu_.
  std::set<CacheKey> quarantine_;
  std::uint64_t evaluations_performed_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace ith::tuner
