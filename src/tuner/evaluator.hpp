// SuiteEvaluator: runs a benchmark suite under a candidate heuristic and
// reports per-benchmark running/total cycles. This is the expensive inner
// loop of tuning, so results are memoized — in two levels. Level 1 maps a
// parameter vector to its *decision signature* (a cheap static probe of
// every inline decision the params imply; see opt/decision_probe.hpp).
// Level 2 maps signatures to suite results. Distinct params that drive the
// optimizer to identical decisions collapse onto one signature, so only one
// of them ever pays for a real suite run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/machine.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

namespace ith::tuner {

struct BenchmarkResult {
  std::string name;
  std::uint64_t running_cycles = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t compile_cycles = 0;
  /// Verdict of the guarded run. When not ok(), the cycle fields are zero
  /// and fitness substitutes kFailurePenalty — never NaN/inf, never a throw.
  resilience::EvalOutcome outcome{};
  /// Guarded attempts consumed (1 = first try succeeded; 0 = quarantined,
  /// never run).
  int attempts = 1;
};

/// A shared evaluation backend (e.g. the evaluation daemon in src/service/).
/// The SuiteEvaluator consults it on every level-2 cache miss *before*
/// paying for a real suite run, and reports locally computed results back,
/// so many evaluator processes federate onto one result repository.
///
/// Implementations must be infallible from the evaluator's point of view:
/// connection loss, timeouts and protocol errors are absorbed internally
/// (returning "compute locally"), never thrown. Because suite results are a
/// pure function of the decision signature under a fixed configuration
/// fingerprint, serving a result from the backend instead of computing it
/// locally is bit-identical by construction.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Consults the shared cache for `sig`. May block while another process
  /// computes the same signature (cross-process single-flight). Returns the
  /// shared results on a hit; returns std::nullopt when this caller must
  /// compute locally, with `*lease` set to the lease token to hand back to
  /// publish() (0 = degraded / no daemon — publish becomes best-effort).
  virtual std::optional<std::vector<BenchmarkResult>> acquire(std::uint64_t sig,
                                                              std::uint64_t* lease) = 0;

  /// Reports a locally computed suite run back to the shared cache.
  /// Best-effort: a failure to publish costs other processes a duplicate
  /// evaluation, never correctness.
  virtual void publish(std::uint64_t sig, std::uint64_t lease,
                       const std::vector<BenchmarkResult>& results) = 0;
};

struct EvalConfig {
  rt::MachineModel machine = rt::pentium4_model();
  vm::Scenario scenario = vm::Scenario::kAdapt;
  int iterations = 2;          ///< the paper's "iterate at least twice"
  vm::VmConfig vm_config{};    ///< scenario field is overwritten per run
  /// Observability context. Non-owning, may be null (= tracing off, zero
  /// cost); must outlive the evaluator. Overwrites vm_config.obs, so every
  /// VM the evaluator spins up traces into the same sink. Categories: kEval
  /// (per-benchmark/per-suite spans, cache hit/miss/single-flight events,
  /// sig.probe spans).
  obs::Context* obs = nullptr;
  /// Shared evaluation backend. Non-owning, may be null (= fully local).
  /// Consulted by evaluate() on level-2 misses; never consulted by
  /// default_results(), whose baseline must always be computed locally with
  /// fault injection suppressed.
  EvalBackend* backend = nullptr;
  /// Extra guarded attempts per benchmark after a *retryable* failure —
  /// one whose verdict can change on retry: injected faults (the fault key
  /// mixes in the attempt number), wall-clock deadline misses, foreign
  /// crashes, and — when compile-inflation faults are armed — compile-cycle
  /// budget trips (the signature of an inflated compile). Other sim-domain
  /// failures (cycle/frame/arena budgets, runtime traps) are deterministic
  /// and final on the first attempt.
  int max_retries = 2;
};

/// Serializable image of the evaluator's signature-level state: every
/// signature with completed results plus the quarantine set, stamped with a
/// fingerprint of everything that could change what a suite run returns
/// (machine model, scenario, VM/optimizer configuration, fault plan,
/// workload programs). eval_cache.hpp persists this as an ITHEVC1 file.
struct EvalCacheSnapshot {
  std::uint64_t fingerprint = 0;
  struct Entry {
    std::uint64_t signature = 0;
    std::vector<BenchmarkResult> results;
  };
  std::vector<Entry> entries;
  std::vector<std::uint64_t> quarantined;
};

class SuiteEvaluator {
 public:
  SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config);

  /// Decision signature of one parameter vector over the whole suite: the
  /// level-2 cache key, the quarantine key, and the fault salt.
  using Signature = std::uint64_t;

  /// One memoized suite run. Shared ownership: the pointer (and everything
  /// it reaches) stays valid for as long as the caller holds it, even after
  /// the evaluator is destroyed — callers that previously held the old
  /// `const vector&` past the evaluator's lifetime were dangling.
  using Results = std::shared_ptr<const std::vector<BenchmarkResult>>;

  /// Runs every benchmark under the Figure 3/4 heuristic with `params`.
  /// Memoized by decision signature — calls whose params imply the same
  /// inline decisions (not merely equal params) return the *same* shared
  /// vector (pointer-identical) after one cheap probe. Concurrent calls
  /// with an uncached signature are single-flighted: one caller runs the
  /// suite, the others block until its result lands in the cache instead
  /// of recomputing it.
  ///
  /// Every benchmark executes under vm_config.budget via a guarded run:
  /// failures become penalized BenchmarkResults (see BenchmarkResult::
  /// outcome), never exceptions. Signatures whose suite still fails after
  /// the retry allowance are quarantined: later evaluations of *any* param
  /// vector mapping to that signature short-circuit to the penalized
  /// result without re-running anything.
  Results evaluate(const heur::InlineParams& params);

  /// Runs every benchmark under an arbitrary heuristic (not memoized).
  /// `fault_salt` differentiates fault-injection draws between logical
  /// evaluations (the memoized path salts with the decision signature, so
  /// signature-aliased params see identical fault draws).
  std::vector<BenchmarkResult> evaluate_heuristic(heur::InlineHeuristic& h,
                                                  std::uint64_t fault_salt = 0) const;

  /// Results under the shipped default parameters (computed lazily once;
  /// the denominator for normalized figures and the balance factor).
  /// Always runs with fault injection suppressed — a chaos campaign must
  /// never corrupt the normalization baseline.
  Results default_results();

  /// The level-1 lookup: memoized decision signature of `params`. Public
  /// because collapse statistics and tests want the mapping without paying
  /// for a suite run. First call per distinct params runs the probe (traced
  /// as a "sig.probe" kEval span; counters sig.probes / sig.collapsed /
  /// sig.overflow / sig.probe_us).
  Signature signature_of(const heur::InlineParams& params);

  const std::vector<wl::Workload>& suite() const { return suite_; }
  const EvalConfig& config() const { return config_; }
  std::size_t cache_size() const;
  /// Number of full-suite evaluations actually performed by evaluate()
  /// (cache hits, signature collapses and single-flight waiters excluded).
  std::uint64_t evaluations_performed() const;
  /// Distinct parameter vectors probed so far (level-1 size).
  std::size_t params_seen() const;
  /// Distinct decision signatures those params collapsed onto.
  std::size_t signatures_seen() const;

  /// Fingerprint of everything that determines suite results for a given
  /// signature. Snapshots carry it; restore() refuses a mismatch.
  std::uint64_t cache_fingerprint() const;

  /// Copies the completed signature->results entries and the quarantine
  /// set. In-flight evaluations are not included.
  EvalCacheSnapshot snapshot() const;
  /// Merges a snapshot produced by an identically-configured evaluator:
  /// restored entries satisfy later evaluate() calls without a run (and
  /// without counting as evaluations_performed). Throws ith::Error when the
  /// snapshot's fingerprint does not match cache_fingerprint().
  void restore(const EvalCacheSnapshot& snap);

  /// Quarantined signatures, widened for checkpoint serialization (two
  /// ints per signature: low word, high word).
  std::vector<std::vector<int>> quarantined_keys() const;
  /// Re-arms the quarantine from a checkpoint; entries with the wrong arity
  /// are ignored (this silently drops quarantine entries from pre-signature
  /// checkpoints, which merely costs a re-evaluation).
  void preload_quarantine(const std::vector<std::vector<int>>& keys);

  /// Lifts the quarantine on `sig` and drops its cached (penalized) results
  /// so the next evaluate() of any aliasing params performs a fresh guarded
  /// run. Returns true when the signature was actually quarantined. This is
  /// the online tuner's retry path: the quarantine is keyed on signature,
  /// so a seed genome quarantined by a transient fault would otherwise pin
  /// every later retune of that genome to the penalty result forever —
  /// starvation, since the controller can never observe it recovering.
  /// No-op (returns false) while the signature is in flight.
  bool release_quarantine(Signature sig);

  /// True while `sig` is in the quarantine set.
  bool is_quarantined(Signature sig) const;

 private:
  /// Level-1 key: the flattened parameter vector. Sized from
  /// InlineParams::kNumParams (not a literal) so growing InlineParams by a
  /// field can never silently alias cache entries — the sizeof bridge in
  /// inline_params.hpp refuses to compile until kNumParams (and with it
  /// this key) is widened too.
  using ParamKey = heur::InlineParams::Array;
  static_assert(std::tuple_size_v<ParamKey> == heur::InlineParams::kNumParams);

  /// The uncached evaluation path: every benchmark through guarded_run with
  /// the retry loop. `allow_faults` is false for the default-params baseline.
  std::vector<BenchmarkResult> run_suite(heur::InlineHeuristic& h, std::uint64_t fault_salt,
                                         bool allow_faults) const;

  /// Shared single-flight body of evaluate()/default_results(): looks up /
  /// claims `sig`, consulting the shared backend (when `allow_backend`) and
  /// running `compute` only when this caller owns the miss.
  Results evaluate_signature(Signature sig, bool allow_quarantine, bool allow_backend,
                             const std::function<std::vector<BenchmarkResult>()>& compute,
                             const std::function<void(const char*)>& cache_event);

  std::vector<wl::Workload> suite_;
  EvalConfig config_;
  std::map<ParamKey, Signature> param_sigs_;  ///< level 1; guarded by mu_
  std::map<Signature, Results> cache_;        ///< level 2; guarded by mu_
  /// Signatures currently being evaluated by some thread; guarded by mu_.
  /// Waiters block on cv_ until the owning thread caches the result (or
  /// abandons the signature by exception) rather than re-running the suite.
  std::set<Signature> in_flight_;
  /// Signatures whose suite failed even after retries; guarded by mu_.
  std::set<Signature> quarantine_;
  std::uint64_t evaluations_performed_ = 0;
  mutable std::optional<std::uint64_t> fingerprint_;  ///< guarded by mu_
  mutable std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace ith::tuner
