#include "tuner/report.hpp"

#include <ostream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/statistics.hpp"

namespace ith::tuner {

std::vector<ComparisonRow> compare_results(const std::vector<BenchmarkResult>& candidate,
                                           const std::vector<BenchmarkResult>& baseline) {
  ITH_CHECK(candidate.size() == baseline.size() && !candidate.empty(),
            "compare_results: parallel non-empty vectors required");
  std::vector<ComparisonRow> rows;
  rows.reserve(candidate.size());
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    ITH_CHECK(candidate[i].name == baseline[i].name, "compare_results: benchmark order mismatch");
    ITH_CHECK(baseline[i].running_cycles > 0 && baseline[i].total_cycles > 0,
              "compare_results: zero baseline for " + baseline[i].name);
    rows.push_back(ComparisonRow{
        candidate[i].name,
        static_cast<double>(candidate[i].running_cycles) /
            static_cast<double>(baseline[i].running_cycles),
        static_cast<double>(candidate[i].total_cycles) /
            static_cast<double>(baseline[i].total_cycles)});
  }
  return rows;
}

ComparisonRow average_row(const std::vector<ComparisonRow>& rows) {
  ITH_CHECK(!rows.empty(), "average of no rows");
  std::vector<double> running, total;
  running.reserve(rows.size());
  total.reserve(rows.size());
  for (const ComparisonRow& r : rows) {
    running.push_back(r.running_ratio);
    total.push_back(r.total_ratio);
  }
  return ComparisonRow{"average", mean(running), mean(total)};
}

Table comparison_table(const std::vector<ComparisonRow>& rows) {
  Table t({"benchmark", "running (norm)", "total (norm)", "running red.", "total red."});
  for (const ComparisonRow& r : rows) {
    t.add_row({r.name, cell_ratio(r.running_ratio), cell_ratio(r.total_ratio),
               cell_percent(percent_reduction(r.running_ratio)),
               cell_percent(percent_reduction(r.total_ratio))});
  }
  const ComparisonRow avg = average_row(rows);
  t.add_rule();
  t.add_row({avg.name, cell_ratio(avg.running_ratio), cell_ratio(avg.total_ratio),
             cell_percent(percent_reduction(avg.running_ratio)),
             cell_percent(percent_reduction(avg.total_ratio))});
  return t;
}

void write_comparison_csv(std::ostream& os, const std::vector<ComparisonRow>& rows) {
  CsvWriter csv(os);
  csv.write_row({"benchmark", "running_norm", "total_norm"});
  for (const ComparisonRow& r : rows) {
    csv.write_row({r.name, cell(r.running_ratio, 6), cell(r.total_ratio, 6)});
  }
  const ComparisonRow avg = average_row(rows);
  csv.write_row({avg.name, cell(avg.running_ratio, 6), cell(avg.total_ratio, 6)});
}

}  // namespace ith::tuner
