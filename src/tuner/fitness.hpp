// The paper's fitness functions (section 3.1):
//
//   Perf(S) = |S|-th root of prod_{s in S} Perf(s)        (geometric mean)
//
// with Perf(s) one of:
//   Running  — running time of s
//   Total    — total (running + compile) time of s
//   Balance  — factor * Running(s) + Total(s),
//              factor = Total(s_def) / Running(s_def) under the default
//              heuristic, so both terms carry comparable weight.
//
// Each benchmark's metric is normalized by its default-heuristic value
// before the geomean; this changes the fitness only by a constant factor
// (geomean is multiplicative) but keeps values interpretable (1.0 == as
// good as the default).
#pragma once

#include "ga/ga.hpp"
#include "tuner/evaluator.hpp"

namespace ith::tuner {

enum class Goal { kRunning, kTotal, kBalance };

const char* goal_name(Goal g);

/// Normalized metric assigned to a benchmark whose guarded run failed
/// (budget exceeded, trap, crash, quarantined): 10x the default heuristic —
/// decisively worse than any real measurement, but finite, so the geomean
/// stays well-ordered and the GA ranks failing genomes below every genome
/// that actually runs. Never NaN, never inf, never an exception.
inline constexpr double kFailurePenalty = 10.0;

/// Perf(s) for one benchmark under `goal`, given its default-heuristic
/// measurements (used for the balance factor).
double benchmark_metric(Goal goal, const BenchmarkResult& candidate,
                        const BenchmarkResult& with_default);

/// The full Perf(S) fitness: geometric mean of normalized per-benchmark
/// metrics. Lower is better; 1.0 matches the default heuristic.
double suite_fitness(Goal goal, const std::vector<BenchmarkResult>& candidate,
                     const std::vector<BenchmarkResult>& with_default);

/// Wraps a SuiteEvaluator as a GA fitness function over inline-parameter
/// genomes (4 or 5 genes). The evaluator must outlive the returned callable.
ga::FitnessFn make_fitness(SuiteEvaluator& evaluator, Goal goal);

}  // namespace ith::tuner
