#include "tuner/fitness.hpp"

#include "support/error.hpp"
#include "support/statistics.hpp"
#include "tuner/parameter_space.hpp"

namespace ith::tuner {

const char* goal_name(Goal g) {
  switch (g) {
    case Goal::kRunning: return "running";
    case Goal::kTotal: return "total";
    case Goal::kBalance: return "balance";
  }
  return "?";
}

double benchmark_metric(Goal goal, const BenchmarkResult& candidate,
                        const BenchmarkResult& with_default) {
  ITH_CHECK(with_default.running_cycles > 0 && with_default.total_cycles > 0,
            "default-heuristic baseline has zero time for " + with_default.name);
  // Failed guarded runs report zero cycles — checked *before* any cycle
  // math, or a budget-killed genome would look infinitely fast.
  if (!candidate.outcome.ok()) return kFailurePenalty;
  switch (goal) {
    case Goal::kRunning:
      return static_cast<double>(candidate.running_cycles) /
             static_cast<double>(with_default.running_cycles);
    case Goal::kTotal:
      return static_cast<double>(candidate.total_cycles) /
             static_cast<double>(with_default.total_cycles);
    case Goal::kBalance: {
      // factor = Total(s_def) / Running(s_def); metric = factor * Running + Total,
      // normalized by its own value under the default heuristic
      // (factor * Running_def + Total_def = 2 * Total_def).
      const double factor = static_cast<double>(with_default.total_cycles) /
                            static_cast<double>(with_default.running_cycles);
      const double raw = factor * static_cast<double>(candidate.running_cycles) +
                         static_cast<double>(candidate.total_cycles);
      return raw / (2.0 * static_cast<double>(with_default.total_cycles));
    }
  }
  throw Error("unknown goal");
}

double suite_fitness(Goal goal, const std::vector<BenchmarkResult>& candidate,
                     const std::vector<BenchmarkResult>& with_default) {
  ITH_CHECK(candidate.size() == with_default.size() && !candidate.empty(),
            "fitness: result vectors must be parallel and non-empty");
  std::vector<double> metrics;
  metrics.reserve(candidate.size());
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    ITH_CHECK(candidate[i].name == with_default[i].name, "fitness: benchmark order mismatch");
    metrics.push_back(benchmark_metric(goal, candidate[i], with_default[i]));
  }
  return geomean(metrics);
}

ga::FitnessFn make_fitness(SuiteEvaluator& evaluator, Goal goal) {
  // Force the baseline once up front so concurrent fitness calls only read.
  // Captured by value: the shared_ptr keeps the baseline alive for the
  // closure's whole lifetime, independent of the evaluator's cache.
  const SuiteEvaluator::Results defaults = evaluator.default_results();
  return [&evaluator, defaults, goal](const ga::Genome& g) {
    const heur::InlineParams params = params_from_genome(g);
    return suite_fitness(goal, *evaluator.evaluate(params), *defaults);
  };
}

}  // namespace ith::tuner
