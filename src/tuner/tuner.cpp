#include "tuner/tuner.hpp"

#include "resilience/checkpoint.hpp"
#include "tuner/parameter_space.hpp"

namespace ith::tuner {

TuneResult tune(SuiteEvaluator& evaluator, Goal goal, ga::GaConfig ga_config,
                const TuneCheckpointOptions& checkpoint, bool include_partial_gene) {
  const bool include_hot =
      include_partial_gene || evaluator.config().scenario == vm::Scenario::kAdapt;
  ga::GenomeSpace space = inline_param_space(include_hot, include_partial_gene);

  resilience::GaCheckpoint resume_state;  // must outlive algo.run()
  if (!checkpoint.path.empty()) {
    ga_config.journal = [path = checkpoint.path](const resilience::GaCheckpoint& cp) {
      resilience::save_checkpoint(path, cp);
    };
    ga_config.checkpoint_every = checkpoint.every;
    ga_config.quarantine_source = [&evaluator] { return evaluator.quarantined_keys(); };
    if (checkpoint.resume) {
      resume_state = resilience::load_checkpoint(checkpoint.path);
      evaluator.preload_quarantine(resume_state.quarantine);
      ga_config.resume_from = &resume_state;
    }
  }

  // Per-generation signature-collapse statistics: how many distinct param
  // vectors the GA has asked about versus how many distinct decision
  // signatures (= real suite runs, at most) they collapsed onto.
  ga_config.generation_args = [&evaluator](std::vector<obs::Arg>& args) {
    const std::uint64_t params_seen = evaluator.params_seen();
    const std::uint64_t sigs_seen = evaluator.signatures_seen();
    args.push_back({"distinct_params", params_seen});
    args.push_back({"distinct_signatures", sigs_seen});
    args.push_back({"collapse_ratio", sigs_seen == 0 ? 1.0
                                                     : static_cast<double>(params_seen) /
                                                           static_cast<double>(sigs_seen)});
  };

  ga::GeneticAlgorithm algo(space, make_fitness(evaluator, goal), ga_config);
  if (checkpoint.on_generation) algo.set_progress(checkpoint.on_generation);
  TuneResult result;
  result.ga = algo.run();
  result.best = params_from_genome(result.ga.best);
  result.best_fitness = result.ga.best_fitness;
  if (ga_config.obs != nullptr) {
    const std::uint64_t params_seen = evaluator.params_seen();
    const std::uint64_t sigs_seen = evaluator.signatures_seen();
    ga_config.obs->counter("ga.distinct_params").add(params_seen);
    ga_config.obs->counter("ga.distinct_signatures").add(sigs_seen);
    ga_config.obs->counter("ga.evaluations_saved").add(params_seen - sigs_seen);
  }
  return result;
}

ga::GaConfig default_ga_config(int generations, std::uint64_t seed) {
  ga::GaConfig cfg;
  cfg.population = 20;
  cfg.generations = generations;
  cfg.seed = seed;
  cfg.threads = 1;
  cfg.memoize = true;
  cfg.patience = 10;
  return cfg;
}

}  // namespace ith::tuner
