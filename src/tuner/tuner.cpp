#include "tuner/tuner.hpp"

#include "tuner/parameter_space.hpp"

namespace ith::tuner {

TuneResult tune(SuiteEvaluator& evaluator, Goal goal, ga::GaConfig ga_config) {
  const bool include_hot = evaluator.config().scenario == vm::Scenario::kAdapt;
  ga::GenomeSpace space = inline_param_space(include_hot);
  ga::GeneticAlgorithm algo(space, make_fitness(evaluator, goal), ga_config);
  TuneResult result;
  result.ga = algo.run();
  result.best = params_from_genome(result.ga.best);
  result.best_fitness = result.ga.best_fitness;
  return result;
}

ga::GaConfig default_ga_config(int generations, std::uint64_t seed) {
  ga::GaConfig cfg;
  cfg.population = 20;
  cfg.generations = generations;
  cfg.seed = seed;
  cfg.threads = 1;
  cfg.memoize = true;
  cfg.patience = 10;
  return cfg;
}

}  // namespace ith::tuner
