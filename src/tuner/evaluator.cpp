#include "tuner/evaluator.hpp"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "opt/decision_probe.hpp"
#include "resilience/guard.hpp"
#include "support/error.hpp"

namespace ith::tuner {

namespace {

/// A failure is worth retrying only if its verdict can change on a later
/// attempt: injected faults (the fault key mixes in the attempt number),
/// host wall-clock misses (timing), and foreign crashes. Sim-domain budget
/// trips and runtime traps are deterministic — same program, same budget,
/// same verdict — with one exception: when compile-inflation faults are
/// armed, a compile-cycle trip is the *signature* of an inflated compile
/// (that is how the fault manifests), so it is transient and retried too.
bool retryable(const resilience::EvalOutcome& o, bool compile_faults_armed) {
  return o.trap == resilience::TrapKind::kInjected ||
         o.budget == resilience::BudgetKind::kWallClock ||
         o.kind == resilience::OutcomeKind::kCrash ||
         (compile_faults_armed && o.budget == resilience::BudgetKind::kCompileCycles);
}

const char* outcome_counter(const resilience::EvalOutcome& o) {
  switch (o.kind) {
    case resilience::OutcomeKind::kOk: return "resil.outcome.ok";
    case resilience::OutcomeKind::kBudgetExceeded: return "resil.outcome.budget";
    case resilience::OutcomeKind::kTrap: return "resil.outcome.trap";
    case resilience::OutcomeKind::kCrash: return "resil.outcome.crash";
  }
  return "resil.outcome.crash";
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) { return resilience::mix_keys(h, v); }

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return mix_u64(h, bits);
}

std::uint64_t hash_program(const bc::Program& prog) {
  std::uint64_t h = resilience::hash_string(prog.name());
  h = mix_u64(h, prog.globals_size());
  h = mix_u64(h, static_cast<std::uint64_t>(prog.entry()));
  for (const bc::Method& m : prog.methods()) {
    h = mix_u64(h, resilience::hash_string(m.name()));
    h = mix_u64(h, static_cast<std::uint64_t>(m.num_args()));
    h = mix_u64(h, static_cast<std::uint64_t>(m.num_locals()));
    for (const bc::Instruction& insn : m.code()) {
      h = mix_u64(h, static_cast<std::uint64_t>(insn.op));
      h = mix_u64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.a)));
      h = mix_u64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.b)));
    }
  }
  return h;
}

}  // namespace

SuiteEvaluator::SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config)
    : suite_(std::move(suite)), config_(config) {
  ITH_CHECK(!suite_.empty(), "evaluator needs a non-empty suite");
  ITH_CHECK(config_.iterations >= 1, "need at least one iteration");
  ITH_CHECK(config_.max_retries >= 0, "max_retries must be >= 0");
  config_.vm_config.scenario = config_.scenario;
  config_.vm_config.obs = config_.obs;
}

std::vector<BenchmarkResult> SuiteEvaluator::run_suite(heur::InlineHeuristic& h,
                                                       std::uint64_t fault_salt,
                                                       bool allow_faults) const {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  obs::ScopedSpan suite_span(obs, obs::Category::kEval, "eval.suite",
                             trace ? std::vector<obs::Arg>{{"benchmarks", suite_.size()}}
                                   : std::vector<obs::Arg>{});
  const resilience::FaultPlan* const plan = allow_faults ? config_.vm_config.faults : nullptr;
  const bool compile_faults = plan != nullptr && plan->armed() &&
                              plan->enabled(resilience::FaultSite::kCompileInflate);
  std::vector<BenchmarkResult> results;
  results.reserve(suite_.size());
  for (const wl::Workload& w : suite_) {
    const std::uint64_t t0 = trace ? obs->host_now_us() : 0;
    BenchmarkResult br;
    br.name = w.name;

    const int max_attempts = 1 + config_.max_retries;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      vm::VmConfig cfg = config_.vm_config;
      if (!allow_faults) cfg.faults = nullptr;
      cfg.fault_key = resilience::mix_keys(
          fault_salt, resilience::mix_keys(resilience::hash_string(w.name),
                                           static_cast<std::uint64_t>(attempt)));

      resilience::GuardedRun gr;
      if (cfg.faults != nullptr &&
          cfg.faults->should_inject(resilience::FaultSite::kEvaluator, cfg.fault_key)) {
        gr.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected,
                                                        "injected evaluator fault");
      } else {
        gr = resilience::guarded_run(w.program, config_.machine, h, cfg, config_.iterations);
      }

      br.attempts = attempt + 1;
      br.outcome = gr.outcome;
      if (gr.outcome.ok()) {
        br.running_cycles = gr.result.running_cycles;
        br.total_cycles = gr.result.total_cycles;
        br.compile_cycles = gr.result.compile_cycles_all;
        break;
      }
      if (attempt + 1 < max_attempts && retryable(gr.outcome, compile_faults)) {
        if (obs != nullptr) obs->counter("resil.retries").add(1);
        continue;
      }
      break;  // final failure: penalized result (cycle fields stay zero)
    }

    if (obs != nullptr) obs->counter(outcome_counter(br.outcome)).add(1);
    if (trace) {
      obs->complete(obs::Category::kEval, "eval.bench", obs::Domain::kHost, t0,
                    obs->host_now_us() - t0,
                    {{"bench", w.name},
                     {"running_cycles", br.running_cycles},
                     {"total_cycles", br.total_cycles},
                     {"compile_cycles", br.compile_cycles},
                     {"outcome", br.outcome.to_string()},
                     {"attempts", br.attempts}});
    }
    results.push_back(std::move(br));
  }
  return results;
}

std::vector<BenchmarkResult> SuiteEvaluator::evaluate_heuristic(heur::InlineHeuristic& h,
                                                                std::uint64_t fault_salt) const {
  return run_suite(h, fault_salt, /*allow_faults=*/true);
}

SuiteEvaluator::Signature SuiteEvaluator::signature_of(const heur::InlineParams& params) {
  const ParamKey key = params.to_array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = param_sigs_.find(key);
    if (it != param_sigs_.end()) return it->second;
  }

  // Probe outside the lock: the signature is a pure function of (program,
  // params, limits), so a concurrent duplicate probe lands the same value.
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  const std::uint64_t t0 = obs != nullptr ? obs->host_now_us() : 0;

  Signature sig = resilience::hash_string("ith-suite-signature-v1");
  bool exact = true;
  std::uint64_t consultations = 0;
  std::uint64_t forks = 0;
  const opt::PipelineDesc pipeline =
      config_.vm_config.pipeline ? *config_.vm_config.pipeline
                                 : opt::pipeline_from_options(config_.vm_config.opt_options);
  if (!pipeline.has_pass("inline")) {
    // Without an inline pass the heuristic is never consulted: every
    // parameter vector compiles identically, so all params share one
    // signature.
    sig = mix_u64(sig, resilience::hash_string("inlining-disabled"));
  } else {
    opt::SignatureOptions opts;
    opts.adaptive = config_.scenario == vm::Scenario::kAdapt;
    for (const wl::Workload& w : suite_) {
      const opt::SignatureResult r =
          opt::decision_signature(w.program, params, config_.vm_config.inline_limits, opts);
      sig = mix_u64(sig, r.value);
      exact = exact && r.exact;
      consultations += r.consultations;
      forks += r.forks;
    }
  }

  if (obs != nullptr) {
    const std::uint64_t dur = obs->host_now_us() - t0;
    obs->counter("sig.probes").add(1);
    obs->counter("sig.probe_us").add(dur);
    if (!exact) obs->counter("sig.overflow").add(1);
    if (trace) {
      obs->complete(obs::Category::kEval, "sig.probe", obs::Domain::kHost, t0, dur,
                    {{"params", params.to_string()},
                     {"signature", static_cast<std::int64_t>(sig)},
                     {"consultations", consultations},
                     {"forks", forks},
                     {"exact", exact}});
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, fresh] = param_sigs_.emplace(key, sig);
  if (fresh && obs != nullptr) {
    bool collapsed = false;
    for (const auto& [other_key, other_sig] : param_sigs_) {
      if (other_sig == sig && other_key != key) {
        collapsed = true;
        break;
      }
    }
    if (collapsed) obs->counter("sig.collapsed").add(1);
  }
  return it->second;
}

SuiteEvaluator::Results SuiteEvaluator::evaluate_signature(
    Signature sig, bool allow_quarantine, bool allow_backend,
    const std::function<std::vector<BenchmarkResult>()>& compute,
    const std::function<void(const char*)>& cache_event) {
  obs::Context* const obs = config_.obs;
  bool quarantined = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
      const auto it = cache_.find(sig);
      if (it != cache_.end()) {
        cache_event(waited ? "eval.singleflight_wait" : "eval.cache_hit");
        return it->second;
      }
      // Single-flight: if another thread is already evaluating this
      // signature, wait for its result instead of running the whole suite
      // again.
      if (in_flight_.find(sig) == in_flight_.end()) break;
      waited = true;
      cv_.wait(lock);
    }
    in_flight_.insert(sig);
    quarantined = allow_quarantine && quarantine_.find(sig) != quarantine_.end();
  }

  // From here until the signature is cached, *any* exit — including a
  // throwing trace sink inside cache_event or the compute body — must
  // release it, or single-flight waiters block forever. RAII, not a catch
  // block, so no path can be missed. (Local classes have the enclosing
  // member function's access rights, hence the private member touches.)
  struct InFlightRelease {
    SuiteEvaluator* self;
    Signature sig;
    bool armed = true;
    ~InFlightRelease() {
      if (!armed) return;
      std::lock_guard<std::mutex> lock(self->mu_);
      self->in_flight_.erase(sig);
      self->cv_.notify_all();
    }
  } release{this, sig};

  const auto quarantine_if_failed = [&](const std::vector<BenchmarkResult>& rs) {
    const bool any_failed = std::any_of(rs.begin(), rs.end(),
                                        [](const BenchmarkResult& r) { return !r.outcome.ok(); });
    if (allow_quarantine && any_failed) {
      if (obs != nullptr) obs->counter("resil.quarantined").add(1);
      std::lock_guard<std::mutex> lock(mu_);
      quarantine_.insert(sig);
    }
  };

  std::vector<BenchmarkResult> results;
  bool have_results = false;
  std::uint64_t backend_lease = 0;
  if (quarantined) {
    if (obs != nullptr) obs->counter("resil.quarantine_hits").add(1);
    results.reserve(suite_.size());
    for (const wl::Workload& w : suite_) {
      BenchmarkResult br;
      br.name = w.name;
      br.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kRuntime,
                                                      "quarantined");
      br.attempts = 0;
      results.push_back(std::move(br));
    }
    have_results = true;
  } else if (allow_backend && config_.backend != nullptr) {
    // Shared-cache consult first: another process may have already paid for
    // this signature (or be computing it right now — acquire blocks through
    // the daemon's cross-process single-flight). The served bytes are
    // bit-identical to a local run under the matching fingerprint, so the
    // quarantine decision mirrors the local path exactly.
    if (std::optional<std::vector<BenchmarkResult>> remote =
            config_.backend->acquire(sig, &backend_lease)) {
      cache_event("eval.remote_hit");
      results = std::move(*remote);
      quarantine_if_failed(results);
      have_results = true;
    }
  }
  if (!have_results) {
    cache_event("eval.cache_miss");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++evaluations_performed_;
    }
    results = compute();
    quarantine_if_failed(results);
    // Report the freshly paid-for run back to the fleet, failures included
    // (the daemon runs the same quarantine rule server-side). Best-effort:
    // the backend absorbs I/O errors.
    if (allow_backend && config_.backend != nullptr) {
      config_.backend->publish(sig, backend_lease, results);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  release.armed = false;  // the guard would deadlock re-locking mu_ from here
  in_flight_.erase(sig);
  // Notify before emplace: if the insert throws, woken waiters re-check
  // under this same lock and simply become the new owner — no missed wakeup.
  cv_.notify_all();
  return cache_.emplace(sig, std::make_shared<std::vector<BenchmarkResult>>(std::move(results)))
      .first->second;
}

SuiteEvaluator::Results SuiteEvaluator::evaluate(const heur::InlineParams& params) {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  const Signature sig = signature_of(params);
  const auto cache_event = [&](const char* what) {
    if (trace) {
      obs->instant(obs::Category::kEval, what, obs::Domain::kHost, obs->host_now_us(),
                   {{"params", params.to_string()}, {"signature", static_cast<std::int64_t>(sig)}});
    }
    if (obs != nullptr) {
      obs->counter(what).add(1);
      obs->counter(std::string_view(what) == "eval.cache_miss" ? "sig.misses" : "sig.hits").add(1);
    }
  };
  // The fault salt is the *signature*, not the raw params: aliased param
  // vectors must see identical fault draws, or a transient fault could make
  // "behaviourally equivalent" genomes observably different.
  return evaluate_signature(sig, /*allow_quarantine=*/true, /*allow_backend=*/true,
                            [&] {
                              heur::JikesHeuristic h(params);
                              return run_suite(h, sig, /*allow_faults=*/true);
                            },
                            cache_event);
}

SuiteEvaluator::Results SuiteEvaluator::default_results() {
  const heur::InlineParams params = heur::default_params();
  const Signature sig = signature_of(params);
  // Faults suppressed: the baseline is the denominator of every normalized
  // figure, so a chaos campaign must never see a penalized default run. The
  // quarantine is bypassed for the same reason (a quarantined signature
  // aliasing the defaults must not poison the baseline); no cache events
  // are emitted, matching the historical behaviour of this path.
  return evaluate_signature(sig, /*allow_quarantine=*/false, /*allow_backend=*/false,
                            [&, params] {
                              heur::JikesHeuristic h(params);
                              return run_suite(h, sig, /*allow_faults=*/false);
                            },
                            [](const char*) {});
}

std::size_t SuiteEvaluator::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::uint64_t SuiteEvaluator::evaluations_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_performed_;
}

std::size_t SuiteEvaluator::params_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return param_sigs_.size();
}

std::size_t SuiteEvaluator::signatures_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<Signature> distinct;
  for (const auto& [key, sig] : param_sigs_) distinct.insert(sig);
  return distinct.size();
}

std::uint64_t SuiteEvaluator::cache_fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint_.has_value()) return *fingerprint_;

  std::uint64_t fp = resilience::hash_string("ith-eval-cache-v1");
  const rt::MachineModel& m = config_.machine;
  fp = mix_u64(fp, resilience::hash_string(m.name));
  fp = mix_double(fp, m.baseline_cpi);
  fp = mix_double(fp, m.mid_cpi);
  fp = mix_double(fp, m.opt_cpi);
  fp = mix_u64(fp, m.call_overhead_cycles);
  fp = mix_u64(fp, m.icache_bytes);
  fp = mix_u64(fp, m.icache_line_bytes);
  fp = mix_u64(fp, m.icache_assoc);
  fp = mix_u64(fp, m.icache_miss_cycles);
  fp = mix_u64(fp, m.bytes_per_word);
  fp = mix_double(fp, m.baseline_compile_cycles_per_word);
  fp = mix_double(fp, m.opt_compile_cycles_per_word);
  fp = mix_double(fp, m.opt_compile_exponent);
  fp = mix_double(fp, m.clock_hz);
  fp = mix_double(fp, m.mid_compile_fraction);

  fp = mix_u64(fp, static_cast<std::uint64_t>(config_.scenario));
  fp = mix_u64(fp, static_cast<std::uint64_t>(config_.iterations));
  fp = mix_u64(fp, static_cast<std::uint64_t>(config_.max_retries));

  const vm::VmConfig& v = config_.vm_config;
  fp = mix_u64(fp, v.hot_method_threshold);
  fp = mix_u64(fp, v.hot_site_threshold);
  fp = mix_u64(fp, v.rehot_multiplier);
  fp = mix_u64(fp, static_cast<std::uint64_t>(v.inline_limits.hard_depth_cap));
  fp = mix_u64(fp, static_cast<std::uint64_t>(v.inline_limits.max_recursive_occurrences));
  fp = mix_u64(fp, static_cast<std::uint64_t>(v.inline_limits.max_body_words));
  fp = mix_u64(fp, v.simulate_icache ? 1 : 0);
  fp = mix_u64(fp, v.enable_osr ? 1 : 0);
  fp = mix_u64(fp, v.interp_options.max_instructions);
  fp = mix_u64(fp, v.interp_options.max_frames);
  fp = mix_u64(fp, v.interp_options.max_arena_words);
  fp = mix_u64(fp, static_cast<std::uint64_t>(v.interp_options.engine));

  // The effective pipeline (explicit override or the boolean mapping) is
  // what determines which passes run; its canonical string covers the pass
  // list *and* the fixpoint iteration cap, so any change to either refuses
  // stale caches.
  const opt::PipelineDesc pipeline =
      v.pipeline ? *v.pipeline : opt::pipeline_from_options(v.opt_options);
  fp = mix_u64(fp, resilience::hash_string(pipeline.to_string()));

  const resilience::RunBudget& b = v.budget;
  fp = mix_u64(fp, b.max_sim_cycles);
  fp = mix_u64(fp, b.max_compile_cycles);
  fp = mix_u64(fp, b.max_instructions);
  fp = mix_u64(fp, b.max_frame_depth);
  fp = mix_u64(fp, b.max_arena_words);
  fp = mix_u64(fp, b.max_wall_ms);

  // Results under fault injection depend on the plan (penalized entries,
  // attempt counts), so two runs only share a cache when their plans match.
  if (v.faults != nullptr && v.faults->armed()) {
    fp = mix_u64(fp, v.faults->seed);
    fp = mix_double(fp, v.faults->rate);
    fp = mix_u64(fp, v.faults->sites);
    fp = mix_double(fp, v.faults->compile_inflation);
  } else {
    fp = mix_u64(fp, resilience::hash_string("no-faults"));
  }

  fp = mix_u64(fp, suite_.size());
  for (const wl::Workload& w : suite_) {
    fp = mix_u64(fp, resilience::hash_string(w.name));
    fp = mix_u64(fp, hash_program(w.program));
  }

  fingerprint_ = fp;
  return fp;
}

EvalCacheSnapshot SuiteEvaluator::snapshot() const {
  EvalCacheSnapshot snap;
  snap.fingerprint = cache_fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  snap.entries.reserve(cache_.size());
  for (const auto& [sig, results] : cache_) {
    snap.entries.push_back(EvalCacheSnapshot::Entry{sig, *results});
  }
  snap.quarantined.assign(quarantine_.begin(), quarantine_.end());
  return snap;
}

void SuiteEvaluator::restore(const EvalCacheSnapshot& snap) {
  ITH_CHECK(snap.fingerprint == cache_fingerprint(),
            "evaluation cache fingerprint mismatch (different evaluator configuration)");
  std::lock_guard<std::mutex> lock(mu_);
  for (const EvalCacheSnapshot::Entry& e : snap.entries) {
    // Never displace a live entry: an in-flight owner is about to publish
    // the same results anyway.
    cache_.emplace(e.signature, std::make_shared<std::vector<BenchmarkResult>>(e.results));
  }
  quarantine_.insert(snap.quarantined.begin(), snap.quarantined.end());
}

std::vector<std::vector<int>> SuiteEvaluator::quarantined_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<int>> out;
  out.reserve(quarantine_.size());
  for (const Signature sig : quarantine_) {
    out.push_back({static_cast<int>(static_cast<std::uint32_t>(sig & 0xffffffffULL)),
                   static_cast<int>(static_cast<std::uint32_t>(sig >> 32))});
  }
  return out;
}

bool SuiteEvaluator::release_quarantine(Signature sig) {
  std::lock_guard<std::mutex> lock(mu_);
  // An in-flight owner is about to publish results for this signature; a
  // concurrent release would race its cache insert. Refuse — the caller can
  // simply retry after the evaluation lands.
  if (in_flight_.find(sig) != in_flight_.end()) return false;
  const bool was_quarantined = quarantine_.erase(sig) != 0;
  if (was_quarantined) {
    cache_.erase(sig);  // the cached entry is the penalty result, not data
    if (config_.obs != nullptr) config_.obs->counter("resil.quarantine_released").add(1);
  }
  return was_quarantined;
}

bool SuiteEvaluator::is_quarantined(Signature sig) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_.find(sig) != quarantine_.end();
}

void SuiteEvaluator::preload_quarantine(const std::vector<std::vector<int>>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::vector<int>& k : keys) {
    if (k.size() != 2) continue;  // pre-signature (param-keyed) checkpoint entry
    const Signature sig = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k[0])) |
                          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k[1])) << 32);
    quarantine_.insert(sig);
  }
}

}  // namespace ith::tuner
