#include "tuner/evaluator.hpp"

#include "support/error.hpp"

namespace ith::tuner {

SuiteEvaluator::SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config)
    : suite_(std::move(suite)), config_(config) {
  ITH_CHECK(!suite_.empty(), "evaluator needs a non-empty suite");
  ITH_CHECK(config_.iterations >= 1, "need at least one iteration");
  config_.vm_config.scenario = config_.scenario;
  config_.vm_config.obs = config_.obs;
}

std::vector<BenchmarkResult> SuiteEvaluator::evaluate_heuristic(heur::InlineHeuristic& h) const {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  obs::ScopedSpan suite_span(obs, obs::Category::kEval, "eval.suite",
                             trace ? std::vector<obs::Arg>{{"benchmarks", suite_.size()}}
                                   : std::vector<obs::Arg>{});
  std::vector<BenchmarkResult> results;
  results.reserve(suite_.size());
  for (const wl::Workload& w : suite_) {
    const std::uint64_t t0 = trace ? obs->host_now_us() : 0;
    vm::VirtualMachine machine(w.program, config_.machine, h, config_.vm_config);
    const vm::RunResult rr = machine.run(config_.iterations);
    if (trace) {
      obs->complete(obs::Category::kEval, "eval.bench", obs::Domain::kHost, t0,
                    obs->host_now_us() - t0,
                    {{"bench", w.name},
                     {"running_cycles", rr.running_cycles},
                     {"total_cycles", rr.total_cycles},
                     {"compile_cycles", rr.compile_cycles_all}});
    }
    results.push_back(BenchmarkResult{w.name, rr.running_cycles, rr.total_cycles,
                                      rr.compile_cycles_all});
  }
  return results;
}

SuiteEvaluator::Results SuiteEvaluator::evaluate(const heur::InlineParams& params) {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  const auto cache_event = [&](const char* what) {
    if (trace) {
      obs->instant(obs::Category::kEval, what, obs::Domain::kHost, obs->host_now_us(),
                   {{"params", params.to_string()}});
    }
    if (obs != nullptr) obs->counter(what).add(1);
  };

  const heur::InlineParams::Array key = params.to_array();
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        cache_event(waited ? "eval.singleflight_wait" : "eval.cache_hit");
        return it->second;
      }
      // Single-flight: if another thread is already evaluating this key,
      // wait for its result instead of running the whole suite again.
      if (in_flight_.find(key) == in_flight_.end()) break;
      waited = true;
      cv_.wait(lock);
    }
    in_flight_.insert(key);
    ++evaluations_performed_;
  }
  cache_event("eval.cache_miss");

  std::vector<BenchmarkResult> results;
  try {
    heur::JikesHeuristic h(params);
    results = evaluate_heuristic(h);
  } catch (...) {
    // Abandon the key so waiters retry (one of them becomes the new owner).
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(key);
  auto slot =
      cache_.emplace(key, std::make_shared<std::vector<BenchmarkResult>>(std::move(results)))
          .first->second;
  cv_.notify_all();
  return slot;
}

SuiteEvaluator::Results SuiteEvaluator::default_results() {
  return evaluate(heur::default_params());
}

std::size_t SuiteEvaluator::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::uint64_t SuiteEvaluator::evaluations_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_performed_;
}

}  // namespace ith::tuner
