#include "tuner/evaluator.hpp"

#include <algorithm>

#include "resilience/guard.hpp"
#include "support/error.hpp"

namespace ith::tuner {

namespace {

/// A failure is worth retrying only if its verdict can change on a later
/// attempt: injected faults (the fault key mixes in the attempt number),
/// host wall-clock misses (timing), and foreign crashes. Sim-domain budget
/// trips and runtime traps are deterministic — same program, same budget,
/// same verdict — with one exception: when compile-inflation faults are
/// armed, a compile-cycle trip is the *signature* of an inflated compile
/// (that is how the fault manifests), so it is transient and retried too.
bool retryable(const resilience::EvalOutcome& o, bool compile_faults_armed) {
  return o.trap == resilience::TrapKind::kInjected ||
         o.budget == resilience::BudgetKind::kWallClock ||
         o.kind == resilience::OutcomeKind::kCrash ||
         (compile_faults_armed && o.budget == resilience::BudgetKind::kCompileCycles);
}

const char* outcome_counter(const resilience::EvalOutcome& o) {
  switch (o.kind) {
    case resilience::OutcomeKind::kOk: return "resil.outcome.ok";
    case resilience::OutcomeKind::kBudgetExceeded: return "resil.outcome.budget";
    case resilience::OutcomeKind::kTrap: return "resil.outcome.trap";
    case resilience::OutcomeKind::kCrash: return "resil.outcome.crash";
  }
  return "resil.outcome.crash";
}

}  // namespace

SuiteEvaluator::SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config)
    : suite_(std::move(suite)), config_(config) {
  ITH_CHECK(!suite_.empty(), "evaluator needs a non-empty suite");
  ITH_CHECK(config_.iterations >= 1, "need at least one iteration");
  ITH_CHECK(config_.max_retries >= 0, "max_retries must be >= 0");
  config_.vm_config.scenario = config_.scenario;
  config_.vm_config.obs = config_.obs;
}

std::vector<BenchmarkResult> SuiteEvaluator::run_suite(heur::InlineHeuristic& h,
                                                       std::uint64_t fault_salt,
                                                       bool allow_faults) const {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  obs::ScopedSpan suite_span(obs, obs::Category::kEval, "eval.suite",
                             trace ? std::vector<obs::Arg>{{"benchmarks", suite_.size()}}
                                   : std::vector<obs::Arg>{});
  const resilience::FaultPlan* const plan = allow_faults ? config_.vm_config.faults : nullptr;
  const bool compile_faults = plan != nullptr && plan->armed() &&
                              plan->enabled(resilience::FaultSite::kCompileInflate);
  std::vector<BenchmarkResult> results;
  results.reserve(suite_.size());
  for (const wl::Workload& w : suite_) {
    const std::uint64_t t0 = trace ? obs->host_now_us() : 0;
    BenchmarkResult br;
    br.name = w.name;

    const int max_attempts = 1 + config_.max_retries;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      vm::VmConfig cfg = config_.vm_config;
      if (!allow_faults) cfg.faults = nullptr;
      cfg.fault_key = resilience::mix_keys(
          fault_salt, resilience::mix_keys(resilience::hash_string(w.name),
                                           static_cast<std::uint64_t>(attempt)));

      resilience::GuardedRun gr;
      if (cfg.faults != nullptr &&
          cfg.faults->should_inject(resilience::FaultSite::kEvaluator, cfg.fault_key)) {
        gr.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kInjected,
                                                        "injected evaluator fault");
      } else {
        gr = resilience::guarded_run(w.program, config_.machine, h, cfg, config_.iterations);
      }

      br.attempts = attempt + 1;
      br.outcome = gr.outcome;
      if (gr.outcome.ok()) {
        br.running_cycles = gr.result.running_cycles;
        br.total_cycles = gr.result.total_cycles;
        br.compile_cycles = gr.result.compile_cycles_all;
        break;
      }
      if (attempt + 1 < max_attempts && retryable(gr.outcome, compile_faults)) {
        if (obs != nullptr) obs->counter("resil.retries").add(1);
        continue;
      }
      break;  // final failure: penalized result (cycle fields stay zero)
    }

    if (obs != nullptr) obs->counter(outcome_counter(br.outcome)).add(1);
    if (trace) {
      obs->complete(obs::Category::kEval, "eval.bench", obs::Domain::kHost, t0,
                    obs->host_now_us() - t0,
                    {{"bench", w.name},
                     {"running_cycles", br.running_cycles},
                     {"total_cycles", br.total_cycles},
                     {"compile_cycles", br.compile_cycles},
                     {"outcome", br.outcome.to_string()},
                     {"attempts", br.attempts}});
    }
    results.push_back(std::move(br));
  }
  return results;
}

std::vector<BenchmarkResult> SuiteEvaluator::evaluate_heuristic(heur::InlineHeuristic& h,
                                                                std::uint64_t fault_salt) const {
  return run_suite(h, fault_salt, /*allow_faults=*/true);
}

SuiteEvaluator::Results SuiteEvaluator::evaluate(const heur::InlineParams& params) {
  obs::Context* const obs = config_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kEval);
  const auto cache_event = [&](const char* what) {
    if (trace) {
      obs->instant(obs::Category::kEval, what, obs::Domain::kHost, obs->host_now_us(),
                   {{"params", params.to_string()}});
    }
    if (obs != nullptr) obs->counter(what).add(1);
  };

  const CacheKey key = params.to_array();
  bool quarantined = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        cache_event(waited ? "eval.singleflight_wait" : "eval.cache_hit");
        return it->second;
      }
      // Single-flight: if another thread is already evaluating this key,
      // wait for its result instead of running the whole suite again.
      if (in_flight_.find(key) == in_flight_.end()) break;
      waited = true;
      cv_.wait(lock);
    }
    in_flight_.insert(key);
    quarantined = quarantine_.find(key) != quarantine_.end();
    if (!quarantined) ++evaluations_performed_;
  }

  // From here until the key is cached, *any* exit — including a throwing
  // trace sink inside cache_event or run_suite — must release the key, or
  // single-flight waiters block forever. RAII, not a catch block, so no
  // path can be missed. (Local classes have the enclosing member function's
  // access rights, hence the private member touches.)
  struct InFlightRelease {
    SuiteEvaluator* self;
    const CacheKey& key;
    bool armed = true;
    ~InFlightRelease() {
      if (!armed) return;
      std::lock_guard<std::mutex> lock(self->mu_);
      self->in_flight_.erase(key);
      self->cv_.notify_all();
    }
  } release{this, key};

  std::vector<BenchmarkResult> results;
  if (quarantined) {
    if (obs != nullptr) obs->counter("resil.quarantine_hits").add(1);
    results.reserve(suite_.size());
    for (const wl::Workload& w : suite_) {
      BenchmarkResult br;
      br.name = w.name;
      br.outcome = resilience::EvalOutcome::make_trap(resilience::TrapKind::kRuntime,
                                                      "quarantined");
      br.attempts = 0;
      results.push_back(std::move(br));
    }
  } else {
    cache_event("eval.cache_miss");
    heur::JikesHeuristic h(params);
    results = run_suite(h, resilience::hash_string(params.to_string()),
                        /*allow_faults=*/true);
    const bool any_failed = std::any_of(results.begin(), results.end(),
                                        [](const BenchmarkResult& r) { return !r.outcome.ok(); });
    if (any_failed) {
      if (obs != nullptr) obs->counter("resil.quarantined").add(1);
      std::lock_guard<std::mutex> lock(mu_);
      quarantine_.insert(key);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  release.armed = false;  // the guard would deadlock re-locking mu_ from here
  in_flight_.erase(key);
  // Notify before emplace: if the insert throws, woken waiters re-check
  // under this same lock and simply become the new owner — no missed wakeup.
  cv_.notify_all();
  return cache_.emplace(key, std::make_shared<std::vector<BenchmarkResult>>(std::move(results)))
      .first->second;
}

SuiteEvaluator::Results SuiteEvaluator::default_results() {
  const heur::InlineParams params = heur::default_params();
  const CacheKey key = params.to_array();
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
      if (in_flight_.find(key) == in_flight_.end()) break;
      cv_.wait(lock);
    }
    in_flight_.insert(key);
    ++evaluations_performed_;
  }

  struct InFlightRelease {
    SuiteEvaluator* self;
    const CacheKey& key;
    bool armed = true;
    ~InFlightRelease() {
      if (!armed) return;
      std::lock_guard<std::mutex> lock(self->mu_);
      self->in_flight_.erase(key);
      self->cv_.notify_all();
    }
  } release{this, key};

  // Faults suppressed: the baseline is the denominator of every normalized
  // figure, so a chaos campaign must never see a penalized default run.
  heur::JikesHeuristic h(params);
  std::vector<BenchmarkResult> results =
      run_suite(h, resilience::hash_string(params.to_string()), /*allow_faults=*/false);

  std::lock_guard<std::mutex> lock(mu_);
  release.armed = false;  // the guard would deadlock re-locking mu_ from here
  in_flight_.erase(key);
  cv_.notify_all();
  return cache_.emplace(key, std::make_shared<std::vector<BenchmarkResult>>(std::move(results)))
      .first->second;
}

std::size_t SuiteEvaluator::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::uint64_t SuiteEvaluator::evaluations_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_performed_;
}

std::vector<std::vector<int>> SuiteEvaluator::quarantined_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<int>> out;
  out.reserve(quarantine_.size());
  for (const CacheKey& k : quarantine_) out.emplace_back(k.begin(), k.end());
  return out;
}

void SuiteEvaluator::preload_quarantine(const std::vector<std::vector<int>>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::vector<int>& k : keys) {
    if (k.size() != std::tuple_size_v<CacheKey>) continue;
    CacheKey key{};
    std::copy(k.begin(), k.end(), key.begin());
    quarantine_.insert(key);
  }
}

}  // namespace ith::tuner
