#include "tuner/evaluator.hpp"

#include "support/error.hpp"

namespace ith::tuner {

SuiteEvaluator::SuiteEvaluator(std::vector<wl::Workload> suite, EvalConfig config)
    : suite_(std::move(suite)), config_(config) {
  ITH_CHECK(!suite_.empty(), "evaluator needs a non-empty suite");
  ITH_CHECK(config_.iterations >= 1, "need at least one iteration");
  config_.vm_config.scenario = config_.scenario;
}

std::vector<BenchmarkResult> SuiteEvaluator::evaluate_heuristic(heur::InlineHeuristic& h) const {
  std::vector<BenchmarkResult> results;
  results.reserve(suite_.size());
  for (const wl::Workload& w : suite_) {
    vm::VirtualMachine machine(w.program, config_.machine, h, config_.vm_config);
    const vm::RunResult rr = machine.run(config_.iterations);
    results.push_back(BenchmarkResult{w.name, rr.running_cycles, rr.total_cycles,
                                      rr.compile_cycles_all});
  }
  return results;
}

const std::vector<BenchmarkResult>& SuiteEvaluator::evaluate(const heur::InlineParams& params) {
  const heur::InlineParams::Array key = params.to_array();
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
      // Single-flight: if another thread is already evaluating this key,
      // wait for its result instead of running the whole suite again.
      if (in_flight_.find(key) == in_flight_.end()) break;
      cv_.wait(lock);
    }
    in_flight_.insert(key);
    ++evaluations_performed_;
  }

  std::vector<BenchmarkResult> results;
  try {
    heur::JikesHeuristic h(params);
    results = evaluate_heuristic(h);
  } catch (...) {
    // Abandon the key so waiters retry (one of them becomes the new owner).
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(key);
  auto& slot = cache_.emplace(key, std::move(results)).first->second;
  cv_.notify_all();
  return slot;
}

const std::vector<BenchmarkResult>& SuiteEvaluator::default_results() {
  return evaluate(heur::default_params());
}

std::size_t SuiteEvaluator::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::uint64_t SuiteEvaluator::evaluations_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_performed_;
}

}  // namespace ith::tuner
