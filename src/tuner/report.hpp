// Figure/table builders: turn evaluator output into the normalized
// "tuned vs default" rows the paper's figures plot (bars below 1.0 are
// improvements) and the average rows of Table 5.
#pragma once

#include <string>
#include <vector>

#include "support/table.hpp"
#include "tuner/evaluator.hpp"

namespace ith::tuner {

struct ComparisonRow {
  std::string name;
  double running_ratio = 1.0;  ///< candidate running / baseline running
  double total_ratio = 1.0;    ///< candidate total / baseline total
};

/// Per-benchmark ratios of `candidate` over `baseline` (parallel vectors).
std::vector<ComparisonRow> compare_results(const std::vector<BenchmarkResult>& candidate,
                                           const std::vector<BenchmarkResult>& baseline);

/// Arithmetic means of the ratio columns (how the paper's "avg" bars and
/// Table 5 entries are computed).
ComparisonRow average_row(const std::vector<ComparisonRow>& rows);

/// Renders rows as the paper's figure data: one row per benchmark plus an
/// average row, columns "Running" and "Total" as normalized ratios.
Table comparison_table(const std::vector<ComparisonRow>& rows);

/// Writes the same data (plus the average row) as CSV with header
/// `benchmark,running_norm,total_norm` — the machine-readable series for
/// replotting the paper's figures.
void write_comparison_csv(std::ostream& os, const std::vector<ComparisonRow>& rows);

}  // namespace ith::tuner
