// Tuner: the paper's off-line step. Given a training suite, a compilation
// scenario/architecture (the evaluator) and an optimization goal, run the
// genetic algorithm over the Table 1 space and return the tuned parameters
// that would be "shipped with the compiler".
#pragma once

#include "ga/ga.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"

namespace ith::tuner {

struct TuneResult {
  heur::InlineParams best;
  double best_fitness = 0.0;  ///< normalized Perf(S); < 1.0 beats the default
  ga::GaResult ga;
};

/// Runs the GA. `ga_config.seed_individuals` may be used to inject the
/// default parameters into the initial population.
TuneResult tune(SuiteEvaluator& evaluator, Goal goal, ga::GaConfig ga_config);

/// Convenience: a GA configuration scaled for the bench harnesses.
/// Population 20 (the paper's), `generations` as given, memoized,
/// single-threaded (evaluations already saturate one core), patience 10.
ga::GaConfig default_ga_config(int generations, std::uint64_t seed);

}  // namespace ith::tuner
