// Tuner: the paper's off-line step. Given a training suite, a compilation
// scenario/architecture (the evaluator) and an optimization goal, run the
// genetic algorithm over the Table 1 space and return the tuned parameters
// that would be "shipped with the compiler".
#pragma once

#include <string>

#include "ga/ga.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fitness.hpp"

namespace ith::tuner {

struct TuneResult {
  heur::InlineParams best;
  double best_fitness = 0.0;  ///< normalized Perf(S); < 1.0 beats the default
  ga::GaResult ga;
};

/// Checkpoint/resume policy for tune(). With a non-empty path the GA
/// journals its complete state there (atomically) after every `every`-th
/// generation; with `resume` additionally set, tune() loads the checkpoint
/// first and continues — bit-identically to a run that was never stopped —
/// re-arming the evaluator's quarantine set along the way.
struct TuneCheckpointOptions {
  std::string path;
  bool resume = false;
  int every = 1;
  /// Invoked after each generation completes — crucially, *after* its
  /// checkpoint has been journaled, so a process killed inside this callback
  /// (the chaos harness's kill point) always resumes from the generation it
  /// just finished.
  std::function<void(const ga::GenerationStats&)> on_generation;
};

/// Runs the GA. `ga_config.seed_individuals` may be used to inject the
/// default parameters into the initial population. `include_partial_gene`
/// widens the search to PARTIAL_MAX_HEAD_SIZE (the sixth dimension; implies
/// the hot gene, so the space is always the full six-gene encoding).
TuneResult tune(SuiteEvaluator& evaluator, Goal goal, ga::GaConfig ga_config,
                const TuneCheckpointOptions& checkpoint = {}, bool include_partial_gene = false);

/// Convenience: a GA configuration scaled for the bench harnesses.
/// Population 20 (the paper's), `generations` as given, memoized,
/// single-threaded (evaluations already saturate one core), patience 10.
ga::GaConfig default_ga_config(int generations, std::uint64_t seed);

}  // namespace ith::tuner
