#include "tuner/eval_cache.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/error.hpp"

namespace ith::tuner {

namespace {

constexpr char kMagic[8] = {'I', 'T', 'H', 'E', 'V', 'C', '1', '\0'};

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Writer {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  const std::string& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) { buf_.append(static_cast<const char*>(p), n); }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string bytes) : buf_(std::move(bytes)) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > buf_.size() - pos_) throw Error("evaluation cache truncated");
    std::string s(buf_.data() + pos_, n);
    pos_ += n;
    return s;
  }
  /// Element counts are validated against the bytes actually remaining, so
  /// a corrupted length field fails as "truncated" instead of a giant alloc.
  std::uint64_t count(std::uint64_t n) const {
    if (n > (buf_.size() - pos_) / sizeof(std::uint64_t)) {
      throw Error("evaluation cache truncated");
    }
    return n;
  }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    if (buf_.size() - pos_ < n) throw Error("evaluation cache truncated");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::string buf_;
  std::size_t pos_ = 0;
};

std::string serialize(const EvalCacheSnapshot& snap) {
  Writer w;
  w.u64(snap.fingerprint);
  w.u64(snap.entries.size());
  for (const EvalCacheSnapshot::Entry& e : snap.entries) {
    w.u64(e.signature);
    w.u64(e.results.size());
    for (const BenchmarkResult& br : e.results) {
      w.str(br.name);
      w.u64(br.running_cycles);
      w.u64(br.total_cycles);
      w.u64(br.compile_cycles);
      w.u64(static_cast<std::uint64_t>(br.outcome.kind));
      w.u64(static_cast<std::uint64_t>(br.outcome.budget));
      w.u64(static_cast<std::uint64_t>(br.outcome.trap));
      w.str(br.outcome.detail);
      w.i64(br.attempts);
    }
  }
  w.u64(snap.quarantined.size());
  for (const std::uint64_t sig : snap.quarantined) w.u64(sig);
  return w.bytes();
}

EvalCacheSnapshot deserialize(std::string payload) {
  Reader r(std::move(payload));
  EvalCacheSnapshot snap;
  snap.fingerprint = r.u64();
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    EvalCacheSnapshot::Entry e;
    e.signature = r.u64();
    for (std::uint64_t j = 0, m = r.count(r.u64()); j < m; ++j) {
      BenchmarkResult br;
      br.name = r.str();
      br.running_cycles = r.u64();
      br.total_cycles = r.u64();
      br.compile_cycles = r.u64();
      br.outcome.kind = static_cast<resilience::OutcomeKind>(r.u64());
      br.outcome.budget = static_cast<resilience::BudgetKind>(r.u64());
      br.outcome.trap = static_cast<resilience::TrapKind>(r.u64());
      br.outcome.detail = r.str();
      br.attempts = static_cast<int>(r.i64());
      e.results.push_back(std::move(br));
    }
    snap.entries.push_back(std::move(e));
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    snap.quarantined.push_back(r.u64());
  }
  if (!r.exhausted()) throw Error("evaluation cache has trailing bytes (corrupted file)");
  return snap;
}

}  // namespace

void save_eval_cache(const std::string& path, const EvalCacheSnapshot& snap) {
  const std::string payload = serialize(snap);
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum = fnv1a(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    ITH_CHECK(os.good(), "cannot open evaluation cache file for writing: " + tmp);
    os.write(kMagic, sizeof kMagic);
    os.write(reinterpret_cast<const char*>(&size), sizeof size);
    os.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    ITH_CHECK(os.good(), "evaluation cache write failed: " + tmp);
  }
  // Atomic publish: readers see either the old cache or the new one, never
  // a torn file, even if we are killed mid-save.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename evaluation cache into place: " + path);
  }
}

EvalCacheSnapshot load_eval_cache(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open evaluation cache: " + path);

  char magic[sizeof kMagic];
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  is.read(magic, sizeof magic);
  if (is.gcount() != sizeof magic || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw Error("not an evaluation cache (bad magic): " + path);
  }
  is.read(reinterpret_cast<char*>(&size), sizeof size);
  is.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!is.good()) throw Error("evaluation cache truncated: " + path);

  // Validate the declared size against the actual file length before
  // allocating, so a corrupted header fails cleanly instead of bad_alloc.
  const std::streampos body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::uint64_t remaining = static_cast<std::uint64_t>(is.tellg() - body_start);
  is.seekg(body_start);
  if (size > remaining) throw Error("evaluation cache truncated: " + path);
  if (remaining > size) {
    throw Error("evaluation cache has trailing bytes (corrupted file): " + path);
  }

  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    throw Error("evaluation cache truncated: " + path);
  }
  if (fnv1a(payload) != checksum) {
    throw Error("evaluation cache checksum mismatch (corrupted file): " + path);
  }
  return deserialize(std::move(payload));
}

}  // namespace ith::tuner
