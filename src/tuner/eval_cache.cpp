#include "tuner/eval_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "support/error.hpp"

namespace ith::tuner {

namespace {

constexpr char kMagic[8] = {'I', 'T', 'H', 'E', 'V', 'C', '1', '\0'};

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Writer {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  const std::string& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) { buf_.append(static_cast<const char*>(p), n); }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string bytes) : buf_(std::move(bytes)) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > buf_.size() - pos_) throw Error("evaluation cache truncated");
    std::string s(buf_.data() + pos_, n);
    pos_ += n;
    return s;
  }
  /// Element counts are validated against the bytes actually remaining, so
  /// a corrupted length field fails as "truncated" instead of a giant alloc.
  std::uint64_t count(std::uint64_t n) const {
    if (n > (buf_.size() - pos_) / sizeof(std::uint64_t)) {
      throw Error("evaluation cache truncated");
    }
    return n;
  }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    if (buf_.size() - pos_ < n) throw Error("evaluation cache truncated");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::string buf_;
  std::size_t pos_ = 0;
};

void write_results(Writer& w, const std::vector<BenchmarkResult>& results) {
  w.u64(results.size());
  for (const BenchmarkResult& br : results) {
    w.str(br.name);
    w.u64(br.running_cycles);
    w.u64(br.total_cycles);
    w.u64(br.compile_cycles);
    w.u64(static_cast<std::uint64_t>(br.outcome.kind));
    w.u64(static_cast<std::uint64_t>(br.outcome.budget));
    w.u64(static_cast<std::uint64_t>(br.outcome.trap));
    w.str(br.outcome.detail);
    w.i64(br.attempts);
  }
}

std::vector<BenchmarkResult> read_results(Reader& r) {
  std::vector<BenchmarkResult> results;
  for (std::uint64_t j = 0, m = r.count(r.u64()); j < m; ++j) {
    BenchmarkResult br;
    br.name = r.str();
    br.running_cycles = r.u64();
    br.total_cycles = r.u64();
    br.compile_cycles = r.u64();
    br.outcome.kind = static_cast<resilience::OutcomeKind>(r.u64());
    br.outcome.budget = static_cast<resilience::BudgetKind>(r.u64());
    br.outcome.trap = static_cast<resilience::TrapKind>(r.u64());
    br.outcome.detail = r.str();
    br.attempts = static_cast<int>(r.i64());
    results.push_back(std::move(br));
  }
  return results;
}

std::string serialize(const EvalCacheSnapshot& snap) {
  Writer w;
  w.u64(snap.fingerprint);
  w.u64(snap.entries.size());
  for (const EvalCacheSnapshot::Entry& e : snap.entries) {
    w.u64(e.signature);
    write_results(w, e.results);
  }
  w.u64(snap.quarantined.size());
  for (const std::uint64_t sig : snap.quarantined) w.u64(sig);
  return w.bytes();
}

EvalCacheSnapshot deserialize(std::string payload) {
  Reader r(std::move(payload));
  EvalCacheSnapshot snap;
  snap.fingerprint = r.u64();
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    EvalCacheSnapshot::Entry e;
    e.signature = r.u64();
    e.results = read_results(r);
    snap.entries.push_back(std::move(e));
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    snap.quarantined.push_back(r.u64());
  }
  if (!r.exhausted()) throw Error("evaluation cache has trailing bytes (corrupted file)");
  return snap;
}

/// Number of non-ok outcomes — the first key of the conflict-resolution
/// order, so federation deterministically prefers the run where fewer
/// benchmarks failed (wall-clock verdicts are host-timing-dependent, the
/// one legitimate source of divergent results for one signature).
std::size_t failed_count(const std::vector<BenchmarkResult>& results) {
  std::size_t n = 0;
  for (const BenchmarkResult& br : results) {
    if (!br.outcome.ok()) ++n;
  }
  return n;
}

}  // namespace

void save_eval_cache(const std::string& path, const EvalCacheSnapshot& snap) {
  const std::string payload = serialize(snap);
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum = fnv1a(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    ITH_CHECK(os.good(), "cannot open evaluation cache file for writing: " + tmp);
    os.write(kMagic, sizeof kMagic);
    os.write(reinterpret_cast<const char*>(&size), sizeof size);
    os.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    ITH_CHECK(os.good(), "evaluation cache write failed: " + tmp);
  }
  // Atomic publish: readers see either the old cache or the new one, never
  // a torn file, even if we are killed mid-save.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename evaluation cache into place: " + path);
  }
}

bool remove_stale_eval_cache_tmp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  if (!std::ifstream(tmp).good()) return false;
  return std::remove(tmp.c_str()) == 0;
}

EvalCacheSnapshot load_eval_cache(const std::string& path) {
  // A .tmp sibling means a save died between write and rename. The
  // published file (if any) is still whole — rename is atomic — so the tmp
  // is unreferenced garbage; sweep it rather than letting it accumulate or,
  // worse, be mistaken for a cache by a human operator.
  remove_stale_eval_cache_tmp(path);
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open evaluation cache: " + path);

  char magic[sizeof kMagic];
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  is.read(magic, sizeof magic);
  if (is.gcount() != sizeof magic || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw Error("not an evaluation cache (bad magic): " + path);
  }
  is.read(reinterpret_cast<char*>(&size), sizeof size);
  is.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!is.good()) throw Error("evaluation cache truncated: " + path);

  // Validate the declared size against the actual file length before
  // allocating, so a corrupted header fails cleanly instead of bad_alloc.
  const std::streampos body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::uint64_t remaining = static_cast<std::uint64_t>(is.tellg() - body_start);
  is.seekg(body_start);
  if (size > remaining) throw Error("evaluation cache truncated: " + path);
  if (remaining > size) {
    throw Error("evaluation cache has trailing bytes (corrupted file): " + path);
  }

  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    throw Error("evaluation cache truncated: " + path);
  }
  if (fnv1a(payload) != checksum) {
    throw Error("evaluation cache checksum mismatch (corrupted file): " + path);
  }
  return deserialize(std::move(payload));
}

std::string encode_results(const std::vector<BenchmarkResult>& results) {
  Writer w;
  write_results(w, results);
  return w.bytes();
}

std::vector<BenchmarkResult> decode_results(const std::string& bytes) {
  Reader r(bytes);
  std::vector<BenchmarkResult> results = read_results(r);
  if (!r.exhausted()) throw Error("evaluation results have trailing bytes");
  return results;
}

SnapshotMergeStats merge_eval_snapshots(EvalCacheSnapshot& dst, const EvalCacheSnapshot& src) {
  ITH_CHECK(dst.fingerprint == src.fingerprint,
            "evaluation cache fingerprint mismatch: cannot federate snapshots from different "
            "configurations");
  SnapshotMergeStats stats;

  std::map<std::uint64_t, std::size_t> by_sig;
  for (std::size_t i = 0; i < dst.entries.size(); ++i) by_sig.emplace(dst.entries[i].signature, i);

  for (const EvalCacheSnapshot::Entry& incoming : src.entries) {
    const auto it = by_sig.find(incoming.signature);
    if (it == by_sig.end()) {
      by_sig.emplace(incoming.signature, dst.entries.size());
      dst.entries.push_back(incoming);
      ++stats.added;
      continue;
    }
    EvalCacheSnapshot::Entry& held = dst.entries[it->second];
    const std::string held_bytes = encode_results(held.results);
    const std::string incoming_bytes = encode_results(incoming.results);
    if (held_bytes == incoming_bytes) {
      ++stats.duplicates;
      continue;
    }
    // Deterministic winner over a total order: (failed benchmarks, encoded
    // bytes). A min over a total order is commutative and associative, so
    // any merge order of any snapshot set converges on one canonical cache.
    ++stats.conflicts;
    const auto held_key = std::make_pair(failed_count(held.results), held_bytes);
    const auto incoming_key = std::make_pair(failed_count(incoming.results), incoming_bytes);
    if (incoming_key < held_key) held.results = incoming.results;
  }

  std::set<std::uint64_t> quarantine(dst.quarantined.begin(), dst.quarantined.end());
  quarantine.insert(src.quarantined.begin(), src.quarantined.end());
  dst.quarantined.assign(quarantine.begin(), quarantine.end());

  std::sort(dst.entries.begin(), dst.entries.end(),
            [](const EvalCacheSnapshot::Entry& a, const EvalCacheSnapshot::Entry& b) {
              return a.signature < b.signature;
            });
  return stats;
}

}  // namespace ith::tuner
