#include "tuner/parameter_space.hpp"

#include "support/error.hpp"

namespace ith::tuner {

ga::GenomeSpace inline_param_space(bool include_hot_gene) {
  std::vector<ga::GeneSpec> genes;
  const auto& ranges = heur::param_ranges();
  const std::size_t n = include_hot_gene ? ranges.size() : ranges.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    genes.push_back(ga::GeneSpec{ranges[i].name, ranges[i].lo, ranges[i].hi});
  }
  return ga::GenomeSpace(std::move(genes));
}

heur::InlineParams params_from_genome(const ga::Genome& g) {
  ITH_CHECK(g.size() == 4 || g.size() == 5, "inline-parameter genome must have 4 or 5 genes");
  heur::InlineParams p = heur::default_params();
  p.callee_max_size = g[0];
  p.always_inline_size = g[1];
  p.max_inline_depth = g[2];
  p.caller_max_size = g[3];
  if (g.size() == 5) p.hot_callee_max_size = g[4];
  return p;
}

ga::Genome genome_from_params(const heur::InlineParams& p, bool include_hot_gene) {
  ga::Genome g = {p.callee_max_size, p.always_inline_size, p.max_inline_depth, p.caller_max_size};
  if (include_hot_gene) g.push_back(p.hot_callee_max_size);
  return g;
}

}  // namespace ith::tuner
