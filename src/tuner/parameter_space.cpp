#include "tuner/parameter_space.hpp"

#include "support/error.hpp"

namespace ith::tuner {

ga::GenomeSpace inline_param_space(bool include_hot_gene, bool include_partial_gene) {
  ITH_CHECK(!include_partial_gene || include_hot_gene,
            "the partial gene requires the hot gene (genome arity is positional)");
  std::vector<ga::GeneSpec> genes;
  const auto& ranges = heur::param_ranges();
  std::size_t n = 4;
  if (include_hot_gene) n = 5;
  if (include_partial_gene) n = 6;
  ITH_CHECK(ranges.size() >= n, "param_ranges out of sync with the genome encoding");
  for (std::size_t i = 0; i < n; ++i) {
    genes.push_back(ga::GeneSpec{ranges[i].name, ranges[i].lo, ranges[i].hi});
  }
  return ga::GenomeSpace(std::move(genes));
}

heur::InlineParams params_from_genome(const ga::Genome& g) {
  ITH_CHECK(g.size() >= 4 && g.size() <= 6,
            "inline-parameter genome must have 4, 5 or 6 genes");
  heur::InlineParams p = heur::default_params();
  p.callee_max_size = g[0];
  p.always_inline_size = g[1];
  p.max_inline_depth = g[2];
  p.caller_max_size = g[3];
  if (g.size() >= 5) p.hot_callee_max_size = g[4];
  if (g.size() >= 6) p.partial_max_head_size = g[5];
  return p;
}

ga::Genome genome_from_params(const heur::InlineParams& p, bool include_hot_gene,
                              bool include_partial_gene) {
  ITH_CHECK(!include_partial_gene || include_hot_gene,
            "the partial gene requires the hot gene (genome arity is positional)");
  ga::Genome g = {p.callee_max_size, p.always_inline_size, p.max_inline_depth, p.caller_max_size};
  if (include_hot_gene) g.push_back(p.hot_callee_max_size);
  if (include_partial_gene) g.push_back(p.partial_max_head_size);
  return g;
}

}  // namespace ith::tuner
