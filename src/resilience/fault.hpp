// Resilience layer, part 2: deterministic fault injection.
//
// A FaultPlan decides, purely as a function of (plan seed, site, caller
// key), whether a fault fires at a given opportunity. Because the decision
// is a hash rather than a stateful RNG draw, it is independent of call
// order, thread interleaving, and how many other sites consulted the plan —
// the property that makes chaos campaigns replayable and lets
// kill-and-resume runs line up bit-identically with straight-through runs.
//
// Callers derive their key from stable identities (parameter vector hash,
// workload name, attempt number, method id), so a *retry* of the same
// evaluation consults the plan with a different key and typically clears a
// transient fault — the evaluator's retry-then-quarantine loop depends on
// exactly this.
//
// Header-only, support/-only dependencies: the VM consults the plan without
// linking anything new. See FaultPlan::from_env for the ITH_FAULT_*
// environment knobs (mirroring the fuzz campaign's env-configurable style).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/env.hpp"
#include "support/error.hpp"

namespace ith::resilience {

/// Where a fault can be injected. Sites 4..8 belong to the evaluation
/// service (src/service/): they simulate infrastructure failures — dropped
/// connections, torn frames, failed persistence — rather than simulated-
/// program failures, so arming them never changes what a suite run would
/// *measure*, only whether a given daemon interaction survives.
enum class FaultSite : std::uint8_t {
  kVmTrap = 0,          ///< trap thrown at the start of a VM run iteration
  kCompileInflate = 1,  ///< compile cycles multiplied (compile-time explosion)
  kEvaluator = 2,       ///< exception thrown inside the suite evaluator
  kSink = 3,            ///< trace-sink write dropped (I/O error)
  kSvcAccept = 4,       ///< daemon drops a freshly accepted connection
  kSvcRead = 5,         ///< daemon treats an inbound frame as torn (read error)
  kSvcWrite = 6,        ///< daemon fails to write a response (connection dies)
  kSvcDispatch = 7,     ///< daemon refuses to dispatch an acquire request
  kSvcSnapshot = 8,     ///< daemon skips a periodic cache snapshot write
};

inline const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kVmTrap: return "vm";
    case FaultSite::kCompileInflate: return "compile";
    case FaultSite::kEvaluator: return "eval";
    case FaultSite::kSink: return "sink";
    case FaultSite::kSvcAccept: return "accept";
    case FaultSite::kSvcRead: return "read";
    case FaultSite::kSvcWrite: return "write";
    case FaultSite::kSvcDispatch: return "dispatch";
    case FaultSite::kSvcSnapshot: return "snapshot";
  }
  return "?";
}

/// SplitMix64 finalizer: the avalanche mix all injection decisions and key
/// derivations go through.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive key combiner for deriving per-opportunity keys.
inline std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

inline std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded, rate-driven fault plan. Default-constructed plans inject nothing
/// (rate 0, no sites); enforcement sites additionally guard on a null plan
/// pointer, so the idle cost is one branch.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a fault fires per opportunity, in [0, 1].
  double rate = 0.0;
  /// OR of (1 << FaultSite) bits; 0 = no site armed.
  std::uint32_t sites = 0;
  /// Cycle multiplier applied by kCompileInflate. Deliberately large so an
  /// inflated compilation reliably trips the compile-cycle budget (and is
  /// therefore retried) instead of silently corrupting cycle accounting.
  double compile_inflation = 1000.0;

  static std::uint32_t site_bit(FaultSite s) { return 1u << static_cast<unsigned>(s); }

  bool enabled(FaultSite s) const { return (sites & site_bit(s)) != 0; }
  bool armed() const { return rate > 0.0 && sites != 0; }

  /// Deterministic per-opportunity decision: a pure function of
  /// (seed, site, key) — no internal state, no call-order dependence.
  bool should_inject(FaultSite site, std::uint64_t key) const {
    if (!enabled(site) || rate <= 0.0) return false;
    const std::uint64_t h =
        mix64(seed ^ mix64(key + 0x5179u * (static_cast<std::uint64_t>(site) + 1)));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  }

  /// Mask of the four simulated-program sites (the pre-service set).
  static std::uint32_t eval_sites() {
    return site_bit(FaultSite::kVmTrap) | site_bit(FaultSite::kCompileInflate) |
           site_bit(FaultSite::kEvaluator) | site_bit(FaultSite::kSink);
  }

  /// Mask of the five evaluation-service infrastructure sites.
  static std::uint32_t service_sites() {
    return site_bit(FaultSite::kSvcAccept) | site_bit(FaultSite::kSvcRead) |
           site_bit(FaultSite::kSvcWrite) | site_bit(FaultSite::kSvcDispatch) |
           site_bit(FaultSite::kSvcSnapshot);
  }

  /// Parses "vm,compile,eval,sink,accept,read,write,dispatch,snapshot" (or
  /// the groups "all" / "svc") into a site mask; throws ith::Error on
  /// unknown names.
  static std::uint32_t parse_sites(const std::string& spec) {
    if (spec.empty()) return 0;
    if (spec == "all") return eval_sites() | service_sites();
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string name =
          spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (name == "vm") {
        mask |= site_bit(FaultSite::kVmTrap);
      } else if (name == "compile") {
        mask |= site_bit(FaultSite::kCompileInflate);
      } else if (name == "eval") {
        mask |= site_bit(FaultSite::kEvaluator);
      } else if (name == "sink") {
        mask |= site_bit(FaultSite::kSink);
      } else if (name == "accept") {
        mask |= site_bit(FaultSite::kSvcAccept);
      } else if (name == "read") {
        mask |= site_bit(FaultSite::kSvcRead);
      } else if (name == "write") {
        mask |= site_bit(FaultSite::kSvcWrite);
      } else if (name == "dispatch") {
        mask |= site_bit(FaultSite::kSvcDispatch);
      } else if (name == "snapshot") {
        mask |= site_bit(FaultSite::kSvcSnapshot);
      } else if (name == "svc") {
        mask |= service_sites();
      } else if (name == "all") {
        mask |= eval_sites() | service_sites();
      } else {
        throw Error("unknown fault site '" + name +
                    "' (expected vm, compile, eval, sink, accept, read, write, dispatch, "
                    "snapshot, svc, all)");
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return mask;
  }

  /// Environment-configured plan: ITH_FAULT_RATE (double), ITH_FAULT_SEED
  /// (int), ITH_FAULT_SITES (comma list or "all"; defaults to "all" when a
  /// rate is set). Unset rate = inert plan.
  static FaultPlan from_env() {
    FaultPlan plan;
    const std::string rate = env_or("ITH_FAULT_RATE", "");
    if (rate.empty()) return plan;
    try {
      plan.rate = std::stod(rate);
    } catch (...) {
      throw Error("ITH_FAULT_RATE is not a number: " + rate);
    }
    ITH_CHECK(plan.rate >= 0.0 && plan.rate <= 1.0, "ITH_FAULT_RATE out of [0,1]");
    plan.seed = static_cast<std::uint64_t>(env_int_or("ITH_FAULT_SEED", 1));
    plan.sites = parse_sites(env_or("ITH_FAULT_SITES", "all"));
    return plan;
  }
};

}  // namespace ith::resilience
