// Resilience layer, part 4: GA checkpoint/resume.
//
// A GaCheckpoint is the complete search state after some generation g: the
// population and its fitness, the RNG's raw words, the fitness memo cache,
// the best-ever individual, the staleness counter, the full per-generation
// history, and the evaluator's quarantine set. Restoring it and continuing
// is bit-identical to never having stopped — the property the
// kill-and-resume tests assert — because the GA draws nothing from global
// state: Pcg32 exposes its two state words, fault injection is a pure hash,
// and fitness is memoized by genome.
//
// On disk: magic "ITHGACP1", payload size, FNV-1a checksum, payload
// (host-endian — a crash-recovery journal for this machine, not a portable
// archive). save_checkpoint writes a sibling tmp file and std::rename()s it
// into place, so a kill mid-write leaves the previous checkpoint intact;
// load_checkpoint rejects short files, foreign magic, and checksum
// mismatches with distinct ith::Error messages.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ga/ga.hpp"

namespace ith::resilience {

/// Everything needed to continue a GA run from the end of `generation`.
struct GaCheckpoint {
  /// Hash of the GA config + genome space that produced this checkpoint;
  /// resume refuses to continue under a different configuration.
  std::uint64_t fingerprint = 0;
  /// Last completed generation (0 = initial population evaluated).
  int generation = 0;
  std::uint64_t rng_state = 0;
  std::uint64_t rng_inc = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  double best_ever = 0.0;
  ga::Genome best_genome;
  int stale = 0;
  std::vector<ga::Genome> population;
  std::vector<double> fitness;
  /// Fitness memo cache (genome -> fitness), flattened.
  std::vector<std::pair<ga::Genome, double>> cache;
  std::vector<ga::GenerationStats> history;
  /// Quarantined parameter vectors (SuiteEvaluator cache keys, widened to
  /// int vectors) — genomes that kept failing after retries.
  std::vector<std::vector<int>> quarantine;
};

/// Serializes `cp` to `path` atomically (tmp file + rename). Throws
/// ith::Error if the file cannot be written.
void save_checkpoint(const std::string& path, const GaCheckpoint& cp);

/// Loads and validates a checkpoint. Throws ith::Error with a distinct
/// message for missing file, bad magic, truncation, and checksum mismatch.
GaCheckpoint load_checkpoint(const std::string& path);

}  // namespace ith::resilience
