// Resilience layer, part 3: the guarded benchmark run.
//
// guarded_run is the only way tuning code executes a benchmark: it maps the
// RunBudget's interpreter-side axes (instructions, frame depth, arena) onto
// the engine options, runs the VM, and converts *every* failure — budget
// exhaustion, injected fault, runtime trap, foreign exception — into a
// structured EvalOutcome. It never throws, which is the property the
// evaluator's retry-then-quarantine loop and the GA's long campaigns rely
// on: a pathological genome is data, not a process death.
#pragma once

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "resilience/budget.hpp"
#include "runtime/machine.hpp"
#include "vm/vm.hpp"

namespace ith::resilience {

/// Verdict plus measurements of one guarded benchmark run. The RunResult is
/// meaningful only when outcome.ok(); on failure it holds whatever partial
/// iterations completed (useful for logs, never for fitness).
struct GuardedRun {
  EvalOutcome outcome;
  vm::RunResult result;
};

/// Runs `iterations` of `prog` under `cfg` — honoring cfg.budget, cfg.faults
/// and cfg.fault_key — and never throws. The VM enforces the sim-cycle /
/// compile-cycle / wall-clock axes itself; this function additionally maps
/// the instruction / frame-depth / arena axes onto cfg.interp_options
/// (tightening, never loosening, caps the caller already set).
GuardedRun guarded_run(const bc::Program& prog, const rt::MachineModel& machine,
                       heur::InlineHeuristic& heuristic, vm::VmConfig cfg, int iterations);

}  // namespace ith::resilience
