// Resilience layer, part 1: explicit evaluation budgets and structured
// outcomes.
//
// The GA's inner loop evaluates arbitrary points of the Table 1 parameter
// space, and some of them are pathological: inline-depth blowups that send
// compile time superlinear, heuristics that de-optimize a workload into a
// runaway loop, degenerate recursion that exhausts the simulated stack. An
// hours-long tuning campaign must treat all of these as *data* (a bad
// fitness value), never as a reason to die. Two pieces make that possible:
//
//   RunBudget    — the explicit resource envelope one benchmark run may
//                  consume (simulated cycles, compile cycles, dynamic
//                  instructions, frame depth, arena words, host wall clock).
//                  All-zero (the default) means unlimited, and every
//                  enforcement site reduces to one predictable branch — the
//                  same zero-cost-when-idle contract the obs layer keeps.
//   EvalOutcome  — the structured verdict of a guarded run: Ok,
//                  BudgetExceeded{which}, Trap{kind}, or Crash. The
//                  evaluator converts non-Ok outcomes into penalized (but
//                  always finite) fitness instead of propagating exceptions
//                  into the GA.
//
// This header is deliberately header-only and depends only on support/, so
// the runtime engines and the VM can throw the typed errors below without
// linking a new library.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace ith::resilience {

/// Which axis of a RunBudget was exhausted.
enum class BudgetKind : std::uint8_t {
  kNone,
  kSimCycles,      ///< total simulated cycles (execution + compilation) per run
  kCompileCycles,  ///< simulated compile cycles per run
  kInstructions,   ///< dynamic instructions per iteration
  kFrameDepth,     ///< simulated call-stack depth
  kArena,          ///< resident locals + operand-stack words
  kWallClock,      ///< host wall-clock deadline for the whole run
};

inline const char* budget_kind_name(BudgetKind k) {
  switch (k) {
    case BudgetKind::kNone: return "none";
    case BudgetKind::kSimCycles: return "sim-cycles";
    case BudgetKind::kCompileCycles: return "compile-cycles";
    case BudgetKind::kInstructions: return "instructions";
    case BudgetKind::kFrameDepth: return "frame-depth";
    case BudgetKind::kArena: return "arena";
    case BudgetKind::kWallClock: return "wall-clock";
  }
  return "?";
}

/// What kind of trap a non-budget failure was.
enum class TrapKind : std::uint8_t {
  kNone,
  kInjected,  ///< deliberately injected by a FaultPlan (chaos testing)
  kRuntime,   ///< ith::Error raised by the VM / optimizer / interpreter
};

inline const char* trap_kind_name(TrapKind k) {
  switch (k) {
    case TrapKind::kNone: return "none";
    case TrapKind::kInjected: return "injected";
    case TrapKind::kRuntime: return "runtime";
  }
  return "?";
}

/// Resource envelope for one guarded benchmark run. Zero on any axis means
/// unlimited on that axis; a default-constructed budget constrains nothing.
struct RunBudget {
  std::uint64_t max_sim_cycles = 0;
  std::uint64_t max_compile_cycles = 0;
  std::uint64_t max_instructions = 0;
  std::size_t max_frame_depth = 0;
  std::size_t max_arena_words = 0;
  std::uint64_t max_wall_ms = 0;

  bool unlimited() const {
    return max_sim_cycles == 0 && max_compile_cycles == 0 && max_instructions == 0 &&
           max_frame_depth == 0 && max_arena_words == 0 && max_wall_ms == 0;
  }
};

/// Classification of one guarded run.
enum class OutcomeKind : std::uint8_t {
  kOk,
  kBudgetExceeded,
  kTrap,
  kCrash,  ///< anything that is not an ith::Error (bad_alloc, unknown throw)
};

inline const char* outcome_kind_name(OutcomeKind k) {
  switch (k) {
    case OutcomeKind::kOk: return "ok";
    case OutcomeKind::kBudgetExceeded: return "budget-exceeded";
    case OutcomeKind::kTrap: return "trap";
    case OutcomeKind::kCrash: return "crash";
  }
  return "?";
}

/// Structured verdict of a guarded evaluation. Non-Ok outcomes carry the
/// failing axis/kind plus the originating error text for logs.
struct EvalOutcome {
  OutcomeKind kind = OutcomeKind::kOk;
  BudgetKind budget = BudgetKind::kNone;
  TrapKind trap = TrapKind::kNone;
  std::string detail;

  bool ok() const { return kind == OutcomeKind::kOk; }

  static EvalOutcome make_ok() { return EvalOutcome{}; }
  static EvalOutcome budget_exceeded(BudgetKind which, std::string detail) {
    return EvalOutcome{OutcomeKind::kBudgetExceeded, which, TrapKind::kNone, std::move(detail)};
  }
  static EvalOutcome make_trap(TrapKind which, std::string detail) {
    return EvalOutcome{OutcomeKind::kTrap, BudgetKind::kNone, which, std::move(detail)};
  }
  static EvalOutcome crash(std::string detail) {
    return EvalOutcome{OutcomeKind::kCrash, BudgetKind::kNone, TrapKind::kNone, std::move(detail)};
  }

  /// "ok", "budget-exceeded(sim-cycles)", "trap(injected)", "crash".
  std::string to_string() const {
    switch (kind) {
      case OutcomeKind::kOk: return "ok";
      case OutcomeKind::kBudgetExceeded:
        return std::string("budget-exceeded(") + budget_kind_name(budget) + ")";
      case OutcomeKind::kTrap: return std::string("trap(") + trap_kind_name(trap) + ")";
      case OutcomeKind::kCrash: return "crash";
    }
    return "?";
  }

  /// Classification equality (the fuzz oracle's budget tier compares this,
  /// not the detail text, which may legitimately differ between engines).
  bool same_classification(const EvalOutcome& other) const {
    return kind == other.kind && budget == other.budget && trap == other.trap;
  }
};

/// Thrown by budget enforcement sites (interpreter engines, VM). Derives
/// from ith::Error so every existing catch keeps working; the guard layer
/// catches it first to recover the exact axis.
class BudgetExceededError : public Error {
 public:
  BudgetExceededError(BudgetKind which, const std::string& what) : Error(what), which_(which) {}
  BudgetKind which() const { return which_; }

 private:
  BudgetKind which_;
};

/// Thrown by deterministic fault-injection sites (see fault.hpp). Also an
/// ith::Error, so un-guarded callers see a normal recoverable error.
class InjectedFaultError : public Error {
 public:
  using Error::Error;
};

/// Classifies the exception currently being handled into an EvalOutcome.
/// Must be called from inside a catch block.
inline EvalOutcome classify_current_exception() {
  try {
    throw;
  } catch (const BudgetExceededError& e) {
    return EvalOutcome::budget_exceeded(e.which(), e.what());
  } catch (const InjectedFaultError& e) {
    return EvalOutcome::make_trap(TrapKind::kInjected, e.what());
  } catch (const Error& e) {
    return EvalOutcome::make_trap(TrapKind::kRuntime, e.what());
  } catch (const std::exception& e) {
    return EvalOutcome::crash(e.what());
  } catch (...) {
    return EvalOutcome::crash("unknown exception");
  }
}

}  // namespace ith::resilience
