// ChaosSink: fault-injecting TraceSink decorator.
//
// Wraps any TraceSink and drops individual writes according to a FaultPlan's
// kSink site — the deterministic stand-in for a flaky trace file (full disk,
// broken pipe). Because Context never reads back from its sink, a dropped
// event must not perturb the traced computation; the chaos tests assert
// exactly that (tuning results are identical with and without sink faults).
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/sink.hpp"
#include "resilience/fault.hpp"

namespace ith::resilience {

class ChaosSink final : public obs::TraceSink {
 public:
  /// Both the inner sink and the plan must outlive this wrapper.
  ChaosSink(obs::TraceSink& inner, const FaultPlan& plan) : inner_(inner), plan_(plan) {}

  void write(const obs::Event& e) override {
    // Keyed by arrival sequence: which events drop depends only on the plan
    // seed and the event's position, never on timing.
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    if (plan_.should_inject(FaultSite::kSink, seq)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    inner_.write(e);
  }

  void flush() override { inner_.flush(); }

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  obs::TraceSink& inner_;
  const FaultPlan& plan_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ith::resilience
