#include "resilience/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/error.hpp"

namespace ith::resilience {

namespace {

constexpr char kMagic[8] = {'I', 'T', 'H', 'G', 'A', 'C', 'P', '1'};

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Writer {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void genome(const std::vector<int>& g) {
    u64(g.size());
    for (const int x : g) i64(x);
  }
  const std::string& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string bytes) : buf_(std::move(bytes)) {}

  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::vector<int> genome() {
    const std::uint64_t n = count(u64());
    std::vector<int> g;
    g.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) g.push_back(static_cast<int>(i64()));
    return g;
  }
  /// Element counts are validated against the bytes actually remaining, so
  /// a corrupted length field fails as "truncated" instead of a giant alloc.
  std::uint64_t count(std::uint64_t n) const {
    if (n > (buf_.size() - pos_) / sizeof(std::uint64_t)) {
      throw Error("checkpoint truncated");
    }
    return n;
  }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    if (buf_.size() - pos_ < n) throw Error("checkpoint truncated");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::string buf_;
  std::size_t pos_ = 0;
};

std::string serialize(const GaCheckpoint& cp) {
  Writer w;
  w.u64(cp.fingerprint);
  w.i64(cp.generation);
  w.u64(cp.rng_state);
  w.u64(cp.rng_inc);
  w.u64(cp.evaluations);
  w.u64(cp.cache_hits);
  w.f64(cp.best_ever);
  w.genome(cp.best_genome);
  w.i64(cp.stale);
  w.u64(cp.population.size());
  for (const ga::Genome& g : cp.population) w.genome(g);
  w.u64(cp.fitness.size());
  for (const double f : cp.fitness) w.f64(f);
  w.u64(cp.cache.size());
  for (const auto& [g, f] : cp.cache) {
    w.genome(g);
    w.f64(f);
  }
  w.u64(cp.history.size());
  for (const ga::GenerationStats& gs : cp.history) {
    w.i64(gs.generation);
    w.f64(gs.best);
    w.f64(gs.mean);
    w.f64(gs.worst);
    w.f64(gs.diversity);
    w.genome(gs.best_genome);
  }
  w.u64(cp.quarantine.size());
  for (const std::vector<int>& q : cp.quarantine) w.genome(q);
  return w.bytes();
}

GaCheckpoint deserialize(std::string payload) {
  Reader r(std::move(payload));
  GaCheckpoint cp;
  cp.fingerprint = r.u64();
  cp.generation = static_cast<int>(r.i64());
  cp.rng_state = r.u64();
  cp.rng_inc = r.u64();
  cp.evaluations = r.u64();
  cp.cache_hits = r.u64();
  cp.best_ever = r.f64();
  cp.best_genome = r.genome();
  cp.stale = static_cast<int>(r.i64());
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    cp.population.push_back(r.genome());
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    cp.fitness.push_back(r.f64());
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    ga::Genome g = r.genome();
    const double f = r.f64();
    cp.cache.emplace_back(std::move(g), f);
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    ga::GenerationStats gs;
    gs.generation = static_cast<int>(r.i64());
    gs.best = r.f64();
    gs.mean = r.f64();
    gs.worst = r.f64();
    gs.diversity = r.f64();
    gs.best_genome = r.genome();
    cp.history.push_back(std::move(gs));
  }
  for (std::uint64_t i = 0, n = r.count(r.u64()); i < n; ++i) {
    cp.quarantine.push_back(r.genome());
  }
  if (!r.exhausted()) throw Error("checkpoint has trailing bytes (corrupted file)");
  return cp;
}

}  // namespace

void save_checkpoint(const std::string& path, const GaCheckpoint& cp) {
  const std::string payload = serialize(cp);
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum = fnv1a(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    ITH_CHECK(os.good(), "cannot open checkpoint file for writing: " + tmp);
    os.write(kMagic, sizeof kMagic);
    os.write(reinterpret_cast<const char*>(&size), sizeof size);
    os.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    ITH_CHECK(os.good(), "checkpoint write failed: " + tmp);
  }
  // Atomic publish: readers see either the old checkpoint or the new one,
  // never a torn file, even if we are killed mid-save.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename checkpoint into place: " + path);
  }
}

GaCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open checkpoint: " + path);

  char magic[sizeof kMagic];
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  is.read(magic, sizeof magic);
  if (is.gcount() != sizeof magic || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw Error("not a GA checkpoint (bad magic): " + path);
  }
  is.read(reinterpret_cast<char*>(&size), sizeof size);
  is.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!is.good()) throw Error("checkpoint truncated: " + path);

  // Validate the declared size against the actual file length before
  // allocating, so a corrupted header fails cleanly instead of bad_alloc.
  const std::streampos body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::uint64_t remaining = static_cast<std::uint64_t>(is.tellg() - body_start);
  is.seekg(body_start);
  if (size > remaining) throw Error("checkpoint truncated: " + path);
  if (remaining > size) throw Error("checkpoint has trailing bytes (corrupted file): " + path);

  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    throw Error("checkpoint truncated: " + path);
  }
  if (fnv1a(payload) != checksum) {
    throw Error("checkpoint checksum mismatch (corrupted file): " + path);
  }
  return deserialize(std::move(payload));
}

}  // namespace ith::resilience
