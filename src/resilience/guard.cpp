#include "resilience/guard.hpp"

#include <algorithm>

namespace ith::resilience {

GuardedRun guarded_run(const bc::Program& prog, const rt::MachineModel& machine,
                       heur::InlineHeuristic& heuristic, vm::VmConfig cfg, int iterations) {
  const RunBudget& b = cfg.budget;
  if (b.max_instructions != 0) {
    cfg.interp_options.max_instructions =
        std::min(cfg.interp_options.max_instructions, b.max_instructions);
  }
  if (b.max_frame_depth != 0) {
    cfg.interp_options.max_frames = std::min(cfg.interp_options.max_frames, b.max_frame_depth);
  }
  if (b.max_arena_words != 0) {
    cfg.interp_options.max_arena_words =
        std::min(cfg.interp_options.max_arena_words, b.max_arena_words);
  }

  GuardedRun out;
  try {
    vm::VirtualMachine vm(prog, machine, heuristic, cfg);
    out.result = vm.run(iterations);
    out.outcome = EvalOutcome::make_ok();
  } catch (...) {
    out.outcome = classify_current_exception();
  }
  return out;
}

}  // namespace ith::resilience
