// Fully parameterized synthetic program generator, used by the property
// tests (random programs must verify, run, and optimize soundly) and by the
// ablation benches (controlled sweeps over program shape).
#pragma once

#include <cstdint>

#include "bytecode/program.hpp"
#include "support/rng.hpp"

namespace ith::wl {

struct SyntheticSpec {
  std::uint64_t seed = 1;
  int n_leaves = 10;
  int leaf_min_len = 8;
  int leaf_max_len = 30;
  int n_chains = 2;
  int chain_levels = 3;
  int chain_len = 14;
  int n_dispatchers = 1;
  int n_blobs = 0;
  int blob_len = 150;
  int n_recursive = 0;      ///< recursive methods (invoked with small depths)
  std::int64_t hot_iters = 50;
  int calls_per_iter = 2;
  std::size_t globals = 256;
};

/// Generates a verified program from the spec. Deterministic in `spec.seed`.
bc::Program make_synthetic(const SyntheticSpec& spec);

}  // namespace ith::wl
