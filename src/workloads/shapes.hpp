// Program-shaping combinators.
//
// The benchmark programs substitute for SPECjvm98 / DaCapo (see DESIGN.md):
// what the inlining trade-off cares about is a program's *shape* — method
// size distribution, call-chain depth, call-site fan-out, loop hotness skew,
// and the ratio of run length to code volume. These helpers generate those
// shapes deterministically from a seeded RNG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/builder.hpp"
#include "support/rng.hpp"

namespace ith::wl {

/// Appends ~approx_len instructions of arithmetic over the given readable
/// local slots and the global array, leaving exactly one value on the
/// operand stack. Deterministic for a given RNG state.
void emit_expr(bc::MethodBuilder& mb, Pcg32& rng, const std::vector<int>& readable_slots,
               int approx_len, bool use_globals = false);

/// A leaf method: computes over its arguments (~body_len instructions) and
/// returns a value. Optionally touches the global array.
void make_leaf(bc::ProgramBuilder& pb, const std::string& name, int nargs, int body_len,
               Pcg32& rng, bool use_globals = false);

/// A linear call chain `name_0 -> name_1 -> ... -> name_{levels-1} -> leaf`.
/// Every level does ~level_len instructions of its own work around the call.
/// Returns the top method's name (`name_0`). All levels take `nargs` args.
std::string make_chain(bc::ProgramBuilder& pb, const std::string& name, int levels, int nargs,
                       int level_len, const std::string& leaf, Pcg32& rng);

/// A dispatcher: selects one of `callees` by `arg0 mod callees.size()` via a
/// compare/branch ladder and tail-calls it with (arg0, arg1). All callees
/// must take two arguments.
void make_dispatcher(bc::ProgramBuilder& pb, const std::string& name,
                     const std::vector<std::string>& callees);

/// A self-recursive method computing a fold over [0, arg0) with ~body_len
/// instructions of work per level. Recursion depth equals its argument.
void make_recursive(bc::ProgramBuilder& pb, const std::string& name, int body_len, Pcg32& rng);

/// Appends a counted loop to `mb`: for (i = 0; i < iters; ++i) body.
/// `emit_body` is invoked once to emit the loop body, which must leave the
/// operand stack unchanged. `counter_slot` and `acc_slot` must be distinct
/// scratch locals.
template <typename BodyFn>
void emit_counted_loop(bc::MethodBuilder& mb, const std::string& label_prefix, int counter_slot,
                       std::int64_t iters, BodyFn&& emit_body) {
  mb.const_(0).store(counter_slot);
  mb.label(label_prefix + "_head");
  mb.load(counter_slot).const_(iters).cmplt().jz(label_prefix + "_done");
  emit_body();
  mb.load(counter_slot).const_(1).add().store(counter_slot);
  mb.jmp(label_prefix + "_head");
  mb.label(label_prefix + "_done");
}

/// A "cold blob": a method with a large straight-line body, meant to be
/// invoked once. These carry the compile-time load that makes overly
/// aggressive heuristics expensive on DaCapo-like programs.
void make_cold_blob(bc::ProgramBuilder& pb, const std::string& name, int body_len, int ncalls,
                    const std::vector<std::string>& callable, Pcg32& rng);

/// A mid-tier method: ~body_len instructions of its own work plus `ncalls`
/// calls to single-argument callees (each call feeds the running value
/// through the callee). This is the "method calling getters/helpers" layer
/// that makes default-heuristic inlining compound through call depth.
void make_mid(bc::ProgramBuilder& pb, const std::string& name, int nargs, int body_len, int ncalls,
              const std::vector<std::string>& callees1, Pcg32& rng);

/// A *conditional* call chain: level i does ~level_len instructions of work
/// and calls level i+1 only when `arg0 % modulus == 0` (passing arg0 /
/// modulus down). Dynamic call frequency decays geometrically with depth
/// while the static chain is full-length — the rete-network shape that
/// makes deep inlining pay static cost for vanishing dynamic benefit
/// (the paper's "depth 5 is worst for jess" effect). Returns the top
/// method's name. All levels take two arguments.
std::string make_cond_chain(bc::ProgramBuilder& pb, const std::string& name, int levels,
                            int level_len, const std::string& leaf, std::int64_t modulus,
                            Pcg32& rng);

}  // namespace ith::wl
