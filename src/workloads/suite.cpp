#include "workloads/suite.hpp"

#include <functional>
#include <map>

#include "support/error.hpp"
#include "workloads/programs.hpp"

namespace ith::wl {

const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> kNames = {"compress", "jess",     "db",  "javac",
                                                  "mpegaudio", "raytrace", "jack"};
  return kNames;
}

const std::vector<std::string>& dacapo_names() {
  static const std::vector<std::string> kNames = {"antlr", "fop",     "jython",   "pmd",
                                                  "ps",    "ipsixql", "pseudojbb"};
  return kNames;
}

Workload make_workload(const std::string& name, double run_scale) {
  ITH_CHECK(run_scale > 0.0, "run_scale must be positive");
  using Maker = Workload (*)(double);
  static const std::map<std::string, Maker> kMakers = {
      {"compress", &make_compress}, {"jess", &make_jess},
      {"db", &make_db},             {"javac", &make_javac},
      {"mpegaudio", &make_mpegaudio}, {"raytrace", &make_raytrace},
      {"jack", &make_jack},         {"antlr", &make_antlr},
      {"fop", &make_fop},           {"jython", &make_jython},
      {"pmd", &make_pmd},           {"ps", &make_ps},
      {"ipsixql", &make_ipsixql},   {"pseudojbb", &make_pseudojbb},
  };
  const auto it = kMakers.find(name);
  ITH_CHECK(it != kMakers.end(), "unknown workload: " + name);
  return it->second(run_scale);
}

std::vector<Workload> make_suite(const std::string& suite, double run_scale) {
  std::vector<Workload> out;
  if (suite == "specjvm98" || suite == "all") {
    for (const std::string& n : spec_names()) out.push_back(make_workload(n, run_scale));
  }
  if (suite == "dacapo+jbb" || suite == "all") {
    for (const std::string& n : dacapo_names()) out.push_back(make_workload(n, run_scale));
  }
  ITH_CHECK(!out.empty(), "unknown suite: " + suite + " (use specjvm98, dacapo+jbb, or all)");
  return out;
}

}  // namespace ith::wl
