#include "workloads/synthetic.hpp"

#include <string>
#include <vector>

#include "support/error.hpp"
#include "workloads/shapes.hpp"

namespace ith::wl {

bc::Program make_synthetic(const SyntheticSpec& spec) {
  ITH_CHECK(spec.n_leaves >= 1, "synthetic program needs at least one leaf");
  ITH_CHECK(spec.leaf_min_len >= 1 && spec.leaf_max_len >= spec.leaf_min_len,
            "bad leaf length range");
  Pcg32 rng(spec.seed, 0x5e6);
  bc::ProgramBuilder pb("synthetic", spec.globals);

  std::vector<std::string> leaves2, leaves1;
  for (int i = 0; i < spec.n_leaves; ++i) {
    const std::string name = "leaf" + std::to_string(i);
    const int nargs = (i % 2 == 0) ? 2 : 1;
    const int len = spec.leaf_min_len +
                    static_cast<int>(rng.bounded(
                        static_cast<std::uint32_t>(spec.leaf_max_len - spec.leaf_min_len + 1)));
    make_leaf(pb, name, nargs, len, rng, i % 4 == 0 && spec.globals > 0);
    (nargs == 2 ? leaves2 : leaves1).push_back(name);
  }
  if (leaves2.empty()) {
    make_leaf(pb, "leaf_extra", 2, spec.leaf_min_len, rng);
    leaves2.push_back("leaf_extra");
  }
  if (leaves1.empty()) {
    make_leaf(pb, "leaf_extra1", 1, spec.leaf_min_len, rng);
    leaves1.push_back("leaf_extra1");
  }

  std::vector<std::string> tops;
  for (int c = 0; c < spec.n_chains; ++c) {
    tops.push_back(make_chain(pb, "chain" + std::to_string(c), spec.chain_levels, 2,
                              spec.chain_len,
                              leaves2[static_cast<std::size_t>(c) % leaves2.size()], rng));
  }
  for (int d = 0; d < spec.n_dispatchers; ++d) {
    std::vector<std::string> targets;
    for (std::size_t k = 0; k < 6 && k < leaves2.size(); ++k) {
      targets.push_back(leaves2[(static_cast<std::size_t>(d) + k) % leaves2.size()]);
    }
    make_dispatcher(pb, "disp" + std::to_string(d), targets);
    tops.push_back("disp" + std::to_string(d));
  }
  for (int r = 0; r < spec.n_recursive; ++r) {
    make_recursive(pb, "rec" + std::to_string(r), 8 + r, rng);
  }

  std::vector<std::string> blobs;
  for (int b = 0; b < spec.n_blobs; ++b) {
    const std::string name = "blob" + std::to_string(b);
    make_cold_blob(pb, name, spec.blob_len, 4, leaves1, rng);
    blobs.push_back(name);
  }

  auto& m = pb.method("main", 0, 3);
  m.const_(0).store(1);
  for (const std::string& b : blobs) m.load(1).call(b, 1).store(1);
  if (tops.empty()) tops.push_back(leaves2.front());
  emit_counted_loop(m, "main", 0, spec.hot_iters, [&] {
    for (int c = 0; c < spec.calls_per_iter; ++c) {
      m.load(0).load(1).call(tops[static_cast<std::size_t>(c) % tops.size()], 2);
      m.load(1).add().store(1);
    }
    for (int r = 0; r < spec.n_recursive; ++r) {
      m.const_(5).call("rec" + std::to_string(r), 1);
      m.load(1).add().store(1);
    }
  });
  m.load(1).halt();
  pb.entry("main");
  return pb.build();
}

}  // namespace ith::wl
