// DaCapo+JBB stand-in programs (the paper's unseen test suite, Table 3).
//
// The defining property of this suite versus SPECjvm98 is *code volume
// versus run length*: many more methods, most executed only once or twice,
// with comparatively short runs. Under the Opt scenario compilation
// dominates total time, which is why the paper's tuned heuristics win big
// here (up to 58% total-time reduction on antlr) mostly by not inlining
// into code that barely runs.
//
// Programs are layered like real Java: a large population of tiny "util"
// methods (getters/helpers — below ALWAYS_INLINE_SIZE or CALLEE_MAX_SIZE,
// so the default heuristic inlines them *everywhere*, including into
// one-shot code), a middle tier calling them, and big one-shot "blob"
// methods whose compile time balloons when the default heuristic splices
// the lower tiers in.

#include "workloads/programs.hpp"

#include "workloads/shapes.hpp"

namespace ith::wl {

namespace {

struct CodeRichSpec {
  const char* name;
  const char* description;
  std::uint64_t seed;
  int n_utils;          ///< tiny helper methods (1 arg, always-inline bait)
  int util_min, util_span;
  int n_mids;           ///< middle tier: own work + util calls
  int mid_min, mid_span;
  int n_blobs;          ///< one-shot large methods (the compile load)
  int blob_min, blob_span;
  int blob_calls;       ///< call sites into the middle tier per blob
  int n_chains;         ///< processing pipelines (the hot paths)
  int chain_levels;
  int chain_len;
  int n_dispatch;       ///< dispatchers over mid-tier methods
  std::int64_t hot_iters;  ///< main-loop trip count
  int calls_per_iter;   ///< distinct chain calls per main-loop iteration
  std::size_t globals;
};

/// Generic code-rich program: an init phase touches every blob once, then a
/// hot loop exercises a few pipelines.
Workload make_code_rich(const CodeRichSpec& s, double run_scale) {
  Pcg32 rng(s.seed, 101);
  bc::ProgramBuilder pb(s.name, s.globals);

  // Tier 1: tiny utils. Estimated sizes mostly land under the default
  // CALLEE_MAX_SIZE (and the smallest under ALWAYS_INLINE_SIZE).
  std::vector<std::string> utils;
  for (int i = 0; i < s.n_utils; ++i) {
    const std::string name = std::string("u") + std::to_string(i);
    make_leaf(pb, name, 1,
              s.util_min + static_cast<int>(rng.bounded(static_cast<std::uint32_t>(s.util_span))),
              rng, i % 7 == 0);
    utils.push_back(name);
  }

  // Tier 2: mid methods; half take one argument (blob-callable), half two
  // (chain/dispatcher-callable). Each calls 1-2 utils.
  std::vector<std::string> mids1, mids2;
  for (int i = 0; i < s.n_mids; ++i) {
    const std::string name = std::string("m") + std::to_string(i);
    const int nargs = (i % 2 == 0) ? 1 : 2;
    const int len =
        s.mid_min + static_cast<int>(rng.bounded(static_cast<std::uint32_t>(s.mid_span)));
    make_mid(pb, name, nargs, len, 1 + static_cast<int>(rng.bounded(2)), utils, rng);
    (nargs == 1 ? mids1 : mids2).push_back(name);
  }

  std::vector<std::string> chain_tops;
  for (int c = 0; c < s.n_chains; ++c) {
    const std::string base = std::string("pipe") + std::to_string(c);
    chain_tops.push_back(make_chain(pb, base, s.chain_levels, 2, s.chain_len,
                                    mids2[static_cast<std::size_t>(c) % mids2.size()], rng));
  }
  std::vector<std::string> dispatchers;
  for (int d = 0; d < s.n_dispatch; ++d) {
    const std::string name = std::string("dis") + std::to_string(d);
    std::vector<std::string> targets;
    for (std::size_t k = 0; k < 8 && k < mids2.size(); ++k) {
      targets.push_back(mids2[(static_cast<std::size_t>(d) * 3 + k) % mids2.size()]);
    }
    make_dispatcher(pb, name, targets);
    dispatchers.push_back(name);
  }

  // Tier 3: one-shot blobs calling into the middle tier. Under an
  // aggressive heuristic each call site drags in a mid body plus its util
  // calls — compile time balloons on code that runs once.
  std::vector<std::string> blobs;
  for (int b = 0; b < s.n_blobs; ++b) {
    const std::string name = std::string("once") + std::to_string(b);
    make_cold_blob(pb, name,
                   s.blob_min + static_cast<int>(rng.bounded(static_cast<std::uint32_t>(s.blob_span))),
                   s.blob_calls, mids1, rng);
    blobs.push_back(name);
  }

  auto& init = pb.method("init", 0, 1);
  init.const_(1).store(0);
  for (const std::string& b : blobs) init.load(0).call(b, 1).store(0);
  init.load(0).ret();

  auto& m = pb.method("main", 0, 3);
  m.call("init", 0).store(1);
  {
    auto iters = static_cast<std::int64_t>(static_cast<double>(s.hot_iters) * run_scale);
    if (iters < 1) iters = 1;
    emit_counted_loop(m, "main", 0, iters, [&] {
    for (int c = 0; c < s.calls_per_iter; ++c) {
      m.load(0).load(1).call(chain_tops[static_cast<std::size_t>(c) % chain_tops.size()], 2);
      m.load(1).add().store(1);
    }
    // Rotate across every dispatcher: the dispatchers become warm (their
    // bodies cross the hot threshold) while each individual target stays
    // cool — the "barely worth optimizing" tier real adaptive systems waste
    // compile time on.
    for (const std::string& d : dispatchers) {
      m.load(0).load(1).call(d, 2);
      m.load(1).add().store(1);
    }
  });
  }
  m.load(1).halt();
  pb.entry("main");

  return {s.name, s.description, "dacapo+jbb", pb.build()};
}

}  // namespace

Workload make_antlr(double run_scale) {
  // Largest paper win (58% total): grammar analysis = lots of one-shot code.
  return make_code_rich(CodeRichSpec{"antlr", "parses grammar files and generates a parser/lexer for each",
                         0xA7117001u,
                         /*utils*/ 40, 3, 6, /*mids*/ 48, 8, 8,
                         /*blobs*/ 30, 150, 200, /*blob_calls*/ 10,
                         /*chains*/ 5, 5, 10, /*dispatch*/ 3,
                         /*hot_iters*/ 420, /*calls_per_iter*/ 2, /*globals*/ 512}, run_scale);
}

Workload make_fop(double run_scale) {
  return make_code_rich(CodeRichSpec{"fop", "parses an XSL-FO file and generates a PDF",
                         0xF0900002u,
                         30, 3, 6, 40, 9, 8,
                         22, 140, 180, 9,
                         4, 4, 11, 2,
                         420, 2, 1024}, run_scale);
}

Workload make_jython(double run_scale) {
  // Interpreter: dispatch-heavy hot loop plus a large cold runtime.
  return make_code_rich(CodeRichSpec{"jython", "interprets a series of Python programs",
                         0x94780003u,
                         36, 3, 5, 44, 8, 7,
                         18, 130, 160, 8,
                         6, 3, 9, 5,
                         500, 3, 1024}, run_scale);
}

Workload make_pmd(double run_scale) {
  return make_code_rich(CodeRichSpec{"pmd", "analyzes Java classes for source code problems",
                         0x90D00004u,
                         34, 3, 6, 42, 9, 8,
                         24, 150, 200, 9,
                         5, 5, 10, 2,
                         380, 2, 512}, run_scale);
}

Workload make_ps(double run_scale) {
  // The paper finds no per-program running-time win for ps: its helpers are
  // large (mostly past the CALLEE_MAX_SIZE range) and its run is tiny.
  return make_code_rich(CodeRichSpec{"ps", "reads and interprets a PostScript file",
                         0x95000005u,
                         10, 16, 10, 30, 26, 14,
                         20, 140, 180, 6,
                         3, 3, 22, 1,
                         200, 1, 512}, run_scale);
}

Workload make_ipsixql(double run_scale) {
  return make_code_rich(CodeRichSpec{"ipsixql", "XML database queried against the works of Shakespeare",
                         0x19516006u,
                         32, 3, 6, 40, 8, 8,
                         22, 140, 190, 9,
                         5, 4, 10, 3,
                         450, 2, 8192}, run_scale);
}

Workload make_pseudojbb(double run_scale) {
  // Fixed-work SPECjbb2000: a transaction loop over operation dispatchers
  // plus a big cold warehouse-setup phase.
  return make_code_rich(CodeRichSpec{"pseudojbb", "SPECjbb2000 modified to perform a fixed number of transactions",
                         0x9B200007u,
                         44, 3, 6, 52, 8, 8,
                         28, 140, 220, 10,
                         6, 4, 11, 6,
                         550, 3, 4096}, run_scale);
}

}  // namespace ith::wl
