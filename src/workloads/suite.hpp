// Workload registry: the training suite (SPECjvm98 stand-ins) and the test
// suite (DaCapo+JBB stand-ins), per Tables 2 and 3 of the paper. Each
// program is generated deterministically; see DESIGN.md for the shape each
// one models.
#pragma once

#include <string>
#include <vector>

#include "bytecode/program.hpp"

namespace ith::wl {

struct Workload {
  std::string name;
  std::string description;  ///< the paper's one-line characterization
  std::string suite;        ///< "specjvm98" or "dacapo+jbb"
  bc::Program program;
};

/// Benchmark names in the paper's order.
const std::vector<std::string>& spec_names();     // compress ... jack (7)
const std::vector<std::string>& dacapo_names();   // antlr ... pseudojbb (7)

/// Builds one benchmark program by name; throws ith::Error for unknown
/// names. `run_scale` multiplies hot-loop trip counts (the "input size");
/// 1.0 is the calibrated default used in the paper reproduction.
Workload make_workload(const std::string& name, double run_scale = 1.0);

/// Builds a whole suite: "specjvm98", "dacapo+jbb", or "all".
std::vector<Workload> make_suite(const std::string& suite, double run_scale = 1.0);

}  // namespace ith::wl
