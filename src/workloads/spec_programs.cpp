// SPECjvm98 stand-in programs (the paper's training suite, Table 2).
//
// Each program reproduces the *shape* that matters to the inlining
// trade-off; the comment on each constructor records the characterization
// it models. Iteration counts are calibrated so SPEC-like programs are
// running-time dominated (the suite the default heuristic was tuned for).

#include "workloads/programs.hpp"

#include "workloads/shapes.hpp"

namespace ith::wl {

namespace {

/// Standard entry: acc = 0; for (i = 0; i < iters; ++i) body; halt(acc).
/// Slot 0 is the loop counter, slot 1 the accumulator.
template <typename BodyFn>
void make_main(bc::ProgramBuilder& pb, std::int64_t iters, BodyFn&& body) {
  auto& m = pb.method("main", 0, 3);
  m.const_(0).store(1);
  emit_counted_loop(m, "main", 0, iters, [&] { body(m); });
  m.load(1).halt();
  pb.entry("main");
}


/// Applies the run_scale "input size" multiplier to a trip count.
std::int64_t scaled(std::int64_t iters, double run_scale) {
  const auto v = static_cast<std::int64_t>(static_cast<double>(iters) * run_scale);
  return v < 1 ? 1 : v;
}

/// A cold startup section: `blobs` one-shot methods built over a small pool
/// of inlinable helpers, chained from an "init" method. Every SPEC program
/// gets one (real benchmarks load dictionaries/tables/scenes at startup);
/// under Opt this code is compiled with full optimization even though it
/// runs once — the compile-time exposure behind Figure 1(a)'s average
/// total-time degradation.
std::string add_cold_init(bc::ProgramBuilder& pb, Pcg32& rng, int blobs, int blob_len,
                          int calls_per_blob) {
  std::vector<std::string> helpers;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "chelp" + std::to_string(i);
    make_leaf(pb, name, 1, 6 + static_cast<int>(rng.bounded(8)), rng);
    helpers.push_back(name);
  }
  std::vector<std::string> cold;
  for (int b = 0; b < blobs; ++b) {
    const std::string name = "cold" + std::to_string(b);
    make_cold_blob(pb, name,
                   blob_len + static_cast<int>(rng.bounded(static_cast<std::uint32_t>(blob_len / 2))),
                   calls_per_blob, helpers, rng);
    cold.push_back(name);
  }
  auto& init = pb.method("cold_init", 0, 1);
  init.const_(1).store(0);
  for (const std::string& b : cold) init.load(0).call(b, 1).store(0);
  init.load(0).ret();
  return "cold_init";
}

/// Standard entry with a cold-init phase before the hot loop.
template <typename BodyFn>
void make_main_with_init(bc::ProgramBuilder& pb, const std::string& init_name, std::int64_t iters,
                         BodyFn&& body) {
  auto& m = pb.method("main", 0, 3);
  m.call(init_name, 0).store(1);
  emit_counted_loop(m, "main", 0, iters, [&] { body(m); });
  m.load(1).halt();
  pb.entry("main");
}

}  // namespace

// compress: tight numeric kernel over a global buffer, very few methods,
// long-running. The archetypal "Opt wins" program: negligible code volume,
// everything hot.
Workload make_compress(double run_scale) {
  Pcg32 rng(0xC0313255u, 11);
  bc::ProgramBuilder pb("compress", 4096);

  make_leaf(pb, "hash", 2, 10, rng, /*use_globals=*/true);
  make_leaf(pb, "encode", 2, 9, rng);
  make_chain(pb, "stage", /*levels=*/3, 2, 10, "hash", rng);
  make_chain(pb, "emit", /*levels=*/2, 2, 9, "encode", rng);

  // kernel(block): one compression block.
  auto& k = pb.method("kernel", 1, 3);
  k.const_(0).store(2);
  emit_counted_loop(k, "k", 1, 32, [&] {
    k.load(0).load(1).call("stage_0", 2);
    k.load(2).add().store(2);
    // Non-call kernel arithmetic: real compressors do most of their work
    // between calls, which bounds what inlining can win.
    emit_expr(k, rng, {0, 1, 2}, 26, true);
    k.load(2).add().store(2);
    k.load(1).load(0).call("emit_0", 2);
    k.load(2).add().store(2);
  });
  k.load(2).ret();

  const std::string init = add_cold_init(pb, rng, 2, 60, 5);  // tiny dictionary setup
  make_main_with_init(pb, init, scaled(500, run_scale), [](bc::MethodBuilder& m) {
    m.load(0).call("kernel", 1);
    m.load(1).add().store(1);
  });
  return {"compress", "Java version of 129.compress from SPEC 95", "specjvm98", pb.build()};
}

// jess: expert-system shell — many small-to-medium "rule" methods reached
// through dispatchers and deep match chains. Call-bound; the paper's case
// where MAX_INLINE_DEPTH=5 is the *worst* choice and Adapt beats Opt.
Workload make_jess(double run_scale) {
  Pcg32 rng(0x1E550001u, 13);
  bc::ProgramBuilder pb("jess", 1024);

  std::vector<std::string> rules;
  for (int r = 0; r < 24; ++r) {
    const std::string name = "rule" + std::to_string(r);
    // Rule sizes straddle the CALLEE_MAX_SIZE default (23 words).
    make_leaf(pb, name, 2, 6 + static_cast<int>(rng.bounded(12)), rng, r % 5 == 0);
    rules.push_back(name);
  }
  make_dispatcher(pb, "fire_a", {rules.begin(), rules.begin() + 8});
  make_dispatcher(pb, "fire_b", {rules.begin() + 8, rules.begin() + 16});
  make_dispatcher(pb, "fire_c", {rules.begin() + 16, rules.end()});

  // Deep match chains ending in the dispatchers. They are *conditional*:
  // each level descends only for a fraction of inputs (rete networks take
  // deep paths rarely), so inlining past depth ~2 adds static code and
  // compile time for almost no dynamic benefit — the reason Figure 2(b)
  // shows depth 5 as the worst choice for jess.
  make_cond_chain(pb, "match_a", /*levels=*/4, 1, "fire_a", /*modulus=*/3, rng);
  make_cond_chain(pb, "match_b", /*levels=*/4, 1, "fire_b", /*modulus=*/3, rng);
  make_cond_chain(pb, "match_c", /*levels=*/4, 1, "fire_c", /*modulus=*/3, rng);

  // Rete-network construction: one-shot setup code. This is what makes the
  // Opt scenario pay (it optimizes code that runs once) and Adapt win on
  // jess, the paper's Figure 2(b) observation.
  std::vector<std::string> setup_helpers;
  for (int i = 0; i < 10; ++i) {
    const std::string name = "node" + std::to_string(i);
    make_leaf(pb, name, 1, 6 + static_cast<int>(rng.bounded(8)), rng);
    setup_helpers.push_back(name);
  }
  std::vector<std::string> setup;
  for (int b = 0; b < 20; ++b) {
    const std::string name = "build" + std::to_string(b);
    make_cold_blob(pb, name, 140 + static_cast<int>(rng.bounded(100)), 8, setup_helpers, rng);
    setup.push_back(name);
  }
  auto& init = pb.method("init", 0, 1);
  init.const_(1).store(0);
  for (const std::string& b : setup) init.load(0).call(b, 1).store(0);
  init.load(0).ret();

  auto& m = pb.method("main", 0, 3);
  m.call("init", 0).store(1);
  emit_counted_loop(m, "main", 0, scaled(6000, run_scale), [&] {
    m.load(0).load(1).call("match_a_0", 2).store(1);
    emit_expr(m, rng, {0, 1}, 22, true);  // working-memory bookkeeping
    m.load(1).add().store(1);
    m.load(0).const_(7).add().load(1).call("match_b_0", 2);
    m.load(1).add().store(1);
    m.load(1).load(0).call("match_c_0", 2).store(1);
  });
  m.load(1).halt();
  pb.entry("main");
  return {"jess", "Java expert system shell", "specjvm98", pb.build()};
}

// db: in-memory database — global-array reads/writes inside medium methods,
// index-lookup chains. Moderately call-bound, data-dependent.
Workload make_db(double run_scale) {
  Pcg32 rng(0xDB000017u, 17);
  bc::ProgramBuilder pb("db", 8192);

  make_leaf(pb, "cmp_key", 2, 8, rng, true);
  make_leaf(pb, "read_rec", 2, 11, rng, true);
  make_leaf(pb, "write_rec", 2, 12, rng, true);
  make_leaf(pb, "hash_key", 2, 7, rng);
  make_chain(pb, "index", /*levels=*/3, 2, 9, "cmp_key", rng);
  make_dispatcher(pb, "op", {"read_rec", "write_rec", "read_rec", "cmp_key"});

  auto& q = pb.method("query", 2, 3);
  q.load(0).load(1).call("index_0", 2).store(2);
  q.load(2).load(0).call("hash_key", 2);
  q.load(2).add().store(2);
  q.load(0).load(2).call("op", 2);
  q.load(2).add().ret();

  const std::string init = add_cold_init(pb, rng, 10, 160, 9);  // index construction
  make_main_with_init(pb, init, scaled(6000, run_scale), [&rng](bc::MethodBuilder& m) {
    m.load(0).load(1).call("query", 2);
    m.load(1).add().store(1);
    emit_expr(m, rng, {0, 1}, 20, true);  // result-set bookkeeping
    m.load(1).add().store(1);
  });
  return {"db", "Builds and operates on an in-memory database", "specjvm98", pb.build()};
}

// javac: a compiler — the code-richest SPEC program. Large method bodies,
// one-shot "pass" blobs, and a hot parse loop. Compile time is a visible
// share of total time even in the training suite.
Workload make_javac(double run_scale) {
  Pcg32 rng(0x7A9AC003u, 19);
  bc::ProgramBuilder pb("javac", 4096);

  std::vector<std::string> helpers;
  for (int i = 0; i < 18; ++i) {
    const std::string name = "sym" + std::to_string(i);
    make_leaf(pb, name, 1, 6 + static_cast<int>(rng.bounded(9)), rng, i % 4 == 0);
    helpers.push_back(name);
  }
  std::vector<std::string> tok2;
  for (int i = 0; i < 10; ++i) {
    const std::string name = "tok" + std::to_string(i);
    make_leaf(pb, name, 2, 6 + static_cast<int>(rng.bounded(9)), rng);
    tok2.push_back(name);
  }
  make_dispatcher(pb, "reduce", tok2);
  make_chain(pb, "parse", /*levels=*/4, 2, 10, "reduce", rng);

  // One-shot compiler passes: big bodies, each invoked exactly once.
  std::vector<std::string> passes;
  for (int p = 0; p < 14; ++p) {
    const std::string name = "pass" + std::to_string(p);
    make_cold_blob(pb, name, 130 + static_cast<int>(rng.bounded(120)), 8, helpers, rng);
    passes.push_back(name);
  }
  auto& init = pb.method("init", 0, 1);
  init.const_(1).store(0);
  for (const std::string& p : passes) init.load(0).call(p, 1).store(0);
  init.load(0).ret();

  auto& m = pb.method("main", 0, 3);
  m.call("init", 0).store(1);
  emit_counted_loop(m, "main", 0, scaled(5500, run_scale), [&] {
    m.load(0).load(1).call("parse_0", 2);
    m.load(1).add().store(1);
    emit_expr(m, rng, {0, 1}, 18, true);  // AST bookkeeping between reductions
    m.load(1).add().store(1);
  });
  m.load(1).halt();
  pb.entry("main");
  return {"javac", "Java source to bytecode compiler in JDK 1.0.2", "specjvm98", pb.build()};
}

// mpegaudio: numeric filter banks — a kernel applying several medium-size
// filters per sample. Long-running; aggressive inlining of all filter
// bodies into the kernel is where I-cache pressure first appears.
Workload make_mpegaudio(double run_scale) {
  Pcg32 rng(0x3E6A0D10u, 23);
  bc::ProgramBuilder pb("mpegaudio", 2048);

  std::vector<std::string> filters;
  for (int f = 0; f < 14; ++f) {
    const std::string name = "filter" + std::to_string(f);
    make_leaf(pb, name, 2, 9 + static_cast<int>(rng.bounded(8)), rng, f % 3 == 0);
    filters.push_back(name);
  }

  auto& frame = pb.method("frame", 1, 3);
  frame.const_(0).store(2);
  emit_counted_loop(frame, "f", 1, 12, [&] {
    for (int f = 0; f < 4; ++f) {
      frame.load(0).load(1).call(filters[static_cast<std::size_t>(f) * 3], 2);
      frame.load(2).add().store(2);
      emit_expr(frame, rng, {0, 1, 2}, 9);  // windowing arithmetic between filters
      frame.load(2).add().store(2);
    }
  });
  frame.load(2).ret();

  auto& dec = pb.method("decode", 2, 3);
  dec.load(0).call("frame", 1).store(2);
  dec.load(1).load(2).call(filters[1], 2);
  dec.load(2).add().ret();

  const std::string init = add_cold_init(pb, rng, 10, 150, 9);  // huffman/window tables
  make_main_with_init(pb, init, scaled(2200, run_scale), [](bc::MethodBuilder& m) {
    m.load(0).load(1).call("decode", 2);
    m.load(1).add().store(1);
  });
  return {"mpegaudio", "Decodes an MPEG-3 audio file", "specjvm98", pb.build()};
}

// raytrace: recursive ray tracing over tiny vector-math methods — the
// biggest running-time winner from inlining (27% in the paper's Fig 5a):
// small hot callees everywhere.
Workload make_raytrace(double run_scale) {
  Pcg32 rng(0x4A77ACEDu, 29);
  bc::ProgramBuilder pb("raytrace", 2048);

  make_leaf(pb, "dot", 2, 8, rng);
  make_leaf(pb, "madd", 2, 9, rng);
  make_leaf(pb, "norm", 2, 10, rng);
  make_leaf(pb, "refl", 2, 12, rng);
  make_chain(pb, "shade", /*levels=*/3, 2, 10, "dot", rng);
  make_recursive(pb, "bounce", 14, rng);

  auto& tr = pb.method("trace_ray", 2, 3);
  tr.load(0).load(1).call("madd", 2).store(2);
  tr.load(2).load(1).call("norm", 2);
  tr.load(2).add().store(2);
  tr.load(0).load(2).call("shade_0", 2);
  tr.load(2).add().store(2);
  tr.const_(7).call("bounce", 1);
  tr.load(2).add().store(2);
  tr.load(2).load(0).call("refl", 2);
  tr.load(2).add().ret();

  const std::string init = add_cold_init(pb, rng, 8, 140, 9);  // scene loading
  make_main_with_init(pb, init, scaled(5000, run_scale), [&rng](bc::MethodBuilder& m) {
    m.load(0).load(1).call("trace_ray", 2);
    m.load(1).add().store(1);
    emit_expr(m, rng, {0, 1}, 16, true);  // framebuffer update per ray
    m.load(1).add().store(1);
  });
  return {"raytrace", "A raytracer working on a scene with a dinosaur (single-threaded mtrt)",
          "specjvm98", pb.build()};
}

// jack: parser generator — token scanners behind dispatchers, shallow
// chains, very many short invocations.
Workload make_jack(double run_scale) {
  Pcg32 rng(0x7ACC0007u, 31);
  bc::ProgramBuilder pb("jack", 1024);

  std::vector<std::string> tokens;
  for (int t = 0; t < 16; ++t) {
    const std::string name = "tok" + std::to_string(t);
    make_leaf(pb, name, 2, 7 + static_cast<int>(rng.bounded(9)), rng);
    tokens.push_back(name);
  }
  make_dispatcher(pb, "scan", {tokens.begin(), tokens.begin() + 8});
  make_dispatcher(pb, "emit", {tokens.begin() + 8, tokens.end()});
  make_chain(pb, "prod", /*levels=*/3, 2, 9, "scan", rng);

  auto& line = pb.method("line", 2, 3);
  line.load(0).load(1).call("prod_0", 2).store(2);
  line.load(2).load(0).call("emit", 2);
  line.load(2).add().ret();

  const std::string init = add_cold_init(pb, rng, 10, 150, 9);  // grammar loading
  make_main_with_init(pb, init, scaled(7000, run_scale), [&rng](bc::MethodBuilder& m) {
    m.load(0).load(1).call("line", 2);
    m.load(1).add().store(1);
    emit_expr(m, rng, {0, 1}, 16);  // token-buffer bookkeeping
    m.load(1).add().store(1);
  });
  return {"jack", "A Java parser generator with lexical analysis", "specjvm98", pb.build()};
}

}  // namespace ith::wl
