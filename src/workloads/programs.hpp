// Individual benchmark-program constructors. Exposed for tests; normal
// clients go through make_workload()/make_suite() in suite.hpp.
//
// `run_scale` multiplies the benchmark's hot-loop trip counts (its "input
// size"): 1.0 is the calibrated default; larger values make the program
// more running-time dominated, smaller ones more compile-dominated. Static
// code is unaffected.
#pragma once

#include "workloads/suite.hpp"

namespace ith::wl {

// SPECjvm98 stand-ins (training suite, Table 2).
Workload make_compress(double run_scale = 1.0);
Workload make_jess(double run_scale = 1.0);
Workload make_db(double run_scale = 1.0);
Workload make_javac(double run_scale = 1.0);
Workload make_mpegaudio(double run_scale = 1.0);
Workload make_raytrace(double run_scale = 1.0);
Workload make_jack(double run_scale = 1.0);

// DaCapo+JBB stand-ins (test suite, Table 3).
Workload make_antlr(double run_scale = 1.0);
Workload make_fop(double run_scale = 1.0);
Workload make_jython(double run_scale = 1.0);
Workload make_pmd(double run_scale = 1.0);
Workload make_ps(double run_scale = 1.0);
Workload make_ipsixql(double run_scale = 1.0);
Workload make_pseudojbb(double run_scale = 1.0);

}  // namespace ith::wl
