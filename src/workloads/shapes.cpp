#include "workloads/shapes.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace ith::wl {

void emit_expr(bc::MethodBuilder& mb, Pcg32& rng, const std::vector<int>& readable_slots,
               int approx_len, bool use_globals) {
  int depth = 0;
  int emitted = 0;
  // Push operands and reduce with binary ops until the budget is spent and
  // exactly one value remains.
  while (emitted < approx_len || depth != 1) {
    const bool must_reduce = depth >= 4 || (emitted >= approx_len && depth > 1);
    const bool can_reduce = depth >= 2;
    if (can_reduce && (must_reduce || rng.chance(0.55))) {
      const std::uint32_t pick = rng.bounded(100);
      if (pick < 40) {
        mb.add();
      } else if (pick < 65) {
        mb.sub();
      } else if (pick < 80) {
        mb.mul();
      } else if (pick < 88) {
        mb.cmplt();
      } else if (pick < 94) {
        mb.div();
      } else {
        mb.mod();
      }
      --depth;
      ++emitted;
      continue;
    }
    // Push something.
    const std::uint32_t pick = rng.bounded(100);
    if (!readable_slots.empty() && pick < 55) {
      mb.load(readable_slots[rng.bounded(static_cast<std::uint32_t>(readable_slots.size()))]);
      ++depth;
      ++emitted;
    } else if (use_globals && pick < 75) {
      mb.const_(rng.range(0, 255)).gload();
      ++depth;
      emitted += 2;
    } else {
      mb.const_(rng.range(1, 64));
      ++depth;
      ++emitted;
    }
  }
}

void make_leaf(bc::ProgramBuilder& pb, const std::string& name, int nargs, int body_len, Pcg32& rng,
               bool use_globals) {
  ITH_CHECK(body_len >= 1, "leaf body must be non-empty");
  auto& mb = pb.method(name, nargs, nargs);
  std::vector<int> args;
  for (int i = 0; i < nargs; ++i) args.push_back(i);

  if (use_globals) {
    // One global write per call keeps the method observable (never fully
    // foldable away).
    mb.const_(rng.range(0, 255));
    emit_expr(mb, rng, args, std::max(1, body_len / 3), use_globals);
    mb.gstore();
    emit_expr(mb, rng, args, std::max(1, (2 * body_len) / 3), use_globals);
  } else {
    emit_expr(mb, rng, args, body_len, use_globals);
  }
  mb.ret();
}

std::string make_chain(bc::ProgramBuilder& pb, const std::string& name, int levels, int nargs,
                       int level_len, const std::string& leaf, Pcg32& rng) {
  ITH_CHECK(levels >= 1, "chain needs at least one level");
  ITH_CHECK(nargs >= 1, "chain methods take at least one argument");
  std::vector<int> args;
  for (int i = 0; i < nargs; ++i) args.push_back(i);

  // Build from the bottom up so calls resolve to already-declared methods.
  std::string next = leaf;
  for (int level = levels - 1; level >= 0; --level) {
    const std::string mname = name + "_" + std::to_string(level);
    auto& mb = pb.method(mname, nargs, nargs);
    const int chunk = std::max(1, level_len / (nargs + 2));
    for (int j = 0; j < nargs; ++j) {
      emit_expr(mb, rng, args, chunk);  // j-th argument for the next level
    }
    mb.call(next, nargs);
    emit_expr(mb, rng, args, chunk);
    mb.add().ret();
    next = mname;
  }
  return name + "_0";
}

void make_dispatcher(bc::ProgramBuilder& pb, const std::string& name,
                     const std::vector<std::string>& callees) {
  ITH_CHECK(!callees.empty(), "dispatcher needs callees");
  auto& mb = pb.method(name, 2, 2);
  const auto n = static_cast<std::int64_t>(callees.size());
  for (std::size_t k = 0; k + 1 < callees.size(); ++k) {
    const std::string next = name + "_n" + std::to_string(k);
    mb.load(0).const_(n).mod().const_(static_cast<std::int64_t>(k)).cmpeq().jz(next);
    mb.load(0).load(1).call(callees[k], 2).ret();
    mb.label(next);
  }
  // Last callee doubles as the default branch (covers negative selectors).
  mb.load(0).load(1).call(callees.back(), 2).ret();
}

void make_recursive(bc::ProgramBuilder& pb, const std::string& name, int body_len, Pcg32& rng) {
  auto& mb = pb.method(name, 1, 1);
  mb.load(0).const_(1).cmplt().jz("rec");
  mb.ret_const(1);
  mb.label("rec");
  emit_expr(mb, rng, {0}, std::max(1, body_len));
  mb.load(0).const_(1).sub().call(name, 1);
  mb.add().ret();
}

void make_cold_blob(bc::ProgramBuilder& pb, const std::string& name, int body_len, int ncalls,
                    const std::vector<std::string>& callable, Pcg32& rng) {
  ITH_CHECK(ncalls == 0 || !callable.empty(), "cold blob calls need callable methods");
  auto& mb = pb.method(name, 1, 3);
  const int chunk = std::max(1, body_len / (ncalls + 1));
  mb.const_(0).store(2);
  for (int c = 0; c < ncalls; ++c) {
    emit_expr(mb, rng, {0, 2}, chunk);
    mb.call(callable[rng.bounded(static_cast<std::uint32_t>(callable.size()))], 1);
    mb.store(2);
  }
  emit_expr(mb, rng, {0, 2}, chunk);
  mb.load(2).add().ret();
}

std::string make_cond_chain(bc::ProgramBuilder& pb, const std::string& name, int levels,
                            int level_len, const std::string& leaf, std::int64_t modulus,
                            Pcg32& rng) {
  ITH_CHECK(levels >= 1, "conditional chain needs at least one level");
  ITH_CHECK(modulus >= 2, "modulus must be >= 2 so the deep path is the rare one");
  std::string next = leaf;
  for (int level = levels - 1; level >= 0; --level) {
    const std::string mname = name + "_" + std::to_string(level);
    // Kept deliberately lean: each level must land between ALWAYS_INLINE_SIZE
    // and CALLEE_MAX_SIZE at the defaults, so MAX_INLINE_DEPTH (not callee
    // size) is the parameter that decides how far the chain is flattened.
    auto& mb = pb.method(mname, 2, 2);
    mb.load(0).const_(modulus).mod().jz("deep");
    emit_expr(mb, rng, {0, 1}, std::max(1, level_len));  // common case: stop here
    mb.ret();
    mb.label("deep");
    mb.load(0).const_(modulus).div();
    mb.load(1);
    mb.call(next, 2);
    mb.ret();
    next = mname;
  }
  return name + "_0";
}

void make_mid(bc::ProgramBuilder& pb, const std::string& name, int nargs, int body_len, int ncalls,
              const std::vector<std::string>& callees1, Pcg32& rng) {
  ITH_CHECK(ncalls == 0 || !callees1.empty(), "mid method calls need callees");
  auto& mb = pb.method(name, nargs, nargs);
  std::vector<int> args;
  for (int i = 0; i < nargs; ++i) args.push_back(i);
  const int chunk = std::max(1, body_len / (ncalls + 1));
  emit_expr(mb, rng, args, chunk);
  for (int c = 0; c < ncalls; ++c) {
    // The running value becomes the callee's argument; its result continues.
    mb.call(callees1[rng.bounded(static_cast<std::uint32_t>(callees1.size()))], 1);
    if (c + 1 < ncalls) {
      emit_expr(mb, rng, args, chunk);
      mb.add();
    }
  }
  if (ncalls > 0) {
    emit_expr(mb, rng, args, std::max(1, chunk / 2));
    mb.add();
  }
  mb.ret();
}

}  // namespace ith::wl
