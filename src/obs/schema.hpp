// Trace-event schema validation: the "small checker" CI runs over every
// uploaded trace. A valid event record is a JSON object with
//
//   name : non-empty string
//   cat  : one of vm|compile|opt|inline|eval|ga  (metadata events exempt)
//   ph   : "X" | "i" | "C" | "M"
//   ts   : number >= 0
//   pid  : 1 (sim cycle domain) or 2 (host microsecond domain)
//   tid  : number >= 0
//   dur  : number >= 0, required iff ph == "X"
//   args : object of string -> number|string (optional)
//
// Counter events ("C") additionally require every arg key to belong to a
// registered counter family (vm. | ga. | sig. | serve. | resil. | eval. |
// rt.fused* | opt.) so dashboards never silently chart a typo'd counter name.
//
// trace_report uses the same routine, so "validates in CI" and "parses in
// the report tool" can never drift apart.
#pragma once

#include <optional>
#include <string>

#include "support/json.hpp"

namespace ith::obs {

/// Returns std::nullopt if `record` is a valid trace event, else a
/// human-readable description of the first violation.
std::optional<std::string> validate_event(const JsonValue& record);

}  // namespace ith::obs
