#include "obs/sink.hpp"

#include <ostream>

namespace ith::obs {

std::vector<Event> timebase_metadata() {
  std::vector<Event> meta;
  for (const Domain d : {Domain::kSim, Domain::kHost}) {
    Event e;
    e.name = "process_name";
    e.phase = Phase::kMetadata;
    e.domain = d;
    e.args.emplace_back("name", d == Domain::kSim ? "sim (cycles)" : "host (us)");
    meta.push_back(std::move(e));
  }
  return meta;
}

// --- JsonlSink -------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& os, std::size_t buffer_bytes)
    : os_(os), buffer_bytes_(buffer_bytes) {
  for (const Event& e : timebase_metadata()) write(e);
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::write(const Event& e) {
  std::string line;
  append_event_json(e, line);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return;  // stream is gone; drop rather than throw
  buffer_ += line;
  if (buffer_.size() >= buffer_bytes_) {
    os_ << buffer_;
    buffer_.clear();
    if (os_.fail()) failed_ = true;
  }
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return;
  if (!buffer_.empty()) {
    os_ << buffer_;
    buffer_.clear();
  }
  os_.flush();
  if (os_.fail()) failed_ = true;
}

bool JsonlSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_;
}

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& os, std::size_t buffer_bytes)
    : os_(os), buffer_bytes_(buffer_bytes) {
  buffer_ = "{\"traceEvents\":[\n";
  for (const Event& e : timebase_metadata()) write(e);
}

ChromeTraceSink::~ChromeTraceSink() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_ += "\n]}\n";
  }
  flush();
}

void ChromeTraceSink::write(const Event& e) {
  std::string rec;
  append_event_json(e, rec);
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return;  // stream is gone; drop rather than throw
  if (any_) buffer_ += ",\n";
  any_ = true;
  buffer_ += rec;
  if (buffer_.size() >= buffer_bytes_) {
    os_ << buffer_;
    buffer_.clear();
    if (os_.fail()) failed_ = true;
  }
}

void ChromeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return;
  if (!buffer_.empty()) {
    os_ << buffer_;
    buffer_.clear();
  }
  os_.flush();
  if (os_.fail()) failed_ = true;
}

bool ChromeTraceSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_;
}

// --- MemorySink ------------------------------------------------------------

void MemorySink::write(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

std::vector<Event> MemorySink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t MemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace ith::obs
