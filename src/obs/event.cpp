#include "obs/event.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace ith::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::kVm: return "vm";
    case Category::kCompile: return "compile";
    case Category::kOpt: return "opt";
    case Category::kInline: return "inline";
    case Category::kEval: return "eval";
    case Category::kGa: return "ga";
    case Category::kServe: return "serve";
    case Category::kSvc: return "svc";
  }
  return "?";
}

std::uint32_t category_mask_from_string(const std::string& csv) {
  if (csv.empty() || csv == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string name = csv.substr(start, end - start);
    bool found = false;
    for (const Category c : {Category::kVm, Category::kCompile, Category::kOpt, Category::kInline,
                             Category::kEval, Category::kGa, Category::kServe, Category::kSvc}) {
      if (name == category_name(c)) {
        mask |= static_cast<std::uint32_t>(c);
        found = true;
        break;
      }
    }
    ITH_CHECK(found, "unknown trace category '" + name +
                         "' (want vm,compile,opt,inline,eval,ga,serve,svc)");
    if (end == csv.size()) break;
    start = end + 1;
  }
  return mask;
}

namespace {

void append_escaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(double v, std::string& out) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void append_event_json(const Event& e, std::string& out) {
  out += "{\"name\":";
  append_escaped(e.name, out);
  out += ",\"cat\":\"";
  out += category_name(e.cat);
  out += "\",\"ph\":\"";
  out.push_back(static_cast<char>(e.phase));
  out += "\",\"ts\":";
  out += std::to_string(e.ts);
  if (e.phase == Phase::kComplete) {
    out += ",\"dur\":";
    out += std::to_string(e.dur);
  }
  out += ",\"pid\":";
  out += std::to_string(static_cast<int>(e.domain));
  out += ",\"tid\":";
  out += std::to_string(e.tid);
  if (!e.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const Arg& a : e.args) {
      if (!first) out.push_back(',');
      first = false;
      append_escaped(a.key, out);
      out.push_back(':');
      if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
        out += std::to_string(*i);
      } else if (const auto* d = std::get_if<double>(&a.value)) {
        append_double(*d, out);
      } else {
        append_escaped(std::get<std::string>(a.value), out);
      }
    }
    out.push_back('}');
  }
  out.push_back('}');
}

}  // namespace ith::obs
