#include "obs/context.hpp"

namespace ith::obs {

namespace {

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Context::Context(TraceSink* sink, std::uint32_t categories)
    : sink_(sink), mask_(categories), epoch_(std::chrono::steady_clock::now()) {}

void Context::emit(Event e) {
  if (!enabled(e.cat)) return;
  e.tid = this_thread_tid();
  sink_->write(e);
}

void Context::instant(Category cat, const char* name, Domain domain, std::uint64_t ts,
                      std::vector<Arg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = Phase::kInstant;
  e.domain = domain;
  e.ts = ts;
  e.args = std::move(args);
  emit(std::move(e));
}

void Context::complete(Category cat, const char* name, Domain domain, std::uint64_t ts,
                       std::uint64_t dur, std::vector<Arg> args) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = Phase::kComplete;
  e.domain = domain;
  e.ts = ts;
  e.dur = dur;
  e.args = std::move(args);
  emit(std::move(e));
}

std::uint64_t Context::host_now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

Counter& Context::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Context::counter_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

void Context::flush() {
  if (sink_ != nullptr) {
    const std::uint64_t now = host_now_us();
    for (const auto& [name, value] : counter_values()) {
      Event e;
      e.name = "counters";
      e.cat = Category::kVm;
      e.phase = Phase::kCounter;
      e.domain = Domain::kHost;
      e.ts = now;
      e.tid = this_thread_tid();
      e.args.emplace_back(name, static_cast<std::int64_t>(value));
      // Counter events bypass the category mask: the final totals are cheap
      // and belong in every trace that asked for any category.
      sink_->write(e);
    }
    sink_->flush();
  }
}

ScopedSpan::ScopedSpan(Context* ctx, Category cat, const char* name, std::vector<Arg> args)
    : ctx_(ctx),
      cat_(cat),
      name_(name),
      live_(ctx != nullptr && ctx->enabled(cat)),
      args_(std::move(args)) {
  if (live_) start_us_ = ctx_->host_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!live_) return;
  const std::uint64_t end = ctx_->host_now_us();
  ctx_->complete(cat_, name_, Domain::kHost, start_us_, end - start_us_, std::move(args_));
}

}  // namespace ith::obs
