// obs::Context: the handle every instrumented layer holds.
//
// Ownership rule (uniform across VmConfig, EvalConfig, GaConfig and
// OptimizerOptions — all of which carry an `obs::Context* obs` field): the
// pointer is NON-OWNING and may be null. Null (the default) means
// observability is off, and every emit site reduces to a single predictable
// null-pointer branch — the zero-cost path the fast interpreter's dispatch
// numbers are guarded against. A non-null context must outlive every object
// configured with it; the context itself does not own its sink.
//
// A Context multiplexes three things:
//   - event emission, filtered by a category mask (`enabled(cat)`),
//   - a registry of named monotonic counters (typed, atomic; exported as
//     Chrome counter events by flush()),
//   - the host-clock epoch, so host-domain timestamps start near zero.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace ith::obs {

/// Monotonic counter. Stable address for the Context's lifetime, so layers
/// may look it up once and bump it lock-free afterwards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Context {
 public:
  /// `sink` is non-owning and may be null (events dropped, counters still
  /// accumulate). `categories` is an OR of Category bits; events in masked
  /// categories are suppressed at the emit site.
  explicit Context(TraceSink* sink, std::uint32_t categories = kAllCategories);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// True if events in `c` reach the sink. Emit sites guard on this so the
  /// argument-building work is skipped entirely when masked.
  bool enabled(Category c) const {
    return sink_ != nullptr && (mask_ & static_cast<std::uint32_t>(c)) != 0;
  }

  /// Stamps the calling thread's tid and forwards to the sink (no-op when
  /// the event's category is masked).
  void emit(Event e);

  /// Convenience emitters.
  void instant(Category cat, const char* name, Domain domain, std::uint64_t ts,
               std::vector<Arg> args = {});
  void complete(Category cat, const char* name, Domain domain, std::uint64_t ts,
                std::uint64_t dur, std::vector<Arg> args = {});

  /// Microseconds of host wall clock since this context was created.
  std::uint64_t host_now_us() const;

  /// Finds or creates the named counter. Thread-safe; the returned
  /// reference stays valid for the context's lifetime.
  Counter& counter(const std::string& name);

  /// Snapshot of all counters (name, value), sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

  /// Emits one Chrome counter event per registered counter (host domain,
  /// current timestamp) and flushes the sink.
  void flush();

  TraceSink* sink() const { return sink_; }
  std::uint32_t categories() const { return mask_; }

 private:
  TraceSink* sink_;
  std::uint32_t mask_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// RAII span timer for the host domain: records the start time at
/// construction and emits a complete event at destruction. Args may be
/// attached at construction or appended as results become known.
class ScopedSpan {
 public:
  /// `ctx` may be null or have the category masked — the span then costs
  /// two branches and no clock reads.
  ScopedSpan(Context* ctx, Category cat, const char* name, std::vector<Arg> args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Appends an arg to the event emitted at destruction.
  template <typename T>
  void arg(std::string key, T value) {
    if (live_) args_.emplace_back(std::move(key), value);
  }

 private:
  Context* ctx_;
  Category cat_;
  const char* name_;
  std::uint64_t start_us_ = 0;
  bool live_;
  std::vector<Arg> args_;
};

}  // namespace ith::obs
