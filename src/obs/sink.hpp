// TraceSink: where emitted events go.
//
// Sink guarantees (all implementations):
//   - write() is thread-safe; events from one thread keep their emit order.
//   - Serialization happens *outside* the sink lock (events are formatted
//     into a thread-private string first, then appended to the shared
//     buffer), so the critical section is a buffer append — "lock-free-ish"
//     in the sense that contention is a short memcpy, never I/O or
//     formatting.
//   - Buffered writers hit the underlying stream only when the buffer
//     exceeds its high-water mark, on flush(), and at destruction; a trace
//     is complete once the sink is destroyed (or flush()ed, for JSONL).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace ith::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Records one event. Thread-safe.
  virtual void write(const Event& e) = 0;

  /// Forces buffered events to the backing store.
  virtual void flush() {}
};

/// Buffered JSONL writer: one Chrome trace_event JSON object per line.
/// Streamable (a truncated file is still line-parseable) and convertible
/// 1:1 into the Chrome array format by tools/trace_report.
class JsonlSink final : public TraceSink {
 public:
  /// The stream must outlive the sink. `buffer_bytes` is the high-water
  /// mark before the buffer is spilled to the stream.
  explicit JsonlSink(std::ostream& os, std::size_t buffer_bytes = 1 << 18);
  ~JsonlSink() override;

  void write(const Event& e) override;
  void flush() override;

  /// False once the backing stream has failed. The sink degrades
  /// gracefully: after a failure it stops touching the stream and silently
  /// drops events instead of throwing into the traced computation.
  bool ok() const;

 private:
  std::ostream& os_;
  std::size_t buffer_bytes_;
  mutable std::mutex mu_;
  std::string buffer_;
  bool failed_ = false;
};

/// Chrome trace_event JSON document ({"traceEvents":[...]}): the file loads
/// directly in chrome://tracing and Perfetto. Emits process-naming metadata
/// for the "sim" and "host" timebases up front; the closing bracket is
/// written at destruction (Perfetto also tolerates a missing close, so a
/// crash mid-trace still yields a loadable file).
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os, std::size_t buffer_bytes = 1 << 18);
  ~ChromeTraceSink() override;

  void write(const Event& e) override;
  void flush() override;

  /// False once the backing stream has failed (see JsonlSink::ok).
  bool ok() const;

 private:
  std::ostream& os_;
  std::size_t buffer_bytes_;
  mutable std::mutex mu_;
  std::string buffer_;
  bool any_ = false;
  bool failed_ = false;
};

/// In-memory sink for tests and programmatic inspection.
class MemorySink final : public TraceSink {
 public:
  void write(const Event& e) override;

  /// Snapshot of everything recorded so far.
  std::vector<Event> events() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// The two process-naming metadata events ("sim", "host") every exported
/// trace should start with; JSONL/Chrome sinks emit them automatically.
std::vector<Event> timebase_metadata();

}  // namespace ith::obs
