#include "obs/schema.hpp"

#include "obs/event.hpp"

namespace ith::obs {

namespace {

bool known_category(const std::string& cat) {
  for (const Category c : {Category::kVm, Category::kCompile, Category::kOpt, Category::kInline,
                           Category::kEval, Category::kGa, Category::kServe, Category::kSvc}) {
    if (cat == category_name(c)) return true;
  }
  return false;
}

// Counter events ('C') form the machine-read surface of the trace, so their
// arg keys are held to a registry of known families; span/instant args stay
// free-form (they are human-read annotations).
bool known_counter_family(const std::string& key) {
  for (const char* prefix :
       {"vm.", "ga.", "sig.", "serve.", "resil.", "eval.", "rt.fused", "opt.", "svc."}) {
    if (key.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace

std::optional<std::string> validate_event(const JsonValue& record) {
  if (!record.is_object()) return "event is not a JSON object";

  const JsonValue* name = record.find("name");
  if (name == nullptr || !name->is_string() || name->str.empty()) {
    return "missing or empty 'name'";
  }

  const JsonValue* ph = record.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->str.size() != 1) return "missing 'ph'";
  const char phase = ph->str[0];
  if (phase != 'X' && phase != 'i' && phase != 'C' && phase != 'M') {
    return "unknown phase '" + ph->str + "'";
  }

  if (phase != 'M') {
    const JsonValue* cat = record.find("cat");
    if (cat == nullptr || !cat->is_string()) return "missing 'cat'";
    if (!known_category(cat->str)) return "unknown category '" + cat->str + "'";
  }

  const JsonValue* ts = record.find("ts");
  if (ts == nullptr || !ts->is_number() || ts->number < 0) return "missing or negative 'ts'";

  const JsonValue* pid = record.find("pid");
  if (pid == nullptr || !pid->is_number() ||
      (pid->as_int() != static_cast<int>(Domain::kSim) &&
       pid->as_int() != static_cast<int>(Domain::kHost))) {
    return "'pid' must be 1 (sim) or 2 (host)";
  }

  const JsonValue* tid = record.find("tid");
  if (tid == nullptr || !tid->is_number() || tid->number < 0) return "missing or negative 'tid'";

  const JsonValue* dur = record.find("dur");
  if (phase == 'X') {
    if (dur == nullptr || !dur->is_number() || dur->number < 0) {
      return "complete event missing non-negative 'dur'";
    }
  } else if (dur != nullptr) {
    return "'dur' present on a non-complete event";
  }

  if (const JsonValue* args = record.find("args"); args != nullptr) {
    if (!args->is_object()) return "'args' is not an object";
    for (const auto& [key, value] : args->members) {
      if (key.empty()) return "empty arg key";
      if (!value.is_number() && !value.is_string()) {
        return "arg '" + key + "' is neither number nor string";
      }
      if (phase == 'C' && !known_counter_family(key)) {
        return "counter '" + key + "' is not in a known counter family";
      }
    }
  }

  return std::nullopt;
}

}  // namespace ith::obs
