// The observability event model.
//
// Every trace event is one record in the Chrome trace_event JSON schema
// (name/cat/ph/ts/pid/tid[/dur]/args), so a trace opens directly in
// chrome://tracing or Perfetto. Two timebases coexist in one trace as two
// "processes":
//
//   pid 1 ("sim")  — timestamps and durations are *simulated cycles* from
//                    the machine model. VM events (compiles, promotions,
//                    iterations) live here; summed compile-span durations
//                    are exactly RunResult::compile_cycles_all.
//   pid 2 ("host") — timestamps are wall-clock microseconds since the
//                    obs::Context was created. Optimizer pass timings, suite
//                    evaluations and GA generations live here.
//
// Events carry a small list of typed args (int/double/string) serialized
// into the trace record's "args" object.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace ith::obs {

/// Event category bit; doubles as the trace record's "cat" string and as
/// the Context's enable mask, so whole layers can be compiled down to a
/// single predictable branch when not requested.
enum class Category : std::uint32_t {
  kVm = 1u << 0,       ///< tiering decisions: promotions, OSR, installs, hot sites
  kCompile = 1u << 1,  ///< per-compilation spans in simulated cycles
  kOpt = 1u << 2,      ///< optimizer pass timings (host clock)
  kInline = 1u << 3,   ///< per-call-site inlining decisions (voluminous)
  kEval = 1u << 4,     ///< suite evaluator: benchmark runs, cache traffic
  kGa = 1u << 5,       ///< GA per-generation fitness/diversity
  kServe = 1u << 6,    ///< serving tier: epochs, installs, retune verdicts
  kSvc = 1u << 7,      ///< evaluation service: connections, leases, federation
};

inline constexpr std::uint32_t kAllCategories = 0xff;

const char* category_name(Category c);

/// Parses a comma-separated category list ("eval,ga"; "all" or "" = all).
/// Throws ith::Error on an unknown name.
std::uint32_t category_mask_from_string(const std::string& csv);

/// Chrome trace_event phase.
enum class Phase : char {
  kComplete = 'X',  ///< span: ts + dur
  kInstant = 'i',   ///< point event
  kCounter = 'C',   ///< counter sample (args hold the series values)
  kMetadata = 'M',  ///< process/thread naming
};

/// Which clock the event's ts/dur are in; doubles as the trace "pid".
enum class Domain : std::uint8_t {
  kSim = 1,   ///< simulated cycles
  kHost = 2,  ///< wall-clock microseconds since Context creation
};

struct Arg {
  std::string key;
  std::variant<std::int64_t, double, std::string> value;

  /// One constructor for every integral type (incl. bool) keeps call sites
  /// free of casts without tripping over platform-dependent typedef overlap
  /// (size_t vs uint64_t).
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Arg(std::string k, T v) : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Arg(std::string k, double v) : key(std::move(k)), value(v) {}
  Arg(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Arg(std::string k, const char* v) : key(std::move(k)), value(std::string(v)) {}
};

struct Event {
  const char* name = "";  ///< static string (all emit sites pass literals)
  Category cat = Category::kVm;
  Phase phase = Phase::kInstant;
  Domain domain = Domain::kHost;
  std::uint64_t ts = 0;   ///< cycles (kSim) or microseconds (kHost)
  std::uint64_t dur = 0;  ///< kComplete only; same unit as ts
  std::uint32_t tid = 0;  ///< small per-thread ordinal, stable per process
  std::vector<Arg> args;
};

/// Appends the event as one Chrome trace_event JSON object (no trailing
/// newline) to `out`. String args are JSON-escaped.
void append_event_json(const Event& e, std::string& out);

}  // namespace ith::obs
