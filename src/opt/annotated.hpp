// AnnotatedMethod: a method body under transformation, with per-instruction
// provenance. The inliner needs three facts about every instruction it did
// not originally emit: how deep in the inline tree it sits, which methods
// are on its inline chain (to refuse runaway recursive expansion), and which
// original (method, pc) it came from (so profile data recorded against the
// original code still applies after splicing).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bytecode/method.hpp"

namespace ith::opt {

/// Provenance for one instruction of a body under optimization.
struct InstrMeta {
  int depth = 0;                      ///< inline depth (0 = original caller code)
  bc::MethodId origin_method = -1;    ///< method the instruction was written in
  std::int32_t origin_pc = -1;        ///< pc within origin_method
  /// Methods inlined *through* to produce this instruction, outermost first.
  /// Shared: every instruction of one spliced region points at the same chain.
  std::shared_ptr<const std::vector<bc::MethodId>> chain;
};

/// A method body plus parallel provenance. Invariant: meta.size() == code size.
struct AnnotatedMethod {
  bc::Method method;
  std::vector<InstrMeta> meta;

  /// Wraps an original method: every instruction at depth 0, origin = itself.
  static AnnotatedMethod from_method(const bc::Method& m, bc::MethodId id);

  /// True while code and annotations agree in length.
  bool consistent() const { return method.code().size() == meta.size(); }
};

}  // namespace ith::opt
