// Decision probe: replays the inliner's recursive decision procedure for a
// program without transforming or executing any code.
//
// The probe walks a method exactly the way Inliner::run does — same
// structural guards in the same order, same size arithmetic after simulated
// splicing (bytecode/size_estimator), same depth/chain bookkeeping — and
// records every heuristic consultation it predicts. Because the splice only
// rewrites operands (and kRet into kJmp) while per-instruction word
// estimates depend on the opcode alone, the probe's virtual size accounting
// is exact, so its predicted decisions match the real inliner bit for bit
// (enforced by tests/opt/decision_probe_test.cpp over the fuzz corpus).
//
// On top of the replay sits the decision *signature*: a canonical FNV-1a
// hash of every decision the Figure 3/4 heuristic with a given parameter
// vector would make over the program, across every profile-consistent
// hot/cold labelling of call sites. Two parameter vectors with equal
// signatures drive the optimizer to identical code at every compilation the
// VM could ever perform, hence identical ExecStats — which is what lets the
// SuiteEvaluator collapse behaviourally-equivalent genomes onto one cache
// entry (see DESIGN.md "Decision-signature caching").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/inliner.hpp"

namespace ith::opt {

/// One predicted heuristic consultation, mirroring the fields the Inliner
/// attaches to its `inline.decision` trace events.
struct ProbeDecision {
  bc::MethodId root = -1;        ///< method being compiled
  bc::MethodId callee = -1;
  std::size_t call_pc = 0;       ///< pc of the kCall in the evolving body
  int depth = 0;
  int callee_size = 0;           ///< estimated words of the original callee
  int caller_size = 0;           ///< estimated words of the evolving body
  int head_size = -1;            ///< guard-head words offered to the heuristic
  bool is_hot = false;
  std::uint64_t site_count = 0;
  bool inlined = false;
  bool partial = false;          ///< verdict was "splice the guard head only"
  const char* rule = "opaque";
};

/// Replays Inliner::run's decision procedure under a concrete site oracle.
class DecisionProbe {
 public:
  /// All references are non-owning and must outlive the probe. The
  /// heuristic is consulted through decide() (the same entry point the
  /// Inliner uses when tracing decisions).
  DecisionProbe(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                SiteOracle oracle = cold_site, InlineLimits limits = {});

  /// Predicts every heuristic consultation Inliner::run(root) would make,
  /// in consultation order. `stats` (optional) receives the InlineStats the
  /// real run would report. No code is produced or mutated.
  std::vector<ProbeDecision> probe_method(bc::MethodId root, InlineStats* stats = nullptr) const;

 private:
  const bc::Program& prog_;
  const heur::InlineHeuristic& heuristic_;
  SiteOracle oracle_;
  InlineLimits limits_;
};

struct SignatureOptions {
  /// Explore every profile-consistent hot/cold labelling of origin call
  /// sites (the adaptive scenario, where recompilations can see any profile
  /// state). False = a single all-cold replay (the all-opt scenario, whose
  /// oracle is always cold_site).
  bool adaptive = true;
  /// Ceiling on consultations+forks across the whole program. Divergent
  /// labellings explore a decision *tree*, which is exponential in the
  /// worst case; past this budget the signature falls back to hashing the
  /// raw parameter vector (sound — no collapse — and flagged `exact=false`).
  std::size_t max_events = std::size_t{1} << 14;
};

struct SignatureResult {
  std::uint64_t value = 0;
  /// False when the event budget overflowed and `value` is merely the raw
  /// parameter hash (still a valid cache key, just collapse-free).
  bool exact = true;
  std::uint64_t consultations = 0;  ///< heuristic consultations explored
  std::uint64_t forks = 0;          ///< hot/cold divergences explored
};

/// Canonical decision signature of the Figure 3/4 heuristic with `params`
/// over `prog`: equal signatures (with exact=true) imply the optimizer
/// produces identical code at every compilation under either parameter
/// vector, for every reachable profile state. Valid for heuristics whose
/// verdict depends on the site profile only through `is_hot` (the Jikes
/// fig3/fig4 family — site_count is ignored by the decision rules).
/// Partial-inline verdicts hash as a third consultation byte and explore
/// the residual re-call the splice leaves behind, so the signature stays a
/// sound collapse key across the full six-parameter space; with
/// PARTIAL_MAX_HEAD_SIZE = 0 the byte stream is identical to the
/// five-parameter encoding.
SignatureResult decision_signature(const bc::Program& prog, const heur::InlineParams& params,
                                   InlineLimits limits, const SignatureOptions& opts = {});

}  // namespace ith::opt
