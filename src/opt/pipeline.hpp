// PassManager: the declarative replacement for Optimizer's eight enable_*
// booleans. A compilation is a pipeline description — a list of setup
// passes (inline, tail_recursion) followed by a fixpoint group of scalar
// passes — executed over one shared AnalysisManager. Passes report what
// they preserved (PreservedAnalyses) so cached analyses survive exactly as
// long as they remain true, and each pass leaves a PassStat row
// ("[pass inline] inst 42→40, time 3us") plus opt.pass.* obs counters.
//
// The legacy Optimizer facade (optimizer.hpp) maps its boolean options onto
// a pipeline via pipeline_from_options(); for every five-parameter genome
// the PassManager's output is bit-identical to the frozen reference_optimize
// orchestration — enforced by tests/opt/pass_manager_test.cpp and the fuzz
// pipeline-diff tier.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "opt/analysis.hpp"
#include "opt/inliner.hpp"

namespace ith::opt {

struct OptimizerOptions;  // optimizer.hpp — the legacy boolean surface

/// Aggregate rewrite counts for one method compilation.
struct OptStats {
  InlineStats inline_stats;
  std::size_t folds = 0;
  std::size_t copyprops = 0;
  std::size_t dead_stores = 0;
  std::size_t branch_simplifications = 0;
  std::size_t algebraic_simplifications = 0;
  std::size_t compare_fusions = 0;
  std::size_t tail_calls_eliminated = 0;
  std::size_t unreachable_removed = 0;
  std::size_t instructions_compacted = 0;
  int iterations = 0;
};

/// Structured per-pass statistics for one compilation.
struct PassStat {
  const char* pass = "";        ///< pass name ("inline", "fold", ...)
  std::size_t runs = 0;         ///< times the pass executed
  std::size_t changes = 0;      ///< total rewrites across runs
  std::size_t inst_before = 0;  ///< body length before the first run
  std::size_t inst_after = 0;   ///< body length after the last run
  std::uint64_t host_us = 0;    ///< summed host time (0 unless kOpt traced)
};

/// "[pass inline] inst 42→40, time 3us"
std::string format_pass_stat(const PassStat& s);

struct OptimizeResult {
  AnnotatedMethod body;  ///< optimized body with provenance preserved
  OptStats stats;
  /// One row per pass that appears in the pipeline, pipeline order.
  std::vector<PassStat> pass_stats;
};

/// Declarative pipeline: setup passes run once, fixpoint passes iterate
/// (with an unconditional nop-compaction per iteration) until no pass
/// reports changes or max_iterations is reached.
struct PipelineDesc {
  std::vector<std::string> setup;
  std::vector<std::string> fixpoint;
  int max_iterations = 6;

  friend bool operator==(const PipelineDesc&, const PipelineDesc&) = default;

  /// The full default pipeline (every pass enabled, legacy order).
  static PipelineDesc standard();

  /// "inline,tail_recursion,fixpoint(fold,...,unreachable):6". Stable
  /// textual identity: the evaluator hashes this into cache fingerprints.
  std::string to_string() const;

  /// Inverse of to_string(). Throws ith::Error on unknown pass names or a
  /// malformed shape.
  static PipelineDesc parse(const std::string& text);

  bool has_pass(const std::string& name) const;
};

/// All registerable pass names.
const std::vector<std::string>& known_pass_names();

/// Deprecated-but-supported bridge from the legacy boolean options to a
/// pipeline description (tested: every boolean combination maps to the
/// pipeline whose output is bit-identical to the legacy orchestration).
PipelineDesc pipeline_from_options(const OptimizerOptions& options);

/// Shared state every pass sees during one compilation.
struct PassContext {
  const bc::Program& prog;
  bc::MethodId root;
  const heur::InlineHeuristic& heuristic;
  const SiteOracle& oracle;
  const InlineLimits& limits;
  obs::Context* obs;      ///< may be null
  OptStats& stats;
  InlineReport* report;   ///< may be null
};

/// One registered transformation. run() rewrites `am`, records what it
/// provably preserved into `preserved` (consulted only when the return
/// value — the rewrite count — is non-zero), and may read cached facts
/// from `analyses`.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual const char* span_name() const = 0;  ///< legacy trace name ("pass.fold")
  virtual std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                          PreservedAnalyses& preserved) = 0;
};

/// Factory for a pass by registered name; throws ith::Error on unknown.
std::unique_ptr<Pass> make_pass(const std::string& name);

class PassManager {
 public:
  /// References are non-owning and must outlive the manager. The manager is
  /// designed to persist across compilations (the VM keeps one per session):
  /// program-scope analyses accumulate, which is where the O1→O2 ladder's
  /// avoided recomputations come from.
  PassManager(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
              SiteOracle oracle = cold_site, PipelineDesc pipeline = PipelineDesc::standard(),
              InlineLimits limits = {}, obs::Context* obs = nullptr);

  /// Compiles method `id` through the pipeline. `report`, when non-null,
  /// receives the structured inline report for this compilation.
  OptimizeResult run(bc::MethodId id, InlineReport* report = nullptr);

  const PipelineDesc& pipeline() const { return pipeline_; }
  AnalysisManager& analyses() { return analyses_; }
  const AnalysisManager& analyses() const { return analyses_; }

 private:
  struct Registered {
    std::unique_ptr<Pass> pass;
    obs::Counter* runs_counter = nullptr;
    obs::Counter* changes_counter = nullptr;
    std::size_t stat_index = 0;  ///< slot in OptimizeResult::pass_stats
  };

  std::size_t run_one(Registered& reg, AnnotatedMethod& am, PassContext& ctx,
                      OptimizeResult& result, bool trace);

  const bc::Program& prog_;
  const heur::InlineHeuristic& heuristic_;
  SiteOracle oracle_;
  PipelineDesc pipeline_;
  InlineLimits limits_;
  obs::Context* obs_;
  AnalysisManager analyses_;
  std::vector<Registered> setup_;
  std::vector<Registered> fixpoint_;
  std::size_t num_stats_ = 0;
};

/// The frozen legacy orchestration, kept verbatim (modulo tracing) for
/// differential testing: the equivalence suite and the fuzz pipeline-diff
/// tier compare PassManager output against this, method by method.
OptimizeResult reference_optimize(const bc::Program& prog, bc::MethodId id,
                                  const heur::InlineHeuristic& heuristic, const SiteOracle& oracle,
                                  const OptimizerOptions& options, const InlineLimits& limits);

}  // namespace ith::opt
