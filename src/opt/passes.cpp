#include "opt/passes.hpp"

#include <deque>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace ith::opt {

std::vector<bool> compute_branch_targets(const bc::Method& m) {
  std::vector<bool> targeted(m.size(), false);
  for (const bc::Instruction& insn : m.code()) {
    if (bc::op_info(insn.op).is_branch) {
      targeted[static_cast<std::size_t>(insn.a)] = true;
    }
  }
  return targeted;
}

std::vector<std::size_t> compute_load_counts(const bc::Method& m) {
  std::vector<std::size_t> load_count(static_cast<std::size_t>(m.num_locals()), 0);
  for (const bc::Instruction& insn : m.code()) {
    if (insn.op == bc::Op::kLoad) ++load_count[static_cast<std::size_t>(insn.a)];
  }
  return load_count;
}

std::vector<bool> compute_reachable(const bc::Method& m) {
  std::vector<bool> reachable(m.size(), false);
  std::deque<std::size_t> worklist{0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const bc::Instruction& insn = m.code()[pc];
    auto visit = [&](std::size_t to) {
      if (to < m.size() && !reachable[to]) {
        reachable[to] = true;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case bc::Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case bc::Op::kJz:
      case bc::Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      case bc::Op::kRet:
      case bc::Op::kHalt:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return reachable;
}

namespace {

using bc::Instruction;
using bc::Op;

bool is_binop(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      return true;
    default:
      return false;
  }
}

/// Evaluates `lhs op rhs` with the interpreter's total semantics
/// (division/modulo by zero yield 0). Must stay in lock-step with
/// Interpreter::step.
std::int64_t eval_binop(Op op, std::int64_t lhs, std::int64_t rhs) {
  const auto ul = static_cast<std::uint64_t>(lhs);
  const auto ur = static_cast<std::uint64_t>(rhs);
  switch (op) {
    case Op::kAdd:
      return static_cast<std::int64_t>(ul + ur);
    case Op::kSub:
      return static_cast<std::int64_t>(ul - ur);
    case Op::kMul:
      return static_cast<std::int64_t>(ul * ur);
    case Op::kDiv:
      return rhs == 0 ? 0 : (rhs == -1) ? static_cast<std::int64_t>(0 - ul) : lhs / rhs;
    case Op::kMod:
      return (rhs == 0 || rhs == -1) ? 0 : lhs % rhs;
    case Op::kCmpLt:
      return lhs < rhs ? 1 : 0;
    case Op::kCmpLe:
      return lhs <= rhs ? 1 : 0;
    case Op::kCmpEq:
      return lhs == rhs ? 1 : 0;
    case Op::kCmpNe:
      return lhs != rhs ? 1 : 0;
    default:
      throw Error("eval_binop: not a binary op");
  }
}

/// True if the folded result still fits the 32-bit immediate field.
bool fits_imm(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

}  // namespace

std::size_t constant_fold(AnnotatedMethod& am) {
  return constant_fold(am, compute_branch_targets(am.method));
}

std::size_t constant_fold(AnnotatedMethod& am, const std::vector<bool>& targeted) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;

  for (std::size_t pc = 0; pc + 1 < code.size(); ++pc) {
    Instruction& a = code[pc];
    Instruction& b = code[pc + 1];

    // const x ; const y ; binop  ->  nop ; nop ; const (x op y)
    if (pc + 2 < code.size() && a.op == Op::kConst && b.op == Op::kConst &&
        is_binop(code[pc + 2].op) && !targeted[pc + 1] && !targeted[pc + 2]) {
      const std::int64_t v = eval_binop(code[pc + 2].op, a.a, b.a);
      if (fits_imm(v)) {
        code[pc + 2] = Instruction{Op::kConst, static_cast<std::int32_t>(v), 0};
        a = Instruction{Op::kNop, 0, 0};
        b = Instruction{Op::kNop, 0, 0};
        ++rewrites;
        continue;
      }
    }

    if (targeted[pc + 1]) continue;  // every remaining pattern rewrites pc+1

    // const x ; neg  ->  nop ; const -x
    if (a.op == Op::kConst && b.op == Op::kNeg && fits_imm(-static_cast<std::int64_t>(a.a))) {
      b = Instruction{Op::kConst, -a.a, 0};
      a = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }

    // const c ; jz/jnz t  ->  branch decided at compile time
    if (a.op == Op::kConst && (b.op == Op::kJz || b.op == Op::kJnz)) {
      const bool taken = (b.op == Op::kJz) ? (a.a == 0) : (a.a != 0);
      b = taken ? Instruction{Op::kJmp, b.a, 0} : Instruction{Op::kNop, 0, 0};
      a = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }

    // Value computed then discarded.
    if (b.op == Op::kPop) {
      if (a.op == Op::kConst || a.op == Op::kLoad) {
        a = Instruction{Op::kNop, 0, 0};
        b = Instruction{Op::kNop, 0, 0};
        ++rewrites;
        continue;
      }
      if (is_binop(a.op)) {  // binop ; pop -> pop ; pop
        a = Instruction{Op::kPop, 0, 0};
        b = Instruction{Op::kPop, 0, 0};
        ++rewrites;
        continue;
      }
      if (a.op == Op::kGLoad || a.op == Op::kNeg) {  // unary: drop op, keep one pop
        a = Instruction{Op::kPop, 0, 0};
        b = Instruction{Op::kNop, 0, 0};
        ++rewrites;
        continue;
      }
    }
  }
  return rewrites;
}

std::size_t copy_propagate(AnnotatedMethod& am) {
  // Reader counts feed the store;load pattern.
  return copy_propagate(am, compute_branch_targets(am.method), compute_load_counts(am.method));
}

std::size_t copy_propagate(AnnotatedMethod& am, const std::vector<bool>& targeted,
                           std::vector<std::size_t> load_count) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;

  for (std::size_t pc = 0; pc + 1 < code.size(); ++pc) {
    Instruction& a = code[pc];
    Instruction& b = code[pc + 1];
    if (targeted[pc + 1]) continue;

    // load i ; store i  -> nothing (reads a local and writes it back)
    if (a.op == Op::kLoad && b.op == Op::kStore && a.a == b.a) {
      --load_count[static_cast<std::size_t>(a.a)];
      a = Instruction{Op::kNop, 0, 0};
      b = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }

    // store i ; load i, slot i otherwise unread -> the value just stays on
    // the stack; the (now unobservable) store is dropped.
    if (a.op == Op::kStore && b.op == Op::kLoad && a.a == b.a &&
        load_count[static_cast<std::size_t>(a.a)] == 1) {
      load_count[static_cast<std::size_t>(a.a)] = 0;
      a = Instruction{Op::kNop, 0, 0};
      b = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }
  }
  return rewrites;
}

std::size_t eliminate_dead_stores(AnnotatedMethod& am) {
  return eliminate_dead_stores(am, compute_load_counts(am.method));
}

std::size_t eliminate_dead_stores(AnnotatedMethod& am,
                                  const std::vector<std::size_t>& load_count) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;
  for (Instruction& insn : code) {
    if (insn.op == Op::kStore && load_count[static_cast<std::size_t>(insn.a)] == 0) {
      insn = Instruction{Op::kPop, 0, 0};  // same stack effect, no write
      ++rewrites;
    }
  }
  return rewrites;
}

std::size_t simplify_branches(AnnotatedMethod& am) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;

  // Jump-chain threading: a branch whose target is an unconditional jmp (or
  // a nop sled ending in one) goes straight to the final destination.
  auto resolve = [&code](std::int32_t target) {
    std::size_t hops = 0;
    std::size_t t = static_cast<std::size_t>(target);
    while (hops < code.size()) {  // hop bound guards against jmp cycles
      if (code[t].op == Op::kNop && t + 1 < code.size()) {
        ++t;
        ++hops;
        continue;
      }
      if (code[t].op == Op::kJmp) {
        t = static_cast<std::size_t>(code[t].a);
        ++hops;
        continue;
      }
      break;
    }
    return static_cast<std::int32_t>(t);
  };

  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    Instruction& insn = code[pc];
    if (!bc::op_info(insn.op).is_branch) continue;

    const std::int32_t resolved = resolve(insn.a);
    if (resolved != insn.a) {
      insn.a = resolved;
      ++rewrites;
    }

    // Branch to the next instruction: control reaches the same place either
    // way. A conditional still has to discard its condition.
    if (static_cast<std::size_t>(insn.a) == pc + 1) {
      if (insn.op == Op::kJmp) {
        insn = Instruction{Op::kNop, 0, 0};
        ++rewrites;
      } else if (insn.op == Op::kJz || insn.op == Op::kJnz) {
        insn = Instruction{Op::kPop, 0, 0};
        ++rewrites;
      }
    }
  }
  return rewrites;
}

std::size_t simplify_algebraic(AnnotatedMethod& am) {
  return simplify_algebraic(am, compute_branch_targets(am.method));
}

std::size_t simplify_algebraic(AnnotatedMethod& am, const std::vector<bool>& targeted) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;
  for (std::size_t pc = 0; pc + 1 < code.size(); ++pc) {
    Instruction& a = code[pc];
    Instruction& b = code[pc + 1];
    if (a.op != Op::kConst || targeted[pc + 1]) continue;

    // x + 0, x - 0, x * 1, x / 1: drop both instructions.
    if ((a.a == 0 && (b.op == Op::kAdd || b.op == Op::kSub)) ||
        (a.a == 1 && (b.op == Op::kMul || b.op == Op::kDiv))) {
      a = Instruction{Op::kNop, 0, 0};
      b = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }
    // x * 0: discard x, push 0.
    if (a.a == 0 && b.op == Op::kMul) {
      a = Instruction{Op::kPop, 0, 0};
      b = Instruction{Op::kConst, 0, 0};
      ++rewrites;
      continue;
    }
    // x mod 1 == 0 (total semantics: 1 is never the zero divisor).
    if (a.a == 1 && b.op == Op::kMod) {
      a = Instruction{Op::kPop, 0, 0};
      b = Instruction{Op::kConst, 0, 0};
      ++rewrites;
      continue;
    }
  }
  return rewrites;
}

std::size_t fuse_compare_branch(AnnotatedMethod& am) {
  return fuse_compare_branch(am, compute_branch_targets(am.method));
}

std::size_t fuse_compare_branch(AnnotatedMethod& am, const std::vector<bool>& targeted) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;
  for (std::size_t pc = 0; pc + 1 < code.size(); ++pc) {
    Instruction& a = code[pc];
    Instruction& b = code[pc + 1];

    // const 0 ; cmpeq/cmpne ; jz/jnz t  ->  branch on x directly.
    if (pc + 2 < code.size() && a.op == Op::kConst && a.a == 0 &&
        (b.op == Op::kCmpEq || b.op == Op::kCmpNe) && !targeted[pc + 1] && !targeted[pc + 2]) {
      Instruction& c = code[pc + 2];
      if (c.op == Op::kJz || c.op == Op::kJnz) {
        const bool cmp_is_eq = b.op == Op::kCmpEq;
        const bool branch_on_zero = c.op == Op::kJz;
        // (x==0) feeding jz  -> taken when x!=0 -> jnz x.
        // (x==0) feeding jnz -> taken when x==0 -> jz x.
        // (x!=0) feeding jz  -> taken when x==0 -> jz x.
        // (x!=0) feeding jnz -> taken when x!=0 -> jnz x.
        const bool take_on_zero = cmp_is_eq ? !branch_on_zero : branch_on_zero;
        c = Instruction{take_on_zero ? Op::kJz : Op::kJnz, c.a, 0};
        a = Instruction{Op::kNop, 0, 0};
        b = Instruction{Op::kNop, 0, 0};
        ++rewrites;
        continue;
      }
    }

    // neg ; jz/jnz  ->  jz/jnz  (-x == 0 iff x == 0).
    if (a.op == Op::kNeg && (b.op == Op::kJz || b.op == Op::kJnz) && !targeted[pc + 1]) {
      a = Instruction{Op::kNop, 0, 0};
      ++rewrites;
      continue;
    }
  }
  return rewrites;
}

namespace {

/// Abstract stack depth per pc (kUnvisitedDepth where unreachable). The
/// method is assumed verified, so joins are consistent.
constexpr int kUnvisitedDepth = -1;
std::vector<int> stack_depths(const bc::Method& m) {
  std::vector<int> depth(m.size(), kUnvisitedDepth);
  std::deque<std::size_t> worklist{0};
  depth[0] = 0;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& insn = m.code()[pc];
    const int out = depth[pc] + bc::stack_effect(insn);
    auto visit = [&](std::size_t to) {
      if (to < m.size() && depth[to] == kUnvisitedDepth) {
        depth[to] = out;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case Op::kJz:
      case Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      case Op::kRet:
      case Op::kHalt:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return depth;
}

}  // namespace

bool non_arg_locals_definitely_assigned(const bc::Method& m) {
  const std::size_t n = m.size();
  const auto num_locals = static_cast<std::size_t>(m.num_locals());
  const auto num_args = static_cast<std::size_t>(m.num_args());
  if (num_locals == num_args) return true;  // nothing beyond the arguments

  // Forward must-analysis: assigned[pc] = set of locals definitely written
  // on every path reaching pc. Join is intersection; seed is "args only".
  std::vector<std::vector<bool>> assigned(n);
  auto seed = std::vector<bool>(num_locals, false);
  for (std::size_t i = 0; i < num_args; ++i) seed[i] = true;

  std::deque<std::size_t> worklist{0};
  assigned[0] = seed;
  bool ok = true;
  while (!worklist.empty() && ok) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& insn = m.code()[pc];
    std::vector<bool> out = assigned[pc];
    switch (insn.op) {
      case Op::kLoad:
        if (!out[static_cast<std::size_t>(insn.a)]) ok = false;
        break;
      case Op::kStore:
        out[static_cast<std::size_t>(insn.a)] = true;
        break;
      default:
        break;
    }
    auto visit = [&](std::size_t to) {
      if (to >= n) return;
      if (assigned[to].empty()) {
        assigned[to] = out;
        worklist.push_back(to);
        return;
      }
      bool changed = false;
      for (std::size_t i = 0; i < num_locals; ++i) {
        if (assigned[to][i] && !out[i]) {
          assigned[to][i] = false;
          changed = true;
        }
      }
      if (changed) worklist.push_back(to);
    };
    switch (insn.op) {
      case Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case Op::kJz:
      case Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      case Op::kRet:
      case Op::kHalt:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return ok;
}

std::size_t eliminate_tail_recursion(AnnotatedMethod& am, bc::MethodId self, int num_args) {
  auto& code = am.method.mutable_code();

  // Find candidates first (transforming invalidates analyses).
  std::vector<std::size_t> candidates;
  {
    const std::vector<bool> targeted = compute_branch_targets(am.method);
    const std::vector<int> depth = stack_depths(am.method);
    for (std::size_t pc = 0; pc + 1 < code.size(); ++pc) {
      const Instruction& call = code[pc];
      if (call.op != Op::kCall || call.a != self) continue;
      if (code[pc + 1].op != Op::kRet) continue;
      if (targeted[pc + 1]) continue;  // other paths still need that ret
      // The reused frame must be clean: only the arguments may be live-in.
      if (!non_arg_locals_definitely_assigned(am.method)) break;
      // The operand stack must hold exactly the arguments at the call, so
      // the jump arrives at entry with the verifier-expected empty stack.
      if (depth[pc] != num_args) continue;
      candidates.push_back(pc);
    }
  }

  std::size_t rewrites = 0;
  // Rewrite back-to-front so earlier pcs stay valid.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const std::size_t pc = *it;
    std::vector<Instruction> repl;
    std::vector<InstrMeta> repl_meta;
    // Top of stack is the last argument: store high slots first.
    for (int i = num_args - 1; i >= 0; --i) {
      repl.push_back(Instruction{Op::kStore, i, 0});
    }
    repl.push_back(Instruction{Op::kJmp, 0, 0});
    InstrMeta meta = am.meta[pc];
    meta.origin_pc = -1;  // synthetic loop-back instructions
    repl_meta.assign(repl.size(), meta);

    const auto delta = static_cast<std::int32_t>(repl.size()) - 2;  // replaces call+ret
    for (Instruction& insn : code) {
      if (bc::op_info(insn.op).is_branch && insn.a > static_cast<std::int32_t>(pc + 1)) {
        insn.a += delta;
      }
    }
    code.erase(code.begin() + static_cast<std::ptrdiff_t>(pc),
               code.begin() + static_cast<std::ptrdiff_t>(pc) + 2);
    code.insert(code.begin() + static_cast<std::ptrdiff_t>(pc), repl.begin(), repl.end());
    am.meta.erase(am.meta.begin() + static_cast<std::ptrdiff_t>(pc),
                  am.meta.begin() + static_cast<std::ptrdiff_t>(pc) + 2);
    am.meta.insert(am.meta.begin() + static_cast<std::ptrdiff_t>(pc), repl_meta.begin(),
                   repl_meta.end());
    ++rewrites;
  }
  ITH_ASSERT(am.consistent(), "annotation length diverged in tail-recursion elimination");
  return rewrites;
}

std::size_t eliminate_unreachable(AnnotatedMethod& am) {
  return eliminate_unreachable(am, compute_reachable(am.method));
}

std::size_t eliminate_unreachable(AnnotatedMethod& am, const std::vector<bool>& reachable) {
  auto& code = am.method.mutable_code();
  std::size_t rewrites = 0;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (!reachable[pc] && code[pc].op != Op::kNop) {
      code[pc] = Instruction{Op::kNop, 0, 0};
      ++rewrites;
    }
  }
  return rewrites;
}

std::size_t compact_nops(AnnotatedMethod& am) {
  auto& code = am.method.mutable_code();
  const std::size_t n = code.size();

  // new_index[pc] = index of the first kept instruction at or after pc.
  std::vector<std::int32_t> new_index(n + 1);
  std::int32_t kept = 0;
  for (std::size_t pc = 0; pc < n; ++pc) {
    new_index[pc] = kept;
    if (code[pc].op != Op::kNop) ++kept;
  }
  new_index[n] = kept;

  const auto removed = static_cast<std::size_t>(static_cast<std::int32_t>(n) - kept);
  if (removed == 0) return 0;

  std::vector<Instruction> new_code;
  std::vector<InstrMeta> new_meta;
  new_code.reserve(static_cast<std::size_t>(kept));
  new_meta.reserve(static_cast<std::size_t>(kept));
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (code[pc].op == Op::kNop) continue;
    Instruction insn = code[pc];
    if (bc::op_info(insn.op).is_branch) {
      const std::int32_t t = new_index[static_cast<std::size_t>(insn.a)];
      ITH_ASSERT(t < kept, "branch target compacted past end of method");
      insn.a = t;
    }
    new_code.push_back(insn);
    new_meta.push_back(am.meta[pc]);
  }

  // A method must keep at least one instruction; an all-nop body would mean
  // the original fell through, which the verifier rejects.
  ITH_ASSERT(!new_code.empty(), "compaction removed every instruction");
  code = std::move(new_code);
  am.meta = std::move(new_meta);
  return removed;
}

}  // namespace ith::opt
