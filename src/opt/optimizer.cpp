#include "opt/optimizer.hpp"

#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

Optimizer::Optimizer(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                     SiteOracle oracle, OptimizerOptions options, InlineLimits limits)
    : prog_(prog),
      heuristic_(heuristic),
      oracle_(std::move(oracle)),
      options_(options),
      limits_(limits) {
  ITH_CHECK(options_.max_iterations >= 1, "optimizer needs at least one iteration");
}

OptimizeResult Optimizer::optimize(bc::MethodId id) const {
  OptimizeResult result;

  if (options_.enable_inlining) {
    const Inliner inliner(prog_, heuristic_, oracle_, limits_);
    result.body = inliner.run(id, &result.stats.inline_stats);
  } else {
    result.body = AnnotatedMethod::from_method(prog_.method(id), id);
  }

  if (options_.enable_tail_recursion) {
    result.stats.tail_calls_eliminated =
        eliminate_tail_recursion(result.body, id, prog_.method(id).num_args());
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::size_t changes = 0;
    if (options_.enable_folding) {
      const std::size_t n = constant_fold(result.body);
      result.stats.folds += n;
      changes += n;
    }
    if (options_.enable_algebraic) {
      const std::size_t n = simplify_algebraic(result.body);
      result.stats.algebraic_simplifications += n;
      changes += n;
    }
    if (options_.enable_compare_fusion) {
      const std::size_t n = fuse_compare_branch(result.body);
      result.stats.compare_fusions += n;
      changes += n;
    }
    if (options_.enable_branch_simplify) {
      const std::size_t n = simplify_branches(result.body);
      result.stats.branch_simplifications += n;
      changes += n;
    }
    if (options_.enable_copyprop) {
      const std::size_t n = copy_propagate(result.body);
      result.stats.copyprops += n;
      changes += n;
    }
    if (options_.enable_dce) {
      std::size_t n = eliminate_dead_stores(result.body);
      result.stats.dead_stores += n;
      changes += n;
      n = eliminate_unreachable(result.body);
      result.stats.unreachable_removed += n;
      changes += n;
    }
    result.stats.instructions_compacted += compact_nops(result.body);
    result.stats.iterations = iter + 1;
    if (changes == 0) break;
  }

  return result;
}

}  // namespace ith::opt
