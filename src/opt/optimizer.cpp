#include "opt/optimizer.hpp"

#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

Optimizer::Optimizer(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                     SiteOracle oracle, OptimizerOptions options, InlineLimits limits)
    : prog_(prog),
      heuristic_(heuristic),
      oracle_(std::move(oracle)),
      options_(options),
      limits_(limits) {
  ITH_CHECK(options_.max_iterations >= 1, "optimizer needs at least one iteration");
}

OptimizeResult Optimizer::optimize(bc::MethodId id) const {
  OptimizeResult result;
  obs::Context* const obs = options_.obs;
  const bool trace = obs != nullptr && obs->enabled(obs::Category::kOpt);
  obs::ScopedSpan span(obs, obs::Category::kOpt, "opt.optimize",
                       trace ? std::vector<obs::Arg>{{"method", prog_.method(id).name()}}
                             : std::vector<obs::Arg>{});

  // Runs one scalar pass, emitting a host-clock span with its rewrite delta
  // when pass tracing is on. The tracing-off path is a plain call.
  const auto run_pass = [&](const char* pass_name, auto&& pass) -> std::size_t {
    if (!trace) return pass();
    const std::uint64_t t0 = obs->host_now_us();
    const std::size_t n = pass();
    obs->complete(obs::Category::kOpt, pass_name, obs::Domain::kHost, t0, obs->host_now_us() - t0,
                  {{"changes", n}, {"method", prog_.method(id).name()}});
    return n;
  };

  if (options_.enable_inlining) {
    const Inliner inliner(prog_, heuristic_, oracle_, limits_, obs);
    run_pass("pass.inline", [&] {
      result.body = inliner.run(id, &result.stats.inline_stats);
      return result.stats.inline_stats.sites_inlined;
    });
  } else {
    result.body = AnnotatedMethod::from_method(prog_.method(id), id);
  }

  if (options_.enable_tail_recursion) {
    result.stats.tail_calls_eliminated = run_pass("pass.tail_recursion", [&] {
      return eliminate_tail_recursion(result.body, id, prog_.method(id).num_args());
    });
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::size_t changes = 0;
    if (options_.enable_folding) {
      const std::size_t n = run_pass("pass.fold", [&] { return constant_fold(result.body); });
      result.stats.folds += n;
      changes += n;
    }
    if (options_.enable_algebraic) {
      const std::size_t n =
          run_pass("pass.algebraic", [&] { return simplify_algebraic(result.body); });
      result.stats.algebraic_simplifications += n;
      changes += n;
    }
    if (options_.enable_compare_fusion) {
      const std::size_t n =
          run_pass("pass.compare_fusion", [&] { return fuse_compare_branch(result.body); });
      result.stats.compare_fusions += n;
      changes += n;
    }
    if (options_.enable_branch_simplify) {
      const std::size_t n =
          run_pass("pass.branch_simplify", [&] { return simplify_branches(result.body); });
      result.stats.branch_simplifications += n;
      changes += n;
    }
    if (options_.enable_copyprop) {
      const std::size_t n = run_pass("pass.copyprop", [&] { return copy_propagate(result.body); });
      result.stats.copyprops += n;
      changes += n;
    }
    if (options_.enable_dce) {
      std::size_t n = run_pass("pass.dce", [&] { return eliminate_dead_stores(result.body); });
      result.stats.dead_stores += n;
      changes += n;
      n = run_pass("pass.unreachable", [&] { return eliminate_unreachable(result.body); });
      result.stats.unreachable_removed += n;
      changes += n;
    }
    result.stats.instructions_compacted += compact_nops(result.body);
    result.stats.iterations = iter + 1;
    if (changes == 0) break;
  }

  if (trace) {
    span.arg("iterations", result.stats.iterations);
    span.arg("sites_considered", result.stats.inline_stats.sites_considered);
    span.arg("sites_inlined", result.stats.inline_stats.sites_inlined);
    span.arg("refused_heuristic", result.stats.inline_stats.sites_refused_by_heuristic);
    span.arg("refused_structural", result.stats.inline_stats.sites_refused_structural);
    span.arg("size_before_words", result.stats.inline_stats.size_before_words);
    span.arg("size_after_words", result.stats.inline_stats.size_after_words);
  }
  return result;
}

}  // namespace ith::opt
