#include "opt/optimizer.hpp"

#include "support/error.hpp"

namespace ith::opt {

Optimizer::Optimizer(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                     SiteOracle oracle, OptimizerOptions options, InlineLimits limits)
    : options_(options),
      pm_(std::make_unique<PassManager>(prog, heuristic, std::move(oracle),
                                        pipeline_from_options(options), limits, options.obs)) {}

OptimizeResult Optimizer::optimize(bc::MethodId id, InlineReport* report) const {
  return pm_->run(id, report);
}

}  // namespace ith::opt
