// AnalysisManager + PreservedAnalyses: cached per-function analyses for the
// pass-manager redesign of opt/.
//
// Two scopes of facts, mirroring what the passes actually consume:
//
//   Program scope — pure functions of the immutable bc::Program (estimated
//   method sizes, inlinability, splice-prologue need, partial-inline head
//   shapes, the call graph). Passes mutate only a *copy* of a body, so these
//   are computed once per manager lifetime and shared across compilations;
//   the VM keeps one manager for its whole session, which is what turns the
//   O1->O2 recompilation ladder's repeated structural queries into hits.
//
//   Body scope — facts about the single body currently under the pass
//   manager (branch-target set, local liveness, reachability). These are
//   dropped by begin_body() and selectively invalidated after each pass via
//   PreservedAnalyses, LLVM-style: a pass that changed the body reports
//   which analyses its rewrite provably preserved, and only the rest are
//   recomputed on next use.
//
// Soundness is testable: set_verify(true) recomputes every body-scope hit
// from scratch and throws ith::Error on any mismatch — the stale-analysis
// detector the invalidation property tests drive by deliberately
// under-reporting preservation. (A body fingerprint would false-positive:
// dead-store elimination changes the code while genuinely preserving
// liveness; only value equality defines staleness.)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "bytecode/program.hpp"
#include "obs/context.hpp"
#include "opt/annotated.hpp"

namespace ith::opt {

/// Identity of one cached analysis. Program-scope entries are never
/// invalidated (the program is immutable); body-scope entries participate in
/// PreservedAnalyses bookkeeping.
enum class AnalysisId : unsigned {
  // Program scope.
  kMethodSize = 0,   ///< bc::estimated_method_size of the original method
  kInlinability,     ///< Inliner::is_inlinable
  kPrologue,         ///< splice needs a zeroing prologue (!definitely_assigned)
  kPartialShape,     ///< partial-inline head shape (see partial_inline_shape)
  kCallGraph,        ///< distinct call targets of the original method
  // Body scope.
  kBranchTargets,    ///< pcs targeted by some branch of the current body
  kLiveness,         ///< per-local load counts of the current body
  kReachability,     ///< reachable-pc set of the current body
};

constexpr unsigned kNumAnalyses = 8;
constexpr unsigned kFirstBodyAnalysis = static_cast<unsigned>(AnalysisId::kBranchTargets);

const char* analysis_name(AnalysisId id);

/// What a pass's rewrite provably kept valid. Default-constructed = all
/// preserved (the right answer for a pass that made no changes).
class PreservedAnalyses {
 public:
  static PreservedAnalyses all() { return PreservedAnalyses{}; }
  static PreservedAnalyses none() {
    PreservedAnalyses pa;
    pa.bits_ = 0;
    return pa;
  }

  PreservedAnalyses& preserve(AnalysisId id) {
    bits_ |= bit(id);
    return *this;
  }
  PreservedAnalyses& abandon(AnalysisId id) {
    bits_ &= ~bit(id);
    return *this;
  }
  bool preserved(AnalysisId id) const { return (bits_ & bit(id)) != 0; }

  friend bool operator==(const PreservedAnalyses&, const PreservedAnalyses&) = default;

 private:
  static std::uint32_t bit(AnalysisId id) { return 1u << static_cast<unsigned>(id); }
  std::uint32_t bits_ = (1u << kNumAnalyses) - 1;
};

/// Per-local load counts of a body. A slot with count 0 is dead for the
/// dead-store pass; copy propagation consumes (and decrements a copy of)
/// the raw counts.
struct LocalLiveness {
  std::vector<std::size_t> load_count;
};

/// Shape of the partially-inlinable prefix of a method: the "guard head" a
/// too-big callee exposes before its cold tail. `head_len` instructions
/// form a pure prefix (no stores, calls, global writes or halts; loads
/// touch argument slots only) containing at least one reachable single-value
/// kRet, and every exit out of the prefix leaves the operand stack empty —
/// so the head can be spliced into a caller with the cold exits rerouted to
/// a stub that re-invokes the original callee from the (untouched) argument
/// copies. `head_words` is the estimated machine-word size of that prefix
/// as spliced (each kRet priced as the kJmp it becomes).
struct PartialShape {
  int head_len = 0;
  int head_words = 0;

  friend bool operator==(const PartialShape&, const PartialShape&) = default;
};

/// Finds the shortest valid guard head of `m` (the prefix ending just after
/// its first reachable kRet that satisfies the purity and stack-discipline
/// rules above), or nullopt if no prefix qualifies. Pure function of the
/// method body; memoized per callee by AnalysisManager / ProgramFacts.
std::optional<PartialShape> partial_inline_shape(const bc::Method& m);

/// Aggregate cache statistics, exposed for the recomputation-waste tests
/// (and mirrored into the opt.analysis_{hits,misses,invalidations} obs
/// counters when a context is attached).
struct AnalysisStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::array<std::uint64_t, kNumAnalyses> hits_by_kind{};
  std::array<std::uint64_t, kNumAnalyses> misses_by_kind{};
};

class AnalysisManager {
 public:
  /// `obs` is non-owning and may be null; with a context attached every
  /// hit/miss/invalidation also bumps the opt.analysis_* counters.
  explicit AnalysisManager(const bc::Program& prog, obs::Context* obs = nullptr);

  // --- Program scope (never invalidated; shared across compilations) ---
  int method_size(bc::MethodId m);
  bool inlinable(bc::MethodId m);
  bool needs_prologue(bc::MethodId m);
  const std::optional<PartialShape>& partial_shape(bc::MethodId m);
  /// Distinct call targets of the *original* body, ascending. Empty for
  /// call-free methods — the inline pass's fast path.
  const std::vector<bc::MethodId>& callees(bc::MethodId m);

  // --- Body scope (the single body currently under the pass manager) ---
  const std::vector<bool>& branch_targets(const AnnotatedMethod& am);
  const LocalLiveness& liveness(const AnnotatedMethod& am);
  const std::vector<bool>& reachable(const AnnotatedMethod& am);

  /// Starts a new compilation: drops all body-scope entries (not counted as
  /// invalidations — there is no stale value to protect against).
  void begin_body();

  /// Drops every body-scope entry `pa` does not claim preserved. Called by
  /// the pass manager after each pass that reported changes.
  void invalidate(const PreservedAnalyses& pa);

  /// Verify mode: every body-scope cache hit is recomputed from scratch and
  /// compared; a mismatch (a pass lied about preservation) throws
  /// ith::Error. Test/fuzz-only — hits stop being cheap.
  void set_verify(bool on) { verify_ = on; }

  const AnalysisStats& stats() const { return stats_; }

 private:
  void count_hit(AnalysisId id);
  void count_miss(AnalysisId id);

  const bc::Program& prog_;
  obs::Context* obs_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  bool verify_ = false;
  AnalysisStats stats_;

  // Program scope, lazily filled per method (-1 / unset = not yet computed).
  std::vector<int> method_size_;
  std::vector<signed char> inlinable_;
  std::vector<signed char> prologue_;
  std::vector<signed char> partial_known_;
  std::vector<std::optional<PartialShape>> partial_;
  std::vector<signed char> callees_known_;
  std::vector<std::vector<bc::MethodId>> callees_;

  // Body scope.
  bool branch_targets_valid_ = false;
  std::vector<bool> branch_targets_;
  bool liveness_valid_ = false;
  LocalLiveness liveness_;
  bool reachable_valid_ = false;
  std::vector<bool> reachable_;
};

}  // namespace ith::opt
