// Optimizer: thin compatibility facade over the PassManager (pipeline.hpp).
//
// Historically this class *was* the middle end: eight enable_* booleans and
// a hand-written fixpoint loop. The loop now lives in PassManager as a
// declarative pipeline; OptimizerOptions survives as the deprecated-but-
// tested boolean surface, mapped onto a pipeline description through
// pipeline_from_options(). Output is bit-identical to the historical
// orchestration (kept frozen as reference_optimize for differential
// testing).
//
// New code should construct a PassManager directly — it persists across
// compilations and shares cached analyses; this facade rebuilds nothing per
// call but owns a manager per Optimizer instance.
#pragma once

#include <cstddef>
#include <memory>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "opt/inliner.hpp"
#include "opt/pipeline.hpp"

namespace ith::opt {

struct OptimizerOptions {
  bool enable_inlining = true;
  bool enable_folding = true;
  bool enable_copyprop = true;
  bool enable_dce = true;
  bool enable_branch_simplify = true;
  bool enable_algebraic = true;
  bool enable_compare_fusion = true;
  bool enable_tail_recursion = true;
  int max_iterations = 6;  ///< fixpoint iteration cap for the scalar passes
  /// Observability context. Non-owning, may be null (= no tracing, zero
  /// cost); must outlive every Optimizer configured with it. Categories:
  /// kOpt (per-pass host-clock spans and the per-method summary span),
  /// kInline (per-call-site decision events, forwarded to the Inliner).
  obs::Context* obs = nullptr;
};

class Optimizer {
 public:
  Optimizer(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
            SiteOracle oracle = cold_site, OptimizerOptions options = {},
            InlineLimits limits = {});

  /// Compiles method `id`: inline, then optimize to fixpoint. `report`,
  /// when non-null, receives the structured inline report.
  OptimizeResult optimize(bc::MethodId id, InlineReport* report = nullptr) const;

  const OptimizerOptions& options() const { return options_; }

  /// The pipeline the boolean options mapped to, and the manager running it
  /// (exposed for analysis-cache inspection in tests).
  const PassManager& pass_manager() const { return *pm_; }
  PassManager& pass_manager() { return *pm_; }

 private:
  OptimizerOptions options_;
  std::unique_ptr<PassManager> pm_;
};

}  // namespace ith::opt
