// Optimizer: the optimizing compiler's middle end. Runs the inliner under a
// heuristic, then iterates the scalar passes to a fixpoint.
#pragma once

#include <cstddef>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "opt/inliner.hpp"

namespace ith::opt {

struct OptimizerOptions {
  bool enable_inlining = true;
  bool enable_folding = true;
  bool enable_copyprop = true;
  bool enable_dce = true;
  bool enable_branch_simplify = true;
  bool enable_algebraic = true;
  bool enable_compare_fusion = true;
  bool enable_tail_recursion = true;
  int max_iterations = 6;  ///< fixpoint iteration cap for the scalar passes
  /// Observability context. Non-owning, may be null (= no tracing, zero
  /// cost); must outlive every Optimizer configured with it. Categories:
  /// kOpt (per-pass host-clock spans and the per-method summary span),
  /// kInline (per-call-site decision events, forwarded to the Inliner).
  obs::Context* obs = nullptr;
};

/// Aggregate rewrite counts for one method compilation.
struct OptStats {
  InlineStats inline_stats;
  std::size_t folds = 0;
  std::size_t copyprops = 0;
  std::size_t dead_stores = 0;
  std::size_t branch_simplifications = 0;
  std::size_t algebraic_simplifications = 0;
  std::size_t compare_fusions = 0;
  std::size_t tail_calls_eliminated = 0;
  std::size_t unreachable_removed = 0;
  std::size_t instructions_compacted = 0;
  int iterations = 0;
};

struct OptimizeResult {
  AnnotatedMethod body;  ///< optimized body with provenance preserved
  OptStats stats;
};

class Optimizer {
 public:
  Optimizer(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
            SiteOracle oracle = cold_site, OptimizerOptions options = {},
            InlineLimits limits = {});

  /// Compiles method `id`: inline, then optimize to fixpoint.
  OptimizeResult optimize(bc::MethodId id) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const bc::Program& prog_;
  const heur::InlineHeuristic& heuristic_;
  SiteOracle oracle_;
  OptimizerOptions options_;
  InlineLimits limits_;
};

}  // namespace ith::opt
