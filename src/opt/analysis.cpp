#include "opt/analysis.hpp"

#include <deque>

#include "bytecode/size_estimator.hpp"
#include "opt/inliner.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

const char* analysis_name(AnalysisId id) {
  switch (id) {
    case AnalysisId::kMethodSize: return "method_size";
    case AnalysisId::kInlinability: return "inlinability";
    case AnalysisId::kPrologue: return "prologue";
    case AnalysisId::kPartialShape: return "partial_shape";
    case AnalysisId::kCallGraph: return "call_graph";
    case AnalysisId::kBranchTargets: return "branch_targets";
    case AnalysisId::kLiveness: return "liveness";
    case AnalysisId::kReachability: return "reachability";
  }
  return "?";
}

namespace {

constexpr int kUnvisited = -1;

/// Abstract stack depth per pc (kUnvisited where unreachable). The method is
/// assumed verified, so joins are consistent.
std::vector<int> abstract_depths(const bc::Method& m) {
  std::vector<int> depth(m.size(), kUnvisited);
  std::deque<std::size_t> worklist{0};
  depth[0] = 0;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const bc::Instruction& insn = m.code()[pc];
    const int out = depth[pc] + bc::stack_effect(insn);
    auto visit = [&](std::size_t to) {
      if (to < m.size() && depth[to] == kUnvisited) {
        depth[to] = out;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case bc::Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case bc::Op::kJz:
      case bc::Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      case bc::Op::kRet:
      case bc::Op::kHalt:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return depth;
}

/// Validity of the prefix [0, head_len) as a splice-able guard head. The
/// opcode whitelist applies to *every* prefix instruction (dead code is
/// spliced too and must still verify against the caller's local count);
/// stack-discipline rules apply to reachable instructions only.
bool valid_head(const bc::Method& m, const std::vector<int>& depth, std::size_t head_len) {
  const auto nargs = static_cast<std::int32_t>(m.num_args());
  bool has_ret = false;
  for (std::size_t pc = 0; pc < head_len; ++pc) {
    const bc::Instruction& insn = m.code()[pc];
    switch (insn.op) {
      case bc::Op::kCall:
      case bc::Op::kStore:
      case bc::Op::kGStore:
      case bc::Op::kHalt:
        return false;  // the head must be re-executable without side effects
      case bc::Op::kLoad:
        // Only argument slots: the splice materializes arguments alone, and
        // the cold stub re-reads them to rebuild the real call.
        if (insn.a >= nargs) return false;
        break;
      default:
        break;
    }
    if (depth[pc] == kUnvisited) continue;  // dead code: spliced but never run
    if (insn.op == bc::Op::kRet) {
      if (depth[pc] != 1) return false;  // single-value return, as in is_inlinable
      has_ret = true;
      continue;
    }
    const int after = depth[pc] + bc::stack_effect(insn);
    // Exits into the cold tail must leave the operand stack empty: the stub
    // reloads the arguments and re-issues the original call from depth 0.
    const bool is_branch = bc::op_info(insn.op).is_branch;
    if (is_branch && static_cast<std::size_t>(insn.a) >= head_len && after != 0) return false;
    if (pc + 1 == head_len && insn.op != bc::Op::kJmp && after != 0) return false;
  }
  return has_ret;
}

}  // namespace

std::optional<PartialShape> partial_inline_shape(const bc::Method& m) {
  const std::size_t n = m.size();
  if (n < 2) return std::nullopt;  // a strict prefix needs at least two insns
  const std::vector<int> depth = abstract_depths(m);
  for (std::size_t ret_pc = 0; ret_pc + 1 < n; ++ret_pc) {
    if (m.code()[ret_pc].op != bc::Op::kRet) continue;
    if (depth[ret_pc] == kUnvisited) continue;  // an unreachable ret proves nothing
    const std::size_t head_len = ret_pc + 1;
    if (!valid_head(m, depth, head_len)) continue;
    int words = 0;
    for (std::size_t pc = 0; pc < head_len; ++pc) {
      const bc::Instruction& insn = m.code()[pc];
      words += bc::estimated_words(insn.op == bc::Op::kRet ? bc::Instruction{bc::Op::kJmp, 0, 0}
                                                           : insn);
    }
    return PartialShape{static_cast<int>(head_len), words};
  }
  return std::nullopt;
}

AnalysisManager::AnalysisManager(const bc::Program& prog, obs::Context* obs)
    : prog_(prog),
      obs_(obs),
      method_size_(prog.num_methods(), -1),
      inlinable_(prog.num_methods(), -1),
      prologue_(prog.num_methods(), -1),
      partial_known_(prog.num_methods(), 0),
      partial_(prog.num_methods()),
      callees_known_(prog.num_methods(), 0),
      callees_(prog.num_methods()) {
  if (obs_ != nullptr) {
    hits_counter_ = &obs_->counter("opt.analysis_hits");
    misses_counter_ = &obs_->counter("opt.analysis_misses");
    invalidations_counter_ = &obs_->counter("opt.analysis_invalidations");
  }
}

void AnalysisManager::count_hit(AnalysisId id) {
  ++stats_.hits;
  ++stats_.hits_by_kind[static_cast<std::size_t>(id)];
  if (hits_counter_ != nullptr) hits_counter_->add(1);
}

void AnalysisManager::count_miss(AnalysisId id) {
  ++stats_.misses;
  ++stats_.misses_by_kind[static_cast<std::size_t>(id)];
  if (misses_counter_ != nullptr) misses_counter_->add(1);
}

int AnalysisManager::method_size(bc::MethodId m) {
  int& memo = method_size_[static_cast<std::size_t>(m)];
  if (memo >= 0) {
    count_hit(AnalysisId::kMethodSize);
    return memo;
  }
  count_miss(AnalysisId::kMethodSize);
  memo = bc::estimated_method_size(prog_.method(m));
  return memo;
}

bool AnalysisManager::inlinable(bc::MethodId m) {
  signed char& memo = inlinable_[static_cast<std::size_t>(m)];
  if (memo >= 0) {
    count_hit(AnalysisId::kInlinability);
    return memo == 1;
  }
  count_miss(AnalysisId::kInlinability);
  memo = Inliner::is_inlinable(prog_, m) ? 1 : 0;
  return memo == 1;
}

bool AnalysisManager::needs_prologue(bc::MethodId m) {
  signed char& memo = prologue_[static_cast<std::size_t>(m)];
  if (memo >= 0) {
    count_hit(AnalysisId::kPrologue);
    return memo == 1;
  }
  count_miss(AnalysisId::kPrologue);
  memo = non_arg_locals_definitely_assigned(prog_.method(m)) ? 0 : 1;
  return memo == 1;
}

const std::optional<PartialShape>& AnalysisManager::partial_shape(bc::MethodId m) {
  const auto i = static_cast<std::size_t>(m);
  if (partial_known_[i] != 0) {
    count_hit(AnalysisId::kPartialShape);
    return partial_[i];
  }
  count_miss(AnalysisId::kPartialShape);
  partial_[i] = partial_inline_shape(prog_.method(m));
  partial_known_[i] = 1;
  return partial_[i];
}

const std::vector<bc::MethodId>& AnalysisManager::callees(bc::MethodId m) {
  const auto i = static_cast<std::size_t>(m);
  if (callees_known_[i] != 0) {
    count_hit(AnalysisId::kCallGraph);
    return callees_[i];
  }
  count_miss(AnalysisId::kCallGraph);
  std::vector<bc::MethodId> targets;
  for (const bc::Instruction& insn : prog_.method(m).code()) {
    if (insn.op == bc::Op::kCall) targets.push_back(insn.a);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  callees_[i] = std::move(targets);
  callees_known_[i] = 1;
  return callees_[i];
}

const std::vector<bool>& AnalysisManager::branch_targets(const AnnotatedMethod& am) {
  if (branch_targets_valid_) {
    count_hit(AnalysisId::kBranchTargets);
    if (verify_) {
      ITH_CHECK(branch_targets_ == compute_branch_targets(am.method),
                "stale analysis 'branch_targets': a pass under-reported invalidation");
    }
    return branch_targets_;
  }
  count_miss(AnalysisId::kBranchTargets);
  branch_targets_ = compute_branch_targets(am.method);
  branch_targets_valid_ = true;
  return branch_targets_;
}

const LocalLiveness& AnalysisManager::liveness(const AnnotatedMethod& am) {
  if (liveness_valid_) {
    count_hit(AnalysisId::kLiveness);
    if (verify_) {
      ITH_CHECK(liveness_.load_count == compute_load_counts(am.method),
                "stale analysis 'liveness': a pass under-reported invalidation");
    }
    return liveness_;
  }
  count_miss(AnalysisId::kLiveness);
  liveness_.load_count = compute_load_counts(am.method);
  liveness_valid_ = true;
  return liveness_;
}

const std::vector<bool>& AnalysisManager::reachable(const AnnotatedMethod& am) {
  if (reachable_valid_) {
    count_hit(AnalysisId::kReachability);
    if (verify_) {
      ITH_CHECK(reachable_ == compute_reachable(am.method),
                "stale analysis 'reachability': a pass under-reported invalidation");
    }
    return reachable_;
  }
  count_miss(AnalysisId::kReachability);
  reachable_ = compute_reachable(am.method);
  reachable_valid_ = true;
  return reachable_;
}

void AnalysisManager::begin_body() {
  branch_targets_valid_ = false;
  liveness_valid_ = false;
  reachable_valid_ = false;
}

void AnalysisManager::invalidate(const PreservedAnalyses& pa) {
  const auto drop = [&](AnalysisId id, bool& valid) {
    if (valid && !pa.preserved(id)) {
      valid = false;
      ++stats_.invalidations;
      if (invalidations_counter_ != nullptr) invalidations_counter_->add(1);
    }
  };
  drop(AnalysisId::kBranchTargets, branch_targets_valid_);
  drop(AnalysisId::kLiveness, liveness_valid_);
  drop(AnalysisId::kReachability, reachable_valid_);
}

}  // namespace ith::opt
