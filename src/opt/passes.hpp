// Scalar optimization passes run after inlining. These are what make
// inlining profitable beyond call-overhead removal: once a callee body sits
// inside its caller, constants flow through argument slots and fold, copies
// disappear, and unreachable paths are deleted — the "increased
// opportunities for compiler optimization" of the paper's abstract.
//
// Every pass preserves verifiability: it rewrites instructions in place
// (using kNop/kPop placeholders so branch targets stay valid) and reports
// how many rewrites it made; compact_nops() then removes the placholders
// and rebases branch targets. Pass correctness is defined by the verifier
// accepting the output and the interpreter computing identical results.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/annotated.hpp"

namespace ith::opt {

// --- Analysis producers ------------------------------------------------
// The raw computations behind AnalysisManager's body-scope caches, exported
// so the cache and the passes share one definition (the stale-analysis
// detector compares against exactly these).

/// pcs that are the target of some branch. Rewrites may not change the
/// stack effect observed by a jump landing mid-pattern.
std::vector<bool> compute_branch_targets(const bc::Method& m);

/// Per-local kLoad counts (the liveness the store-elimination passes use:
/// a slot with count 0 is dead).
std::vector<std::size_t> compute_load_counts(const bc::Method& m);

/// Reachable-pc set from entry.
std::vector<bool> compute_reachable(const bc::Method& m);

// --- Passes ------------------------------------------------------------
// Each pass has two forms: the legacy self-contained one (computes what it
// needs from scratch) and an analysis-fed overload taking the precomputed
// inputs from an AnalysisManager. Both perform identical rewrites.

/// Folds constant arithmetic/comparisons, constant-condition branches,
/// constant negation, and value-discarding pairs (const/load ; pop).
/// Returns the number of rewrites performed.
std::size_t constant_fold(AnnotatedMethod& am);
std::size_t constant_fold(AnnotatedMethod& am, const std::vector<bool>& targeted);

/// Removes no-op local traffic: `load i ; store i` pairs and
/// `store i ; load i` pairs when slot i has no other readers.
/// The overload takes `load_count` by value: the pass consumes and
/// decrements its own working copy.
std::size_t copy_propagate(AnnotatedMethod& am);
std::size_t copy_propagate(AnnotatedMethod& am, const std::vector<bool>& targeted,
                           std::vector<std::size_t> load_count);

/// Rewrites stores to never-read locals into kPop.
std::size_t eliminate_dead_stores(AnnotatedMethod& am);
std::size_t eliminate_dead_stores(AnnotatedMethod& am,
                                  const std::vector<std::size_t>& load_count);

/// Branch cleanups: jump-to-next removal, conditional-branch-to-next
/// reduction, and jump-chain threading.
std::size_t simplify_branches(AnnotatedMethod& am);

/// Algebraic identities: x+0, x-0, x*1, x/1 drop the operation; x*0 drops
/// the value and pushes 0 (same for 0/x via the total-division rule it
/// cannot prove, so only the literal-zero-multiplier form is handled).
std::size_t simplify_algebraic(AnnotatedMethod& am);
std::size_t simplify_algebraic(AnnotatedMethod& am, const std::vector<bool>& targeted);

/// Compare/branch fusion at the bytecode level: `cmpXX ; jz/jnz` pairs are
/// rewritten to the inverse/direct comparison plus a branch, removing the
/// intermediate boolean when it feeds straight into a conditional
/// (`cmpeq ; jz t` == `cmpne ; jnz t`, which folds further when one operand
/// is constant). Also folds double negation of conditions.
std::size_t fuse_compare_branch(AnnotatedMethod& am);
std::size_t fuse_compare_branch(AnnotatedMethod& am, const std::vector<bool>& targeted);

/// Self-tail-call elimination: a `call self ; ret` pair becomes argument
/// re-stores plus a jump to the method entry — recursion turned into a
/// loop, removing call overhead and a frame per level. Only applied when
/// a definite-assignment analysis proves every non-argument local is
/// written before read (the reused frame must not leak values between
/// logical activations).
std::size_t eliminate_tail_recursion(AnnotatedMethod& am, bc::MethodId self, int num_args);

/// True if every non-argument local of the method is definitely written
/// before any read on every path from entry. Exposed for tests.
bool non_arg_locals_definitely_assigned(const bc::Method& m);

/// Replaces unreachable instructions with kNop.
std::size_t eliminate_unreachable(AnnotatedMethod& am);
std::size_t eliminate_unreachable(AnnotatedMethod& am, const std::vector<bool>& reachable);

/// Deletes kNop instructions and rebases branch targets. Returns the number
/// of instructions removed.
std::size_t compact_nops(AnnotatedMethod& am);

}  // namespace ith::opt
