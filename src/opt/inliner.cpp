#include "opt/inliner.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "bytecode/size_estimator.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

SiteProfile cold_site(bc::MethodId, std::int32_t) { return SiteProfile{}; }

std::string format_inline_report(const bc::Program& prog, const InlineReport& report) {
  std::ostringstream os;
  for (const InlineReportEntry& e : report) {
    os << "inline: '" << prog.method(e.caller).name() << "' <- '" << prog.method(e.callee).name()
       << "' @" << e.call_pc << " depth=" << e.depth << " callee=" << e.callee_size
       << "w caller=" << e.caller_size << "w";
    if (e.is_hot) os << " hot(" << e.site_count << ")";
    switch (e.outcome) {
      case InlineReportEntry::Outcome::kInlined:
        os << ": inlined";
        break;
      case InlineReportEntry::Outcome::kPartial:
        os << ": partially inlined, head=" << e.head_size << "w";
        break;
      case InlineReportEntry::Outcome::kRefusedHeuristic:
      case InlineReportEntry::Outcome::kRefusedStructural:
        os << ": rejected";
        break;
    }
    os << " (" << e.rule << ")\n";
  }
  return os.str();
}

Inliner::Inliner(const bc::Program& prog, const heur::InlineHeuristic& heuristic, SiteOracle oracle,
                 InlineLimits limits, obs::Context* obs, AnalysisManager* analyses)
    : prog_(prog),
      heuristic_(heuristic),
      oracle_(std::move(oracle)),
      limits_(limits),
      obs_(obs),
      analyses_(analyses) {
  ITH_CHECK(oracle_ != nullptr, "Inliner requires a site oracle");
}

bool Inliner::is_inlinable(const bc::Program& prog, bc::MethodId callee) {
  const bc::Method& m = prog.method(callee);
  if (m.empty()) return false;

  // Abstract stack-depth interpretation (the method is assumed verified, so
  // joins are consistent and the stack never underflows). We need two extra
  // facts the verifier does not expose: no kHalt anywhere reachable, and
  // operand-stack depth exactly 1 at every kRet — the splice turns kRet into
  // a jump that leaves the stack as-is, so anything but "just the return
  // value" would leak values into the caller's frame.
  const std::size_t n = m.size();
  constexpr int kUnvisited = -1;
  std::vector<int> depth_at(n, kUnvisited);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const bc::Instruction& insn = m.code()[pc];
    if (insn.op == bc::Op::kHalt) return false;
    const int out = depth_at[pc] + bc::stack_effect(insn);
    if (insn.op == bc::Op::kRet) {
      if (depth_at[pc] != 1) return false;
      continue;
    }
    auto visit = [&](std::size_t to) {
      if (to >= n) return;  // verifier guarantees this cannot actually happen
      if (depth_at[to] == kUnvisited) {
        depth_at[to] = out;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case bc::Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case bc::Op::kJz:
      case bc::Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return true;
}

bool Inliner::splice(AnnotatedMethod& am, std::size_t call_pc, AnalysisManager& analyses) const {
  auto& code = am.method.mutable_code();
  const bc::Instruction call = code[call_pc];
  ITH_ASSERT(call.op == bc::Op::kCall, "splice target is not a call");
  const bc::Method& callee = prog_.method(call.a);
  const int nargs = call.b;

  // Fresh caller locals for the callee's frame.
  const int base = am.method.num_locals();
  am.method.set_num_locals(base + callee.num_locals());

  // Provenance shared by the whole spliced region.
  auto chain = std::make_shared<std::vector<bc::MethodId>>();
  if (am.meta[call_pc].chain) *chain = *am.meta[call_pc].chain;
  chain->push_back(call.a);
  const int depth = am.meta[call_pc].depth + 1;

  std::vector<bc::Instruction> region;
  std::vector<InstrMeta> region_meta;
  region.reserve(static_cast<std::size_t>(nargs) + callee.size());
  region_meta.reserve(region.capacity());

  // Argument marshalling: the top of the caller's stack holds the last
  // argument, so pop into the highest slot first.
  for (int i = nargs - 1; i >= 0; --i) {
    region.push_back(bc::Instruction{bc::Op::kStore, base + i, 0});
    region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
  }

  // A real call starts from a zeroed frame every time, but the spliced
  // region can re-execute (call site inside a loop) with whatever the
  // previous trip left in these slots. Clear every non-argument local the
  // callee might read before writing; skip the prologue entirely when the
  // definite-assignment analysis proves no such read exists.
  if (analyses.needs_prologue(call.a)) {
    for (int i = nargs; i < callee.num_locals(); ++i) {
      region.push_back(bc::Instruction{bc::Op::kConst, 0, 0});
      region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
      region.push_back(bc::Instruction{bc::Op::kStore, base + i, 0});
      region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
    }
  }

  const std::size_t body_offset = call_pc + region.size();
  const std::size_t landing = body_offset + callee.size();

  for (std::size_t j = 0; j < callee.size(); ++j) {
    bc::Instruction insn = callee.code()[j];
    switch (insn.op) {
      case bc::Op::kLoad:
      case bc::Op::kStore:
        insn.a += base;
        break;
      case bc::Op::kJmp:
      case bc::Op::kJz:
      case bc::Op::kJnz:
        insn.a = static_cast<std::int32_t>(body_offset) + insn.a;
        break;
      case bc::Op::kRet:
        // The return value is already on top of the stack; just leave the
        // inlined region.
        insn = bc::Instruction{bc::Op::kJmp, static_cast<std::int32_t>(landing), 0};
        break;
      default:
        break;  // kCall keeps its program-global target; the scan revisits it
    }
    region.push_back(insn);
    region_meta.push_back(InstrMeta{depth, call.a, static_cast<std::int32_t>(j), chain});
  }

  // Rebase caller branches around the growth: one call instruction becomes
  // region.size() instructions.
  const auto delta = static_cast<std::int32_t>(region.size()) - 1;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    bc::Instruction& insn = code[pc];
    if (bc::op_info(insn.op).is_branch && insn.a > static_cast<std::int32_t>(call_pc)) {
      insn.a += delta;
    }
  }

  code.erase(code.begin() + static_cast<std::ptrdiff_t>(call_pc));
  code.insert(code.begin() + static_cast<std::ptrdiff_t>(call_pc), region.begin(), region.end());
  am.meta.erase(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc));
  am.meta.insert(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc), region_meta.begin(),
                 region_meta.end());
  ITH_ASSERT(am.consistent(), "annotation length diverged from code length");
  return true;
}

bool Inliner::splice_partial(AnnotatedMethod& am, std::size_t call_pc,
                             const PartialShape& shape) const {
  auto& code = am.method.mutable_code();
  const bc::Instruction call = code[call_pc];
  ITH_ASSERT(call.op == bc::Op::kCall, "partial splice target is not a call");
  const bc::Method& callee = prog_.method(call.a);
  const int nargs = call.b;
  const auto head_len = static_cast<std::size_t>(shape.head_len);
  ITH_ASSERT(head_len < callee.size(), "partial head must be a strict prefix");

  // Only the arguments get caller slots: the head reads nothing else, and
  // the cold stub rebuilds the real call from these copies.
  const int base = am.method.num_locals();
  am.method.set_num_locals(base + nargs);

  auto chain = std::make_shared<std::vector<bc::MethodId>>();
  if (am.meta[call_pc].chain) *chain = *am.meta[call_pc].chain;
  chain->push_back(call.a);
  const int depth = am.meta[call_pc].depth + 1;
  const InstrMeta orig = am.meta[call_pc];

  std::vector<bc::Instruction> region;
  std::vector<InstrMeta> region_meta;
  region.reserve(static_cast<std::size_t>(2 * nargs) + head_len + 1);
  region_meta.reserve(region.capacity());

  // Argument marshalling, exactly as in a full splice.
  for (int i = nargs - 1; i >= 0; --i) {
    region.push_back(bc::Instruction{bc::Op::kStore, base + i, 0});
    region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
  }

  // Layout: [marshal][head][stub: reload args + call][landing...]. Head
  // kRets jump over the stub; every exit into the cold tail lands on it.
  const std::size_t body_offset = call_pc + region.size();
  const std::size_t stub = body_offset + head_len;
  const std::size_t landing = stub + static_cast<std::size_t>(nargs) + 1;

  for (std::size_t j = 0; j < head_len; ++j) {
    bc::Instruction insn = callee.code()[j];
    switch (insn.op) {
      case bc::Op::kLoad:
        insn.a += base;  // argument slot by the head-purity whitelist
        break;
      case bc::Op::kJmp:
      case bc::Op::kJz:
      case bc::Op::kJnz:
        // In-head targets rebase; cold exits reroute to the re-call stub
        // (the head left the operand stack empty on those edges).
        insn.a = static_cast<std::size_t>(insn.a) < head_len
                     ? static_cast<std::int32_t>(body_offset) + insn.a
                     : static_cast<std::int32_t>(stub);
        break;
      case bc::Op::kRet:
        insn = bc::Instruction{bc::Op::kJmp, static_cast<std::int32_t>(landing), 0};
        break;
      default:
        break;
    }
    region.push_back(insn);
    region_meta.push_back(InstrMeta{depth, call.a, static_cast<std::int32_t>(j), chain});
  }

  // Cold stub: rebuild the argument stack and issue the original call. The
  // head is pure, so re-executing it inside the callee is unobservable. The
  // residual call keeps the original site's provenance: the profiler keeps
  // counting it, and a later recompile may still inline it fully.
  for (int i = 0; i < nargs; ++i) {
    region.push_back(bc::Instruction{bc::Op::kLoad, base + i, 0});
    region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
  }
  region.push_back(call);
  region_meta.push_back(InstrMeta{depth, orig.origin_method, orig.origin_pc, chain});

  const auto delta = static_cast<std::int32_t>(region.size()) - 1;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    bc::Instruction& insn = code[pc];
    if (bc::op_info(insn.op).is_branch && insn.a > static_cast<std::int32_t>(call_pc)) {
      insn.a += delta;
    }
  }

  code.erase(code.begin() + static_cast<std::ptrdiff_t>(call_pc));
  code.insert(code.begin() + static_cast<std::ptrdiff_t>(call_pc), region.begin(), region.end());
  am.meta.erase(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc));
  am.meta.insert(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc), region_meta.begin(),
                 region_meta.end());
  ITH_ASSERT(am.consistent(), "annotation length diverged from code length");
  return true;
}

AnnotatedMethod Inliner::run(bc::MethodId id, InlineStats* stats, InlineReport* report) const {
  AnnotatedMethod am = AnnotatedMethod::from_method(prog_.method(id), id);
  InlineStats local;
  local.size_before_words = bc::estimated_method_size(am.method);

  // Structural facts come from the shared AnalysisManager when the caller
  // provided one (the pass-manager path); otherwise a private one serves
  // this run only.
  AnalysisManager private_analyses(prog_);
  AnalysisManager& analyses = analyses_ != nullptr ? *analyses_ : private_analyses;

  std::size_t pc = 0;
  while (pc < am.method.size()) {
    const bc::Instruction& insn = am.method.code()[pc];
    if (insn.op != bc::Op::kCall) {
      ++pc;
      continue;
    }
    ++local.sites_considered;
    const bc::MethodId callee = insn.a;
    // Copy: splice() below invalidates references into am.meta.
    const InstrMeta meta = am.meta[pc];

    auto record = [&](InlineReportEntry::Outcome outcome, const char* rule,
                      const heur::InlineRequest* req) {
      if (report == nullptr) return;
      InlineReportEntry e;
      e.caller = id;
      e.callee = callee;
      e.call_pc = pc;
      e.depth = meta.depth;
      e.callee_size = req != nullptr ? req->callee_size : analyses.method_size(callee);
      e.caller_size =
          req != nullptr ? req->caller_size : bc::estimated_method_size(am.method);
      e.head_size = req != nullptr ? req->head_size : -1;
      if (req != nullptr) {
        e.is_hot = req->is_hot;
        e.site_count = req->site_count;
      }
      e.outcome = outcome;
      e.rule = rule;
      report->push_back(e);
    };

    // Structural guards, independent of the tuned heuristic.
    const char* structural_rule = nullptr;
    if (meta.depth >= limits_.hard_depth_cap) {
      structural_rule = "structural:depth_cap";
    } else if (meta.chain &&
               std::count(meta.chain->begin(), meta.chain->end(), callee) >=
                   limits_.max_recursive_occurrences) {
      structural_rule = "structural:recursive_chain";
    } else if (bc::estimated_method_size(am.method) >= limits_.max_body_words) {
      structural_rule = "structural:body_too_big";
    } else if (!analyses.inlinable(callee)) {
      structural_rule = "structural:not_inlinable";
    }
    if (structural_rule != nullptr) {
      ++local.sites_refused_structural;
      record(InlineReportEntry::Outcome::kRefusedStructural, structural_rule, nullptr);
      ++pc;
      continue;
    }

    const SiteProfile profile = oracle_(meta.origin_method, meta.origin_pc);
    heur::InlineRequest req;
    req.caller = id;
    req.callee = callee;
    req.call_pc = pc;
    req.callee_size = analyses.method_size(callee);
    req.caller_size = bc::estimated_method_size(am.method);
    req.depth = meta.depth;
    req.is_hot = profile.is_hot;
    req.site_count = profile.count;
    const std::optional<PartialShape>& shape = analyses.partial_shape(callee);
    req.head_size = shape ? shape->head_words : -1;

    const heur::InlineDecision decision = heuristic_.decide(req);
    if (obs_ != nullptr && obs_->enabled(obs::Category::kInline)) {
      obs_->instant(obs::Category::kInline, "inline.decision", obs::Domain::kHost,
                    obs_->host_now_us(),
                    {{"caller", prog_.method(id).name()},
                     {"callee", prog_.method(callee).name()},
                     {"rule", decision.rule},
                     {"inlined", decision.inline_it},
                     {"partial", decision.partial},
                     {"depth", req.depth},
                     {"callee_size", req.callee_size},
                     {"caller_size", req.caller_size},
                     {"hot", req.is_hot},
                     {"site_count", req.site_count}});
    }
    if (!decision.inline_it) {
      ++local.sites_refused_by_heuristic;
      record(InlineReportEntry::Outcome::kRefusedHeuristic, decision.rule, &req);
      ++pc;
      continue;
    }

    if (decision.partial) {
      splice_partial(am, pc, *shape);
      ++local.sites_partially_inlined;
      record(InlineReportEntry::Outcome::kPartial, decision.rule, &req);
    } else {
      splice(am, pc, analyses);
      ++local.sites_inlined;
      record(InlineReportEntry::Outcome::kInlined, decision.rule, &req);
    }
    local.max_depth_reached = std::max(local.max_depth_reached, meta.depth + 1);
    // Do not advance pc: the spliced region starts here and may itself begin
    // with further call sites to consider.
  }

  local.size_after_words = bc::estimated_method_size(am.method);
  if (stats != nullptr) *stats = local;
  return am;
}

}  // namespace ith::opt
