#include "opt/inliner.hpp"

#include <algorithm>
#include <deque>

#include "bytecode/size_estimator.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

SiteProfile cold_site(bc::MethodId, std::int32_t) { return SiteProfile{}; }

Inliner::Inliner(const bc::Program& prog, const heur::InlineHeuristic& heuristic, SiteOracle oracle,
                 InlineLimits limits, obs::Context* obs)
    : prog_(prog), heuristic_(heuristic), oracle_(std::move(oracle)), limits_(limits), obs_(obs) {
  ITH_CHECK(oracle_ != nullptr, "Inliner requires a site oracle");
}

bool Inliner::is_inlinable(const bc::Program& prog, bc::MethodId callee) {
  const bc::Method& m = prog.method(callee);
  if (m.empty()) return false;

  // Abstract stack-depth interpretation (the method is assumed verified, so
  // joins are consistent and the stack never underflows). We need two extra
  // facts the verifier does not expose: no kHalt anywhere reachable, and
  // operand-stack depth exactly 1 at every kRet — the splice turns kRet into
  // a jump that leaves the stack as-is, so anything but "just the return
  // value" would leak values into the caller's frame.
  const std::size_t n = m.size();
  constexpr int kUnvisited = -1;
  std::vector<int> depth_at(n, kUnvisited);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const bc::Instruction& insn = m.code()[pc];
    if (insn.op == bc::Op::kHalt) return false;
    const int out = depth_at[pc] + bc::stack_effect(insn);
    if (insn.op == bc::Op::kRet) {
      if (depth_at[pc] != 1) return false;
      continue;
    }
    auto visit = [&](std::size_t to) {
      if (to >= n) return;  // verifier guarantees this cannot actually happen
      if (depth_at[to] == kUnvisited) {
        depth_at[to] = out;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case bc::Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case bc::Op::kJz:
      case bc::Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return true;
}

bool Inliner::splice(AnnotatedMethod& am, std::size_t call_pc) const {
  auto& code = am.method.mutable_code();
  const bc::Instruction call = code[call_pc];
  ITH_ASSERT(call.op == bc::Op::kCall, "splice target is not a call");
  const bc::Method& callee = prog_.method(call.a);
  const int nargs = call.b;

  // Fresh caller locals for the callee's frame.
  const int base = am.method.num_locals();
  am.method.set_num_locals(base + callee.num_locals());

  // Provenance shared by the whole spliced region.
  auto chain = std::make_shared<std::vector<bc::MethodId>>();
  if (am.meta[call_pc].chain) *chain = *am.meta[call_pc].chain;
  chain->push_back(call.a);
  const int depth = am.meta[call_pc].depth + 1;

  std::vector<bc::Instruction> region;
  std::vector<InstrMeta> region_meta;
  region.reserve(static_cast<std::size_t>(nargs) + callee.size());
  region_meta.reserve(region.capacity());

  // Argument marshalling: the top of the caller's stack holds the last
  // argument, so pop into the highest slot first.
  for (int i = nargs - 1; i >= 0; --i) {
    region.push_back(bc::Instruction{bc::Op::kStore, base + i, 0});
    region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
  }

  // A real call starts from a zeroed frame every time, but the spliced
  // region can re-execute (call site inside a loop) with whatever the
  // previous trip left in these slots. Clear every non-argument local the
  // callee might read before writing; skip the prologue entirely when the
  // definite-assignment analysis proves no such read exists.
  if (!non_arg_locals_definitely_assigned(callee)) {
    for (int i = nargs; i < callee.num_locals(); ++i) {
      region.push_back(bc::Instruction{bc::Op::kConst, 0, 0});
      region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
      region.push_back(bc::Instruction{bc::Op::kStore, base + i, 0});
      region_meta.push_back(InstrMeta{depth, call.a, -1, chain});
    }
  }

  const std::size_t body_offset = call_pc + region.size();
  const std::size_t landing = body_offset + callee.size();

  for (std::size_t j = 0; j < callee.size(); ++j) {
    bc::Instruction insn = callee.code()[j];
    switch (insn.op) {
      case bc::Op::kLoad:
      case bc::Op::kStore:
        insn.a += base;
        break;
      case bc::Op::kJmp:
      case bc::Op::kJz:
      case bc::Op::kJnz:
        insn.a = static_cast<std::int32_t>(body_offset) + insn.a;
        break;
      case bc::Op::kRet:
        // The return value is already on top of the stack; just leave the
        // inlined region.
        insn = bc::Instruction{bc::Op::kJmp, static_cast<std::int32_t>(landing), 0};
        break;
      default:
        break;  // kCall keeps its program-global target; the scan revisits it
    }
    region.push_back(insn);
    region_meta.push_back(InstrMeta{depth, call.a, static_cast<std::int32_t>(j), chain});
  }

  // Rebase caller branches around the growth: one call instruction becomes
  // region.size() instructions.
  const auto delta = static_cast<std::int32_t>(region.size()) - 1;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    bc::Instruction& insn = code[pc];
    if (bc::op_info(insn.op).is_branch && insn.a > static_cast<std::int32_t>(call_pc)) {
      insn.a += delta;
    }
  }

  code.erase(code.begin() + static_cast<std::ptrdiff_t>(call_pc));
  code.insert(code.begin() + static_cast<std::ptrdiff_t>(call_pc), region.begin(), region.end());
  am.meta.erase(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc));
  am.meta.insert(am.meta.begin() + static_cast<std::ptrdiff_t>(call_pc), region_meta.begin(),
                 region_meta.end());
  ITH_ASSERT(am.consistent(), "annotation length diverged from code length");
  return true;
}

AnnotatedMethod Inliner::run(bc::MethodId id, InlineStats* stats) const {
  AnnotatedMethod am = AnnotatedMethod::from_method(prog_.method(id), id);
  InlineStats local;
  local.size_before_words = bc::estimated_method_size(am.method);

  std::size_t pc = 0;
  while (pc < am.method.size()) {
    const bc::Instruction& insn = am.method.code()[pc];
    if (insn.op != bc::Op::kCall) {
      ++pc;
      continue;
    }
    ++local.sites_considered;
    const bc::MethodId callee = insn.a;
    // Copy: splice() below invalidates references into am.meta.
    const InstrMeta meta = am.meta[pc];

    // Structural guards, independent of the tuned heuristic.
    bool structurally_ok = meta.depth < limits_.hard_depth_cap;
    if (structurally_ok && meta.chain) {
      const auto occurrences =
          std::count(meta.chain->begin(), meta.chain->end(), callee);
      structurally_ok = occurrences < limits_.max_recursive_occurrences;
    }
    if (structurally_ok) {
      structurally_ok = bc::estimated_method_size(am.method) < limits_.max_body_words;
    }
    if (structurally_ok) {
      structurally_ok = is_inlinable(prog_, callee);
    }
    if (!structurally_ok) {
      ++local.sites_refused_structural;
      ++pc;
      continue;
    }

    const SiteProfile profile = oracle_(meta.origin_method, meta.origin_pc);
    heur::InlineRequest req;
    req.caller = id;
    req.callee = callee;
    req.call_pc = pc;
    req.callee_size = bc::estimated_method_size(prog_.method(callee));
    req.caller_size = bc::estimated_method_size(am.method);
    req.depth = meta.depth;
    req.is_hot = profile.is_hot;
    req.site_count = profile.count;

    bool approved;
    if (obs_ != nullptr && obs_->enabled(obs::Category::kInline)) {
      const heur::InlineDecision decision = heuristic_.decide(req);
      approved = decision.inline_it;
      obs_->instant(obs::Category::kInline, "inline.decision", obs::Domain::kHost,
                    obs_->host_now_us(),
                    {{"caller", prog_.method(id).name()},
                     {"callee", prog_.method(callee).name()},
                     {"rule", decision.rule},
                     {"inlined", decision.inline_it},
                     {"depth", req.depth},
                     {"callee_size", req.callee_size},
                     {"caller_size", req.caller_size},
                     {"hot", req.is_hot},
                     {"site_count", req.site_count}});
    } else {
      approved = heuristic_.should_inline(req);
    }
    if (!approved) {
      ++local.sites_refused_by_heuristic;
      ++pc;
      continue;
    }

    splice(am, pc);
    ++local.sites_inlined;
    local.max_depth_reached = std::max(local.max_depth_reached, meta.depth + 1);
    // Do not advance pc: the spliced region starts here and may itself begin
    // with further call sites to consider.
  }

  local.size_after_words = bc::estimated_method_size(am.method);
  if (stats != nullptr) *stats = local;
  return am;
}

}  // namespace ith::opt
