#include "opt/decision_probe.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "bytecode/size_estimator.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

namespace {

std::uint64_t fnv1a_init() { return 0xcbf29ce484222325ULL; }

std::uint64_t fnv1a_byte(std::uint64_t h, unsigned char b) {
  h ^= b;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_byte(h, static_cast<unsigned char>(v & 0xff));
    v >>= 8;
  }
  return h;
}

// Event stream bytes. Only the verdict of each consultation is hashed: the
// *sequence* of consultations is itself a function of the program and the
// verdicts so far (each approval deterministically rewrites the remaining
// walk), so equal verdict streams imply equal consultation streams by
// induction — hashing sizes or rules would only reduce collapse.
constexpr unsigned char kConsultNo = 0xA0;
constexpr unsigned char kConsultYes = 0xA1;
constexpr unsigned char kConsultPartial = 0xA2;
constexpr unsigned char kForkCold = 0xB0;
constexpr unsigned char kForkHot = 0xB1;
constexpr unsigned char kPathEnd = 0x55;

/// Lazily-memoized per-method facts shared by the replay and the signature
/// exploration. Everything here is a pure function of the program.
class ProgramFacts {
 public:
  explicit ProgramFacts(const bc::Program& prog)
      : prog_(prog),
        inlinable_(prog.num_methods(), -1),
        prologue_(prog.num_methods(), -1),
        est_size_(prog.num_methods(), -1),
        body_words_(prog.num_methods(), -1),
        partial_known_(prog.num_methods(), 0),
        partial_(prog.num_methods()) {}

  bool inlinable(bc::MethodId m) {
    signed char& memo = inlinable_[static_cast<std::size_t>(m)];
    if (memo < 0) memo = Inliner::is_inlinable(prog_, m) ? 1 : 0;
    return memo == 1;
  }

  /// !non_arg_locals_definitely_assigned: the splice emits a zeroing
  /// prologue for the callee's non-argument locals.
  bool needs_prologue(bc::MethodId m) {
    signed char& memo = prologue_[static_cast<std::size_t>(m)];
    if (memo < 0) memo = non_arg_locals_definitely_assigned(prog_.method(m)) ? 0 : 1;
    return memo == 1;
  }

  /// estimated_method_size of the *original* method (the InlineRequest's
  /// callee_size and the initial caller_size).
  int est_size(bc::MethodId m) {
    int& memo = est_size_[static_cast<std::size_t>(m)];
    if (memo < 0) memo = bc::estimated_method_size(prog_.method(m));
    return memo;
  }

  /// Estimated words of the callee body as spliced: operand rewrites keep
  /// the opcode (words depend on the opcode alone) and each kRet becomes a
  /// kJmp to the landing pc.
  int body_words(bc::MethodId m) {
    int& memo = body_words_[static_cast<std::size_t>(m)];
    if (memo < 0) {
      int words = 0;
      for (const bc::Instruction& insn : prog_.method(m).code()) {
        words += bc::estimated_words(
            insn.op == bc::Op::kRet ? bc::Instruction{bc::Op::kJmp, 0, 0} : insn);
      }
      memo = words;
    }
    return memo;
  }

  /// Instruction count and estimated words of the marshalling stores plus
  /// the (conditional) zeroing prologue the splice prepends.
  std::pair<int, int> preamble(bc::MethodId callee, int nargs) {
    const int zeroed =
        needs_prologue(callee) ? std::max(0, prog_.method(callee).num_locals() - nargs) : 0;
    const int store_w = bc::estimated_words(bc::Instruction{bc::Op::kStore, 0, 0});
    const int const_w = bc::estimated_words(bc::Instruction{bc::Op::kConst, 0, 0});
    return {nargs + 2 * zeroed, nargs * store_w + zeroed * (const_w + store_w)};
  }

  int call_words() {
    return bc::estimated_words(bc::Instruction{bc::Op::kCall, 0, 0});
  }

  /// Guard-head shape of the callee (memoized partial_inline_shape).
  const std::optional<PartialShape>& partial(bc::MethodId m) {
    const auto i = static_cast<std::size_t>(m);
    if (partial_known_[i] == 0) {
      partial_[i] = partial_inline_shape(prog_.method(m));
      partial_known_[i] = 1;
    }
    return partial_[i];
  }

  /// The head_size the real inliner offers the heuristic: guard-head words
  /// or -1 for an unsplittable callee.
  int head_size(bc::MethodId m) {
    const std::optional<PartialShape>& s = partial(m);
    return s ? s->head_words : -1;
  }

  /// Estimated-words growth of a partial splice: marshal stores plus the
  /// rerouted head plus the stub's reloads; the residual call replaces the
  /// original one exactly, so call words cancel.
  int partial_delta(bc::MethodId callee, int nargs) {
    const int store_w = bc::estimated_words(bc::Instruction{bc::Op::kStore, 0, 0});
    const int load_w = bc::estimated_words(bc::Instruction{bc::Op::kLoad, 0, 0});
    return nargs * (store_w + load_w) + partial(callee)->head_words;
  }

  /// Instruction-count growth of a partial splice (the scan-cursor
  /// advance up to, not including, the residual call).
  int partial_insns_before_residual(bc::MethodId callee, int nargs) {
    return 2 * nargs + partial(callee)->head_len;
  }

 private:
  const bc::Program& prog_;
  std::vector<signed char> inlinable_;
  std::vector<signed char> prologue_;
  std::vector<int> est_size_;
  std::vector<int> body_words_;
  std::vector<signed char> partial_known_;
  std::vector<std::optional<PartialShape>> partial_;
};

/// Structural guards exactly as Inliner::run applies them, in order: depth
/// cap, chain recursion bound (only for instructions that *have* a chain,
/// i.e. spliced ones), evolving-body size, callee shape. `chain` holds the
/// methods inlined through to reach the current scan level, outermost first
/// (empty at the root level, mirroring the null chain of original code).
bool structurally_ok(ProgramFacts& facts, const InlineLimits& limits,
                     const std::vector<bc::MethodId>& chain, int depth, int caller_words,
                     bc::MethodId callee) {
  bool ok = depth < limits.hard_depth_cap;
  if (ok && !chain.empty()) {
    const auto occurrences = std::count(chain.begin(), chain.end(), callee);
    ok = occurrences < limits.max_recursive_occurrences;
  }
  if (ok) ok = caller_words < limits.max_body_words;
  if (ok) ok = facts.inlinable(callee);
  return ok;
}

}  // namespace

DecisionProbe::DecisionProbe(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                             SiteOracle oracle, InlineLimits limits)
    : prog_(prog), heuristic_(heuristic), oracle_(std::move(oracle)), limits_(limits) {
  ITH_CHECK(oracle_ != nullptr, "DecisionProbe requires a site oracle");
}

std::vector<ProbeDecision> DecisionProbe::probe_method(bc::MethodId root,
                                                       InlineStats* stats) const {
  ProgramFacts facts(prog_);
  std::vector<ProbeDecision> trace;
  InlineStats local;
  local.size_before_words = facts.est_size(root);

  // Virtual replay state shared across the whole recursion: the evolving
  // body's estimated size and the scan pc within it. The real scan is a
  // single linear left-to-right walk over the (growing) code array, so a
  // preorder recursion into each spliced region with one shared pc cursor
  // reproduces it exactly.
  int caller_words = facts.est_size(root);
  std::size_t vpc = 0;
  std::vector<bc::MethodId> chain;

  const auto scan = [&](auto&& self, bc::MethodId m, int depth) -> void {
    const bc::Method& method = prog_.method(m);
    for (std::size_t j = 0; j < method.size(); ++j) {
      const bc::Instruction insn = method.code()[j];
      if (insn.op != bc::Op::kCall) {
        ++vpc;
        continue;
      }
      ++local.sites_considered;
      const bc::MethodId callee = insn.a;

      // A partial splice leaves a residual call to the same callee behind
      // (origin site unchanged, depth + 1, callee appended to the chain),
      // which the real scan reaches right after the rerouted head. The
      // inner loop replays that splice-then-reconsider chain; `pushes`
      // tracks how deep into the chain this site carried us.
      int cur_depth = depth;
      int pushes = 0;
      while (true) {
        if (!structurally_ok(facts, limits_, chain, cur_depth, caller_words, callee)) {
          ++local.sites_refused_structural;
          ++vpc;
          break;
        }

        // Profile lookup against the *origin* site: spliced instructions
        // keep their (origin method, origin pc) identity, which for a body
        // instruction j of method m is simply (m, j) — and a residual call
        // inherits the original site's identity verbatim.
        const SiteProfile profile = oracle_(m, static_cast<std::int32_t>(j));
        heur::InlineRequest req;
        req.caller = root;
        req.callee = callee;
        req.call_pc = vpc;
        req.callee_size = facts.est_size(callee);
        req.caller_size = caller_words;
        req.depth = cur_depth;
        req.head_size = facts.head_size(callee);
        req.is_hot = profile.is_hot;
        req.site_count = profile.count;
        const heur::InlineDecision decision = heuristic_.decide(req);

        ProbeDecision pd;
        pd.root = root;
        pd.callee = callee;
        pd.call_pc = vpc;
        pd.depth = cur_depth;
        pd.callee_size = req.callee_size;
        pd.caller_size = req.caller_size;
        pd.head_size = req.head_size;
        pd.is_hot = req.is_hot;
        pd.site_count = req.site_count;
        pd.inlined = decision.inline_it;
        pd.partial = decision.partial;
        pd.rule = decision.rule;
        trace.push_back(pd);

        if (!decision.inline_it) {
          ++local.sites_refused_by_heuristic;
          ++vpc;
          break;
        }

        if (decision.partial) {
          ++local.sites_partially_inlined;
          local.max_depth_reached = std::max(local.max_depth_reached, cur_depth + 1);
          caller_words += facts.partial_delta(callee, insn.b);
          vpc += static_cast<std::size_t>(facts.partial_insns_before_residual(callee, insn.b));
          chain.push_back(callee);
          ++pushes;
          ++cur_depth;
          ++local.sites_considered;  // the residual call is scanned as a new site
          continue;
        }

        ++local.sites_inlined;
        local.max_depth_reached = std::max(local.max_depth_reached, cur_depth + 1);
        const auto [pre_insns, pre_words] = facts.preamble(callee, insn.b);
        caller_words += pre_words + facts.body_words(callee) - facts.call_words();
        vpc += static_cast<std::size_t>(pre_insns);
        chain.push_back(callee);
        ++pushes;
        self(self, callee, cur_depth + 1);
        break;
      }
      while (pushes-- > 0) chain.pop_back();
    }
  };
  scan(scan, root, 0);

  local.size_after_words = caller_words;
  if (stats != nullptr) *stats = local;
  return trace;
}

SignatureResult decision_signature(const bc::Program& prog, const heur::InlineParams& params,
                                   InlineLimits limits, const SignatureOptions& opts) {
  const heur::JikesHeuristic heuristic(params);
  ProgramFacts facts(prog);
  SignatureResult result;

  // One scan level of one exploration path: scanning the original code of
  // `method` (frame index == inline depth; frames[1..] are the chain).
  //
  // A *residual* frame models the re-call a partial splice leaves behind:
  // it scans no code — it IS one pending call to `method`, carrying the
  // origin-site identity its profile lookups key on and the arg count of
  // the original call. `j` doubles as its resolved marker (0 = the call is
  // still to be consulted, nonzero = consultation done, pop on return).
  struct Frame {
    bc::MethodId method;
    std::uint32_t j = 0;
    bool residual = false;
    bc::MethodId origin_m = -1;
    std::int32_t origin_j = -1;
    int nargs = 0;
  };
  // One profile-consistent exploration path through a root's decision tree.
  // `hot` is the partial hot/cold labelling this path has committed to;
  // consultations where both labellings agree leave the site unlabelled so
  // a later divergent consultation of the same site can still fork.
  struct Path {
    std::vector<Frame> frames;
    int caller_words = 0;
    std::map<std::pair<bc::MethodId, std::int32_t>, bool> hot;
    std::uint64_t hash = fnv1a_init();
  };

  // Three-valued verdict: refuse / inline fully / splice the guard head.
  struct Verdict {
    bool inline_it = false;
    bool partial = false;
    bool operator==(const Verdict& o) const {
      return inline_it == o.inline_it && partial == o.partial;
    }
    bool operator!=(const Verdict& o) const { return !(*this == o); }
  };

  const auto verdict_for = [&](bc::MethodId root, bc::MethodId callee, std::size_t depth,
                               int caller_words, bool is_hot) {
    heur::InlineRequest req;
    req.caller = root;
    req.callee = callee;
    req.callee_size = facts.est_size(callee);
    req.caller_size = caller_words;
    req.depth = static_cast<int>(depth);
    req.head_size = facts.head_size(callee);
    req.is_hot = is_hot;
    req.site_count = is_hot ? 1 : 0;  // fig3/fig4 ignore the count
    const heur::InlineDecision d = heuristic.decide(req);
    return Verdict{d.inline_it, d.partial};
  };

  std::uint64_t events = 0;
  std::uint64_t sig = fnv1a_init();

  // Each method is a potential compilation root (the adaptive VM recompiles
  // any method the profiler promotes); the per-root decision trees are
  // hashed in method order.
  const auto num_methods = static_cast<bc::MethodId>(prog.num_methods());
  for (bc::MethodId root = 0; root < num_methods; ++root) {
    sig = fnv1a_u64(sig, static_cast<std::uint64_t>(root));

    std::vector<Path> pending;
    {
      Path p;
      p.frames.push_back(Frame{root, 0});
      p.caller_words = facts.est_size(root);
      pending.push_back(std::move(p));
    }

    while (!pending.empty()) {
      Path cur = std::move(pending.back());
      pending.pop_back();

      // Consults the heuristic about calling `callee` at `depth` from the
      // current path state, forking on hot/cold divergence of the origin
      // site `key` and hashing the committed verdict. Forking copies `cur`
      // but never mutates cur.frames, so Frame references stay valid.
      const auto consult = [&](bc::MethodId callee, std::size_t depth,
                               std::pair<bc::MethodId, std::int32_t> key) {
        Verdict v;
        const auto assigned = cur.hot.find(key);
        if (!opts.adaptive) {
          v = verdict_for(root, callee, depth, cur.caller_words, /*is_hot=*/false);
        } else if (assigned != cur.hot.end()) {
          v = verdict_for(root, callee, depth, cur.caller_words, assigned->second);
        } else {
          const Verdict cold = verdict_for(root, callee, depth, cur.caller_words, false);
          const Verdict hot = verdict_for(root, callee, depth, cur.caller_words, true);
          if (cold != hot) {
            // The labelling of this origin site matters from here on:
            // explore both. The forked path re-executes this consultation
            // when popped (its cursor still points at the call), now
            // finding the site committed hot.
            ++result.forks;
            Path alt = cur;
            alt.hot[key] = true;
            alt.hash = fnv1a_byte(alt.hash, kForkHot);
            pending.push_back(std::move(alt));
            cur.hot[key] = false;
            cur.hash = fnv1a_byte(cur.hash, kForkCold);
          }
          v = cold;
        }
        ++result.consultations;
        cur.hash = fnv1a_byte(
            cur.hash, !v.inline_it ? kConsultNo : (v.partial ? kConsultPartial : kConsultYes));
        return v;
      };

      while (!cur.frames.empty()) {
        // Re-fetched every step: splices push frames and completed levels
        // pop them, either of which invalidates references into the vector.
        Frame& f = cur.frames.back();

        if (f.residual) {
          if (f.j != 0) {
            // The residual call was approved and its pushed frames have
            // returned; this level is done.
            cur.frames.pop_back();
            continue;
          }
          const bc::MethodId callee = f.method;
          const std::size_t depth = cur.frames.size() - 1;
          std::vector<bc::MethodId> chain;
          chain.reserve(depth);
          for (std::size_t k = 1; k < cur.frames.size(); ++k) {
            chain.push_back(cur.frames[k].method);
          }
          if (!structurally_ok(facts, limits, chain, static_cast<int>(depth), cur.caller_words,
                               callee)) {
            // Structural refusals are not consultations: no hash byte, the
            // residual call simply stays as emitted.
            cur.frames.pop_back();
            continue;
          }
          if (++events > opts.max_events) {
            std::uint64_t h = fnv1a_init();
            for (const int v : params.to_array()) {
              h = fnv1a_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
            }
            result.value = h;
            result.exact = false;
            result.consultations = events;
            return result;
          }
          const Verdict v = consult(callee, depth, {f.origin_m, f.origin_j});
          if (!v.inline_it) {
            cur.frames.pop_back();
            continue;
          }
          const bc::MethodId om = f.origin_m;
          const std::int32_t oj = f.origin_j;
          const int nargs = f.nargs;
          f.j = 1;  // resolved; pop when the pushed frames return
          if (v.partial) {
            cur.caller_words += facts.partial_delta(callee, nargs);
            cur.frames.push_back(Frame{callee, 0, true, om, oj, nargs});
          } else {
            cur.caller_words += facts.preamble(callee, nargs).second + facts.body_words(callee) -
                                facts.call_words();
            cur.frames.push_back(Frame{callee, 0});
          }
          continue;
        }

        const bc::Method& method = prog.method(f.method);
        if (f.j >= method.size()) {
          cur.frames.pop_back();
          continue;
        }
        const bc::Instruction insn = method.code()[f.j];
        if (insn.op != bc::Op::kCall) {
          ++f.j;
          continue;
        }
        const bc::MethodId callee = insn.a;
        const std::size_t depth = cur.frames.size() - 1;
        std::vector<bc::MethodId> chain;
        chain.reserve(depth);
        for (std::size_t k = 1; k < cur.frames.size(); ++k) {
          chain.push_back(cur.frames[k].method);
        }
        if (!structurally_ok(facts, limits, chain, static_cast<int>(depth), cur.caller_words,
                             callee)) {
          ++f.j;
          continue;
        }

        if (++events > opts.max_events) {
          // Budget overflow: fall back to hashing the raw parameter vector.
          // Sound (distinct params stay distinct) but collapse-free.
          std::uint64_t h = fnv1a_init();
          for (const int v : params.to_array()) {
            h = fnv1a_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
          }
          result.value = h;
          result.exact = false;
          result.consultations = events;
          return result;
        }

        const auto key = std::make_pair(f.method, static_cast<std::int32_t>(f.j));
        const Verdict v = consult(callee, depth, key);
        if (!v.inline_it) {
          ++f.j;
          continue;
        }
        // Advance past the call *before* pushing the callee frame (the push
        // may reallocate, and the popped-back frame must resume after it).
        const bc::MethodId origin_m = f.method;
        const auto origin_j = static_cast<std::int32_t>(f.j);
        ++f.j;
        if (v.partial) {
          cur.caller_words += facts.partial_delta(callee, insn.b);
          cur.frames.push_back(Frame{callee, 0, true, origin_m, origin_j, insn.b});
        } else {
          const auto [pre_insns, pre_words] = facts.preamble(callee, insn.b);
          (void)pre_insns;  // the signature never needs pc positions
          cur.caller_words += pre_words + facts.body_words(callee) - facts.call_words();
          cur.frames.push_back(Frame{callee, 0});
        }
      }

      sig = fnv1a_u64(sig, cur.hash);
      sig = fnv1a_byte(sig, kPathEnd);
    }
  }

  result.value = sig;
  return result;
}

}  // namespace ith::opt
