#include "opt/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "bytecode/size_estimator.hpp"
#include "opt/optimizer.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::opt {

std::string format_pass_stat(const PassStat& s) {
  std::ostringstream os;
  os << "[pass " << s.pass << "] inst " << s.inst_before << "→" << s.inst_after << ", time "
     << s.host_us << "us";
  return os.str();
}

// --- Pass implementations ----------------------------------------------

namespace {

class InlinePass final : public Pass {
 public:
  const char* name() const override { return "inline"; }
  const char* span_name() const override { return "pass.inline"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    InlineStats& is = ctx.stats.inline_stats;
    if (analyses.callees(ctx.root).empty()) {
      // Call-free root: the inliner would copy the body and report sizes.
      // Skipping the scan is what turns the recompilation ladder's repeated
      // leaf compiles into pure cache hits.
      is.size_before_words = analyses.method_size(ctx.root);
      is.size_after_words = is.size_before_words;
      return 0;
    }
    const Inliner inliner(ctx.prog, ctx.heuristic, ctx.oracle, ctx.limits, ctx.obs, &analyses);
    am = inliner.run(ctx.root, &is, ctx.report);
    preserved = PreservedAnalyses::none();
    return is.sites_inlined + is.sites_partially_inlined;
  }
};

class TailRecursionPass final : public Pass {
 public:
  const char* name() const override { return "tail_recursion"; }
  const char* span_name() const override { return "pass.tail_recursion"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager&, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    const std::size_t n =
        eliminate_tail_recursion(am, ctx.root, ctx.prog.method(ctx.root).num_args());
    ctx.stats.tail_calls_eliminated = n;
    if (n > 0) preserved = PreservedAnalyses::none();
    return n;
  }
};

class FoldPass final : public Pass {
 public:
  const char* name() const override { return "fold"; }
  const char* span_name() const override { return "pass.fold"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    const std::size_t n = constant_fold(am, analyses.branch_targets(am));
    ctx.stats.folds += n;
    // Folding rewrites branches (const-condition elimination) and removes
    // loads (load;pop): nothing body-scope survives a change.
    if (n > 0) preserved = PreservedAnalyses::none();
    return n;
  }
};

class AlgebraicPass final : public Pass {
 public:
  const char* name() const override { return "algebraic"; }
  const char* span_name() const override { return "pass.algebraic"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses&) override {
    // Rewrites touch only kConst/binop/kPop shapes: no branches, loads or
    // successor edges change, so every body analysis stays valid.
    const std::size_t n = simplify_algebraic(am, analyses.branch_targets(am));
    ctx.stats.algebraic_simplifications += n;
    return n;
  }
};

class CompareFusionPass final : public Pass {
 public:
  const char* name() const override { return "compare_fusion"; }
  const char* span_name() const override { return "pass.compare_fusion"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses&) override {
    // A fused jz/jnz keeps its target and both successors; no loads move.
    const std::size_t n = fuse_compare_branch(am, analyses.branch_targets(am));
    ctx.stats.compare_fusions += n;
    return n;
  }
};

class BranchSimplifyPass final : public Pass {
 public:
  const char* name() const override { return "branch_simplify"; }
  const char* span_name() const override { return "pass.branch_simplify"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager&, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    const std::size_t n = simplify_branches(am);
    ctx.stats.branch_simplifications += n;
    // Threading retargets branches and deletes jumps; only the local load
    // counts provably survive.
    if (n > 0) {
      preserved = PreservedAnalyses::none().preserve(AnalysisId::kLiveness);
    }
    return n;
  }
};

class CopyPropPass final : public Pass {
 public:
  const char* name() const override { return "copyprop"; }
  const char* span_name() const override { return "pass.copyprop"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    const std::size_t n =
        copy_propagate(am, analyses.branch_targets(am), analyses.liveness(am).load_count);
    ctx.stats.copyprops += n;
    // Load/store pairs vanish (liveness changes) but no branch is touched
    // and every rewrite falls through like the original.
    if (n > 0) {
      preserved = PreservedAnalyses::none()
                      .preserve(AnalysisId::kBranchTargets)
                      .preserve(AnalysisId::kReachability);
    }
    return n;
  }
};

class DcePass final : public Pass {
 public:
  const char* name() const override { return "dce"; }
  const char* span_name() const override { return "pass.dce"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses&) override {
    // store -> pop removes no load, no branch, no edge: everything body-
    // scope survives (the canonical "changes code, preserves liveness"
    // case the stale detector's value comparison is designed around).
    const std::size_t n = eliminate_dead_stores(am, analyses.liveness(am).load_count);
    ctx.stats.dead_stores += n;
    return n;
  }
};

class UnreachablePass final : public Pass {
 public:
  const char* name() const override { return "unreachable"; }
  const char* span_name() const override { return "pass.unreachable"; }
  std::size_t run(AnnotatedMethod& am, AnalysisManager& analyses, PassContext& ctx,
                  PreservedAnalyses& preserved) override {
    const std::size_t n = eliminate_unreachable(am, analyses.reachable(am));
    ctx.stats.unreachable_removed += n;
    // Nopping dead code can erase dead loads and dead branches, but the
    // reachable region — the only thing reachability describes — is intact.
    if (n > 0) {
      preserved = PreservedAnalyses::none().preserve(AnalysisId::kReachability);
    }
    return n;
  }
};

}  // namespace

const std::vector<std::string>& known_pass_names() {
  static const std::vector<std::string> kNames = {
      "inline",          "tail_recursion", "fold",     "algebraic", "compare_fusion",
      "branch_simplify", "copyprop",       "dce",      "unreachable"};
  return kNames;
}

std::unique_ptr<Pass> make_pass(const std::string& name) {
  if (name == "inline") return std::make_unique<InlinePass>();
  if (name == "tail_recursion") return std::make_unique<TailRecursionPass>();
  if (name == "fold") return std::make_unique<FoldPass>();
  if (name == "algebraic") return std::make_unique<AlgebraicPass>();
  if (name == "compare_fusion") return std::make_unique<CompareFusionPass>();
  if (name == "branch_simplify") return std::make_unique<BranchSimplifyPass>();
  if (name == "copyprop") return std::make_unique<CopyPropPass>();
  if (name == "dce") return std::make_unique<DcePass>();
  if (name == "unreachable") return std::make_unique<UnreachablePass>();
  throw Error("unknown optimization pass '" + name + "'");
}

// --- PipelineDesc -------------------------------------------------------

PipelineDesc PipelineDesc::standard() {
  PipelineDesc p;
  p.setup = {"inline", "tail_recursion"};
  p.fixpoint = {"fold",     "algebraic", "compare_fusion", "branch_simplify",
                "copyprop", "dce",       "unreachable"};
  p.max_iterations = 6;
  return p;
}

std::string PipelineDesc::to_string() const {
  std::ostringstream os;
  for (const std::string& name : setup) os << name << ",";
  os << "fixpoint(";
  for (std::size_t i = 0; i < fixpoint.size(); ++i) {
    if (i > 0) os << ",";
    os << fixpoint[i];
  }
  os << "):" << max_iterations;
  return os.str();
}

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    if (end > start) names.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  return names;
}

void check_known(const std::vector<std::string>& names) {
  const auto& known = known_pass_names();
  for (const std::string& name : names) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw Error("unknown optimization pass '" + name + "' in pipeline description");
    }
  }
}

}  // namespace

PipelineDesc PipelineDesc::parse(const std::string& text) {
  const std::size_t fx = text.find("fixpoint(");
  ITH_CHECK(fx != std::string::npos, "pipeline description needs a fixpoint(...) group");
  const std::size_t close = text.find(')', fx);
  ITH_CHECK(close != std::string::npos, "unterminated fixpoint(...) in pipeline description");
  ITH_CHECK(close + 1 < text.size() && text[close + 1] == ':',
            "pipeline description needs ':<max_iterations>' after fixpoint(...)");

  PipelineDesc p;
  p.setup = split_names(text.substr(0, fx));
  p.fixpoint = split_names(text.substr(fx + 9, close - (fx + 9)));
  check_known(p.setup);
  check_known(p.fixpoint);
  const std::string iters = text.substr(close + 2);
  try {
    p.max_iterations = std::stoi(iters);
  } catch (const std::exception&) {
    throw Error("bad max_iterations '" + iters + "' in pipeline description");
  }
  ITH_CHECK(p.max_iterations >= 1, "pipeline needs at least one fixpoint iteration");
  return p;
}

bool PipelineDesc::has_pass(const std::string& name) const {
  return std::find(setup.begin(), setup.end(), name) != setup.end() ||
         std::find(fixpoint.begin(), fixpoint.end(), name) != fixpoint.end();
}

PipelineDesc pipeline_from_options(const OptimizerOptions& options) {
  PipelineDesc p;
  if (options.enable_inlining) p.setup.push_back("inline");
  if (options.enable_tail_recursion) p.setup.push_back("tail_recursion");
  if (options.enable_folding) p.fixpoint.push_back("fold");
  if (options.enable_algebraic) p.fixpoint.push_back("algebraic");
  if (options.enable_compare_fusion) p.fixpoint.push_back("compare_fusion");
  if (options.enable_branch_simplify) p.fixpoint.push_back("branch_simplify");
  if (options.enable_copyprop) p.fixpoint.push_back("copyprop");
  if (options.enable_dce) {
    // One legacy boolean covered both halves of dead-code removal.
    p.fixpoint.push_back("dce");
    p.fixpoint.push_back("unreachable");
  }
  p.max_iterations = options.max_iterations;
  return p;
}

// --- PassManager --------------------------------------------------------

PassManager::PassManager(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                         SiteOracle oracle, PipelineDesc pipeline, InlineLimits limits,
                         obs::Context* obs)
    : prog_(prog),
      heuristic_(heuristic),
      oracle_(std::move(oracle)),
      pipeline_(std::move(pipeline)),
      limits_(limits),
      obs_(obs),
      analyses_(prog, obs) {
  ITH_CHECK(oracle_ != nullptr, "PassManager requires a site oracle");
  ITH_CHECK(pipeline_.max_iterations >= 1, "optimizer needs at least one iteration");
  auto add = [&](const std::string& name, std::vector<Registered>& dst) {
    Registered reg;
    reg.pass = make_pass(name);
    if (obs_ != nullptr) {
      reg.runs_counter = &obs_->counter("opt.pass." + name + ".runs");
      reg.changes_counter = &obs_->counter("opt.pass." + name + ".changes");
    }
    reg.stat_index = num_stats_++;
    dst.push_back(std::move(reg));
  };
  for (const std::string& name : pipeline_.setup) add(name, setup_);
  for (const std::string& name : pipeline_.fixpoint) add(name, fixpoint_);
}

std::size_t PassManager::run_one(Registered& reg, AnnotatedMethod& am, PassContext& ctx,
                                 OptimizeResult& result, bool trace) {
  PassStat& stat = result.pass_stats[reg.stat_index];
  if (stat.runs == 0) stat.inst_before = am.method.size();
  PreservedAnalyses preserved;  // defaults to all-preserved
  std::uint64_t t0 = 0;
  if (trace) t0 = obs_->host_now_us();
  const std::size_t n = reg.pass->run(am, analyses_, ctx, preserved);
  if (trace) {
    const std::uint64_t dur = obs_->host_now_us() - t0;
    stat.host_us += dur;
    obs_->complete(obs::Category::kOpt, reg.pass->span_name(), obs::Domain::kHost, t0, dur,
                   {{"changes", n}, {"method", prog_.method(ctx.root).name()}});
  }
  ++stat.runs;
  stat.changes += n;
  stat.inst_after = am.method.size();
  if (reg.runs_counter != nullptr) reg.runs_counter->add(1);
  if (reg.changes_counter != nullptr && n > 0) reg.changes_counter->add(n);
  if (n > 0) analyses_.invalidate(preserved);
  return n;
}

OptimizeResult PassManager::run(bc::MethodId id, InlineReport* report) {
  analyses_.begin_body();

  OptimizeResult result;
  result.pass_stats.resize(num_stats_);
  for (const Registered& reg : setup_) result.pass_stats[reg.stat_index].pass = reg.pass->name();
  for (const Registered& reg : fixpoint_) {
    result.pass_stats[reg.stat_index].pass = reg.pass->name();
  }

  const bool trace = obs_ != nullptr && obs_->enabled(obs::Category::kOpt);
  obs::ScopedSpan span(obs_, obs::Category::kOpt, "opt.optimize",
                       trace ? std::vector<obs::Arg>{{"method", prog_.method(id).name()}}
                             : std::vector<obs::Arg>{});

  result.body = AnnotatedMethod::from_method(prog_.method(id), id);
  PassContext ctx{prog_, id, heuristic_, oracle_, limits_, obs_, result.stats, report};

  for (Registered& reg : setup_) run_one(reg, result.body, ctx, result, trace);

  for (int iter = 0; iter < pipeline_.max_iterations; ++iter) {
    std::size_t changes = 0;
    for (Registered& reg : fixpoint_) changes += run_one(reg, result.body, ctx, result, trace);
    // Placeholder removal stays unconditional and outside the change count,
    // exactly as in the legacy orchestration.
    const std::size_t removed = compact_nops(result.body);
    result.stats.instructions_compacted += removed;
    if (removed > 0) analyses_.invalidate(PreservedAnalyses::none());
    result.stats.iterations = iter + 1;
    if (changes == 0) break;
  }

  if (trace) {
    span.arg("iterations", result.stats.iterations);
    span.arg("sites_considered", result.stats.inline_stats.sites_considered);
    span.arg("sites_inlined", result.stats.inline_stats.sites_inlined);
    span.arg("sites_partial", result.stats.inline_stats.sites_partially_inlined);
    span.arg("refused_heuristic", result.stats.inline_stats.sites_refused_by_heuristic);
    span.arg("refused_structural", result.stats.inline_stats.sites_refused_structural);
    span.arg("size_before_words", result.stats.inline_stats.size_before_words);
    span.arg("size_after_words", result.stats.inline_stats.size_after_words);
  }
  return result;
}

// --- Frozen reference orchestration -------------------------------------

OptimizeResult reference_optimize(const bc::Program& prog, bc::MethodId id,
                                  const heur::InlineHeuristic& heuristic, const SiteOracle& oracle,
                                  const OptimizerOptions& options, const InlineLimits& limits) {
  ITH_CHECK(options.max_iterations >= 1, "optimizer needs at least one iteration");
  OptimizeResult result;

  if (options.enable_inlining) {
    const Inliner inliner(prog, heuristic, oracle, limits);
    result.body = inliner.run(id, &result.stats.inline_stats);
  } else {
    result.body = AnnotatedMethod::from_method(prog.method(id), id);
  }

  if (options.enable_tail_recursion) {
    result.stats.tail_calls_eliminated =
        eliminate_tail_recursion(result.body, id, prog.method(id).num_args());
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::size_t changes = 0;
    if (options.enable_folding) {
      const std::size_t n = constant_fold(result.body);
      result.stats.folds += n;
      changes += n;
    }
    if (options.enable_algebraic) {
      const std::size_t n = simplify_algebraic(result.body);
      result.stats.algebraic_simplifications += n;
      changes += n;
    }
    if (options.enable_compare_fusion) {
      const std::size_t n = fuse_compare_branch(result.body);
      result.stats.compare_fusions += n;
      changes += n;
    }
    if (options.enable_branch_simplify) {
      const std::size_t n = simplify_branches(result.body);
      result.stats.branch_simplifications += n;
      changes += n;
    }
    if (options.enable_copyprop) {
      const std::size_t n = copy_propagate(result.body);
      result.stats.copyprops += n;
      changes += n;
    }
    if (options.enable_dce) {
      std::size_t n = eliminate_dead_stores(result.body);
      result.stats.dead_stores += n;
      changes += n;
      n = eliminate_unreachable(result.body);
      result.stats.unreachable_removed += n;
      changes += n;
    }
    result.stats.instructions_compacted += compact_nops(result.body);
    result.stats.iterations = iter + 1;
    if (changes == 0) break;
  }
  return result;
}

}  // namespace ith::opt
