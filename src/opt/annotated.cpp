#include "opt/annotated.hpp"

namespace ith::opt {

AnnotatedMethod AnnotatedMethod::from_method(const bc::Method& m, bc::MethodId id) {
  AnnotatedMethod am;
  am.method = m;
  am.meta.resize(m.size());
  for (std::size_t pc = 0; pc < m.size(); ++pc) {
    am.meta[pc].depth = 0;
    am.meta[pc].origin_method = id;
    am.meta[pc].origin_pc = static_cast<std::int32_t>(pc);
    am.meta[pc].chain = nullptr;  // empty chain
  }
  return am;
}

}  // namespace ith::opt
