// The inliner: a real program transformation, not a cost-model annotation.
//
// For every kCall the heuristic approves, the callee body is spliced into
// the caller: arguments become stores into fresh caller locals, callee
// locals are renumbered, internal branches are rebased, and each kRet turns
// into a jump to the landing pc (its return value simply stays on the
// operand stack, which is exactly where the caller expects it).
//
// Splicing is iterative and depth-aware: calls *inside* a spliced body are
// revisited at depth+1, so the MAX_INLINE_DEPTH parameter the paper tunes
// has its real meaning here.
// Partial inlining (the sixth tunable dimension) splices only the callee's
// pure guard head: hot early-exit checks run inline, while every cold exit
// funnels into a stub that reloads the (untouched) argument copies and
// re-issues the original call. The head's purity makes the re-execution
// invisible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "opt/analysis.hpp"
#include "opt/annotated.hpp"

namespace ith::opt {

/// Profile facts about one *original* call site, supplied by the VM when
/// recompiling under the adaptive scenario.
struct SiteProfile {
  bool is_hot = false;
  std::uint64_t count = 0;
};

/// Maps an original call site (origin method, origin pc) to its profile.
/// The default oracle reports cold/zero everywhere.
using SiteOracle = std::function<SiteProfile(bc::MethodId origin_method, std::int32_t origin_pc)>;

SiteProfile cold_site(bc::MethodId, std::int32_t);

/// Outcome statistics for one method's inlining session.
struct InlineStats {
  std::size_t sites_considered = 0;
  std::size_t sites_inlined = 0;
  std::size_t sites_partially_inlined = 0;   ///< guard head spliced, tail outlined
  std::size_t sites_refused_by_heuristic = 0;
  std::size_t sites_refused_structural = 0;  ///< recursion guard / non-inlinable shape
  int max_depth_reached = 0;
  int size_before_words = 0;   ///< estimated machine words before inlining
  int size_after_words = 0;    ///< and after
};

/// One row of the structured inline report: every call site the inliner
/// looked at, with the verdict and the exact rule (Figure 3/4 term or
/// structural guard) that produced it — LLVM's -Rpass=inline in miniature.
struct InlineReportEntry {
  enum class Outcome { kInlined, kPartial, kRefusedHeuristic, kRefusedStructural };

  bc::MethodId caller = -1;     ///< root method being compiled
  bc::MethodId callee = -1;
  std::size_t call_pc = 0;      ///< pc in the evolving caller body
  int depth = 0;
  int callee_size = 0;
  int caller_size = 0;
  int head_size = -1;           ///< guard-head words, -1 when the callee has none
  bool is_hot = false;
  std::uint64_t site_count = 0;
  Outcome outcome = Outcome::kRefusedStructural;
  /// "fig3:*" / "fig4:*" for heuristic verdicts, "structural:*" for guard
  /// refusals. Static string.
  const char* rule = "";
};

using InlineReport = std::vector<InlineReportEntry>;

/// Human-readable rendering, one line per decision.
std::string format_inline_report(const bc::Program& prog, const InlineReport& report);

/// Structural safety limits independent of the tuned heuristic. These mirror
/// the hard limits a real compiler keeps even when a heuristic says yes.
struct InlineLimits {
  int hard_depth_cap = 20;           ///< absolute depth bound
  int max_recursive_occurrences = 1; ///< times one method may appear on a chain
  int max_body_words = 200000;       ///< give up growing a single body past this
};

class Inliner {
 public:
  /// `obs` is non-owning and may be null (no decision tracing); it must
  /// outlive the inliner. With the kInline category enabled it receives one
  /// instant event per heuristic consultation, carrying the Figure 3/4 rule
  /// that fired (InlineHeuristic::decide). `analyses` is an optional shared
  /// AnalysisManager (same program) whose cached structural facts replace
  /// per-site recomputation; when null the inliner computes privately.
  explicit Inliner(const bc::Program& prog, const heur::InlineHeuristic& heuristic,
                   SiteOracle oracle = cold_site, InlineLimits limits = {},
                   obs::Context* obs = nullptr, AnalysisManager* analyses = nullptr);

  /// Inlines into (a copy of) method `id` and returns the transformed body.
  /// `report`, when non-null, receives one InlineReportEntry per considered
  /// call site (appended; the caller owns clearing).
  AnnotatedMethod run(bc::MethodId id, InlineStats* stats = nullptr,
                      InlineReport* report = nullptr) const;

  /// True if `callee` can structurally be spliced: single-value returns
  /// (operand stack depth exactly 1 at every kRet) and no kHalt.
  static bool is_inlinable(const bc::Program& prog, bc::MethodId callee);

 private:
  bool splice(AnnotatedMethod& am, std::size_t call_pc, AnalysisManager& analyses) const;
  bool splice_partial(AnnotatedMethod& am, std::size_t call_pc, const PartialShape& shape) const;

  const bc::Program& prog_;
  const heur::InlineHeuristic& heuristic_;
  SiteOracle oracle_;
  InlineLimits limits_;
  obs::Context* obs_;
  AnalysisManager* analyses_;
};

}  // namespace ith::opt
