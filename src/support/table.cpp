#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace ith {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  ITH_CHECK(!headers_.empty(), "Table requires at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kRight);
    aligns_[0] = Align::kLeft;  // first column is typically the benchmark name
  }
  ITH_CHECK(aligns_.size() == headers_.size(), "Table alignment count mismatch");
}

void Table::add_row(std::vector<std::string> cells) {
  ITH_CHECK(cells.size() == headers_.size(), "Table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rules_.push_back(rows_.size()); }

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto hrule = [&os, &widths] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      os << "| ";
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << ' ';
    }
    os << "|\n";
  };

  hrule();
  emit(headers_);
  hrule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) hrule();
    emit(rows_[r]);
  }
  hrule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string cell(double value, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, value);
  return buf;
}

std::string cell(long long value) { return std::to_string(value); }

std::string cell_ratio(double ratio) { return cell(ratio, 3); }

std::string cell_percent(double percent) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", percent);
  return buf;
}

}  // namespace ith
