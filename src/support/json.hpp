// Minimal JSON document model + recursive-descent parser.
//
// Just enough for the observability tooling: tools/trace_report parses
// JSONL/Chrome trace files, and the bench guard parses recorded
// BENCH_*.json baselines. Not a general-purpose library: numbers are
// doubles, objects preserve insertion order, no \uXXXX surrogate-pair
// decoding (escapes outside the BMP round-trip as '?').
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ith {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                              ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;    ///< kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors that throw ith::Error on kind mismatch.
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
};

/// Parses one JSON document; throws ith::Error (with offset) on malformed
/// input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace ith
