// Summary statistics used by the tuner's fitness functions and by the
// benchmark harnesses when aggregating per-benchmark results into the
// averages the paper reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ith {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Geometric mean (the paper's Perf(S) formula). Requires a non-empty range
/// of strictly positive values. Computed in log space for numeric stability.
double geomean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator). Requires size >= 2.
double stddev(std::span<const double> xs);

/// Median (copies and sorts). Requires a non-empty range.
double median(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Streaming accumulator for min/max/mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance; 0 when count < 2
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Converts a ratio `tuned/baseline` into the "% reduction" the paper quotes
/// (positive = improvement). E.g. ratio 0.83 -> 17.0.
double percent_reduction(double ratio);

}  // namespace ith
