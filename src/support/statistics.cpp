#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace ith {

double mean(std::span<const double> xs) {
  ITH_CHECK(!xs.empty(), "mean of empty range");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  ITH_CHECK(!xs.empty(), "geomean of empty range");
  double logsum = 0.0;
  for (double x : xs) {
    ITH_CHECK(x > 0.0, "geomean requires strictly positive values");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  ITH_CHECK(xs.size() >= 2, "stddev requires at least two samples");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  ITH_CHECK(!xs.empty(), "median of empty range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double min_of(std::span<const double> xs) {
  ITH_CHECK(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  ITH_CHECK(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  ITH_CHECK(n_ > 0, "RunningStats::mean with no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  ITH_CHECK(n_ > 0, "RunningStats::min with no samples");
  return min_;
}

double RunningStats::max() const {
  ITH_CHECK(n_ > 0, "RunningStats::max with no samples");
  return max_;
}

double percent_reduction(double ratio) { return (1.0 - ratio) * 100.0; }

}  // namespace ith
