// Minimal CSV writer so benchmark harnesses can dump machine-readable
// series next to the human-readable tables (for replotting the figures).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ith {

/// Writes RFC-4180-style CSV: fields containing commas, quotes or newlines
/// are quoted, embedded quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& fields);

  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
};

}  // namespace ith
