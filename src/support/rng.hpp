// Deterministic pseudo-random number generation.
//
// All stochastic components (workload generators, GA operators) draw from
// Pcg32 so that every experiment is exactly reproducible from a seed. PCG is
// used instead of std::mt19937 because its output is specified (portable
// across standard libraries) and its state is two 64-bit words, making
// fork()-style splitting for parallel evaluation cheap.
#pragma once

#include <cstdint>
#include <limits>

namespace ith {

/// PCG-XSH-RR 64/32 generator (O'Neill 2014). Satisfies
/// std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t seq = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()();

  /// Uniform integer in [0, bound), bias-free (rejection sampling).
  std::uint32_t bounded(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal deviate (Box-Muller, one value per call).
  double gaussian();

  /// Returns a new independent generator derived from this one's stream.
  /// Used to hand child components their own deterministic streams.
  Pcg32 split();

  /// Raw generator state, for checkpoint/resume: restoring (state, inc)
  /// continues the stream bit-identically. `inc` must come from a prior
  /// raw_inc() (the constructor guarantees it is odd).
  std::uint64_t raw_state() const { return state_; }
  std::uint64_t raw_inc() const { return inc_; }
  void restore(std::uint64_t state, std::uint64_t inc) {
    state_ = state;
    inc_ = inc | 1u;  // an even increment would degrade the LCG
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace ith
