#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace ith {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_number() const {
  ITH_CHECK(kind == Kind::kNumber, "JSON value is not a number");
  return number;
}

std::int64_t JsonValue::as_int() const { return static_cast<std::int64_t>(as_number()); }

const std::string& JsonValue::as_string() const {
  ITH_CHECK(kind == Kind::kString, "JSON value is not a string");
  return str;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    ITH_CHECK(pos_ == text_.size(),
              "trailing garbage after JSON document at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogates degrade to '?'.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out.push_back('?');
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ith
