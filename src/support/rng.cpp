#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace ith {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t seq) : state_(0), inc_((seq << 1u) | 1u) {
  operator()();
  state_ += seed;
  operator()();
}

Pcg32::result_type Pcg32::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) {
  ITH_CHECK(bound > 0, "Pcg32::bounded requires bound > 0");
  // Rejection sampling: discard the non-multiple-of-bound tail of the range.
  const std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
  for (;;) {
    const std::uint32_t r = operator()();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Pcg32::range(std::int64_t lo, std::int64_t hi) {
  ITH_CHECK(lo <= hi, "Pcg32::range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit span: combine two 32-bit draws
    const std::uint64_t v = (static_cast<std::uint64_t>(operator()()) << 32) | operator()();
    return static_cast<std::int64_t>(v);
  }
  if (span <= std::numeric_limits<std::uint32_t>::max()) {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint32_t>(span)));
  }
  // Wide span: draw 64 bits and reject the biased tail.
  const std::uint64_t threshold = (0ULL - span) % span;
  for (;;) {
    const std::uint64_t v = (static_cast<std::uint64_t>(operator()()) << 32) | operator()();
    if (v >= threshold) return lo + static_cast<std::int64_t>(v % span);
  }
}

double Pcg32::uniform() {
  return static_cast<double>(operator()()) * 0x1.0p-32;
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

bool Pcg32::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Pcg32::gaussian() {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-12);
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

Pcg32 Pcg32::split() {
  const std::uint64_t seed = (static_cast<std::uint64_t>(operator()()) << 32) | operator()();
  const std::uint64_t seq = (static_cast<std::uint64_t>(operator()()) << 32) | operator()();
  return Pcg32(seed, seq);
}

}  // namespace ith
