#include "support/cli.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace ith {

CliParser::CliParser(int argc, const char* const* argv) {
  ITH_CHECK(argc >= 1, "CliParser requires argv[0]");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliParser::has(const std::string& name) const { return flags_.count(name) != 0; }

std::optional<std::string> CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliParser::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t CliParser::get_int_or(const std::string& name, std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  ITH_CHECK(end && *end == '\0', "flag --" + name + " is not an integer: " + *v);
  return parsed;
}

double CliParser::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  ITH_CHECK(end && *end == '\0', "flag --" + name + " is not a number: " + *v);
  return parsed;
}

bool CliParser::get_bool_or(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw Error("flag --" + name + " is not a boolean: " + *v);
}

}  // namespace ith
