// Environment-variable overrides used by the bench harnesses so GA budgets
// can be scaled up (paper-scale) or down (smoke runs) without rebuilding.
#pragma once

#include <cstdint>
#include <string>

namespace ith {

/// Returns the env var value, or `fallback` if unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);

/// Integer env var; throws ith::Error if set but unparsable.
std::int64_t env_int_or(const std::string& name, std::int64_t fallback);

}  // namespace ith
