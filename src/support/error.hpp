// Error handling primitives shared across the inline-tuner libraries.
//
// The libraries throw `ith::Error` for all recoverable misuse (bad bytecode,
// malformed parameters, ...). Internal invariants use ITH_ASSERT, which is
// compiled in all build types: a simulator that silently corrupts its cycle
// accounting is worse than one that stops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ith {

/// Exception type thrown by all inline-tuner libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ith

/// Throw ith::Error with file/line context when `cond` is false.
#define ITH_CHECK(cond, msg)                                   \
  do {                                                         \
    if (!(cond)) {                                             \
      ::ith::detail::raise(__FILE__, __LINE__, (msg));         \
    }                                                          \
  } while (0)

/// Internal invariant; active in every build type.
#define ITH_ASSERT(cond, msg) ITH_CHECK(cond, std::string("internal invariant violated: ") + (msg))
