// Plain-text table renderer. The benchmark harnesses print the same rows
// the paper's tables/figures report; this keeps their formatting uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ith {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows of strings (or use the
/// cell() helpers for numbers), then render to a stream.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::vector<Align> aligns = {});

  /// Adds one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row (used to separate
  /// per-benchmark rows from the average row, as the paper's figures do).
  void add_rule();

  std::size_t rows() const { return rows_.size(); }

  void render(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices preceded by a rule
};

/// Formats a double with `prec` fractional digits.
std::string cell(double value, int prec = 3);

/// Formats an integer.
std::string cell(long long value);

/// Formats a ratio as the paper's normalized bar value, e.g. "0.83".
std::string cell_ratio(double ratio);

/// Formats a percent reduction, e.g. "17.0%" (positive = improvement).
std::string cell_percent(double percent);

}  // namespace ith
