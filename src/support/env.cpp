#include "support/env.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace ith {

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::int64_t env_int_or(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  ITH_CHECK(end && *end == '\0', "env var " + name + " is not an integer: " + std::string(v));
  return parsed;
}

}  // namespace ith
