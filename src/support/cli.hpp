// Tiny command-line flag parser for the examples and bench harnesses.
// Supports --name=value, --name value, and boolean --name forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ith {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool get_bool_or(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ith
