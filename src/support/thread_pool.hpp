// Fixed-size worker pool used to evaluate GA individuals in parallel.
//
// The pool is deliberately minimal: submit() returns a std::future, and
// parallel_for() provides the common "independent index range" pattern with
// deterministic result placement (slot i of the output belongs to index i,
// regardless of which worker ran it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ith {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions from any index are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ith
