// VirtualMachine: the dynamic-compilation system under study.
//
// Two compilation scenarios, exactly as in the paper (section 3.3):
//
//   Opt    — every method is compiled by the optimizing compiler (inlining
//            under the tuned heuristic + scalar opts) at first invocation.
//   Adapt  — every method is first compiled by the fast baseline compiler
//            (no inlining, poor code). Online profiling counts invocations
//            and loop back edges; when a method's hot score crosses the
//            threshold it is recompiled by the optimizing compiler, and
//            *hot call sites* inside it are judged by the Figure 4 test
//            (HOT_CALLEE_MAX_SIZE) instead of the Figure 3 chain.
//
// Methodology (section 5): the benchmark runs `iterations` times inside one
// VM. Iteration 1 gives *total time* (execution + all compilation during
// it); the best later iteration gives *running time*. Compilation performed
// during later iterations is accounted separately, mirroring wall-clock
// methodology where only iteration 1 is reported with compile time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include <chrono>

#include "bytecode/program.hpp"
#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "opt/optimizer.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "runtime/icache.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "runtime/profile.hpp"

namespace ith::vm {

enum class Scenario : std::uint8_t { kAdapt, kOpt };

const char* scenario_name(Scenario s);

struct VmConfig {
  Scenario scenario = Scenario::kAdapt;
  /// Adaptive controller: recompile a baseline method once
  /// invocations + back_edges reaches this.
  std::uint64_t hot_method_threshold = 400;
  /// A profiled call site counts as hot once executed this many times.
  std::uint64_t hot_site_threshold = 300;
  /// Multi-level recompilation (Jikes' O0->O1->O2 ladder): the first hot
  /// promotion compiles at the cheaper O1 level (Tier::kMidOpt); when the
  /// hot score reaches hot_method_threshold * rehot_multiplier the method
  /// is recompiled at full O2. 0 collapses the ladder (straight to O2).
  std::uint64_t rehot_multiplier = 12;
  opt::OptimizerOptions opt_options{};
  /// Explicit optimization pipeline. When set it overrides the pipeline
  /// derived from opt_options' booleans (which remain the deprecated
  /// compatibility surface); parse with opt::PipelineDesc::parse or build
  /// programmatically. The VM runs one persistent PassManager for the whole
  /// session, so program-scope analyses (call graph, method sizes, partial
  /// shapes) are computed once and shared across every compilation.
  std::optional<opt::PipelineDesc> pipeline;
  opt::InlineLimits inline_limits{.hard_depth_cap = 20,
                                  .max_recursive_occurrences = 1,
                                  .max_body_words = 20000};
  rt::InterpreterOptions interp_options{};
  bool simulate_icache = true;
  /// On-stack replacement: transfer live baseline frames into freshly
  /// recompiled code at loop headers. Off by default — Jikes RVM 2.3.3 (the
  /// paper's system) had no OSR, so hot loops finished their current
  /// activation in old code; enabling this is the "future work" variant
  /// measured by bench/ablation_osr.
  bool enable_osr = false;
  /// Observability context. Non-owning, may be null (= tracing off; every
  /// emit site is one predictable branch, so the interpreter's dispatch
  /// throughput is untouched); must outlive the VM. The VM forwards it to
  /// its Optimizer (opt_options.obs is overwritten with this value).
  /// Categories: kCompile (per-compilation spans in *simulated cycles* —
  /// their durations sum exactly to RunResult::compile_cycles_all), kVm
  /// (promotions, hot-site trips, OSR, code installs, iteration spans).
  obs::Context* obs = nullptr;
  /// Per-run() resource envelope. The VM enforces the sim-cycle cap (by
  /// shrinking the engine's instruction budget each iteration — every engine
  /// charges >= 1 cycle per instruction), the compile-cycle cap, and the
  /// host wall-clock deadline; the instruction/frame/arena caps belong to
  /// interp_options (resilience::guarded_run maps them there). All-zero
  /// (the default) means unlimited, at the cost of one branch per iteration
  /// and per compilation.
  resilience::RunBudget budget{};
  /// Deterministic fault plan consulted at VM-trap and compile-inflation
  /// sites. Non-owning, may be null (= no injection, one branch per site);
  /// must outlive the VM.
  const resilience::FaultPlan* faults = nullptr;
  /// Caller identity mixed into every fault-injection key so distinct
  /// evaluations (genome, workload, attempt) see independent fault draws.
  std::uint64_t fault_key = 0;
  /// Per-iteration input hook for request-driven serving (src/serving/).
  /// When set, run() invokes it before each iteration *instead of*
  /// resetting the global data segment, so state built by earlier
  /// iterations (a key-value table, a loaded model) persists across
  /// requests and the hook writes only the request parameters into their
  /// ABI slots. Null (the default) keeps the batch-benchmark behaviour:
  /// every iteration starts from zeroed globals.
  std::function<void(int iteration, std::vector<std::int64_t>& globals)> iteration_input;
};

struct IterationStats {
  rt::ExecStats exec;
  std::uint64_t compile_cycles = 0;
  std::size_t baseline_compiles = 0;
  std::size_t opt_compiles = 0;
};

struct RunResult {
  std::vector<IterationStats> iterations;
  /// Iteration-1 wall time: execution plus compilation (the paper's "total").
  std::uint64_t total_cycles = 0;
  /// Best later iteration's pure execution time (the paper's "running").
  std::uint64_t running_cycles = 0;
  std::uint64_t compile_cycles_all = 0;
  std::size_t methods_baseline_compiled = 0;
  std::size_t methods_opt_compiled = 0;
  std::size_t recompilations = 0;
  /// Machine words of all code ever emitted (compiled-code footprint).
  std::size_t code_words_emitted = 0;
  /// Summed optimizer statistics over all optimizing compilations.
  opt::OptStats opt_stats;
};

class VirtualMachine final : private rt::CodeSource {
 public:
  /// The program and heuristic references must outlive the VM (the machine
  /// model is copied). The heuristic is non-const because whole-program
  /// heuristics (knapsack oracle) build per-program state in prepare().
  VirtualMachine(const bc::Program& prog, const rt::MachineModel& machine,
                 heur::InlineHeuristic& heuristic, VmConfig config = {});

  /// Runs the benchmark `iterations` times (>= 1; the paper uses >= 2).
  RunResult run(int iterations = 2);

  const rt::ProfileData& profile() const { return profile_; }
  const VmConfig& config() const { return config_; }

  /// The session-persistent pass manager every optimizing compilation runs
  /// through (exposed so tests and tools can inspect the analysis cache).
  const opt::PassManager& pass_manager() const { return *pass_manager_; }

  /// Rebinds the fault-key component of the config between run() calls.
  /// The serving tier calls run(1) once per request on a long-lived VM and
  /// needs each request to see an independent fault draw — without this the
  /// per-iteration key (which restarts at 0 every run()) would repeat.
  void set_fault_key(std::uint64_t key) { config_.fault_key = key; }

  /// Final global data segment (state after the most recent run iteration).
  /// Differential testing compares this against a reference execution.
  const std::vector<std::int64_t>& globals() const { return interp_->globals(); }

 private:
  // rt::CodeSource
  const rt::CompiledMethod& invoke(bc::MethodId id) override;
  void on_back_edge(bc::MethodId id) override;
  const rt::CompiledMethod* osr_replacement(const rt::CompiledMethod& current,
                                            std::size_t target_pc) override;
  void on_call_site(bc::MethodId origin_method, std::int32_t origin_pc) override;

  std::unique_ptr<rt::CompiledMethod> compile_baseline(bc::MethodId id);
  std::unique_ptr<rt::CompiledMethod> compile_opt(bc::MethodId id, rt::Tier tier);
  void install(bc::MethodId id, std::unique_ptr<rt::CompiledMethod> cm);
  void maybe_recompile(bc::MethodId id);

  /// Applies the kCompileInflate fault (if armed), accrues the cycles
  /// against this run's compile-cycle budget (throwing kCompileCycles when
  /// it is exhausted), and returns the possibly-inflated cycle count.
  std::uint64_t charge_compile(bc::MethodId id, std::uint64_t cycles);
  /// Throws kWallClock once the host deadline set by run() has passed.
  void check_wall() const;
  /// Publishes the fast engine's superinstruction-fusion activity as
  /// rt.fused_* counter deltas (counters are add-only; the engine's stats
  /// are cumulative, so the VM diffs against the last published snapshot).
  void publish_fusion_counters();

  const bc::Program& prog_;
  const rt::MachineModel machine_;  // by value: callers may pass temporaries
  heur::InlineHeuristic& heuristic_;
  VmConfig config_;

  /// Persistent across compilations: one PassManager per VM session so the
  /// AnalysisManager's program-scope caches amortize over the whole run.
  std::unique_ptr<opt::PassManager> pass_manager_;

  std::vector<std::unique_ptr<rt::CompiledMethod>> current_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> retired_;
  std::vector<int> opt_compile_count_;  // per-method optimizing compilations so far
  rt::ProfileData profile_;
  std::unique_ptr<rt::ICache> icache_;
  std::unique_ptr<rt::Interpreter> interp_;

  std::uint64_t next_code_addr_ = 0x10000;
  IterationStats* live_iter_ = nullptr;  // where compile costs accrue
  RunResult* live_result_ = nullptr;

  std::uint64_t compile_cycles_run_ = 0;  // accrued against budget.max_compile_cycles
  std::uint64_t compile_counter_ = 0;     // fault-key component: nth compilation
  std::chrono::steady_clock::time_point wall_deadline_{};

  obs::Context* obs_ = nullptr;  // == config_.obs (null: tracing off)
  rt::FusionStats fusion_reported_;  // last rt.fused_* values published to obs_
  /// Simulated-cycle cursor for trace timestamps: advanced by every compile
  /// span as it is emitted and by each iteration's execution cycles, so
  /// compile spans nest inside their iteration span on the trace timeline.
  std::uint64_t sim_now_ = 0;
};

}  // namespace ith::vm
