#include "vm/vm.hpp"

#include <algorithm>
#include <string>

#include "support/error.hpp"

namespace ith::vm {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kAdapt: return "Adapt";
    case Scenario::kOpt: return "Opt";
  }
  return "?";
}

namespace {

const char* tier_name(rt::Tier t) {
  switch (t) {
    case rt::Tier::kBaseline: return "baseline";
    case rt::Tier::kMidOpt: return "mid";
    case rt::Tier::kOpt: return "opt";
  }
  return "?";
}

}  // namespace

VirtualMachine::VirtualMachine(const bc::Program& prog, const rt::MachineModel& machine,
                               heur::InlineHeuristic& heuristic, VmConfig config)
    : prog_(prog),
      machine_(machine),
      heuristic_(heuristic),
      config_(config),
      current_(prog.num_methods()),
      opt_compile_count_(prog.num_methods(), 0),
      profile_(prog.num_methods()),
      obs_(config.obs) {
  // One context serves the whole compilation stack: the optimizer (and its
  // inliner) trace through the same sink the VM does.
  config_.opt_options.obs = config_.obs;
  // Whole-program heuristics (the knapsack oracle) see the program once per
  // VM session, before any compilation.
  heuristic_.prepare(prog_);
  // Under Adapt the optimizer consults the live profile; under Opt there is
  // no profile (everything is compiled on first invocation), so every site
  // takes the Figure 3 path — which is why HOT_CALLEE_MAX_SIZE is "NA" for
  // Opt in Table 4. The oracle captures members (stable for the VM's
  // lifetime), so one PassManager serves every compilation of the session
  // and its analysis cache carries across recompilations.
  opt::SiteOracle oracle = opt::cold_site;
  if (config_.scenario == Scenario::kAdapt) {
    const rt::ProfileData& profile = profile_;
    const std::uint64_t hot_threshold = config_.hot_site_threshold;
    oracle = [&profile, hot_threshold](bc::MethodId m, std::int32_t pc) {
      opt::SiteProfile sp;
      if (m >= 0 && pc >= 0) {
        sp.count = profile.site_count(m, pc);
        sp.is_hot = sp.count >= hot_threshold;
      }
      return sp;
    };
  }
  pass_manager_ = std::make_unique<opt::PassManager>(
      prog_, heuristic_, std::move(oracle),
      config_.pipeline ? *config_.pipeline : opt::pipeline_from_options(config_.opt_options),
      config_.inline_limits, config_.obs);
  if (config_.simulate_icache) {
    icache_ = std::make_unique<rt::ICache>(machine_.icache_bytes, machine_.icache_line_bytes,
                                           machine_.icache_assoc);
  }
  // The private-base conversion is only accessible in class scope, so it
  // must happen here rather than inside make_unique.
  rt::CodeSource& self = *this;
  interp_ = std::make_unique<rt::Interpreter>(prog_, machine_, self, icache_.get(),
                                              config_.interp_options);
}

std::uint64_t VirtualMachine::charge_compile(bc::MethodId id, std::uint64_t cycles) {
  ++compile_counter_;
  const resilience::FaultPlan* plan = config_.faults;
  if (plan != nullptr &&
      plan->should_inject(
          resilience::FaultSite::kCompileInflate,
          resilience::mix_keys(config_.fault_key,
                               resilience::mix_keys(static_cast<std::uint64_t>(id),
                                                    compile_counter_)))) {
    cycles = static_cast<std::uint64_t>(static_cast<double>(cycles) * plan->compile_inflation);
  }
  compile_cycles_run_ += cycles;
  if (config_.budget.max_compile_cycles != 0 &&
      compile_cycles_run_ > config_.budget.max_compile_cycles) {
    throw resilience::BudgetExceededError(resilience::BudgetKind::kCompileCycles,
                                          "compile-cycle budget exceeded");
  }
  check_wall();
  return cycles;
}

void VirtualMachine::check_wall() const {
  if (config_.budget.max_wall_ms == 0) return;
  if (std::chrono::steady_clock::now() >= wall_deadline_) {
    throw resilience::BudgetExceededError(resilience::BudgetKind::kWallClock,
                                          "host wall-clock deadline exceeded");
  }
}

void VirtualMachine::publish_fusion_counters() {
  if (obs_ == nullptr || !obs_->enabled(obs::Category::kVm)) return;
  const rt::FusionStats* fs = interp_->fusion_stats();
  if (fs == nullptr) return;  // reference engine: nothing to report
  const auto bump = [&](const std::string& name, std::uint64_t now, std::uint64_t& last) {
    if (now > last) {
      obs_->counter(name).add(now - last);
      last = now;
    }
  };
  bump("rt.fused_bodies", fs->bodies_fused, fusion_reported_.bodies_fused);
  bump("rt.fused_rules_fired", fs->rules_fired, fusion_reported_.rules_fired);
  bump("rt.fused_insns_eliminated", fs->insns_fused, fusion_reported_.insns_fused);
  bump("rt.fused_imm_windows", fs->windows_imm, fusion_reported_.windows_imm);
  bump("rt.fused_imm_pool_overflows", fs->pool_overflows, fusion_reported_.pool_overflows);
  const std::vector<rt::FusionRule>& rules = rt::fusion_rules();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    bump("rt.fused_rule." + std::string(rules[r].name), fs->rule_hits[r],
         fusion_reported_.rule_hits[r]);
    bump("rt.fused_imm_rule." + std::string(rules[r].name), fs->rule_hits_imm[r],
         fusion_reported_.rule_hits_imm[r]);
  }
}

std::unique_ptr<rt::CompiledMethod> VirtualMachine::compile_baseline(bc::MethodId id) {
  auto cm = std::make_unique<rt::CompiledMethod>();
  cm->body = prog_.method(id);
  cm->tier = rt::Tier::kBaseline;
  cm->method_id = id;
  cm->origin.resize(cm->body.size());
  for (std::size_t pc = 0; pc < cm->body.size(); ++pc) {
    cm->origin[pc] = {id, static_cast<std::int32_t>(pc)};
  }
  cm->finalize();

  ITH_ASSERT(live_iter_ != nullptr, "compilation outside a run");
  const std::uint64_t cycles = charge_compile(id, machine_.baseline_compile_cycles(cm->size_words()));
  live_iter_->compile_cycles += cycles;
  ++live_iter_->baseline_compiles;
  ++live_result_->methods_baseline_compiled;
  if (obs_ != nullptr && obs_->enabled(obs::Category::kCompile)) {
    // Sim-domain span: dur is exactly the cycles charged to this iteration,
    // so summing compile.* durations reproduces RunResult::compile_cycles_all.
    obs_->complete(obs::Category::kCompile, "compile.baseline", obs::Domain::kSim, sim_now_,
                   cycles,
                   {{"method", prog_.method(id).name()}, {"size_words", cm->size_words()}});
    obs_->counter("vm.compiles.baseline").add(1);
  }
  sim_now_ += cycles;  // cursor advances even when kCompile is masked out
  return cm;
}

std::unique_ptr<rt::CompiledMethod> VirtualMachine::compile_opt(bc::MethodId id, rt::Tier tier) {
  opt::OptimizeResult result = pass_manager_->run(id);

  auto cm = std::make_unique<rt::CompiledMethod>();
  cm->body = std::move(result.body.method);
  cm->tier = tier;
  cm->method_id = id;
  cm->origin.reserve(result.body.meta.size());
  for (const opt::InstrMeta& m : result.body.meta) {
    cm->origin.emplace_back(m.origin_method, m.origin_pc);
  }
  cm->finalize();

  ITH_ASSERT(live_iter_ != nullptr, "compilation outside a run");
  const std::uint64_t cycles =
      charge_compile(id, tier == rt::Tier::kOpt ? machine_.opt_compile_cycles(cm->size_words())
                                                : machine_.mid_compile_cycles(cm->size_words()));
  live_iter_->compile_cycles += cycles;
  ++live_iter_->opt_compiles;
  ++live_result_->methods_opt_compiled;
  if (obs_ != nullptr && obs_->enabled(obs::Category::kCompile)) {
    const bool full = tier == rt::Tier::kOpt;
    obs_->complete(obs::Category::kCompile, full ? "compile.opt" : "compile.mid",
                   obs::Domain::kSim, sim_now_, cycles,
                   {{"method", prog_.method(id).name()},
                    {"size_words", cm->size_words()},
                    {"sites_inlined", result.stats.inline_stats.sites_inlined},
                    {"sites_considered", result.stats.inline_stats.sites_considered}});
    obs_->counter(full ? "vm.compiles.opt" : "vm.compiles.mid").add(1);
  }
  sim_now_ += cycles;  // cursor advances even when kCompile is masked out

  auto& agg = live_result_->opt_stats;
  agg.inline_stats.sites_considered += result.stats.inline_stats.sites_considered;
  agg.inline_stats.sites_inlined += result.stats.inline_stats.sites_inlined;
  agg.inline_stats.sites_partially_inlined += result.stats.inline_stats.sites_partially_inlined;
  agg.inline_stats.sites_refused_by_heuristic += result.stats.inline_stats.sites_refused_by_heuristic;
  agg.inline_stats.sites_refused_structural += result.stats.inline_stats.sites_refused_structural;
  agg.inline_stats.max_depth_reached =
      std::max(agg.inline_stats.max_depth_reached, result.stats.inline_stats.max_depth_reached);
  agg.folds += result.stats.folds;
  agg.copyprops += result.stats.copyprops;
  agg.dead_stores += result.stats.dead_stores;
  agg.branch_simplifications += result.stats.branch_simplifications;
  agg.algebraic_simplifications += result.stats.algebraic_simplifications;
  agg.compare_fusions += result.stats.compare_fusions;
  agg.tail_calls_eliminated += result.stats.tail_calls_eliminated;
  agg.unreachable_removed += result.stats.unreachable_removed;
  agg.instructions_compacted += result.stats.instructions_compacted;
  return cm;
}

void VirtualMachine::install(bc::MethodId id, std::unique_ptr<rt::CompiledMethod> cm) {
  // Code placement: fresh address region, line-aligned so methods do not
  // share cache lines.
  const std::uint64_t line = machine_.icache_line_bytes;
  next_code_addr_ = (next_code_addr_ + line - 1) / line * line;
  cm->code_base = next_code_addr_;
  next_code_addr_ += static_cast<std::uint64_t>(cm->size_words()) * machine_.bytes_per_word;
  live_result_->code_words_emitted += cm->size_words();

  auto& slot = current_[static_cast<std::size_t>(id)];
  if (slot != nullptr) {
    // Frames already executing the old version keep it alive via retired_.
    retired_.push_back(std::move(slot));
  }
  slot = std::move(cm);
  if (obs_ != nullptr && obs_->enabled(obs::Category::kVm)) {
    obs_->instant(obs::Category::kVm, "vm.install", obs::Domain::kSim, sim_now_,
                  {{"method", prog_.method(id).name()},
                   {"tier", tier_name(slot->tier)},
                   {"code_base", slot->code_base},
                   {"size_words", slot->size_words()}});
    obs_->counter("vm.installs").add(1);
  }
}

const rt::CompiledMethod& VirtualMachine::invoke(bc::MethodId id) {
  profile_.record_invocation(id);
  auto& slot = current_[static_cast<std::size_t>(id)];
  if (slot == nullptr) {
    install(id, config_.scenario == Scenario::kOpt ? compile_opt(id, rt::Tier::kOpt)
                                               : compile_baseline(id));
  } else {
    maybe_recompile(id);
  }
  return *current_[static_cast<std::size_t>(id)];
}

void VirtualMachine::on_back_edge(bc::MethodId id) {
  profile_.record_back_edge(id);
  // Hot-loop detection: recompile as soon as the loop crosses the threshold.
  // By default there is no on-stack replacement (matching Jikes RVM 2.3.3):
  // activations already running continue in the old code and the next
  // invocation picks up the optimized version. With config_.enable_osr the
  // interpreter additionally transfers the live frame at the loop header
  // via osr_replacement() below.
  maybe_recompile(id);
}

const rt::CompiledMethod* VirtualMachine::osr_replacement(const rt::CompiledMethod& current,
                                                          std::size_t target_pc) {
  if (!config_.enable_osr) return nullptr;
  const auto& slot = current_[static_cast<std::size_t>(current.method_id)];
  if (slot == nullptr || slot.get() == &current || slot->tier <= current.tier) return nullptr;
  if (obs_ != nullptr && obs_->enabled(obs::Category::kVm)) {
    obs_->instant(obs::Category::kVm, "vm.osr", obs::Domain::kSim, sim_now_,
                  {{"method", prog_.method(current.method_id).name()},
                   {"from_tier", tier_name(current.tier)},
                   {"to_tier", tier_name(slot->tier)},
                   {"loop_pc", target_pc}});
    obs_->counter("vm.osr_transfers").add(1);
  }
  return slot.get();
}

void VirtualMachine::on_call_site(bc::MethodId origin_method, std::int32_t origin_pc) {
  profile_.record_call_site(origin_method, origin_pc);
  // Trip event fires exactly once, the moment the site's count reaches the
  // hot threshold — later executions stay silent.
  if (obs_ != nullptr && obs_->enabled(obs::Category::kVm) &&
      profile_.site_count(origin_method, origin_pc) == config_.hot_site_threshold) {
    obs_->instant(obs::Category::kVm, "vm.hot_site", obs::Domain::kSim, sim_now_,
                  {{"method", prog_.method(origin_method).name()},
                   {"pc", origin_pc},
                   {"threshold", config_.hot_site_threshold}});
    obs_->counter("vm.hot_sites").add(1);
  }
}

void VirtualMachine::maybe_recompile(bc::MethodId id) {
  if (config_.scenario != Scenario::kAdapt) return;
  auto& slot = current_[static_cast<std::size_t>(id)];
  if (slot == nullptr) return;
  int& count = opt_compile_count_[static_cast<std::size_t>(id)];
  const std::uint64_t score = profile_.hot_score(id);
  rt::Tier target;
  if (count == 0) {
    if (score < config_.hot_method_threshold) return;
    // First promotion: O1 unless the ladder is collapsed.
    target = config_.rehot_multiplier == 0 ? rt::Tier::kOpt : rt::Tier::kMidOpt;
  } else if (count == 1 && config_.rehot_multiplier > 0) {
    // Full O2 promotion: by now the profile has seen enough call-site
    // traffic that hot sites are actually marked hot.
    if (score < config_.hot_method_threshold * config_.rehot_multiplier) return;
    target = rt::Tier::kOpt;
  } else {
    return;  // already at the top level
  }
  ++count;
  if (obs_ != nullptr && obs_->enabled(obs::Category::kVm)) {
    obs_->instant(obs::Category::kVm, "vm.promote", obs::Domain::kSim, sim_now_,
                  {{"method", prog_.method(id).name()},
                   {"from_tier", tier_name(slot->tier)},
                   {"to_tier", tier_name(target)},
                   {"hot_score", score}});
    obs_->counter("vm.promotions").add(1);
  }
  install(id, compile_opt(id, target));
  ++live_result_->recompilations;
}

RunResult VirtualMachine::run(int iterations) {
  ITH_CHECK(iterations >= 1, "need at least one iteration");
  RunResult result;
  live_result_ = &result;

  const resilience::RunBudget& budget = config_.budget;
  const std::uint64_t run_start = sim_now_;
  const std::uint64_t base_insn_cap = config_.interp_options.max_instructions;
  compile_cycles_run_ = 0;
  if (budget.max_wall_ms != 0) {
    wall_deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(budget.max_wall_ms);
  }

  try {
    for (int iter = 0; iter < iterations; ++iter) {
      check_wall();
      // Sim-cycle envelope: abort once the whole run's cycle allowance
      // (execution + compilation) is spent, and pre-shrink the engine's
      // instruction budget so a runaway iteration cannot overshoot the
      // envelope by more than one instruction's cost — every engine charges
      // at least one cycle per instruction, so remaining cycles bound the
      // instructions this iteration may retire.
      bool derived_cap = false;
      if (budget.max_sim_cycles != 0) {
        const std::uint64_t used = sim_now_ - run_start;
        if (used >= budget.max_sim_cycles) {
          throw resilience::BudgetExceededError(resilience::BudgetKind::kSimCycles,
                                                "sim-cycle budget exceeded");
        }
        const std::uint64_t remaining = budget.max_sim_cycles - used;
        if (remaining < base_insn_cap) {
          interp_->set_instruction_limit(remaining);
          derived_cap = true;
        }
      }
      if (config_.faults != nullptr &&
          config_.faults->should_inject(
              resilience::FaultSite::kVmTrap,
              resilience::mix_keys(config_.fault_key, static_cast<std::uint64_t>(iter)))) {
        throw resilience::InjectedFaultError("injected VM trap (iteration " +
                                             std::to_string(iter) + ")");
      }

      result.iterations.push_back(IterationStats{});
      live_iter_ = &result.iterations.back();
      const std::uint64_t iter_start = sim_now_;
      if (config_.iteration_input) {
        // Serving mode: globals persist across iterations (the program's
        // lazily-built tables survive) and the hook writes this request's
        // parameters into their slots.
        config_.iteration_input(iter, interp_->globals());
      } else {
        interp_->reset_globals();  // fresh benchmark input; code/profile/caches stay warm
      }
      if (derived_cap) {
        try {
          live_iter_->exec = interp_->run();
        } catch (const resilience::BudgetExceededError& e) {
          // The engine saw the *derived* cap, not the user's instruction
          // budget — report the envelope that was actually exhausted.
          if (e.which() == resilience::BudgetKind::kInstructions) {
            throw resilience::BudgetExceededError(resilience::BudgetKind::kSimCycles,
                                                  "sim-cycle budget exceeded");
          }
          throw;
        }
        interp_->set_instruction_limit(base_insn_cap);
      } else {
        live_iter_->exec = interp_->run();
      }
      sim_now_ += live_iter_->exec.cycles;  // compiles already advanced the cursor
      if (obs_ != nullptr && obs_->enabled(obs::Category::kVm)) {
        obs_->complete(obs::Category::kVm, "vm.iteration", obs::Domain::kSim, iter_start,
                       sim_now_ - iter_start,
                       {{"iteration", iter},
                        {"exec_cycles", live_iter_->exec.cycles},
                        {"compile_cycles", live_iter_->compile_cycles},
                        {"instructions", live_iter_->exec.instructions},
                        {"calls", live_iter_->exec.calls},
                        {"icache_probes", live_iter_->exec.icache_probes},
                        {"icache_misses", live_iter_->exec.icache_misses}});
      }
    }
  } catch (...) {
    // `result` dies with this frame — never leave pointers into it behind.
    live_iter_ = nullptr;
    live_result_ = nullptr;
    throw;
  }
  live_iter_ = nullptr;
  live_result_ = nullptr;
  publish_fusion_counters();
  if (obs_ != nullptr) obs_->flush();

  const IterationStats& first = result.iterations.front();
  result.total_cycles = first.exec.cycles + first.compile_cycles;
  result.running_cycles = first.exec.cycles;
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    result.running_cycles = std::min(result.running_cycles, result.iterations[i].exec.cycles);
  }
  for (const IterationStats& it : result.iterations) {
    result.compile_cycles_all += it.compile_cycles;
  }
  return result;
}

}  // namespace ith::vm
