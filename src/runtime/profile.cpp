#include "runtime/profile.hpp"

#include "support/error.hpp"

namespace ith::rt {

ProfileData::ProfileData(std::size_t num_methods) : methods_(num_methods) {}

std::size_t ProfileData::check(bc::MethodId m) const {
  ITH_CHECK(m >= 0 && static_cast<std::size_t>(m) < methods_.size(),
            "profile: method id out of range");
  return static_cast<std::size_t>(m);
}

void ProfileData::record_call_site(bc::MethodId origin_method, std::int32_t origin_pc) {
  if (origin_method < 0) return;  // synthetic instruction: nothing to attribute
  ++sites_[{origin_method, origin_pc}];
}

std::uint64_t ProfileData::hot_score(bc::MethodId m) const {
  const auto& c = methods_[check(m)];
  return c.invocations + c.back_edges;
}

std::uint64_t ProfileData::site_count(bc::MethodId origin_method, std::int32_t origin_pc) const {
  const auto it = sites_.find({origin_method, origin_pc});
  return it == sites_.end() ? 0 : it->second;
}

void ProfileData::clear() {
  for (auto& c : methods_) c = MethodCounters{};
  sites_.clear();
}

}  // namespace ith::rt
