#include "runtime/compiled.hpp"

#include <deque>

#include "bytecode/size_estimator.hpp"
#include "support/error.hpp"

namespace ith::rt {

void CompiledMethod::finalize() {
  const std::size_t n = body.size();
  ITH_CHECK(origin.empty() || origin.size() == n, "origin annotation length mismatch");
  word_offset.resize(n + 1);
  std::uint32_t words = bc::kFrameOverheadWords;  // prologue precedes the first instruction
  for (std::size_t pc = 0; pc < n; ++pc) {
    word_offset[pc] = words;
    words += static_cast<std::uint32_t>(bc::estimated_words(body.code()[pc]));
  }
  word_offset[n] = words;

  // Abstract stack depths (the body is verified, so joins are consistent).
  stack_depth.assign(n, -1);
  std::deque<std::size_t> worklist{0};
  stack_depth[0] = 0;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.front();
    worklist.pop_front();
    const bc::Instruction& insn = body.code()[pc];
    const int out = stack_depth[pc] + bc::stack_effect(insn);
    auto visit = [&](std::size_t to) {
      if (to < n && stack_depth[to] == -1) {
        stack_depth[to] = out;
        worklist.push_back(to);
      }
    };
    switch (insn.op) {
      case bc::Op::kJmp:
        visit(static_cast<std::size_t>(insn.a));
        break;
      case bc::Op::kJz:
      case bc::Op::kJnz:
        visit(static_cast<std::size_t>(insn.a));
        visit(pc + 1);
        break;
      case bc::Op::kRet:
      case bc::Op::kHalt:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
}

std::int64_t CompiledMethod::find_origin(bc::MethodId method, std::int32_t pc) const {
  std::int64_t found = -1;
  for (std::size_t i = 0; i < origin.size(); ++i) {
    if (origin[i].first == method && origin[i].second == pc) {
      if (found != -1) return -1;  // ambiguous (duplicated by inlining)
      found = static_cast<std::int64_t>(i);
    }
  }
  return found;
}

std::uint32_t CompiledMethod::size_words() const {
  ITH_CHECK(!word_offset.empty(), "CompiledMethod not finalized");
  return word_offset.back();
}

}  // namespace ith::rt
