// CompiledMethod: one tiered compilation of a method, as the execution
// engine sees it — the (possibly transformed) body, its simulated code
// placement for I-cache purposes, and per-instruction provenance so profile
// events can be attributed to original call sites even inside inlined code.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bytecode/method.hpp"

namespace ith::rt {

enum class Tier : std::uint8_t {
  kBaseline,  ///< fast non-optimizing compiler (no inlining, poor code)
  kMidOpt,    ///< first optimizing level (O1): inlining + opts, weaker codegen
  kOpt,       ///< full optimizing compiler (O2)
};

struct CompiledMethod {
  bc::Method body;
  Tier tier = Tier::kBaseline;
  bc::MethodId method_id = -1;

  /// Simulated base address of the emitted machine code.
  std::uint64_t code_base = 0;
  /// Prefix sums of machine words: word_offset[pc] is the word address of
  /// instruction pc relative to code_base; word_offset[size] is the total
  /// body size in words. Filled by finalize().
  std::vector<std::uint32_t> word_offset;
  /// Original (method, pc) each instruction came from; (-1,-1) for synthetic
  /// instructions such as inlined argument stores.
  std::vector<std::pair<bc::MethodId, std::int32_t>> origin;
  /// Abstract operand-stack depth at each instruction (-1 = unreachable).
  /// Used by on-stack replacement to prove a transfer point compatible.
  std::vector<int> stack_depth;

  /// Computes word_offset and stack_depth from the body. Call after
  /// body/origin are set.
  void finalize();

  std::uint32_t size_words() const;

  /// Index of the unique instruction whose origin is (method, pc), or -1 if
  /// absent or ambiguous (e.g. duplicated by self-inlining). The OSR entry
  /// lookup.
  std::int64_t find_origin(bc::MethodId method, std::int32_t pc) const;
};

}  // namespace ith::rt
