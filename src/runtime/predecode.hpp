// Predecoding: translate a finalized CompiledMethod into the dense
// execution stream the fast engine dispatches over.
//
// Everything the reference engine recomputes per dynamic instruction is
// folded here, once per installed body:
//
//   * the per-instruction cycle cost `machine_words * cpi[tier]`, pre-folded
//     into one double (the product of the same two operands the reference
//     engine multiplies, so the addition stream is bit-identical);
//   * the simulated byte address and I-cache line index of each pc (the two
//     integer divisions of the reference engine's hot path);
//   * the direct-threaded dispatch target slot, filled in by the engine the
//     first time a body is entered (computed-goto labels are local to the
//     dispatch loop, so predecoding can only reserve the slot).
//
// On top of the 1:1 translation sits the superinstruction fusion pass
// (DESIGN.md §14): a table-driven scan that rewrites the HEAD of an adjacent
// bytecode pattern (push-const+arith, load+load+op, cmp+branch, the 4-long
// loop-guard form, call+return chains) to a fused extended opcode. Interior
// entries of a fused window keep their original opcode, so a jump, OSR
// entry, or back edge landing mid-window simply executes the components
// unfused — fusion never moves, deletes, or re-costs an entry, which is how
// the sim-cycle model and ExecStats stay bit-identical to the reference
// engine (the fused handlers account each component separately, in original
// order; see the cost-conservation rule in DESIGN.md).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/compiled.hpp"
#include "runtime/machine.hpp"

namespace ith::rt {

/// Extended opcode space the fast engine dispatches over: the first
/// bc::kNumOps values mirror bc::Op one-to-one (same numeric values —
/// predecode static_asserts this), followed by the fused superinstructions.
/// Fused values only ever appear on the head entry of a pattern window
/// (kFRetChained excepted: it marks the kRet of a caller-side call+return
/// pair, and its handler IS the kRet handler).
enum class XOp : std::uint8_t {
  // --- bc::Op mirrors (dispatch identity for unfused entries) ---
  kConst,
  kLoad,
  kStore,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kCmpLt,
  kCmpLe,
  kCmpEq,
  kCmpNe,
  kJmp,
  kJz,
  kJnz,
  kCall,
  kRet,
  kGLoad,
  kGStore,
  kPop,
  kNop,
  kHalt,
  // --- fused superinstructions ---
  kFConstAdd,      ///< kConst kAdd   : top = top + imm
  kFConstSub,      ///< kConst kSub   : top = top - imm
  kFConstMul,      ///< kConst kMul   : top = top * imm
  kFLoadLoadAdd,   ///< kLoad kLoad kAdd : push(loc[a] + loc[a'])
  kFLoadLoadSub,   ///< kLoad kLoad kSub
  kFLoadLoadMul,   ///< kLoad kLoad kMul
  kFCmpLtJz,       ///< kCmpLt kJz  : pop 2, branch if !(lhs < rhs)
  kFCmpLtJnz,      ///< kCmpLt kJnz : pop 2, branch if  (lhs < rhs)
  kFCmpLeJz,
  kFCmpLeJnz,
  kFCmpEqJz,
  kFCmpEqJnz,
  kFCmpNeJz,
  kFCmpNeJnz,
  kFLoadConstCmpLtJz,   ///< kLoad kConst kCmpLt kJz — the while-loop guard
  kFLoadConstCmpLtJnz,  ///< shape; zero operand-stack traffic when fused
  kFLoadConstCmpLeJz,
  kFLoadConstCmpLeJnz,
  kFLoadConstCmpEqJz,
  kFLoadConstCmpEqJnz,
  kFLoadConstCmpNeJz,
  kFLoadConstCmpNeJnz,
  kFRetChained,  ///< the kRet of a caller-side {kCall, kRet} pair: the
                 ///< callee's return chains straight into this return
                 ///< without an indirect dispatch in between
  // --- immediate-operand fused forms (DESIGN.md §14, "Immediate-operand
  // forms"): the component operands AND the per-component accounting data
  // (pre-folded cost, icache line) are captured into the head's free slots
  // and the body's operand side-pool at predecode time, so a fused dispatch
  // never touches the interior PredecodedInsn entries. The interiors still
  // keep their mirror xops — control transfers landing mid-window execute
  // unfused exactly as for the plain fused forms above, which stay as the
  // pool-less fallback when a body exhausts the 16-bit handle space. ---
  kFAddImm,             ///< kConst kAdd : top += imm (imm in head `a`)
  kFSubImm,             ///< kConst kSub : top -= imm
  kFMulImm,             ///< kConst kMul : top *= imm
  kFLoadLoadAddImm,     ///< push(loc[a] + loc[b]) — both slots in the head
  kFLoadLoadSubImm,
  kFLoadLoadMulImm,
  kFCmpLtJzImm,         ///< pop 2, compare, branch by the delta in head `b`
  kFCmpLtJnzImm,
  kFCmpLeJzImm,
  kFCmpLeJnzImm,
  kFCmpEqJzImm,
  kFCmpEqJnzImm,
  kFCmpNeJzImm,
  kFCmpNeJnzImm,
  kFLoadConstCmpLtJzImm,   ///< loop guard: slot in `a`, bound in `b`, the
  kFLoadConstCmpLtJnzImm,  ///< branch delta in the side-pool record
  kFLoadConstCmpLeJzImm,
  kFLoadConstCmpLeJnzImm,
  kFLoadConstCmpEqJzImm,
  kFLoadConstCmpEqJnzImm,
  kFLoadConstCmpNeJzImm,
  kFLoadConstCmpNeJnzImm,
  kFIncLocal,  ///< kLoad kConst kAdd kStore on ONE local: loc[a] += b, zero
               ///< stack traffic — the counted-loop increment idiom
  kFDecLocal,  ///< kLoad kConst kSub kStore on one local: loc[a] -= b
  // --- statement forms: whole `push loc op k` / `x = y op z` shapes as one
  // dispatch. The generated workloads compile every assignment statement to
  // load/const/arith/store runs, so these retire most of a hot method's
  // dispatches and ALL of its transient operand-stack traffic. Arithmetic
  // uses the same wrap-mod-2^64 (and total div/mod) expressions as the
  // mirror handlers, so values are bit-identical to unfused execution. ---
  kFLoadAddK,   ///< kLoad kConst kAdd : push(loc[a] + b)
  kFLoadSubK,   ///< kLoad kConst kSub : push(loc[a] - b)
  kFLoadMulK,   ///< kLoad kConst kMul : push(loc[a] * b)
  kFLoadDivK,   ///< kLoad kConst kDiv : push(loc[a] / b), total division
  kFLoadModK,   ///< kLoad kConst kMod : push(loc[a] % b), total remainder
  kFLocAddK,    ///< kLoad kConst kAdd kStore : loc[extra] = loc[a] + b
  kFLocSubK,    ///< kLoad kConst kSub kStore : loc[extra] = loc[a] - b
  kFLocMulK,    ///< kLoad kConst kMul kStore : loc[extra] = loc[a] * b
  kFLocDivK,    ///< kLoad kConst kDiv kStore : loc[extra] = loc[a] / b
  kFLocModK,    ///< kLoad kConst kMod kStore : loc[extra] = loc[a] % b
  kFLocAddLoc,  ///< kLoad kLoad kAdd kStore : loc[extra] = loc[a] + loc[b]
  kFLocSubLoc,  ///< kLoad kLoad kSub kStore : loc[extra] = loc[a] - loc[b]
  kFLocMulLoc,  ///< kLoad kLoad kMul kStore : loc[extra] = loc[a] * loc[b]
  kFAddStore,   ///< kAdd kStore : loc[b] = pop + pop — expression tails
  kFSubStore,   ///< kSub kStore : loc[b] = pop - pop
  kFMulStore,   ///< kMul kStore : loc[b] = pop * pop
  kFDivStore,   ///< kDiv kStore : loc[b] = pop / pop, total division
  kFModStore,   ///< kMod kStore : loc[b] = pop % pop, total remainder
  kFCopyLocal,  ///< kLoad kStore : loc[b] = loc[a]
  kFConstStore, ///< kConst kStore : loc[b] = a
  kFGLoadK,     ///< kConst kGLoad : push(globals[a mod |globals|])
  kFDivImm,     ///< kConst kDiv : top = top / a, total division
  kFModImm,     ///< kConst kMod : top = top % a, total remainder
  kFKCmpLtJz,   ///< kConst kCmpLt kJz : pop, compare against a, branch by b
  kFKCmpLtJnz,  ///< (the dispatcher idiom `... const k; cmpeq; jz`)
  kFKCmpLeJz,
  kFKCmpLeJnz,
  kFKCmpEqJz,
  kFKCmpEqJnz,
  kFKCmpNeJz,
  kFKCmpNeJnz,
};

/// Number of extended opcodes (label-table size for the fast engine).
inline constexpr int kNumXOps = static_cast<int>(XOp::kFKCmpNeJnz) + 1;
static_assert(kNumXOps == bc::kNumOps + 78, "fused opcode count drifted");

/// When the predecoder may fuse. The default comes from the ITH_FUSION
/// environment variable (see default_fusion_policy) so the escape hatch
/// mirrors ITH_COMPUTED_GOTO=0: setting ITH_FUSION=0 runs every body
/// unfused without a rebuild.
enum class FusionPolicy : std::uint8_t {
  kOff,           ///< never fuse (escape hatch; also the reference behavior)
  kPromotedOnly,  ///< fuse bodies above baseline tier — dispatch speed is
                  ///< tier-dependent, so adaptive promotion pays twice
  kAll,           ///< fuse every tier (stress / micro-bench configuration)
};

/// Policy selected by the ITH_FUSION environment variable:
///   "0" / "off"            -> kOff
///   "all"                  -> kAll
///   "1" / "promoted" / unset -> kPromotedOnly (the default)
/// Throws ith::Error on any other value (a typo silently disabling the
/// fusion tier would be invisible).
FusionPolicy default_fusion_policy();

const char* fusion_policy_name(FusionPolicy policy);

/// One fusion rule: an adjacent bc::Op pattern, the fused opcode that
/// replaces the dispatch of the entry at `rewrite_at`, and the
/// operand-capture descriptor for the rule's immediate form. Rules are DATA
/// — the scan in predecode() interprets this table; adding a pattern means
/// adding a row here plus its handler in fast_interpreter.cpp, nothing
/// else.
struct FusionRule {
  const char* name;                  ///< stable id for stats/obs counters
  std::uint8_t len;                  ///< pattern length (2..kMaxFusionPatternLen)
  std::uint8_t rewrite_at;           ///< which component gets the fused xop
  /// Pool-less fallback opcode: used when the immediate form cannot be
  /// emitted (side-pool handle space exhausted). XOp::kNop marks an
  /// imm-only rule (kFIncLocal/kFDecLocal) with no fallback — on overflow
  /// the window is simply left unfused and the scan tries the next rule.
  XOp fused;
  /// Immediate-operand form (head/side-pool captured operands). Equal to
  /// `fused` for rules without one (kFRetChained).
  XOp fused_imm;
  /// Operand capture, as data: the component index whose `a` operand is
  /// folded into the head's `b` slot / the side-pool record's `extra` slot
  /// when the immediate form is emitted (-1 = nothing to capture there).
  /// The head's own `a` operand always stays in place.
  std::int8_t capture_b;
  std::int8_t capture_extra;
  /// Operand-equality constraint: component whose `a` must equal component
  /// 0's `a` for the rule to match at all (-1 = unconstrained). This is how
  /// kFIncLocal requires the kLoad and the kStore to hit the same local.
  std::int8_t require_same_a;
  std::array<bc::Op, 4> pattern;     ///< adjacent ops; only [0, len) matter
};

inline constexpr int kMaxFusionPatternLen = 4;

/// Side-pool records one body can address: the handle riding in
/// PredecodedInsn's padding is 16 bits wide, so windows past this many fall
/// back to the pool-less fused form (counted as FusionStats::pool_overflows).
inline constexpr std::size_t kMaxFusedWindowsPerBody = std::size_t{1} << 16;

/// Side-pool record for one immediate-operand fused window: everything a
/// fused handler needs about its non-head components, so dispatch retires
/// the interior PredecodedInsn entries from the hot path entirely. `cost`
/// and `line` are verbatim copies of components [1, len)'s pre-folded
/// accounting fields, in original program order — the handler feeds them to
/// the same per-component account() call the plain forms use, which is what
/// keeps cycles (IEEE addition order), icache probes, and the budget trip
/// point bit-identical to unfused execution. `extra` holds the one operand
/// that fits in neither head slot: the branch component's pc-relative delta
/// in the 4-long guard forms.
/// Field order is hot-path layout: the batched accounting fast path reads
/// cost[], extra, and probe_mask — all inside the record's first 32 bytes —
/// while line[] is only touched on the exact per-component slow path.
struct FusedWindow {
  std::array<double, kMaxFusionPatternLen - 1> cost{};
  std::int32_t extra = 0;
  /// Bit k-1 set iff component k sits on a different icache line than
  /// component k-1. Within a captured window every probe decision is
  /// static (the running line after component k-1's account IS component
  /// k-1's line), so probe_mask == 0 proves no interior component can probe
  /// and the handler may take a batched accounting fast path: bare cost
  /// additions plus one budget decrement, no per-component branches.
  std::uint8_t probe_mask = 0;
  std::array<std::uint64_t, kMaxFusionPatternLen - 1> line{};
};

/// The fusion pattern table, ordered longest-first so the scan's first
/// match at a pc is the longest one.
const std::vector<FusionRule>& fusion_rules();

/// Fusion activity accumulated across predecodes (the fast engine keeps one
/// per engine instance; the VM publishes deltas as rt.fused_* counters).
struct FusionStats {
  FusionStats();  ///< sizes rule_hits to fusion_rules().size()

  std::uint64_t bodies_considered = 0;  ///< predecodes with fusion enabled
  std::uint64_t bodies_fused = 0;       ///< bodies where >= 1 rule fired
  std::uint64_t rules_fired = 0;        ///< total pattern matches rewritten
  std::uint64_t insns_fused = 0;        ///< dispatches eliminated: sum(len-1)
  std::uint64_t windows_imm = 0;        ///< windows rewritten to immediate forms
  std::uint64_t pool_overflows = 0;     ///< imm-eligible windows past the handle space
  std::vector<std::uint64_t> rule_hits;      ///< indexed like fusion_rules()
  std::vector<std::uint64_t> rule_hits_imm;  ///< immediate-form subset, same index
};

/// One predecoded instruction, 40 bytes: the dispatch-critical fields
/// (target, base_cost, line) lead so a straight-line run touches a compact
/// prefix of each entry. The simulated byte address is deliberately NOT
/// stored — any address inside the line identifies the same line to the
/// I-cache, so the engine probes with `line * icache_line_bytes`.
/// Fusion lives entirely in the former tail padding (xop + fuse_len + imm):
/// a PLAIN fused head reads its components' operands from the still-present
/// interior entries; an IMMEDIATE fused head reads nothing but itself and
/// its FusedWindow side-pool record — captured operands ride in `b` (the
/// slot only kCall used, and no rule's head is a kCall) and the 16-bit pool
/// handle in `imm`.
struct PredecodedInsn {
  const void* target = nullptr;  ///< computed-goto label (engine fills lazily)
  double base_cost = 0.0;        ///< machine_words * cpi[tier], pre-folded
  std::uint64_t line = 0;        ///< icache line index of this pc
  std::int32_t a = 0;            ///< immediate / slot / callee; for kJmp/kJz/kJnz
                                 ///< the pc-RELATIVE jump delta (target - pc), so
                                 ///< the dispatch loop never needs the code base
                                 ///< (back edge iff delta <= 0)
  std::int32_t b = 0;            ///< kCall argument count; captured component
                                 ///< operand on an immediate fused head
  bc::Op op = bc::Op::kNop;      ///< original opcode (pre-fusion identity)
  XOp xop = XOp::kNop;           ///< dispatch key: mirrors `op` unless fused
  std::uint8_t fuse_len = 1;     ///< entries this dispatch retires (1 unfused)
  std::uint16_t imm = 0;         ///< side-pool handle (immediate heads only)
};

// The doc comment above promises 40 bytes and a stable dispatch-critical
// prefix; fusion rides in the padding and must never bloat the entry or
// reorder the hot fields.
static_assert(sizeof(PredecodedInsn) == 40, "PredecodedInsn grew past its 40-byte budget");
static_assert(offsetof(PredecodedInsn, target) == 0 && offsetof(PredecodedInsn, base_cost) == 8 &&
                  offsetof(PredecodedInsn, line) == 16,
              "dispatch-critical prefix (target, base_cost, line) reordered");
static_assert(offsetof(PredecodedInsn, a) == 24 && offsetof(PredecodedInsn, b) == 28,
              "operand fields moved out of the fused handlers' expected slots");
static_assert(offsetof(PredecodedInsn, imm) == 36,
              "side-pool handle must ride in the former tail padding");

/// A predecoded body plus everything the engine needs to enter a frame in
/// O(1): the source CompiledMethod (for OSR / provenance lookups) and the
/// operand-stack headroom a frame of this body can ever need.
struct PredecodedBody {
  const CompiledMethod* cm = nullptr;
  std::vector<PredecodedInsn> code;
  /// Upper bound on the operand-stack depth (relative to the frame's stack
  /// floor) reachable while this body's frame is on top. Lets the engine
  /// reserve stack capacity once per call instead of checking per push.
  /// Computed pre-fusion; fused handlers only ever use less transient stack
  /// than their components, so it stays an upper bound.
  int max_operand_depth = 0;
  /// Dispatch-target slots are valid for the engine's label table.
  bool threaded = false;
  /// At least one fusion rule fired on this body.
  bool fused = false;
  /// Operand side-pool for immediate-operand fused heads: one FusedWindow
  /// per captured window, indexed by the head's 16-bit `imm` handle. Holds
  /// verbatim copies of the interior components' (base_cost, line) pairs —
  /// so immediate handlers account per component without touching interior
  /// entries — plus the captured branch delta for guard windows.
  std::vector<FusedWindow> pool;
};

/// Predecodes `cm` (which must be finalized and have code_base assigned,
/// i.e. installed) under `machine`'s cost model. With a fusion policy that
/// admits `cm` (kAll, or kPromotedOnly and the body is above baseline
/// tier), runs the pattern-table fusion scan; `stats`, when non-null,
/// accumulates what fired.
PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine,
                         FusionPolicy fusion = FusionPolicy::kOff, FusionStats* stats = nullptr);

}  // namespace ith::rt
