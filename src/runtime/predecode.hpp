// Predecoding: translate a finalized CompiledMethod into the dense
// execution stream the fast engine dispatches over.
//
// Everything the reference engine recomputes per dynamic instruction is
// folded here, once per installed body:
//
//   * the per-instruction cycle cost `machine_words * cpi[tier]`, pre-folded
//     into one double (the product of the same two operands the reference
//     engine multiplies, so the addition stream is bit-identical);
//   * the simulated byte address and I-cache line index of each pc (the two
//     integer divisions of the reference engine's hot path);
//   * the direct-threaded dispatch target slot, filled in by the engine the
//     first time a body is entered (computed-goto labels are local to the
//     dispatch loop, so predecoding can only reserve the slot).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/compiled.hpp"
#include "runtime/machine.hpp"

namespace ith::rt {

/// One predecoded instruction, 40 bytes: the dispatch-critical fields
/// (target, base_cost, line) lead so a straight-line run touches a compact
/// prefix of each entry. The simulated byte address is deliberately NOT
/// stored — any address inside the line identifies the same line to the
/// I-cache, so the engine probes with `line * icache_line_bytes`.
struct PredecodedInsn {
  const void* target = nullptr;  ///< computed-goto label (engine fills lazily)
  double base_cost = 0.0;        ///< machine_words * cpi[tier], pre-folded
  std::uint64_t line = 0;        ///< icache line index of this pc
  std::int32_t a = 0;            ///< immediate / slot / callee; for kJmp/kJz/kJnz
                                 ///< the pc-RELATIVE jump delta (target - pc), so
                                 ///< the dispatch loop never needs the code base
                                 ///< (back edge iff delta <= 0)
  std::int32_t b = 0;            ///< kCall argument count
  bc::Op op = bc::Op::kNop;      ///< dense-switch fallback + threading key
};

/// A predecoded body plus everything the engine needs to enter a frame in
/// O(1): the source CompiledMethod (for OSR / provenance lookups) and the
/// operand-stack headroom a frame of this body can ever need.
struct PredecodedBody {
  const CompiledMethod* cm = nullptr;
  std::vector<PredecodedInsn> code;
  /// Upper bound on the operand-stack depth (relative to the frame's stack
  /// floor) reachable while this body's frame is on top. Lets the engine
  /// reserve stack capacity once per call instead of checking per push.
  int max_operand_depth = 0;
  /// Dispatch-target slots are valid for the engine's label table.
  bool threaded = false;
};

/// Predecodes `cm` (which must be finalized and have code_base assigned,
/// i.e. installed) under `machine`'s cost model.
PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine);

}  // namespace ith::rt
