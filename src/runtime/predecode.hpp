// Predecoding: translate a finalized CompiledMethod into the dense
// execution stream the fast engine dispatches over.
//
// Everything the reference engine recomputes per dynamic instruction is
// folded here, once per installed body:
//
//   * the per-instruction cycle cost `machine_words * cpi[tier]`, pre-folded
//     into one double (the product of the same two operands the reference
//     engine multiplies, so the addition stream is bit-identical);
//   * the simulated byte address and I-cache line index of each pc (the two
//     integer divisions of the reference engine's hot path);
//   * the direct-threaded dispatch target slot, filled in by the engine the
//     first time a body is entered (computed-goto labels are local to the
//     dispatch loop, so predecoding can only reserve the slot).
//
// On top of the 1:1 translation sits the superinstruction fusion pass
// (DESIGN.md §14): a table-driven scan that rewrites the HEAD of an adjacent
// bytecode pattern (push-const+arith, load+load+op, cmp+branch, the 4-long
// loop-guard form, call+return chains) to a fused extended opcode. Interior
// entries of a fused window keep their original opcode, so a jump, OSR
// entry, or back edge landing mid-window simply executes the components
// unfused — fusion never moves, deletes, or re-costs an entry, which is how
// the sim-cycle model and ExecStats stay bit-identical to the reference
// engine (the fused handlers account each component separately, in original
// order; see the cost-conservation rule in DESIGN.md).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/compiled.hpp"
#include "runtime/machine.hpp"

namespace ith::rt {

/// Extended opcode space the fast engine dispatches over: the first
/// bc::kNumOps values mirror bc::Op one-to-one (same numeric values —
/// predecode static_asserts this), followed by the fused superinstructions.
/// Fused values only ever appear on the head entry of a pattern window
/// (kFRetChained excepted: it marks the kRet of a caller-side call+return
/// pair, and its handler IS the kRet handler).
enum class XOp : std::uint8_t {
  // --- bc::Op mirrors (dispatch identity for unfused entries) ---
  kConst,
  kLoad,
  kStore,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kCmpLt,
  kCmpLe,
  kCmpEq,
  kCmpNe,
  kJmp,
  kJz,
  kJnz,
  kCall,
  kRet,
  kGLoad,
  kGStore,
  kPop,
  kNop,
  kHalt,
  // --- fused superinstructions ---
  kFConstAdd,      ///< kConst kAdd   : top = top + imm
  kFConstSub,      ///< kConst kSub   : top = top - imm
  kFConstMul,      ///< kConst kMul   : top = top * imm
  kFLoadLoadAdd,   ///< kLoad kLoad kAdd : push(loc[a] + loc[a'])
  kFLoadLoadSub,   ///< kLoad kLoad kSub
  kFLoadLoadMul,   ///< kLoad kLoad kMul
  kFCmpLtJz,       ///< kCmpLt kJz  : pop 2, branch if !(lhs < rhs)
  kFCmpLtJnz,      ///< kCmpLt kJnz : pop 2, branch if  (lhs < rhs)
  kFCmpLeJz,
  kFCmpLeJnz,
  kFCmpEqJz,
  kFCmpEqJnz,
  kFCmpNeJz,
  kFCmpNeJnz,
  kFLoadConstCmpLtJz,   ///< kLoad kConst kCmpLt kJz — the while-loop guard
  kFLoadConstCmpLtJnz,  ///< shape; zero operand-stack traffic when fused
  kFLoadConstCmpLeJz,
  kFLoadConstCmpLeJnz,
  kFLoadConstCmpEqJz,
  kFLoadConstCmpEqJnz,
  kFLoadConstCmpNeJz,
  kFLoadConstCmpNeJnz,
  kFRetChained,  ///< the kRet of a caller-side {kCall, kRet} pair: the
                 ///< callee's return chains straight into this return
                 ///< without an indirect dispatch in between
};

/// Number of extended opcodes (label-table size for the fast engine).
inline constexpr int kNumXOps = static_cast<int>(XOp::kFRetChained) + 1;
static_assert(kNumXOps == bc::kNumOps + 23, "fused opcode count drifted");

/// When the predecoder may fuse. The default comes from the ITH_FUSION
/// environment variable (see default_fusion_policy) so the escape hatch
/// mirrors ITH_COMPUTED_GOTO=0: setting ITH_FUSION=0 runs every body
/// unfused without a rebuild.
enum class FusionPolicy : std::uint8_t {
  kOff,           ///< never fuse (escape hatch; also the reference behavior)
  kPromotedOnly,  ///< fuse bodies above baseline tier — dispatch speed is
                  ///< tier-dependent, so adaptive promotion pays twice
  kAll,           ///< fuse every tier (stress / micro-bench configuration)
};

/// Policy selected by the ITH_FUSION environment variable:
///   "0" / "off"            -> kOff
///   "all"                  -> kAll
///   "1" / "promoted" / unset -> kPromotedOnly (the default)
/// Throws ith::Error on any other value (a typo silently disabling the
/// fusion tier would be invisible).
FusionPolicy default_fusion_policy();

const char* fusion_policy_name(FusionPolicy policy);

/// One fusion rule: an adjacent bc::Op pattern and the fused opcode that
/// replaces the dispatch of the entry at `rewrite_at`. Rules are DATA — the
/// scan in predecode() interprets this table; adding a pattern means adding
/// a row here plus its handler in fast_interpreter.cpp, nothing else.
struct FusionRule {
  const char* name;                  ///< stable id for stats/obs counters
  std::uint8_t len;                  ///< pattern length (2..kMaxFusionPatternLen)
  std::uint8_t rewrite_at;           ///< which component gets the fused xop
  XOp fused;                         ///< replacement extended opcode
  std::array<bc::Op, 4> pattern;     ///< adjacent ops; only [0, len) matter
};

inline constexpr int kMaxFusionPatternLen = 4;

/// The fusion pattern table, ordered longest-first so the scan's first
/// match at a pc is the longest one.
const std::vector<FusionRule>& fusion_rules();

/// Fusion activity accumulated across predecodes (the fast engine keeps one
/// per engine instance; the VM publishes deltas as rt.fused_* counters).
struct FusionStats {
  FusionStats();  ///< sizes rule_hits to fusion_rules().size()

  std::uint64_t bodies_considered = 0;  ///< predecodes with fusion enabled
  std::uint64_t bodies_fused = 0;       ///< bodies where >= 1 rule fired
  std::uint64_t rules_fired = 0;        ///< total pattern matches rewritten
  std::uint64_t insns_fused = 0;        ///< dispatches eliminated: sum(len-1)
  std::vector<std::uint64_t> rule_hits;  ///< indexed like fusion_rules()
};

/// One predecoded instruction, 40 bytes: the dispatch-critical fields
/// (target, base_cost, line) lead so a straight-line run touches a compact
/// prefix of each entry. The simulated byte address is deliberately NOT
/// stored — any address inside the line identifies the same line to the
/// I-cache, so the engine probes with `line * icache_line_bytes`.
/// Fusion lives entirely in the former tail padding (xop + fuse_len): a
/// fused head reads its components' operands from the still-present
/// interior entries, so no operand storage is added.
struct PredecodedInsn {
  const void* target = nullptr;  ///< computed-goto label (engine fills lazily)
  double base_cost = 0.0;        ///< machine_words * cpi[tier], pre-folded
  std::uint64_t line = 0;        ///< icache line index of this pc
  std::int32_t a = 0;            ///< immediate / slot / callee; for kJmp/kJz/kJnz
                                 ///< the pc-RELATIVE jump delta (target - pc), so
                                 ///< the dispatch loop never needs the code base
                                 ///< (back edge iff delta <= 0)
  std::int32_t b = 0;            ///< kCall argument count
  bc::Op op = bc::Op::kNop;      ///< original opcode (pre-fusion identity)
  XOp xop = XOp::kNop;           ///< dispatch key: mirrors `op` unless fused
  std::uint8_t fuse_len = 1;     ///< entries this dispatch retires (1 unfused)
};

// The doc comment above promises 40 bytes and a stable dispatch-critical
// prefix; fusion rides in the padding and must never bloat the entry or
// reorder the hot fields.
static_assert(sizeof(PredecodedInsn) == 40, "PredecodedInsn grew past its 40-byte budget");
static_assert(offsetof(PredecodedInsn, target) == 0 && offsetof(PredecodedInsn, base_cost) == 8 &&
                  offsetof(PredecodedInsn, line) == 16,
              "dispatch-critical prefix (target, base_cost, line) reordered");
static_assert(offsetof(PredecodedInsn, a) == 24 && offsetof(PredecodedInsn, b) == 28,
              "operand fields moved out of the fused handlers' expected slots");

/// A predecoded body plus everything the engine needs to enter a frame in
/// O(1): the source CompiledMethod (for OSR / provenance lookups) and the
/// operand-stack headroom a frame of this body can ever need.
struct PredecodedBody {
  const CompiledMethod* cm = nullptr;
  std::vector<PredecodedInsn> code;
  /// Upper bound on the operand-stack depth (relative to the frame's stack
  /// floor) reachable while this body's frame is on top. Lets the engine
  /// reserve stack capacity once per call instead of checking per push.
  /// Computed pre-fusion; fused handlers only ever use less transient stack
  /// than their components, so it stays an upper bound.
  int max_operand_depth = 0;
  /// Dispatch-target slots are valid for the engine's label table.
  bool threaded = false;
  /// At least one fusion rule fired on this body.
  bool fused = false;
};

/// Predecodes `cm` (which must be finalized and have code_base assigned,
/// i.e. installed) under `machine`'s cost model. With a fusion policy that
/// admits `cm` (kAll, or kPromotedOnly and the body is above baseline
/// tier), runs the pattern-table fusion scan; `stats`, when non-null,
/// accumulates what fired.
PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine,
                         FusionPolicy fusion = FusionPolicy::kOff, FusionStats* stats = nullptr);

}  // namespace ith::rt
