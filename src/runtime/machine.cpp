#include "runtime/machine.hpp"

#include <cmath>

namespace ith::rt {

std::uint64_t MachineModel::opt_compile_cycles(std::size_t words) const {
  const double w = static_cast<double>(words);
  return static_cast<std::uint64_t>(opt_compile_cycles_per_word * std::pow(w, opt_compile_exponent));
}

std::uint64_t MachineModel::mid_compile_cycles(std::size_t words) const {
  return static_cast<std::uint64_t>(mid_compile_fraction * static_cast<double>(opt_compile_cycles(words)));
}

std::uint64_t MachineModel::baseline_compile_cycles(std::size_t words) const {
  return static_cast<std::uint64_t>(baseline_compile_cycles_per_word * static_cast<double>(words));
}

double MachineModel::cycles_to_seconds(std::uint64_t cycles) const {
  return static_cast<double>(cycles) / clock_hz;
}

MachineModel pentium4_model() {
  MachineModel m;
  m.name = "pentium4-2.8GHz";
  m.baseline_cpi = 2.2;
  m.mid_cpi = 1.45;
  m.opt_cpi = 1.0;
  m.call_overhead_cycles = 10;  // deep pipeline: calls flush more work
  // Cache capacities are scaled to the miniature workload programs (whose
  // hot code is hundreds of words, not hundreds of KB); what matters is the
  // x86:PPC capacity ratio the paper invokes, not absolute size.
  m.icache_bytes = 8 * 1024;
  m.icache_line_bytes = 64;
  m.icache_assoc = 4;
  m.icache_miss_cycles = 45;
  m.bytes_per_word = 4;
  m.baseline_compile_cycles_per_word = 20.0;
  m.opt_compile_cycles_per_word = 450.0;
  m.opt_compile_exponent = 1.15;
  m.clock_hz = 2.8e9;
  return m;
}

MachineModel ppc_g4_model() {
  MachineModel m;
  m.name = "ppc-g4-533MHz";
  m.baseline_cpi = 2.0;
  m.mid_cpi = 1.4;
  m.opt_cpi = 1.0;
  m.call_overhead_cycles = 6;   // shallow pipeline: cheaper linkage
  m.icache_bytes = 2 * 1024;    // small L1 I-cache: code growth hurts sooner
  m.icache_line_bytes = 32;
  m.icache_assoc = 8;
  m.icache_miss_cycles = 25;
  m.bytes_per_word = 4;
  m.baseline_compile_cycles_per_word = 24.0;
  m.opt_compile_cycles_per_word = 500.0;
  m.opt_compile_exponent = 1.15;
  m.clock_hz = 0.533e9;
  return m;
}

}  // namespace ith::rt
