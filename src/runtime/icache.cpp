#include "runtime/icache.hpp"

#include <bit>

#include "support/error.hpp"

namespace ith::rt {

ICache::ICache(std::size_t total_bytes, std::size_t line_bytes, std::size_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  ITH_CHECK(line_bytes > 0 && std::has_single_bit(line_bytes), "line size must be a power of two");
  ITH_CHECK(assoc > 0, "associativity must be positive");
  ITH_CHECK(total_bytes >= line_bytes * assoc, "cache smaller than one set");
  ITH_CHECK(total_bytes % (line_bytes * assoc) == 0, "cache size not divisible into sets");
  sets_ = total_bytes / (line_bytes * assoc);
  ITH_CHECK(std::has_single_bit(sets_), "set count must be a power of two");
  line_shift_ = static_cast<std::uint64_t>(std::countr_zero(line_bytes));
  tags_.assign(sets_ * assoc_, kInvalid);
  lru_.assign(sets_ * assoc_, 0);
}

bool ICache::probe(std::uint64_t address) {
  const std::uint64_t line = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  const std::uint64_t tag = line / sets_;
  const std::size_t base = set * assoc_;
  ++stamp_;

  std::size_t victim = 0;
  std::uint64_t oldest = ~0ULL;
  for (std::size_t way = 0; way < assoc_; ++way) {
    if (tags_[base + way] == tag) {
      lru_[base + way] = stamp_;
      ++hits_;
      return true;
    }
    if (lru_[base + way] < oldest) {
      oldest = lru_[base + way];
      victim = way;
    }
  }
  tags_[base + victim] = tag;
  lru_[base + victim] = stamp_;
  ++misses_;
  return false;
}

void ICache::flush() {
  tags_.assign(tags_.size(), kInvalid);
  lru_.assign(lru_.size(), 0);
}

void ICache::reset_counters() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ith::rt
