#include "runtime/predecode.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace ith::rt {

// The XOp mirror region must stay numerically identical to bc::Op: unfused
// entries are threaded through labels[int(xop)] and dense-switched on xop.
static_assert(static_cast<int>(XOp::kConst) == static_cast<int>(bc::Op::kConst) &&
                  static_cast<int>(XOp::kJmp) == static_cast<int>(bc::Op::kJmp) &&
                  static_cast<int>(XOp::kRet) == static_cast<int>(bc::Op::kRet) &&
                  static_cast<int>(XOp::kHalt) == static_cast<int>(bc::Op::kHalt),
              "XOp's mirror region drifted from bc::Op");

FusionPolicy default_fusion_policy() {
  const char* raw = std::getenv("ITH_FUSION");
  const std::string v = raw == nullptr ? std::string() : std::string(raw);
  if (v.empty() || v == "1" || v == "promoted") return FusionPolicy::kPromotedOnly;
  if (v == "0" || v == "off") return FusionPolicy::kOff;
  if (v == "all") return FusionPolicy::kAll;
  throw Error("ITH_FUSION=" + v + " is not a fusion policy (use 0/off, 1/promoted, or all)");
}

const char* fusion_policy_name(FusionPolicy policy) {
  switch (policy) {
    case FusionPolicy::kOff: return "off";
    case FusionPolicy::kPromotedOnly: return "promoted";
    case FusionPolicy::kAll: return "all";
  }
  return "?";
}

const std::vector<FusionRule>& fusion_rules() {
  using bc::Op;
  // Longest patterns first: the scan takes the first rule that matches at a
  // pc, so a 4-long guard wins over its embedded cmp+branch pair. Every
  // rule's interior components are straight-line (no jump/call/ret heads
  // except as the designated final component), which is what makes the
  // head-executes-all rewrite safe.
  static const std::vector<FusionRule> kRules = {
      {"load_const_cmplt_jz", 4, 0, XOp::kFLoadConstCmpLtJz,
       {Op::kLoad, Op::kConst, Op::kCmpLt, Op::kJz}},
      {"load_const_cmplt_jnz", 4, 0, XOp::kFLoadConstCmpLtJnz,
       {Op::kLoad, Op::kConst, Op::kCmpLt, Op::kJnz}},
      {"load_const_cmple_jz", 4, 0, XOp::kFLoadConstCmpLeJz,
       {Op::kLoad, Op::kConst, Op::kCmpLe, Op::kJz}},
      {"load_const_cmple_jnz", 4, 0, XOp::kFLoadConstCmpLeJnz,
       {Op::kLoad, Op::kConst, Op::kCmpLe, Op::kJnz}},
      {"load_const_cmpeq_jz", 4, 0, XOp::kFLoadConstCmpEqJz,
       {Op::kLoad, Op::kConst, Op::kCmpEq, Op::kJz}},
      {"load_const_cmpeq_jnz", 4, 0, XOp::kFLoadConstCmpEqJnz,
       {Op::kLoad, Op::kConst, Op::kCmpEq, Op::kJnz}},
      {"load_const_cmpne_jz", 4, 0, XOp::kFLoadConstCmpNeJz,
       {Op::kLoad, Op::kConst, Op::kCmpNe, Op::kJz}},
      {"load_const_cmpne_jnz", 4, 0, XOp::kFLoadConstCmpNeJnz,
       {Op::kLoad, Op::kConst, Op::kCmpNe, Op::kJnz}},
      {"load_load_add", 3, 0, XOp::kFLoadLoadAdd, {Op::kLoad, Op::kLoad, Op::kAdd, Op::kNop}},
      {"load_load_sub", 3, 0, XOp::kFLoadLoadSub, {Op::kLoad, Op::kLoad, Op::kSub, Op::kNop}},
      {"load_load_mul", 3, 0, XOp::kFLoadLoadMul, {Op::kLoad, Op::kLoad, Op::kMul, Op::kNop}},
      {"const_add", 2, 0, XOp::kFConstAdd, {Op::kConst, Op::kAdd, Op::kNop, Op::kNop}},
      {"const_sub", 2, 0, XOp::kFConstSub, {Op::kConst, Op::kSub, Op::kNop, Op::kNop}},
      {"const_mul", 2, 0, XOp::kFConstMul, {Op::kConst, Op::kMul, Op::kNop, Op::kNop}},
      {"cmplt_jz", 2, 0, XOp::kFCmpLtJz, {Op::kCmpLt, Op::kJz, Op::kNop, Op::kNop}},
      {"cmplt_jnz", 2, 0, XOp::kFCmpLtJnz, {Op::kCmpLt, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmple_jz", 2, 0, XOp::kFCmpLeJz, {Op::kCmpLe, Op::kJz, Op::kNop, Op::kNop}},
      {"cmple_jnz", 2, 0, XOp::kFCmpLeJnz, {Op::kCmpLe, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmpeq_jz", 2, 0, XOp::kFCmpEqJz, {Op::kCmpEq, Op::kJz, Op::kNop, Op::kNop}},
      {"cmpeq_jnz", 2, 0, XOp::kFCmpEqJnz, {Op::kCmpEq, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmpne_jz", 2, 0, XOp::kFCmpNeJz, {Op::kCmpNe, Op::kJz, Op::kNop, Op::kNop}},
      {"cmpne_jnz", 2, 0, XOp::kFCmpNeJnz, {Op::kCmpNe, Op::kJnz, Op::kNop, Op::kNop}},
      // The return of a caller-side call+return pair is rewritten (not the
      // call): the callee's kRet reloads the caller's resume ip, sees the
      // kFRetChained mark, and chains into the next return without an
      // indirect dispatch. Correct for any callee — "leaf" is simply the
      // depth-1 case where exactly one chain step fires.
      {"call_ret", 2, 1, XOp::kFRetChained, {Op::kCall, Op::kRet, Op::kNop, Op::kNop}},
  };
  return kRules;
}

FusionStats::FusionStats() : rule_hits(fusion_rules().size(), 0) {}

namespace {

/// The table-driven fusion scan. Rewrites only the xop/fuse_len of the
/// designated entry per match — operands, costs, lines, and jump deltas are
/// untouched, and interior entries keep their mirror xop so any control
/// transfer landing mid-window executes the components unfused.
void apply_fusion(PredecodedBody& pb, FusionStats* stats) {
  const std::vector<FusionRule>& rules = fusion_rules();
  std::vector<PredecodedInsn>& code = pb.code;
  bool any = false;
  std::size_t pc = 0;
  while (pc < code.size()) {
    std::size_t advance = 1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const FusionRule& rule = rules[r];
      if (pc + rule.len > code.size()) continue;
      bool match = true;
      for (int k = 0; k < rule.len; ++k) {
        if (code[pc + static_cast<std::size_t>(k)].op != rule.pattern[static_cast<std::size_t>(k)]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      PredecodedInsn& head = code[pc + rule.rewrite_at];
      head.xop = rule.fused;
      // Entries this fused dispatch retires. kFRetChained rewrites a single
      // kRet (the eliminated dispatch is the chain into it), so it stays 1.
      head.fuse_len = rule.rewrite_at == 0 ? rule.len : 1;
      any = true;
      if (stats != nullptr) {
        ++stats->rules_fired;
        stats->insns_fused += static_cast<std::uint64_t>(rule.len) - 1;
        ++stats->rule_hits[r];
      }
      advance = rule.len;  // windows from one scan never overlap
      break;
    }
    pc += advance;
  }
  pb.fused = any;
  if (stats != nullptr) {
    ++stats->bodies_considered;
    if (any) ++stats->bodies_fused;
  }
}

}  // namespace

PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine,
                         FusionPolicy fusion, FusionStats* stats) {
  const std::size_t n = cm.body.size();
  ITH_ASSERT(cm.word_offset.size() == n + 1, "predecode: compiled method not finalized");

  const double cpi[3] = {machine.baseline_cpi, machine.mid_cpi, machine.opt_cpi};
  const double tier_cpi = cpi[static_cast<int>(cm.tier)];

  PredecodedBody pb;
  pb.cm = &cm;
  pb.code.resize(n);
  for (std::size_t pc = 0; pc < n; ++pc) {
    const bc::Instruction& insn = cm.body.code()[pc];
    PredecodedInsn& pi = pb.code[pc];
    pi.op = insn.op;
    pi.xop = static_cast<XOp>(insn.op);
    // Jumps carry their pc-relative delta so the engine advances ip by
    // addition alone; everything else keeps the raw operand.
    const bool is_jump =
        insn.op == bc::Op::kJmp || insn.op == bc::Op::kJz || insn.op == bc::Op::kJnz;
    pi.a = is_jump ? insn.a - static_cast<std::int32_t>(pc) : insn.a;
    pi.b = insn.b;
    // Same product the reference engine computes per dynamic instruction;
    // folding it here cannot change the cycle stream (identical operands,
    // identical IEEE multiply, additions happen in the same order).
    pi.base_cost = static_cast<double>(bc::op_info(insn.op).machine_words) * tier_cpi;
    const std::uint64_t addr =
        cm.code_base + static_cast<std::uint64_t>(cm.word_offset[pc]) *
                           static_cast<std::uint64_t>(machine.bytes_per_word);
    pi.line = addr / machine.icache_line_bytes;
  }

  if (fusion == FusionPolicy::kAll ||
      (fusion == FusionPolicy::kPromotedOnly && cm.tier != Tier::kBaseline)) {
    apply_fusion(pb, stats);
  }

  // Operand-stack headroom: the depth after executing the instruction at pc
  // is stack_depth[pc] + stack_effect, and no instruction's transient state
  // exceeds that. Unreachable pcs (-1) never execute.
  int max_depth = 1;  // a returning callee pushes one value above the floor
  for (std::size_t pc = 0; pc < n; ++pc) {
    const int d = cm.stack_depth[pc];
    if (d < 0) continue;
    max_depth = std::max(max_depth, d + std::max(0, bc::stack_effect(cm.body.code()[pc])));
  }
  pb.max_operand_depth = max_depth;
  return pb;
}

}  // namespace ith::rt
