#include "runtime/predecode.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace ith::rt {

// The XOp mirror region must stay numerically identical to bc::Op: unfused
// entries are threaded through labels[int(xop)] and dense-switched on xop.
static_assert(static_cast<int>(XOp::kConst) == static_cast<int>(bc::Op::kConst) &&
                  static_cast<int>(XOp::kJmp) == static_cast<int>(bc::Op::kJmp) &&
                  static_cast<int>(XOp::kRet) == static_cast<int>(bc::Op::kRet) &&
                  static_cast<int>(XOp::kHalt) == static_cast<int>(bc::Op::kHalt),
              "XOp's mirror region drifted from bc::Op");

FusionPolicy default_fusion_policy() {
  const char* raw = std::getenv("ITH_FUSION");
  const std::string v = raw == nullptr ? std::string() : std::string(raw);
  if (v.empty() || v == "1" || v == "promoted") return FusionPolicy::kPromotedOnly;
  if (v == "0" || v == "off") return FusionPolicy::kOff;
  if (v == "all") return FusionPolicy::kAll;
  throw Error("ITH_FUSION=" + v + " is not a fusion policy (use 0/off, 1/promoted, or all)");
}

const char* fusion_policy_name(FusionPolicy policy) {
  switch (policy) {
    case FusionPolicy::kOff: return "off";
    case FusionPolicy::kPromotedOnly: return "promoted";
    case FusionPolicy::kAll: return "all";
  }
  return "?";
}

const std::vector<FusionRule>& fusion_rules() {
  using bc::Op;
  // Longest patterns first: the scan takes the first rule that matches at a
  // pc, so a 4-long guard wins over its embedded cmp+branch pair. Every
  // rule's interior components are straight-line (no jump/call/ret heads
  // except as the designated final component), which is what makes the
  // head-executes-all rewrite safe.
  //
  // Row shape: {name, len, rewrite_at, fused (pool-less fallback),
  // fused_imm, capture_b, capture_extra, require_same_a, pattern}. The
  // capture descriptors are what "operand capture as data" means: the scan
  // copies component[capture_b].a into the head's b slot and
  // component[capture_extra].a into the window's extra slot; -1 captures
  // nothing. Branch deltas are already pc-relative to the branch's own pc,
  // so a captured delta plus the head-relative component offset is enough
  // for the handler to compute the taken target without any interior read.
  static const std::vector<FusionRule> kRules = {
      {"load_const_cmplt_jz", 4, 0, XOp::kFLoadConstCmpLtJz, XOp::kFLoadConstCmpLtJzImm, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kCmpLt, Op::kJz}},
      {"load_const_cmplt_jnz", 4, 0, XOp::kFLoadConstCmpLtJnz, XOp::kFLoadConstCmpLtJnzImm, 1, 3,
       -1, {Op::kLoad, Op::kConst, Op::kCmpLt, Op::kJnz}},
      {"load_const_cmple_jz", 4, 0, XOp::kFLoadConstCmpLeJz, XOp::kFLoadConstCmpLeJzImm, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kCmpLe, Op::kJz}},
      {"load_const_cmple_jnz", 4, 0, XOp::kFLoadConstCmpLeJnz, XOp::kFLoadConstCmpLeJnzImm, 1, 3,
       -1, {Op::kLoad, Op::kConst, Op::kCmpLe, Op::kJnz}},
      {"load_const_cmpeq_jz", 4, 0, XOp::kFLoadConstCmpEqJz, XOp::kFLoadConstCmpEqJzImm, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kCmpEq, Op::kJz}},
      {"load_const_cmpeq_jnz", 4, 0, XOp::kFLoadConstCmpEqJnz, XOp::kFLoadConstCmpEqJnzImm, 1, 3,
       -1, {Op::kLoad, Op::kConst, Op::kCmpEq, Op::kJnz}},
      {"load_const_cmpne_jz", 4, 0, XOp::kFLoadConstCmpNeJz, XOp::kFLoadConstCmpNeJzImm, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kCmpNe, Op::kJz}},
      {"load_const_cmpne_jnz", 4, 0, XOp::kFLoadConstCmpNeJnz, XOp::kFLoadConstCmpNeJnzImm, 1, 3,
       -1, {Op::kLoad, Op::kConst, Op::kCmpNe, Op::kJnz}},
      // The counted-loop increment idiom: load/store must hit the same
      // local (require_same_a = component 3), collapsing three dispatches
      // and two stack round-trips into `loc[a] += b`. Imm-only — there is
      // no plain fused form to fall back to, so a pool overflow leaves the
      // window unfused and the scan picks up the embedded const_add.
      {"inc_local", 4, 0, XOp::kNop, XOp::kFIncLocal, 1, -1, 3,
       {Op::kLoad, Op::kConst, Op::kAdd, Op::kStore}},
      {"dec_local", 4, 0, XOp::kNop, XOp::kFDecLocal, 1, -1, 3,
       {Op::kLoad, Op::kConst, Op::kSub, Op::kStore}},
      // Whole assignment statements, `loc[extra] = loc[a] op k` and
      // `loc[extra] = loc[a] op loc[b]`. These are what the workload
      // generator emits for every scalar statement, so they carry most of
      // the dynamic dispatch count in the serving/spec bodies. All imm-only:
      // two head slots plus the window's extra cover the three operands.
      {"loc_add_k", 4, 0, XOp::kNop, XOp::kFLocAddK, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kAdd, Op::kStore}},
      {"loc_sub_k", 4, 0, XOp::kNop, XOp::kFLocSubK, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kSub, Op::kStore}},
      {"loc_mul_k", 4, 0, XOp::kNop, XOp::kFLocMulK, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kMul, Op::kStore}},
      {"loc_div_k", 4, 0, XOp::kNop, XOp::kFLocDivK, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kDiv, Op::kStore}},
      {"loc_mod_k", 4, 0, XOp::kNop, XOp::kFLocModK, 1, 3, -1,
       {Op::kLoad, Op::kConst, Op::kMod, Op::kStore}},
      {"loc_add_loc", 4, 0, XOp::kNop, XOp::kFLocAddLoc, 1, 3, -1,
       {Op::kLoad, Op::kLoad, Op::kAdd, Op::kStore}},
      {"loc_sub_loc", 4, 0, XOp::kNop, XOp::kFLocSubLoc, 1, 3, -1,
       {Op::kLoad, Op::kLoad, Op::kSub, Op::kStore}},
      {"loc_mul_loc", 4, 0, XOp::kNop, XOp::kFLocMulLoc, 1, 3, -1,
       {Op::kLoad, Op::kLoad, Op::kMul, Op::kStore}},
      {"load_load_add", 3, 0, XOp::kFLoadLoadAdd, XOp::kFLoadLoadAddImm, 1, -1, -1,
       {Op::kLoad, Op::kLoad, Op::kAdd, Op::kNop}},
      {"load_load_sub", 3, 0, XOp::kFLoadLoadSub, XOp::kFLoadLoadSubImm, 1, -1, -1,
       {Op::kLoad, Op::kLoad, Op::kSub, Op::kNop}},
      {"load_load_mul", 3, 0, XOp::kFLoadLoadMul, XOp::kFLoadLoadMulImm, 1, -1, -1,
       {Op::kLoad, Op::kLoad, Op::kMul, Op::kNop}},
      // Expression prefixes `push loc[a] op k` (the assignment forms above
      // win when a store follows; these catch the value-producing uses).
      {"load_add_k", 3, 0, XOp::kNop, XOp::kFLoadAddK, 1, -1, -1,
       {Op::kLoad, Op::kConst, Op::kAdd, Op::kNop}},
      {"load_sub_k", 3, 0, XOp::kNop, XOp::kFLoadSubK, 1, -1, -1,
       {Op::kLoad, Op::kConst, Op::kSub, Op::kNop}},
      {"load_mul_k", 3, 0, XOp::kNop, XOp::kFLoadMulK, 1, -1, -1,
       {Op::kLoad, Op::kConst, Op::kMul, Op::kNop}},
      {"load_div_k", 3, 0, XOp::kNop, XOp::kFLoadDivK, 1, -1, -1,
       {Op::kLoad, Op::kConst, Op::kDiv, Op::kNop}},
      {"load_mod_k", 3, 0, XOp::kNop, XOp::kFLoadModK, 1, -1, -1,
       {Op::kLoad, Op::kConst, Op::kMod, Op::kNop}},
      // The dispatcher idiom `const k; cmp; branch`: compare an
      // already-pushed selector against an immediate and branch, one
      // dispatch, no stack traffic beyond the selector pop.
      {"k_cmplt_jz", 3, 0, XOp::kNop, XOp::kFKCmpLtJz, 2, -1, -1,
       {Op::kConst, Op::kCmpLt, Op::kJz, Op::kNop}},
      {"k_cmplt_jnz", 3, 0, XOp::kNop, XOp::kFKCmpLtJnz, 2, -1, -1,
       {Op::kConst, Op::kCmpLt, Op::kJnz, Op::kNop}},
      {"k_cmple_jz", 3, 0, XOp::kNop, XOp::kFKCmpLeJz, 2, -1, -1,
       {Op::kConst, Op::kCmpLe, Op::kJz, Op::kNop}},
      {"k_cmple_jnz", 3, 0, XOp::kNop, XOp::kFKCmpLeJnz, 2, -1, -1,
       {Op::kConst, Op::kCmpLe, Op::kJnz, Op::kNop}},
      {"k_cmpeq_jz", 3, 0, XOp::kNop, XOp::kFKCmpEqJz, 2, -1, -1,
       {Op::kConst, Op::kCmpEq, Op::kJz, Op::kNop}},
      {"k_cmpeq_jnz", 3, 0, XOp::kNop, XOp::kFKCmpEqJnz, 2, -1, -1,
       {Op::kConst, Op::kCmpEq, Op::kJnz, Op::kNop}},
      {"k_cmpne_jz", 3, 0, XOp::kNop, XOp::kFKCmpNeJz, 2, -1, -1,
       {Op::kConst, Op::kCmpNe, Op::kJz, Op::kNop}},
      {"k_cmpne_jnz", 3, 0, XOp::kNop, XOp::kFKCmpNeJnz, 2, -1, -1,
       {Op::kConst, Op::kCmpNe, Op::kJnz, Op::kNop}},
      {"const_add", 2, 0, XOp::kFConstAdd, XOp::kFAddImm, -1, -1, -1,
       {Op::kConst, Op::kAdd, Op::kNop, Op::kNop}},
      {"const_sub", 2, 0, XOp::kFConstSub, XOp::kFSubImm, -1, -1, -1,
       {Op::kConst, Op::kSub, Op::kNop, Op::kNop}},
      {"const_mul", 2, 0, XOp::kFConstMul, XOp::kFMulImm, -1, -1, -1,
       {Op::kConst, Op::kMul, Op::kNop, Op::kNop}},
      // Total-arithmetic division never traps (rhs 0 and -1 have defined
      // results), so div/mod fuse exactly like add/sub/mul.
      {"const_div", 2, 0, XOp::kNop, XOp::kFDivImm, -1, -1, -1,
       {Op::kConst, Op::kDiv, Op::kNop, Op::kNop}},
      {"const_mod", 2, 0, XOp::kNop, XOp::kFModImm, -1, -1, -1,
       {Op::kConst, Op::kMod, Op::kNop, Op::kNop}},
      // Expression tails `loc[b] = pop op pop`, plus local-to-local copies,
      // constant stores, and the `const k; gload` global-read idiom.
      {"add_store", 2, 0, XOp::kNop, XOp::kFAddStore, 1, -1, -1,
       {Op::kAdd, Op::kStore, Op::kNop, Op::kNop}},
      {"sub_store", 2, 0, XOp::kNop, XOp::kFSubStore, 1, -1, -1,
       {Op::kSub, Op::kStore, Op::kNop, Op::kNop}},
      {"mul_store", 2, 0, XOp::kNop, XOp::kFMulStore, 1, -1, -1,
       {Op::kMul, Op::kStore, Op::kNop, Op::kNop}},
      {"div_store", 2, 0, XOp::kNop, XOp::kFDivStore, 1, -1, -1,
       {Op::kDiv, Op::kStore, Op::kNop, Op::kNop}},
      {"mod_store", 2, 0, XOp::kNop, XOp::kFModStore, 1, -1, -1,
       {Op::kMod, Op::kStore, Op::kNop, Op::kNop}},
      {"copy_local", 2, 0, XOp::kNop, XOp::kFCopyLocal, 1, -1, -1,
       {Op::kLoad, Op::kStore, Op::kNop, Op::kNop}},
      {"const_store", 2, 0, XOp::kNop, XOp::kFConstStore, 1, -1, -1,
       {Op::kConst, Op::kStore, Op::kNop, Op::kNop}},
      {"gload_k", 2, 0, XOp::kNop, XOp::kFGLoadK, -1, -1, -1,
       {Op::kConst, Op::kGLoad, Op::kNop, Op::kNop}},
      {"cmplt_jz", 2, 0, XOp::kFCmpLtJz, XOp::kFCmpLtJzImm, 1, -1, -1,
       {Op::kCmpLt, Op::kJz, Op::kNop, Op::kNop}},
      {"cmplt_jnz", 2, 0, XOp::kFCmpLtJnz, XOp::kFCmpLtJnzImm, 1, -1, -1,
       {Op::kCmpLt, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmple_jz", 2, 0, XOp::kFCmpLeJz, XOp::kFCmpLeJzImm, 1, -1, -1,
       {Op::kCmpLe, Op::kJz, Op::kNop, Op::kNop}},
      {"cmple_jnz", 2, 0, XOp::kFCmpLeJnz, XOp::kFCmpLeJnzImm, 1, -1, -1,
       {Op::kCmpLe, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmpeq_jz", 2, 0, XOp::kFCmpEqJz, XOp::kFCmpEqJzImm, 1, -1, -1,
       {Op::kCmpEq, Op::kJz, Op::kNop, Op::kNop}},
      {"cmpeq_jnz", 2, 0, XOp::kFCmpEqJnz, XOp::kFCmpEqJnzImm, 1, -1, -1,
       {Op::kCmpEq, Op::kJnz, Op::kNop, Op::kNop}},
      {"cmpne_jz", 2, 0, XOp::kFCmpNeJz, XOp::kFCmpNeJzImm, 1, -1, -1,
       {Op::kCmpNe, Op::kJz, Op::kNop, Op::kNop}},
      {"cmpne_jnz", 2, 0, XOp::kFCmpNeJnz, XOp::kFCmpNeJnzImm, 1, -1, -1,
       {Op::kCmpNe, Op::kJnz, Op::kNop, Op::kNop}},
      // The return of a caller-side call+return pair is rewritten (not the
      // call): the callee's kRet reloads the caller's resume ip, sees the
      // kFRetChained mark, and chains into the next return without an
      // indirect dispatch. Correct for any callee — "leaf" is simply the
      // depth-1 case where exactly one chain step fires. No immediate form:
      // the chain never reads interior entries to begin with.
      {"call_ret", 2, 1, XOp::kFRetChained, XOp::kFRetChained, -1, -1, -1,
       {Op::kCall, Op::kRet, Op::kNop, Op::kNop}},
  };
  return kRules;
}

FusionStats::FusionStats()
    : rule_hits(fusion_rules().size(), 0), rule_hits_imm(fusion_rules().size(), 0) {}

namespace {

/// The table-driven fusion scan. Rewrites only the xop/fuse_len of the
/// designated entry per match — operands, costs, lines, and jump deltas in
/// the INTERIOR entries are untouched, and interiors keep their mirror xop
/// so any control transfer landing mid-window executes the components
/// unfused. When a rule has an immediate form, the head additionally
/// captures the component operands (per the rule's capture descriptors)
/// and a side-pool record carrying the interiors' accounting data, so the
/// fused dispatch never touches the interior entries at all.
void apply_fusion(PredecodedBody& pb, FusionStats* stats) {
  const std::vector<FusionRule>& rules = fusion_rules();
  std::vector<PredecodedInsn>& code = pb.code;
  bool any = false;
  std::size_t pc = 0;
  while (pc < code.size()) {
    std::size_t advance = 1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const FusionRule& rule = rules[r];
      if (pc + rule.len > code.size()) continue;
      bool match = true;
      for (int k = 0; k < rule.len; ++k) {
        if (code[pc + static_cast<std::size_t>(k)].op != rule.pattern[static_cast<std::size_t>(k)]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      if (rule.require_same_a >= 0 &&
          code[pc + static_cast<std::size_t>(rule.require_same_a)].a != code[pc].a) {
        continue;  // constraint miss: not a match, the next rule may still fire
      }
      PredecodedInsn& head = code[pc + rule.rewrite_at];
      if (rule.fused_imm != rule.fused) {
        if (pb.pool.size() < kMaxFusedWindowsPerBody) {
          FusedWindow w;
          for (int k = 1; k < rule.len; ++k) {
            w.cost[static_cast<std::size_t>(k) - 1] = code[pc + static_cast<std::size_t>(k)].base_cost;
            w.line[static_cast<std::size_t>(k) - 1] = code[pc + static_cast<std::size_t>(k)].line;
            // The probe decision for component k depends only on whether it
            // crossed a line relative to component k-1 — static per window.
            if (code[pc + static_cast<std::size_t>(k)].line !=
                code[pc + static_cast<std::size_t>(k) - 1].line) {
              w.probe_mask |= static_cast<std::uint8_t>(1u << (k - 1));
            }
          }
          if (rule.capture_b >= 0) head.b = code[pc + static_cast<std::size_t>(rule.capture_b)].a;
          if (rule.capture_extra >= 0) {
            w.extra = code[pc + static_cast<std::size_t>(rule.capture_extra)].a;
          }
          head.imm = static_cast<std::uint16_t>(pb.pool.size());
          pb.pool.push_back(w);
          head.xop = rule.fused_imm;
          if (stats != nullptr) {
            ++stats->windows_imm;
            ++stats->rule_hits_imm[r];
          }
        } else {
          if (stats != nullptr) ++stats->pool_overflows;
          // Imm-only rule (no pool-less form): leave the window unfused and
          // let a later rule (e.g. the embedded const+arith pair) pick up
          // what it can.
          if (rule.fused == XOp::kNop) continue;
          head.xop = rule.fused;
        }
      } else {
        head.xop = rule.fused;
      }
      // Entries this fused dispatch retires. kFRetChained rewrites a single
      // kRet (the eliminated dispatch is the chain into it), so it stays 1.
      head.fuse_len = rule.rewrite_at == 0 ? rule.len : 1;
      any = true;
      if (stats != nullptr) {
        ++stats->rules_fired;
        stats->insns_fused += static_cast<std::uint64_t>(rule.len) - 1;
        ++stats->rule_hits[r];
      }
      advance = rule.len;  // windows from one scan never overlap
      break;
    }
    pc += advance;
  }
  pb.fused = any;
  if (stats != nullptr) {
    ++stats->bodies_considered;
    if (any) ++stats->bodies_fused;
  }
}

}  // namespace

PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine,
                         FusionPolicy fusion, FusionStats* stats) {
  const std::size_t n = cm.body.size();
  ITH_ASSERT(cm.word_offset.size() == n + 1, "predecode: compiled method not finalized");

  const double cpi[3] = {machine.baseline_cpi, machine.mid_cpi, machine.opt_cpi};
  const double tier_cpi = cpi[static_cast<int>(cm.tier)];

  PredecodedBody pb;
  pb.cm = &cm;
  pb.code.resize(n);
  for (std::size_t pc = 0; pc < n; ++pc) {
    const bc::Instruction& insn = cm.body.code()[pc];
    PredecodedInsn& pi = pb.code[pc];
    pi.op = insn.op;
    pi.xop = static_cast<XOp>(insn.op);
    // Jumps carry their pc-relative delta so the engine advances ip by
    // addition alone; everything else keeps the raw operand.
    const bool is_jump =
        insn.op == bc::Op::kJmp || insn.op == bc::Op::kJz || insn.op == bc::Op::kJnz;
    pi.a = is_jump ? insn.a - static_cast<std::int32_t>(pc) : insn.a;
    pi.b = insn.b;
    // Same product the reference engine computes per dynamic instruction;
    // folding it here cannot change the cycle stream (identical operands,
    // identical IEEE multiply, additions happen in the same order).
    pi.base_cost = static_cast<double>(bc::op_info(insn.op).machine_words) * tier_cpi;
    const std::uint64_t addr =
        cm.code_base + static_cast<std::uint64_t>(cm.word_offset[pc]) *
                           static_cast<std::uint64_t>(machine.bytes_per_word);
    pi.line = addr / machine.icache_line_bytes;
  }

  if (fusion == FusionPolicy::kAll ||
      (fusion == FusionPolicy::kPromotedOnly && cm.tier != Tier::kBaseline)) {
    apply_fusion(pb, stats);
  }

  // Operand-stack headroom: the depth after executing the instruction at pc
  // is stack_depth[pc] + stack_effect, and no instruction's transient state
  // exceeds that. Unreachable pcs (-1) never execute.
  int max_depth = 1;  // a returning callee pushes one value above the floor
  for (std::size_t pc = 0; pc < n; ++pc) {
    const int d = cm.stack_depth[pc];
    if (d < 0) continue;
    max_depth = std::max(max_depth, d + std::max(0, bc::stack_effect(cm.body.code()[pc])));
  }
  pb.max_operand_depth = max_depth;
  return pb;
}

}  // namespace ith::rt
