#include "runtime/predecode.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace ith::rt {

PredecodedBody predecode(const CompiledMethod& cm, const MachineModel& machine) {
  const std::size_t n = cm.body.size();
  ITH_ASSERT(cm.word_offset.size() == n + 1, "predecode: compiled method not finalized");

  const double cpi[3] = {machine.baseline_cpi, machine.mid_cpi, machine.opt_cpi};
  const double tier_cpi = cpi[static_cast<int>(cm.tier)];

  PredecodedBody pb;
  pb.cm = &cm;
  pb.code.resize(n);
  for (std::size_t pc = 0; pc < n; ++pc) {
    const bc::Instruction& insn = cm.body.code()[pc];
    PredecodedInsn& pi = pb.code[pc];
    pi.op = insn.op;
    // Jumps carry their pc-relative delta so the engine advances ip by
    // addition alone; everything else keeps the raw operand.
    const bool is_jump =
        insn.op == bc::Op::kJmp || insn.op == bc::Op::kJz || insn.op == bc::Op::kJnz;
    pi.a = is_jump ? insn.a - static_cast<std::int32_t>(pc) : insn.a;
    pi.b = insn.b;
    // Same product the reference engine computes per dynamic instruction;
    // folding it here cannot change the cycle stream (identical operands,
    // identical IEEE multiply, additions happen in the same order).
    pi.base_cost = static_cast<double>(bc::op_info(insn.op).machine_words) * tier_cpi;
    const std::uint64_t addr =
        cm.code_base + static_cast<std::uint64_t>(cm.word_offset[pc]) *
                           static_cast<std::uint64_t>(machine.bytes_per_word);
    pi.line = addr / machine.icache_line_bytes;
  }

  // Operand-stack headroom: the depth after executing the instruction at pc
  // is stack_depth[pc] + stack_effect, and no instruction's transient state
  // exceeds that. Unreachable pcs (-1) never execute.
  int max_depth = 1;  // a returning callee pushes one value above the floor
  for (std::size_t pc = 0; pc < n; ++pc) {
    const int d = cm.stack_depth[pc];
    if (d < 0) continue;
    max_depth = std::max(max_depth, d + std::max(0, bc::stack_effect(cm.body.code()[pc])));
  }
  pb.max_operand_depth = max_depth;
  return pb;
}

}  // namespace ith::rt
