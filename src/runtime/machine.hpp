// MachineModel: the per-architecture cost model.
//
// The paper's cross-architecture result (Table 4: PPC prefers smaller
// MAX_INLINE_DEPTH, attributed to its smaller L1 I-cache) is reproduced by
// making every term of the time model an architecture parameter: code
// quality per tier, call linkage cost, I-cache geometry and miss penalty,
// and compile throughput. Times are deterministic simulated cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ith::rt {

struct MachineModel {
  std::string name;

  // --- Execution ---------------------------------------------------------
  /// Cycles per estimated machine word in baseline-tier code. The baseline
  /// compiler emits naive stack-traffic code, hence CPI well above 1.
  double baseline_cpi = 3.0;
  /// Cycles per estimated machine word at the first optimizing level (O1):
  /// same transformations, weaker register allocation / scheduling.
  double mid_cpi = 1.45;
  /// Cycles per estimated machine word in fully optimized (O2) code.
  double opt_cpi = 1.0;
  /// Extra cycles for the linkage of every dynamic call (arg registers,
  /// frame, return). This is the direct cost inlining removes.
  std::uint64_t call_overhead_cycles = 20;

  // --- Instruction cache --------------------------------------------------
  std::size_t icache_bytes = 64 * 1024;
  std::size_t icache_line_bytes = 64;
  std::size_t icache_assoc = 4;
  std::uint64_t icache_miss_cycles = 40;
  /// Bytes per estimated machine word (instruction encoding size).
  std::size_t bytes_per_word = 4;

  // --- Compilation --------------------------------------------------------
  /// Baseline tier: cycles per emitted machine word (a fast single pass).
  double baseline_compile_cycles_per_word = 20.0;
  /// Optimizing tier: cycles = k * words^e over the *post-inlining* body.
  /// The superlinear exponent models the quadratic-ish analyses a real
  /// optimizer runs, which is why overly aggressive inlining blows up
  /// compile time (the effect Figure 1(a) shows).
  double opt_compile_cycles_per_word = 220.0;
  double opt_compile_exponent = 1.15;

  /// Clock, used only to present cycles as seconds (Figure 2 axes).
  double clock_hz = 1.0e9;

  /// Fraction of the full-opt compile rate the O1 level costs.
  double mid_compile_fraction = 0.33;

  /// Full optimizing-tier (O2) compile cycles for a body of `words` words.
  std::uint64_t opt_compile_cycles(std::size_t words) const;
  /// First-level (O1) compile cycles.
  std::uint64_t mid_compile_cycles(std::size_t words) const;
  /// Baseline-tier compile cycles for a body of `words` machine words.
  std::uint64_t baseline_compile_cycles(std::size_t words) const;

  double cycles_to_seconds(std::uint64_t cycles) const;
};

/// 2.8 GHz Pentium-4-like model: deep pipeline (expensive calls and misses),
/// comparatively large instruction cache, fast compile throughput.
MachineModel pentium4_model();

/// 533 MHz PowerPC G4-like model: small L1 I-cache (the paper's explanation
/// for PPC's preference for shallow inlining), milder penalties.
MachineModel ppc_g4_model();

}  // namespace ith::rt
