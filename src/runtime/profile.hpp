// Online profile data, the adaptive scenario's input: per-method invocation
// and back-edge counters (hot-method detection) and per-call-site execution
// counts (hot-call-site detection for the Figure 4 heuristic path).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "bytecode/method.hpp"

namespace ith::rt {

class ProfileData {
 public:
  explicit ProfileData(std::size_t num_methods);

  void record_invocation(bc::MethodId m) { ++methods_[check(m)].invocations; }
  void record_back_edge(bc::MethodId m) { ++methods_[check(m)].back_edges; }
  void record_call_site(bc::MethodId origin_method, std::int32_t origin_pc);

  std::uint64_t invocations(bc::MethodId m) const { return methods_[check(m)].invocations; }
  std::uint64_t back_edges(bc::MethodId m) const { return methods_[check(m)].back_edges; }

  /// The adaptive controller's hotness score: invocations plus back edges
  /// (a method stuck in one long loop is as hot as one called constantly).
  std::uint64_t hot_score(bc::MethodId m) const;

  std::uint64_t site_count(bc::MethodId origin_method, std::int32_t origin_pc) const;

  void clear();

 private:
  struct MethodCounters {
    std::uint64_t invocations = 0;
    std::uint64_t back_edges = 0;
  };

  std::size_t check(bc::MethodId m) const;

  mutable std::vector<MethodCounters> methods_;
  std::map<std::pair<bc::MethodId, std::int32_t>, std::uint64_t> sites_;
};

}  // namespace ith::rt
