// Set-associative LRU instruction-cache simulator.
//
// The interpreter probes it on every cache-line transition of the simulated
// instruction pointer; misses add the machine's miss penalty to the cycle
// count. This is the term that penalizes code growth from aggressive
// inlining and drives the architecture-dependent tuning results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ith::rt {

class ICache {
 public:
  /// Geometry: total bytes, line bytes, associativity. All must be powers
  /// of two and consistent (bytes % (line*assoc) == 0).
  ICache(std::size_t total_bytes, std::size_t line_bytes, std::size_t assoc);

  /// Looks up the line containing `address`; fills on miss. Returns true on
  /// hit.
  bool probe(std::uint64_t address);

  /// Invalidates everything (used between cold-start experiments).
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t probes() const { return hits_ + misses_; }
  void reset_counters();

  std::size_t num_sets() const { return sets_; }
  std::size_t associativity() const { return assoc_; }
  std::size_t line_bytes() const { return line_bytes_; }

 private:
  std::size_t line_bytes_;
  std::size_t assoc_;
  std::size_t sets_;
  std::uint64_t line_shift_;
  // ways_[set*assoc + way] = tag (kInvalid when empty);
  // lru_[set*assoc + way] = last-touch stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  static constexpr std::uint64_t kInvalid = ~0ULL;
};

}  // namespace ith::rt
