// The execution engines.
//
// Execute *compiled* method bodies (whatever tier the VM hands back from
// CodeSource::invoke) under the machine model's cost accounting:
//
//   cycles += machine_words(insn) * tier_cpi        every instruction
//   cycles += call_overhead                          every dynamic kCall
//   cycles += miss_penalty                           every I-cache line miss
//
// Because optimized bodies are genuinely transformed (inlined, folded),
// better heuristics show up as fewer dynamic instructions and fewer calls —
// the engine measures, it does not model.
//
// Two engines implement this contract and must produce bit-identical
// ExecStats on every program:
//
//   kReference — the original switch-dispatch loop. One op_info() lookup and
//                two integer divisions (icache address arithmetic) per
//                dynamic instruction; frames/locals/stack are allocated per
//                run(). Kept as the semantic baseline for differential
//                testing and as the fallback when debugging the fast engine.
//   kFast      — predecoded direct-threaded engine (fast_interpreter.hpp).
//                Each CompiledMethod is predecoded once into a dense stream
//                carrying the dispatch target, the pre-folded per-instruction
//                cycle cost and the precomputed icache line per pc; execution
//                arenas are reused across run() calls. The default.
//
// The equality is enforced by tests/runtime/engine_equivalence_test.cpp and
// by the fuzz oracle's engine-differential tier (src/fuzz/oracle.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "bytecode/program.hpp"
#include "runtime/compiled.hpp"
#include "runtime/icache.hpp"
#include "runtime/machine.hpp"
#include "runtime/predecode.hpp"

namespace ith::rt {

/// The interpreter's view of the VM: code lookup plus profile hooks.
class CodeSource {
 public:
  virtual ~CodeSource() = default;

  /// Called on every method invocation, before execution. May compile or
  /// swap in a recompiled version. The returned reference must stay valid
  /// for the lifetime of the executing engine (not just the current run):
  /// the fast engine caches predecoded bodies keyed by CompiledMethod
  /// address across run() calls, and old versions may still be on the call
  /// stack. Every in-tree source (VirtualMachine, test IdentitySource, the
  /// oracle's PlainSource) retires old bodies instead of freeing them.
  virtual const CompiledMethod& invoke(bc::MethodId id) = 0;

  /// A backward branch was taken inside `id`.
  virtual void on_back_edge(bc::MethodId id);

  /// Offered after every taken back edge: if a better compilation of the
  /// executing method exists, return it and the interpreter attempts an
  /// on-stack replacement (transfer of the live frame). Return nullptr to
  /// decline (the default). The returned body must stay valid as long as
  /// invoke()'s results. Transfers only succeed from baseline-tier frames
  /// whose loop-header state provably maps into the replacement (unique
  /// origin match + equal operand-stack depth); otherwise execution
  /// continues in the old code.
  virtual const CompiledMethod* osr_replacement(const CompiledMethod& current,
                                                std::size_t target_pc);

  /// A call instruction originating from (origin_method, origin_pc) executed.
  virtual void on_call_site(bc::MethodId origin_method, std::int32_t origin_pc);
};

struct ExecStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
  std::uint64_t osr_transitions = 0;
  std::uint64_t icache_probes = 0;
  std::uint64_t icache_misses = 0;
  std::size_t max_frame_depth = 0;
  std::int64_t exit_value = 0;

  friend bool operator==(const ExecStats&, const ExecStats&) = default;
};

/// Which execution engine an Interpreter runs.
enum class EngineKind : std::uint8_t {
  kFast,       ///< predecoded direct-threaded engine (default)
  kReference,  ///< original switch-dispatch loop
};

const char* engine_name(EngineKind kind);

struct InterpreterOptions {
  std::uint64_t max_instructions = 2'000'000'000ULL;  ///< runaway-program guard
  std::size_t max_frames = 4096;                      ///< simulated stack-overflow bound
  /// Resident locals + operand-stack words before the run is aborted with a
  /// resilience::BudgetExceededError(kArena). Checked at frame pushes (the
  /// only points the arenas grow), so the dispatch hot path is untouched.
  /// The accounting is engine-specific (the fast engine's operand arena is
  /// sized geometrically) — treat it as a coarse memory guard, not an exact
  /// high-water mark.
  std::size_t max_arena_words = std::numeric_limits<std::size_t>::max();
  EngineKind engine = EngineKind::kFast;
  /// Superinstruction fusion policy for the fast engine (the reference
  /// engine never fuses — it is the unfused ground truth). Defaults to the
  /// ITH_FUSION environment variable so ITH_FUSION=0 is a no-rebuild escape
  /// hatch mirroring ITH_COMPUTED_GOTO=0.
  FusionPolicy fusion = default_fusion_policy();
};

/// Abstract execution engine. Owns the global data segment (which persists
/// across run() calls) and the cost-model inputs shared by all engines.
class Engine {
 public:
  /// `icache` may be null to run without cache simulation. The machine
  /// model is copied; program/source/icache must outlive the engine.
  Engine(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
         ICache* icache, InterpreterOptions options);
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the program's entry method to completion (kHalt or entry return).
  virtual ExecStats run() = 0;

  /// Cumulative superinstruction-fusion activity, or null for engines that
  /// never fuse (the reference engine). Counts accumulate across run()
  /// calls; consumers publishing counters should diff against a snapshot.
  virtual const FusionStats* fusion_stats() const { return nullptr; }

  /// Global data segment; persists across run() calls on the same instance.
  std::vector<std::int64_t>& globals() { return globals_; }
  void reset_globals();

  /// Rebinds the per-run() instruction budget. The VM uses this to shrink
  /// the cap before each iteration when a RunBudget's sim-cycle envelope is
  /// in force (every engine charges >= 1 cycle per instruction, so the
  /// remaining-cycle count is a sound instruction bound).
  void set_instruction_limit(std::uint64_t n) { options_.max_instructions = n; }

 protected:
  const bc::Program& prog_;
  const MachineModel machine_;  // by value: callers may pass temporaries
  CodeSource& source_;
  ICache* icache_;
  InterpreterOptions options_;
  std::vector<std::int64_t> globals_;
};

/// The reference switch-dispatch engine: deliberately straightforward, the
/// ground truth the fast engine is differentially tested against.
class ReferenceInterpreter final : public Engine {
 public:
  using Engine::Engine;
  ExecStats run() override;
};

/// Engine selector: constructs the engine named by `options.engine`.
std::unique_ptr<Engine> make_engine(const bc::Program& prog, const MachineModel& machine,
                                    CodeSource& source, ICache* icache,
                                    InterpreterOptions options = {});

/// Facade every call site uses: constructs the engine selected by
/// InterpreterOptions::engine (fast unless asked otherwise) and forwards.
class Interpreter {
 public:
  Interpreter(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
              ICache* icache, InterpreterOptions options = {});

  ExecStats run() { return engine_->run(); }

  std::vector<std::int64_t>& globals() { return engine_->globals(); }
  void reset_globals() { engine_->reset_globals(); }
  void set_instruction_limit(std::uint64_t n) { engine_->set_instruction_limit(n); }
  const FusionStats* fusion_stats() const { return engine_->fusion_stats(); }

  EngineKind engine_kind() const { return kind_; }

 private:
  std::unique_ptr<Engine> engine_;
  EngineKind kind_;
};

}  // namespace ith::rt
