// The execution engine.
//
// Executes *compiled* method bodies (whatever tier the VM hands back from
// CodeSource::invoke) under the machine model's cost accounting:
//
//   cycles += machine_words(insn) * tier_cpi        every instruction
//   cycles += call_overhead                          every dynamic kCall
//   cycles += miss_penalty                           every I-cache line miss
//
// Because optimized bodies are genuinely transformed (inlined, folded),
// better heuristics show up as fewer dynamic instructions and fewer calls —
// the engine measures, it does not model.
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/program.hpp"
#include "runtime/compiled.hpp"
#include "runtime/icache.hpp"
#include "runtime/machine.hpp"

namespace ith::rt {

/// The interpreter's view of the VM: code lookup plus profile hooks.
class CodeSource {
 public:
  virtual ~CodeSource() = default;

  /// Called on every method invocation, before execution. May compile or
  /// swap in a recompiled version. The returned reference must stay valid
  /// until the current Interpreter::run returns (old versions may still be
  /// on the call stack).
  virtual const CompiledMethod& invoke(bc::MethodId id) = 0;

  /// A backward branch was taken inside `id`.
  virtual void on_back_edge(bc::MethodId id);

  /// Offered after every taken back edge: if a better compilation of the
  /// executing method exists, return it and the interpreter attempts an
  /// on-stack replacement (transfer of the live frame). Return nullptr to
  /// decline (the default). The returned body must stay valid until run()
  /// returns. Transfers only succeed from baseline-tier frames whose
  /// loop-header state provably maps into the replacement (unique origin
  /// match + equal operand-stack depth); otherwise execution continues in
  /// the old code.
  virtual const CompiledMethod* osr_replacement(const CompiledMethod& current,
                                                std::size_t target_pc);

  /// A call instruction originating from (origin_method, origin_pc) executed.
  virtual void on_call_site(bc::MethodId origin_method, std::int32_t origin_pc);
};

struct ExecStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
  std::uint64_t osr_transitions = 0;
  std::uint64_t icache_probes = 0;
  std::uint64_t icache_misses = 0;
  std::size_t max_frame_depth = 0;
  std::int64_t exit_value = 0;
};

struct InterpreterOptions {
  std::uint64_t max_instructions = 2'000'000'000ULL;  ///< runaway-program guard
  std::size_t max_frames = 4096;                      ///< simulated stack-overflow bound
};

class Interpreter {
 public:
  /// `icache` may be null to run without cache simulation. The machine
  /// model is copied; program/source/icache must outlive the interpreter.
  Interpreter(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
              ICache* icache, InterpreterOptions options = {});

  /// Runs the program's entry method to completion (kHalt or entry return).
  ExecStats run();

  /// Global data segment; persists across run() calls on the same instance.
  std::vector<std::int64_t>& globals() { return globals_; }
  void reset_globals();

 private:
  const bc::Program& prog_;
  const MachineModel machine_;  // by value: callers may pass temporaries
  CodeSource& source_;
  ICache* icache_;
  InterpreterOptions options_;
  std::vector<std::int64_t> globals_;
};

}  // namespace ith::rt
