#include "runtime/fast_interpreter.hpp"

#include <algorithm>

#include "resilience/budget.hpp"
#include "support/error.hpp"

// Dispatch strategy: computed goto (direct threading) on compilers that
// support the labels-as-values extension, dense switch otherwise. Override
// with -DITH_COMPUTED_GOTO=0 to force the portable fallback.
#ifndef ITH_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define ITH_COMPUTED_GOTO 1
#else
#define ITH_COMPUTED_GOTO 0
#endif
#endif

#if ITH_COMPUTED_GOTO && defined(__GNUC__)
// Labels-as-values and computed goto are GNU extensions.
#pragma GCC diagnostic ignored "-Wpedantic"
#endif

#if defined(__GNUC__) || defined(__clang__)
#define ITH_ALWAYS_INLINE __attribute__((always_inline))
#else
#define ITH_ALWAYS_INLINE
#endif

namespace ith::rt {

FastInterpreter::FastInterpreter(const bc::Program& prog, const MachineModel& machine,
                                 CodeSource& source, ICache* icache, InterpreterOptions options)
    : Engine(prog, machine, source, icache, options), predecoded_(prog.num_methods()) {
  frames_.reserve(64);
  locals_.reserve(1024);
  stack_.resize(256);
}

PredecodedBody& FastInterpreter::body_for(const CompiledMethod& cm) {
  ITH_ASSERT(cm.method_id >= 0 && static_cast<std::size_t>(cm.method_id) < predecoded_.size(),
             "compiled method with out-of-program method id");
  Slot& slot = predecoded_[static_cast<std::size_t>(cm.method_id)];
  if (slot.cm == &cm) return *slot.pb;
  if (slot.pb != nullptr) {
    // Recompiled: frames deeper in the stack may still execute the old
    // predecode, so retire it instead of destroying it.
    retired_.push_back(std::move(slot.pb));
  }
  slot.cm = &cm;
  slot.pb = std::make_unique<PredecodedBody>(predecode(cm, machine_, options_.fusion, &fusion_stats_));
  return *slot.pb;
}

PredecodedBody& FastInterpreter::attach(const CompiledMethod& cm, const void* const* labels) {
  PredecodedBody& body = body_for(cm);
  if (labels != nullptr && !body.threaded) {
    for (PredecodedInsn& pi : body.code) pi.target = labels[static_cast<int>(pi.xop)];
    body.threaded = true;
  }
  return body;
}

void FastInterpreter::ensure_stack(std::size_t need) {
  if (stack_.size() < need) stack_.resize(std::max(need, stack_.size() * 2));
}

FastInterpreter::EnterState FastInterpreter::call_into(bc::MethodId id, std::int32_t nargs,
                                                       std::size_t sp, ExecStats& stats,
                                                       const void* const* labels) {
  const CompiledMethod& cm = source_.invoke(id);
  ITH_ASSERT(cm.word_offset.size() == cm.body.size() + 1, "compiled method not finalized");
  const PredecodedBody& body = attach(cm, labels);
  const std::size_t locals_base = locals_.size();
  locals_.resize(locals_base + static_cast<std::size_t>(cm.body.num_locals()), 0);
  // Arguments: top of stack is the last argument.
  const auto n = static_cast<std::size_t>(nargs);
  ITH_CHECK(sp >= n, "argument stack underflow");
  sp -= n;
  std::int64_t* const args = locals_.data() + locals_base;
  const std::int64_t* const stk = stack_.data();
  for (std::size_t i = 0; i < n; ++i) args[i] = stk[sp + i];
  ensure_stack(sp + static_cast<std::size_t>(body.max_operand_depth) + 1);
  frames_.push_back(FastFrame{&body, nullptr, locals_base, sp});
  stats.max_frame_depth = std::max(stats.max_frame_depth, frames_.size());
  if (frames_.size() > options_.max_frames) {
    throw resilience::BudgetExceededError(resilience::BudgetKind::kFrameDepth,
                                          "simulated stack overflow (recursion too deep)");
  }
  if (locals_.size() + stack_.size() > options_.max_arena_words) {
    throw resilience::BudgetExceededError(
        resilience::BudgetKind::kArena,
        "interpreter: arena budget exceeded (locals + operand stack)");
  }
  return {body.code.data(), locals_.data() + locals_base, stack_.data(), sp};
}

bool FastInterpreter::try_osr(std::size_t target, std::size_t sp, ExecStats& stats,
                              const void* const* labels, EnterState& out) {
  FastFrame& fr = frames_.back();
  const CompiledMethod* cur = fr.pb->cm;
  const CompiledMethod* repl = source_.osr_replacement(*cur, target);
  if (repl == nullptr || repl == cur) return false;
  if (cur->tier != Tier::kBaseline) return false;
  if (cur == osr_failed_from_ && repl == osr_failed_to_) return false;

  const auto om = cur->origin.empty() ? cur->method_id : cur->origin[target].first;
  const auto opc =
      cur->origin.empty() ? static_cast<std::int32_t>(target) : cur->origin[target].second;
  const std::int64_t j = om < 0 ? -1 : repl->find_origin(om, opc);
  const auto runtime_depth = static_cast<int>(sp - fr.stack_floor);
  if (j < 0 || repl->stack_depth[static_cast<std::size_t>(j)] != runtime_depth) {
    osr_failed_from_ = cur;  // don't rescan this pair on every iteration
    osr_failed_to_ = repl;
    return false;
  }

  const auto old_locals = static_cast<std::size_t>(cur->body.num_locals());
  const auto new_locals = static_cast<std::size_t>(repl->body.num_locals());
  ITH_ASSERT(fr.locals_base + old_locals == locals_.size(), "OSR on a non-top frame");
  if (new_locals > old_locals) locals_.resize(fr.locals_base + new_locals, 0);
  const PredecodedBody& body = attach(*repl, labels);
  ensure_stack(fr.stack_floor + static_cast<std::size_t>(body.max_operand_depth) + 1);
  fr.pb = &body;
  ++stats.osr_transitions;
  out = {body.code.data() + j, locals_.data() + fr.locals_base, stack_.data(), sp};
  return true;
}

ExecStats FastInterpreter::run() {
  ExecStats stats;
  double cycles = 0.0;

  frames_.clear();
  locals_.clear();

  const std::size_t gsize = globals_.size();
  std::int64_t* const gbl = globals_.data();
  const double call_cost = static_cast<double>(machine_.call_overhead_cycles);
  ICache* const ic = icache_;
  std::uint64_t current_line = ~0ULL;
  // Budget as a countdown so the hot loop decrements a register instead of
  // incrementing stats and reloading the limit; `instructions` is recovered
  // on exit. +1 because the reference throws on the (budget+1)-th step.
  const std::uint64_t budget_steps =
      options_.max_instructions == ~0ULL ? ~0ULL : options_.max_instructions + 1;
  std::uint64_t remaining = budget_steps;

#if ITH_COMPUTED_GOTO
  static_assert(kNumXOps == 46, "update kLabels when the extended instruction set changes");
  static const void* const kLabels[kNumXOps] = {
      // bc::Op mirror region (unfused dispatch)
      &&lbl_kConst, &&lbl_kLoad,  &&lbl_kStore, &&lbl_kAdd,    &&lbl_kSub,  &&lbl_kMul,
      &&lbl_kDiv,   &&lbl_kMod,   &&lbl_kNeg,   &&lbl_kCmpLt,  &&lbl_kCmpLe, &&lbl_kCmpEq,
      &&lbl_kCmpNe, &&lbl_kJmp,   &&lbl_kJz,    &&lbl_kJnz,    &&lbl_kCall, &&lbl_kRet,
      &&lbl_kGLoad, &&lbl_kGStore, &&lbl_kPop,  &&lbl_kNop,    &&lbl_kHalt,
      // fused superinstructions
      &&lbl_kFConstAdd, &&lbl_kFConstSub, &&lbl_kFConstMul,
      &&lbl_kFLoadLoadAdd, &&lbl_kFLoadLoadSub, &&lbl_kFLoadLoadMul,
      &&lbl_kFCmpLtJz, &&lbl_kFCmpLtJnz, &&lbl_kFCmpLeJz, &&lbl_kFCmpLeJnz,
      &&lbl_kFCmpEqJz, &&lbl_kFCmpEqJnz, &&lbl_kFCmpNeJz, &&lbl_kFCmpNeJnz,
      &&lbl_kFLoadConstCmpLtJz, &&lbl_kFLoadConstCmpLtJnz,
      &&lbl_kFLoadConstCmpLeJz, &&lbl_kFLoadConstCmpLeJnz,
      &&lbl_kFLoadConstCmpEqJz, &&lbl_kFLoadConstCmpEqJnz,
      &&lbl_kFLoadConstCmpNeJz, &&lbl_kFLoadConstCmpNeJnz,
      &&lbl_kFRetChained};
#endif

  // Current-frame state, mirrored from frames_.back() into locals so the
  // dispatch loop touches no vector bookkeeping. Kept deliberately small —
  // one pointer shy of x86-64's register budget — so the hot tail spills
  // nothing: frame-rare state (the predecoded body, the stack floor, the
  // code base) lives in frames_.back() and is reloaded only on call, return,
  // back edge, and OSR.
  const PredecodedInsn* ip = nullptr;
  std::int64_t* loc = nullptr;
  std::int64_t* stk = stack_.data();
  std::size_t sp = 0;

#if ITH_COMPUTED_GOTO
  const void* const* const labels = kLabels;
#else
  const void* const* const labels = nullptr;
#endif
  osr_failed_from_ = nullptr;
  osr_failed_to_ = nullptr;

  // Per-instruction accounting, identical (in both arithmetic and order of
  // double additions) to the reference engine's touch + cost + budget. The
  // probe address is reconstructed as line * line_bytes: the cache only
  // looks at addr / line_bytes, so any address inside the line is the same
  // probe as the reference engine's exact byte address. Must inline into
  // every handler tail: called once per dynamic instruction, and GCC's
  // many-call-sites heuristic otherwise outlines it into a real call.
  auto account = [&](const PredecodedInsn& pi) ITH_ALWAYS_INLINE {
    if (ic != nullptr && pi.line != current_line) {
      current_line = pi.line;
      ++stats.icache_probes;
      if (!ic->probe(pi.line * machine_.icache_line_bytes)) {
        ++stats.icache_misses;
        cycles += static_cast<double>(machine_.icache_miss_cycles);
      }
    }
    cycles += pi.base_cost;
    if (--remaining == 0) {
      throw resilience::BudgetExceededError(
          resilience::BudgetKind::kInstructions,
          "interpreter: instruction budget exceeded (runaway program?)");
    }
  };

  {
    const EnterState st = call_into(prog_.entry(), 0, sp, stats, labels);
    ip = st.ip;
    loc = st.loc;
    stk = st.stk;
    sp = st.sp;
  }

#if ITH_COMPUTED_GOTO

#define ITH_CASE(op) lbl_##op:
#define ITH_DISPATCH()                     \
  do {                                     \
    account(*ip);                          \
    goto* const_cast<void*>(ip->target);   \
  } while (0)
#define ITH_NEXT() \
  do {             \
    ++ip;          \
    ITH_DISPATCH(); \
  } while (0)

  ITH_DISPATCH();

#else  // dense-switch fallback

#define ITH_CASE(op) case XOp::op:
#define ITH_DISPATCH() continue
#define ITH_NEXT() \
  {                \
    ++ip;          \
    continue;      \
  }

  for (;;) {
    account(*ip);
    switch (ip->xop) {

#endif  // ITH_COMPUTED_GOTO

// Taken-branch tail shared by the plain jump handlers and every fused
// cmp+branch form. The branch instruction lives at ip[OFF] (OFF > 0 when a
// fused head carries a trailing branch component); a non-positive delta is
// a back edge — profile tick plus OSR window — exactly as in the reference
// engine, with the target computed relative to the branch's own pc.
//
// Plain block, NOT do{}while(0): in dense-switch mode ITH_DISPATCH() is a
// `continue` that must reach the dispatch for-loop — a do-while wrapper
// would swallow it and fall out of the macro into the next case label.
#define ITH_TAKEN_BRANCH(OFF)                                                  \
  {                                                                            \
    const std::int32_t d = (ip + (OFF))->a;                                    \
    if (d <= 0) {                                                              \
      const PredecodedBody& body = *frames_.back().pb;                         \
      source_.on_back_edge(body.cm->method_id);                                \
      const auto target =                                                      \
          static_cast<std::size_t>(((ip + (OFF)) - body.code.data()) + d);     \
      EnterState st;                                                           \
      if (try_osr(target, sp, stats, labels, st)) {                            \
        ip = st.ip;                                                            \
        loc = st.loc;                                                          \
        stk = st.stk;                                                          \
        sp = st.sp;                                                            \
        current_line = ~0ULL;                                                  \
        ITH_DISPATCH();                                                        \
      }                                                                        \
    }                                                                          \
    ip += (OFF) + d;                                                           \
    ITH_DISPATCH();                                                            \
  }

      ITH_CASE(kConst) {
        stk[sp++] = ip->a;
        ITH_NEXT();
      }
      ITH_CASE(kLoad) {
        stk[sp++] = loc[ip->a];
        ITH_NEXT();
      }
      ITH_CASE(kStore) {
        loc[ip->a] = stk[--sp];
        ITH_NEXT();
      }
      // Add/sub/mul wrap modulo 2^64 (computed in unsigned space: signed
      // overflow would be UB, and workload arithmetic may overflow).
      ITH_CASE(kAdd) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) +
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      ITH_CASE(kSub) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) -
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      ITH_CASE(kMul) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) *
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      // Division is total: by-zero yields 0, and INT64_MIN / -1 (which
      // would trap) is defined via the same wrap rule as negation.
      ITH_CASE(kDiv) {
        const std::int64_t rhs = stk[--sp];
        const std::int64_t lhs = stk[sp - 1];
        stk[sp - 1] = rhs == 0 ? 0
                      : (rhs == -1)
                          ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(lhs))
                          : lhs / rhs;
        ITH_NEXT();
      }
      ITH_CASE(kMod) {
        const std::int64_t rhs = stk[--sp];
        const std::int64_t lhs = stk[sp - 1];
        stk[sp - 1] = (rhs == 0 || rhs == -1) ? 0 : lhs % rhs;
        ITH_NEXT();
      }
      ITH_CASE(kNeg) {
        stk[sp - 1] = static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(stk[sp - 1]));
        ITH_NEXT();
      }
      ITH_CASE(kCmpLt) {
        --sp;
        stk[sp - 1] = stk[sp - 1] < stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpLe) {
        --sp;
        stk[sp - 1] = stk[sp - 1] <= stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpEq) {
        --sp;
        stk[sp - 1] = stk[sp - 1] == stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpNe) {
        --sp;
        stk[sp - 1] = stk[sp - 1] != stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      // Jumps advance ip by the predecoded pc-relative delta; a non-positive
      // delta is a back edge (profile tick + OSR window), handled off the
      // straight-line path with the frame's code base reloaded on demand.
      ITH_CASE(kJmp) { ITH_TAKEN_BRANCH(0); }
      ITH_CASE(kJz) {
        if (stk[--sp] == 0) ITH_TAKEN_BRANCH(0);
        ITH_NEXT();
      }
      ITH_CASE(kJnz) {
        if (stk[--sp] != 0) ITH_TAKEN_BRANCH(0);
        ITH_NEXT();
      }
      ITH_CASE(kCall) {
        cycles += call_cost;
        ++stats.calls;
        FastFrame& fr = frames_.back();
        const CompiledMethod& cur = *fr.pb->cm;
        if (!cur.origin.empty()) {
          const auto& [om, opc] = cur.origin[static_cast<std::size_t>(ip - fr.pb->code.data())];
          source_.on_call_site(om, opc);
        }
        fr.resume = ip + 1;  // return address
        const EnterState st = call_into(ip->a, ip->b, sp, stats, labels);
        ip = st.ip;
        loc = st.loc;
        stk = st.stk;
        sp = st.sp;
        current_line = ~0ULL;  // control transferred: next account probes callee
        ITH_DISPATCH();
      }
      // kFRetChained is the fused {kCall, kRet} mark on a caller's return:
      // same handler, entered either by normal dispatch (a jump can land on
      // the kRet directly) or by the chain loop below.
      ITH_CASE(kFRetChained)
      ITH_CASE(kRet) {
      ret_chain:
        const std::int64_t value = stk[--sp];
        const FastFrame& leaving = frames_.back();
        ITH_ASSERT(sp == leaving.stack_floor, "operand stack unbalanced at return");
        locals_.resize(leaving.locals_base);
        frames_.pop_back();
        stk[sp++] = value;
        current_line = ~0ULL;
        if (frames_.empty()) {
          stats.exit_value = value;  // entry method returned
          goto done;
        }
        const FastFrame& fr = frames_.back();
        ip = fr.resume;
        loc = locals_.data() + fr.locals_base;  // shrink never reallocates
        if (ip->xop == XOp::kFRetChained) {
          // The caller immediately returns our value: account the chained
          // kRet exactly as a dispatch would (probe + cost + budget), then
          // pop the next frame with a direct branch instead of an indirect
          // dispatch.
          account(*ip);
          goto ret_chain;
        }
        ITH_DISPATCH();
      }
      ITH_CASE(kGLoad) {
        const std::int64_t idx = stk[sp - 1];
        if (gsize == 0) {
          stk[sp - 1] = 0;
        } else {
          const auto g = static_cast<std::int64_t>(gsize);
          stk[sp - 1] = gbl[static_cast<std::size_t>(((idx % g) + g) % g)];
        }
        ITH_NEXT();
      }
      ITH_CASE(kGStore) {
        const std::int64_t value = stk[--sp];
        const std::int64_t idx = stk[--sp];
        if (gsize != 0) {
          const auto g = static_cast<std::int64_t>(gsize);
          gbl[static_cast<std::size_t>(((idx % g) + g) % g)] = value;
        }
        ITH_NEXT();
      }
      ITH_CASE(kPop) {
        --sp;
        ITH_NEXT();
      }
      ITH_CASE(kNop) { ITH_NEXT(); }
      ITH_CASE(kHalt) {
        stats.exit_value = sp == 0 ? 0 : stk[sp - 1];
        goto done;
      }

      // ---- fused superinstructions (predecode.cpp's pattern table) ----
      //
      // Cost-conservation rule: the dispatch that reached a fused head has
      // already accounted the head; the handler accounts every remaining
      // component with the SAME account() call, in original program order,
      // before using its operands. Cycles therefore accumulate in the exact
      // IEEE addition order of the unfused stream, icache lines are probed
      // per component, and the budget countdown throws at the identical
      // instruction — the fused win is eliminated dispatch and operand-stack
      // traffic, never skipped accounting.

// Like ITH_TAKEN_BRANCH these are plain blocks so dense-switch mode's
// `continue` dispatch reaches the for-loop instead of a do-while wrapper.
#define ITH_FUSED_CMP_BRANCH(CMP, TAKEN_ON)                               \
  {                                                                       \
    account(ip[1]);                                                       \
    sp -= 2;                                                              \
    if ((stk[sp] CMP stk[sp + 1]) == (TAKEN_ON)) ITH_TAKEN_BRANCH(1);     \
    ip += 2;                                                              \
    ITH_DISPATCH();                                                       \
  }

#define ITH_FUSED_GUARD(CMP, TAKEN_ON)                                    \
  {                                                                       \
    account(ip[1]);                                                       \
    account(ip[2]);                                                       \
    account(ip[3]);                                                       \
    if ((loc[ip->a] CMP static_cast<std::int64_t>(ip[1].a)) == (TAKEN_ON)) \
      ITH_TAKEN_BRANCH(3);                                                \
    ip += 4;                                                              \
    ITH_DISPATCH();                                                       \
  }

      ITH_CASE(kFConstAdd) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) +
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFConstSub) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) -
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFConstMul) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) *
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadAdd) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) +
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadSub) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) -
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadMul) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) *
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      // A kJz takes when the comparison was false, a kJnz when it was true.
      ITH_CASE(kFCmpLtJz) { ITH_FUSED_CMP_BRANCH(<, false); }
      ITH_CASE(kFCmpLtJnz) { ITH_FUSED_CMP_BRANCH(<, true); }
      ITH_CASE(kFCmpLeJz) { ITH_FUSED_CMP_BRANCH(<=, false); }
      ITH_CASE(kFCmpLeJnz) { ITH_FUSED_CMP_BRANCH(<=, true); }
      ITH_CASE(kFCmpEqJz) { ITH_FUSED_CMP_BRANCH(==, false); }
      ITH_CASE(kFCmpEqJnz) { ITH_FUSED_CMP_BRANCH(==, true); }
      ITH_CASE(kFCmpNeJz) { ITH_FUSED_CMP_BRANCH(!=, false); }
      ITH_CASE(kFCmpNeJnz) { ITH_FUSED_CMP_BRANCH(!=, true); }
      // The 4-long while-guard form never touches the operand stack: the
      // comparison reads the local and the immediate directly, and the two
      // transient pushes of the unfused form were dead on both paths.
      ITH_CASE(kFLoadConstCmpLtJz) { ITH_FUSED_GUARD(<, false); }
      ITH_CASE(kFLoadConstCmpLtJnz) { ITH_FUSED_GUARD(<, true); }
      ITH_CASE(kFLoadConstCmpLeJz) { ITH_FUSED_GUARD(<=, false); }
      ITH_CASE(kFLoadConstCmpLeJnz) { ITH_FUSED_GUARD(<=, true); }
      ITH_CASE(kFLoadConstCmpEqJz) { ITH_FUSED_GUARD(==, false); }
      ITH_CASE(kFLoadConstCmpEqJnz) { ITH_FUSED_GUARD(==, true); }
      ITH_CASE(kFLoadConstCmpNeJz) { ITH_FUSED_GUARD(!=, false); }
      ITH_CASE(kFLoadConstCmpNeJnz) { ITH_FUSED_GUARD(!=, true); }

#if !ITH_COMPUTED_GOTO
    }  // switch: every case dispatches or exits, control never falls out
  }
#endif

done:
  stats.instructions = budget_steps - remaining;
  stats.cycles = static_cast<std::uint64_t>(cycles);
  return stats;
}

#undef ITH_CASE
#undef ITH_DISPATCH
#undef ITH_NEXT
#undef ITH_TAKEN_BRANCH
#undef ITH_FUSED_CMP_BRANCH
#undef ITH_FUSED_GUARD

}  // namespace ith::rt
