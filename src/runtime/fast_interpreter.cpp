#include "runtime/fast_interpreter.hpp"

#include <algorithm>

#include "resilience/budget.hpp"
#include "support/error.hpp"

// Dispatch strategy: computed goto (direct threading) on compilers that
// support the labels-as-values extension, dense switch otherwise. Override
// with -DITH_COMPUTED_GOTO=0 to force the portable fallback.
#ifndef ITH_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define ITH_COMPUTED_GOTO 1
#else
#define ITH_COMPUTED_GOTO 0
#endif
#endif

#if ITH_COMPUTED_GOTO && defined(__GNUC__)
// Labels-as-values and computed goto are GNU extensions.
#pragma GCC diagnostic ignored "-Wpedantic"
#endif

#if defined(__GNUC__) || defined(__clang__)
#define ITH_ALWAYS_INLINE __attribute__((always_inline))
#define ITH_LIKELY(x) __builtin_expect(!!(x), 1)
#else
#define ITH_ALWAYS_INLINE
#define ITH_LIKELY(x) (x)
#endif

namespace ith::rt {

FastInterpreter::FastInterpreter(const bc::Program& prog, const MachineModel& machine,
                                 CodeSource& source, ICache* icache, InterpreterOptions options)
    : Engine(prog, machine, source, icache, options), predecoded_(prog.num_methods()) {
  frames_.reserve(64);
  locals_.reserve(1024);
  stack_.resize(256);
}

PredecodedBody& FastInterpreter::body_for(const CompiledMethod& cm) {
  ITH_ASSERT(cm.method_id >= 0 && static_cast<std::size_t>(cm.method_id) < predecoded_.size(),
             "compiled method with out-of-program method id");
  Slot& slot = predecoded_[static_cast<std::size_t>(cm.method_id)];
  if (slot.cm == &cm) return *slot.pb;
  if (slot.pb != nullptr) {
    // Recompiled: frames deeper in the stack may still execute the old
    // predecode, so retire it instead of destroying it.
    retired_.push_back(std::move(slot.pb));
  }
  slot.cm = &cm;
  slot.pb = std::make_unique<PredecodedBody>(predecode(cm, machine_, options_.fusion, &fusion_stats_));
  return *slot.pb;
}

PredecodedBody& FastInterpreter::attach(const CompiledMethod& cm, const void* const* labels) {
  PredecodedBody& body = body_for(cm);
  if (labels != nullptr && !body.threaded) {
    for (PredecodedInsn& pi : body.code) pi.target = labels[static_cast<int>(pi.xop)];
    body.threaded = true;
  }
  return body;
}

void FastInterpreter::ensure_stack(std::size_t need) {
  if (stack_.size() < need) stack_.resize(std::max(need, stack_.size() * 2));
}

FastInterpreter::EnterState FastInterpreter::call_into(bc::MethodId id, std::int32_t nargs,
                                                       std::size_t sp, ExecStats& stats,
                                                       const void* const* labels) {
  const CompiledMethod& cm = source_.invoke(id);
  ITH_ASSERT(cm.word_offset.size() == cm.body.size() + 1, "compiled method not finalized");
  const PredecodedBody& body = attach(cm, labels);
  const std::size_t locals_base = locals_.size();
  locals_.resize(locals_base + static_cast<std::size_t>(cm.body.num_locals()), 0);
  // Arguments: top of stack is the last argument.
  const auto n = static_cast<std::size_t>(nargs);
  ITH_CHECK(sp >= n, "argument stack underflow");
  sp -= n;
  std::int64_t* const args = locals_.data() + locals_base;
  const std::int64_t* const stk = stack_.data();
  for (std::size_t i = 0; i < n; ++i) args[i] = stk[sp + i];
  ensure_stack(sp + static_cast<std::size_t>(body.max_operand_depth) + 1);
  frames_.push_back(FastFrame{&body, nullptr, locals_base, sp});
  stats.max_frame_depth = std::max(stats.max_frame_depth, frames_.size());
  if (frames_.size() > options_.max_frames) {
    throw resilience::BudgetExceededError(resilience::BudgetKind::kFrameDepth,
                                          "simulated stack overflow (recursion too deep)");
  }
  if (locals_.size() + stack_.size() > options_.max_arena_words) {
    throw resilience::BudgetExceededError(
        resilience::BudgetKind::kArena,
        "interpreter: arena budget exceeded (locals + operand stack)");
  }
  return {body.code.data(), locals_.data() + locals_base, stack_.data(), sp, body.pool.data()};
}

bool FastInterpreter::try_osr(std::size_t target, std::size_t sp, ExecStats& stats,
                              const void* const* labels, EnterState& out) {
  FastFrame& fr = frames_.back();
  const CompiledMethod* cur = fr.pb->cm;
  const CompiledMethod* repl = source_.osr_replacement(*cur, target);
  if (repl == nullptr || repl == cur) return false;
  if (cur->tier != Tier::kBaseline) return false;
  if (cur == osr_failed_from_ && repl == osr_failed_to_) return false;

  const auto om = cur->origin.empty() ? cur->method_id : cur->origin[target].first;
  const auto opc =
      cur->origin.empty() ? static_cast<std::int32_t>(target) : cur->origin[target].second;
  const std::int64_t j = om < 0 ? -1 : repl->find_origin(om, opc);
  const auto runtime_depth = static_cast<int>(sp - fr.stack_floor);
  if (j < 0 || repl->stack_depth[static_cast<std::size_t>(j)] != runtime_depth) {
    osr_failed_from_ = cur;  // don't rescan this pair on every iteration
    osr_failed_to_ = repl;
    return false;
  }

  const auto old_locals = static_cast<std::size_t>(cur->body.num_locals());
  const auto new_locals = static_cast<std::size_t>(repl->body.num_locals());
  ITH_ASSERT(fr.locals_base + old_locals == locals_.size(), "OSR on a non-top frame");
  if (new_locals > old_locals) locals_.resize(fr.locals_base + new_locals, 0);
  const PredecodedBody& body = attach(*repl, labels);
  ensure_stack(fr.stack_floor + static_cast<std::size_t>(body.max_operand_depth) + 1);
  fr.pb = &body;
  ++stats.osr_transitions;
  out = {body.code.data() + j, locals_.data() + fr.locals_base, stack_.data(), sp,
         body.pool.data()};
  return true;
}

ExecStats FastInterpreter::run() {
  ExecStats stats;
  double cycles = 0.0;

  frames_.clear();
  locals_.clear();

  const std::size_t gsize = globals_.size();
  std::int64_t* const gbl = globals_.data();
  const double call_cost = static_cast<double>(machine_.call_overhead_cycles);
  ICache* const ic = icache_;
  std::uint64_t current_line = ~0ULL;
  // Budget as a countdown so the hot loop decrements a register instead of
  // incrementing stats and reloading the limit; `instructions` is recovered
  // on exit. +1 because the reference throws on the (budget+1)-th step.
  const std::uint64_t budget_steps =
      options_.max_instructions == ~0ULL ? ~0ULL : options_.max_instructions + 1;
  std::uint64_t remaining = budget_steps;

#if ITH_COMPUTED_GOTO
  static_assert(kNumXOps == 101, "update kLabels when the extended instruction set changes");
  static const void* const kLabels[kNumXOps] = {
      // bc::Op mirror region (unfused dispatch)
      &&lbl_kConst, &&lbl_kLoad,  &&lbl_kStore, &&lbl_kAdd,    &&lbl_kSub,  &&lbl_kMul,
      &&lbl_kDiv,   &&lbl_kMod,   &&lbl_kNeg,   &&lbl_kCmpLt,  &&lbl_kCmpLe, &&lbl_kCmpEq,
      &&lbl_kCmpNe, &&lbl_kJmp,   &&lbl_kJz,    &&lbl_kJnz,    &&lbl_kCall, &&lbl_kRet,
      &&lbl_kGLoad, &&lbl_kGStore, &&lbl_kPop,  &&lbl_kNop,    &&lbl_kHalt,
      // fused superinstructions
      &&lbl_kFConstAdd, &&lbl_kFConstSub, &&lbl_kFConstMul,
      &&lbl_kFLoadLoadAdd, &&lbl_kFLoadLoadSub, &&lbl_kFLoadLoadMul,
      &&lbl_kFCmpLtJz, &&lbl_kFCmpLtJnz, &&lbl_kFCmpLeJz, &&lbl_kFCmpLeJnz,
      &&lbl_kFCmpEqJz, &&lbl_kFCmpEqJnz, &&lbl_kFCmpNeJz, &&lbl_kFCmpNeJnz,
      &&lbl_kFLoadConstCmpLtJz, &&lbl_kFLoadConstCmpLtJnz,
      &&lbl_kFLoadConstCmpLeJz, &&lbl_kFLoadConstCmpLeJnz,
      &&lbl_kFLoadConstCmpEqJz, &&lbl_kFLoadConstCmpEqJnz,
      &&lbl_kFLoadConstCmpNeJz, &&lbl_kFLoadConstCmpNeJnz,
      &&lbl_kFRetChained,
      // immediate-operand fused forms
      &&lbl_kFAddImm, &&lbl_kFSubImm, &&lbl_kFMulImm,
      &&lbl_kFLoadLoadAddImm, &&lbl_kFLoadLoadSubImm, &&lbl_kFLoadLoadMulImm,
      &&lbl_kFCmpLtJzImm, &&lbl_kFCmpLtJnzImm, &&lbl_kFCmpLeJzImm, &&lbl_kFCmpLeJnzImm,
      &&lbl_kFCmpEqJzImm, &&lbl_kFCmpEqJnzImm, &&lbl_kFCmpNeJzImm, &&lbl_kFCmpNeJnzImm,
      &&lbl_kFLoadConstCmpLtJzImm, &&lbl_kFLoadConstCmpLtJnzImm,
      &&lbl_kFLoadConstCmpLeJzImm, &&lbl_kFLoadConstCmpLeJnzImm,
      &&lbl_kFLoadConstCmpEqJzImm, &&lbl_kFLoadConstCmpEqJnzImm,
      &&lbl_kFLoadConstCmpNeJzImm, &&lbl_kFLoadConstCmpNeJnzImm,
      &&lbl_kFIncLocal, &&lbl_kFDecLocal,
      // statement forms (all immediate-only)
      &&lbl_kFLoadAddK, &&lbl_kFLoadSubK, &&lbl_kFLoadMulK, &&lbl_kFLoadDivK,
      &&lbl_kFLoadModK,
      &&lbl_kFLocAddK, &&lbl_kFLocSubK, &&lbl_kFLocMulK, &&lbl_kFLocDivK,
      &&lbl_kFLocModK,
      &&lbl_kFLocAddLoc, &&lbl_kFLocSubLoc, &&lbl_kFLocMulLoc,
      &&lbl_kFAddStore, &&lbl_kFSubStore, &&lbl_kFMulStore, &&lbl_kFDivStore,
      &&lbl_kFModStore,
      &&lbl_kFCopyLocal, &&lbl_kFConstStore, &&lbl_kFGLoadK,
      &&lbl_kFDivImm, &&lbl_kFModImm,
      &&lbl_kFKCmpLtJz, &&lbl_kFKCmpLtJnz, &&lbl_kFKCmpLeJz, &&lbl_kFKCmpLeJnz,
      &&lbl_kFKCmpEqJz, &&lbl_kFKCmpEqJnz, &&lbl_kFKCmpNeJz, &&lbl_kFKCmpNeJnz};
#endif

  // Current-frame state, mirrored from frames_.back() into locals so the
  // dispatch loop touches no vector bookkeeping. Kept deliberately small —
  // one pointer shy of x86-64's register budget — so the hot tail spills
  // nothing: frame-rare state (the predecoded body, the stack floor, the
  // code base) lives in frames_.back() and is reloaded only on call, return,
  // back edge, and OSR.
  const PredecodedInsn* ip = nullptr;
  std::int64_t* loc = nullptr;
  std::int64_t* stk = stack_.data();
  std::size_t sp = 0;
  // The current body's operand side-pool base: immediate fused heads index
  // it by their 16-bit handle, so their handlers read nothing but the head
  // entry and one pool record. Reloaded wherever ip changes bodies (call,
  // return, OSR) — same discipline as loc.
  const FusedWindow* pool = nullptr;

#if ITH_COMPUTED_GOTO
  const void* const* const labels = kLabels;
#else
  const void* const* const labels = nullptr;
#endif
  osr_failed_from_ = nullptr;
  osr_failed_to_ = nullptr;

  // Per-instruction accounting, identical (in both arithmetic and order of
  // double additions) to the reference engine's touch + cost + budget. The
  // probe address is reconstructed as line * line_bytes: the cache only
  // looks at addr / line_bytes, so any address inside the line is the same
  // probe as the reference engine's exact byte address. Must inline into
  // every handler tail: called once per dynamic instruction, and GCC's
  // many-call-sites heuristic otherwise outlines it into a real call.
  // `account_at` is the raw (cost, line) form so immediate fused handlers
  // can feed it from their side-pool record — same probe, same IEEE
  // addition, same budget decrement as accounting the interior entry would
  // have been, without the interior cache-line touch.
  auto account_at = [&](double cost, std::uint64_t line) ITH_ALWAYS_INLINE {
    if (ic != nullptr && line != current_line) {
      current_line = line;
      ++stats.icache_probes;
      if (!ic->probe(line * machine_.icache_line_bytes)) {
        ++stats.icache_misses;
        cycles += static_cast<double>(machine_.icache_miss_cycles);
      }
    }
    cycles += cost;
    if (--remaining == 0) {
      throw resilience::BudgetExceededError(
          resilience::BudgetKind::kInstructions,
          "interpreter: instruction budget exceeded (runaway program?)");
    }
  };
  auto account = [&](const PredecodedInsn& pi)
                     ITH_ALWAYS_INLINE { account_at(pi.base_cost, pi.line); };

  {
    const EnterState st = call_into(prog_.entry(), 0, sp, stats, labels);
    ip = st.ip;
    loc = st.loc;
    stk = st.stk;
    sp = st.sp;
    pool = st.pool;
  }

#if ITH_COMPUTED_GOTO

#define ITH_CASE(op) lbl_##op:
#define ITH_DISPATCH()                     \
  do {                                     \
    account(*ip);                          \
    goto* const_cast<void*>(ip->target);   \
  } while (0)
#define ITH_NEXT() \
  do {             \
    ++ip;          \
    ITH_DISPATCH(); \
  } while (0)

  ITH_DISPATCH();

#else  // dense-switch fallback

#define ITH_CASE(op) case XOp::op:
#define ITH_DISPATCH() continue
#define ITH_NEXT() \
  {                \
    ++ip;          \
    continue;      \
  }

  for (;;) {
    account(*ip);
    switch (ip->xop) {

#endif  // ITH_COMPUTED_GOTO

// Taken-branch tail shared by the plain jump handlers and every fused
// cmp+branch form. The branch component's pc is ip[OFF] (OFF > 0 when a
// fused head carries a trailing branch component) and DELTA is its
// pc-relative jump delta — read from the interior entry by the plain
// forms, passed as a captured value (head `b` slot or side-pool `extra`)
// by the immediate forms, which is why the delta is a macro parameter and
// the target is computed by pointer arithmetic alone. A non-positive delta
// is a back edge — profile tick plus OSR window — exactly as in the
// reference engine.
//
// Plain block, NOT do{}while(0): in dense-switch mode ITH_DISPATCH() is a
// `continue` that must reach the dispatch for-loop — a do-while wrapper
// would swallow it and fall out of the macro into the next case label.
#define ITH_TAKEN_BRANCH_D(OFF, DELTA)                                         \
  {                                                                            \
    const std::int32_t d = (DELTA);                                            \
    if (d <= 0) {                                                              \
      const PredecodedBody& body = *frames_.back().pb;                         \
      source_.on_back_edge(body.cm->method_id);                                \
      const auto target =                                                      \
          static_cast<std::size_t>(((ip + (OFF)) - body.code.data()) + d);     \
      EnterState st;                                                           \
      if (try_osr(target, sp, stats, labels, st)) {                            \
        ip = st.ip;                                                            \
        loc = st.loc;                                                          \
        stk = st.stk;                                                          \
        sp = st.sp;                                                            \
        pool = st.pool;                                                        \
        current_line = ~0ULL;                                                  \
        ITH_DISPATCH();                                                        \
      }                                                                        \
    }                                                                          \
    ip += (OFF) + d;                                                           \
    ITH_DISPATCH();                                                            \
  }
#define ITH_TAKEN_BRANCH(OFF) ITH_TAKEN_BRANCH_D(OFF, (ip + (OFF))->a)

      ITH_CASE(kConst) {
        stk[sp++] = ip->a;
        ITH_NEXT();
      }
      ITH_CASE(kLoad) {
        stk[sp++] = loc[ip->a];
        ITH_NEXT();
      }
      ITH_CASE(kStore) {
        loc[ip->a] = stk[--sp];
        ITH_NEXT();
      }
      // Add/sub/mul wrap modulo 2^64 (computed in unsigned space: signed
      // overflow would be UB, and workload arithmetic may overflow).
      ITH_CASE(kAdd) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) +
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      ITH_CASE(kSub) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) -
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      ITH_CASE(kMul) {
        --sp;
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) *
                                                static_cast<std::uint64_t>(stk[sp]));
        ITH_NEXT();
      }
      // Division is total: by-zero yields 0, and INT64_MIN / -1 (which
      // would trap) is defined via the same wrap rule as negation.
      ITH_CASE(kDiv) {
        const std::int64_t rhs = stk[--sp];
        const std::int64_t lhs = stk[sp - 1];
        stk[sp - 1] = rhs == 0 ? 0
                      : (rhs == -1)
                          ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(lhs))
                          : lhs / rhs;
        ITH_NEXT();
      }
      ITH_CASE(kMod) {
        const std::int64_t rhs = stk[--sp];
        const std::int64_t lhs = stk[sp - 1];
        stk[sp - 1] = (rhs == 0 || rhs == -1) ? 0 : lhs % rhs;
        ITH_NEXT();
      }
      ITH_CASE(kNeg) {
        stk[sp - 1] = static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(stk[sp - 1]));
        ITH_NEXT();
      }
      ITH_CASE(kCmpLt) {
        --sp;
        stk[sp - 1] = stk[sp - 1] < stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpLe) {
        --sp;
        stk[sp - 1] = stk[sp - 1] <= stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpEq) {
        --sp;
        stk[sp - 1] = stk[sp - 1] == stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      ITH_CASE(kCmpNe) {
        --sp;
        stk[sp - 1] = stk[sp - 1] != stk[sp] ? 1 : 0;
        ITH_NEXT();
      }
      // Jumps advance ip by the predecoded pc-relative delta; a non-positive
      // delta is a back edge (profile tick + OSR window), handled off the
      // straight-line path with the frame's code base reloaded on demand.
      ITH_CASE(kJmp) { ITH_TAKEN_BRANCH(0); }
      ITH_CASE(kJz) {
        if (stk[--sp] == 0) ITH_TAKEN_BRANCH(0);
        ITH_NEXT();
      }
      ITH_CASE(kJnz) {
        if (stk[--sp] != 0) ITH_TAKEN_BRANCH(0);
        ITH_NEXT();
      }
      ITH_CASE(kCall) {
        cycles += call_cost;
        ++stats.calls;
        FastFrame& fr = frames_.back();
        const CompiledMethod& cur = *fr.pb->cm;
        if (!cur.origin.empty()) {
          const auto& [om, opc] = cur.origin[static_cast<std::size_t>(ip - fr.pb->code.data())];
          source_.on_call_site(om, opc);
        }
        fr.resume = ip + 1;  // return address
        const EnterState st = call_into(ip->a, ip->b, sp, stats, labels);
        ip = st.ip;
        loc = st.loc;
        stk = st.stk;
        sp = st.sp;
        pool = st.pool;
        current_line = ~0ULL;  // control transferred: next account probes callee
        ITH_DISPATCH();
      }
      // kFRetChained is the fused {kCall, kRet} mark on a caller's return:
      // same handler, entered either by normal dispatch (a jump can land on
      // the kRet directly) or by the chain loop below.
      ITH_CASE(kFRetChained)
      ITH_CASE(kRet) {
      ret_chain:
        const std::int64_t value = stk[--sp];
        const FastFrame& leaving = frames_.back();
        ITH_ASSERT(sp == leaving.stack_floor, "operand stack unbalanced at return");
        locals_.resize(leaving.locals_base);
        frames_.pop_back();
        stk[sp++] = value;
        current_line = ~0ULL;
        if (frames_.empty()) {
          stats.exit_value = value;  // entry method returned
          goto done;
        }
        const FastFrame& fr = frames_.back();
        ip = fr.resume;
        loc = locals_.data() + fr.locals_base;  // shrink never reallocates
        pool = fr.pb->pool.data();
        if (ip->xop == XOp::kFRetChained) {
          // The caller immediately returns our value: account the chained
          // kRet exactly as a dispatch would (probe + cost + budget), then
          // pop the next frame with a direct branch instead of an indirect
          // dispatch.
          account(*ip);
          goto ret_chain;
        }
        ITH_DISPATCH();
      }
      ITH_CASE(kGLoad) {
        const std::int64_t idx = stk[sp - 1];
        if (gsize == 0) {
          stk[sp - 1] = 0;
        } else {
          const auto g = static_cast<std::int64_t>(gsize);
          stk[sp - 1] = gbl[static_cast<std::size_t>(((idx % g) + g) % g)];
        }
        ITH_NEXT();
      }
      ITH_CASE(kGStore) {
        const std::int64_t value = stk[--sp];
        const std::int64_t idx = stk[--sp];
        if (gsize != 0) {
          const auto g = static_cast<std::int64_t>(gsize);
          gbl[static_cast<std::size_t>(((idx % g) + g) % g)] = value;
        }
        ITH_NEXT();
      }
      ITH_CASE(kPop) {
        --sp;
        ITH_NEXT();
      }
      ITH_CASE(kNop) { ITH_NEXT(); }
      ITH_CASE(kHalt) {
        stats.exit_value = sp == 0 ? 0 : stk[sp - 1];
        goto done;
      }

      // ---- fused superinstructions (predecode.cpp's pattern table) ----
      //
      // Cost-conservation rule: the dispatch that reached a fused head has
      // already accounted the head; the handler accounts every remaining
      // component with the SAME account() call, in original program order,
      // before using its operands. Cycles therefore accumulate in the exact
      // IEEE addition order of the unfused stream, icache lines are probed
      // per component, and the budget countdown throws at the identical
      // instruction — the fused win is eliminated dispatch and operand-stack
      // traffic, never skipped accounting.

// Like ITH_TAKEN_BRANCH these are plain blocks so dense-switch mode's
// `continue` dispatch reaches the for-loop instead of a do-while wrapper.
#define ITH_FUSED_CMP_BRANCH(CMP, TAKEN_ON)                               \
  {                                                                       \
    account(ip[1]);                                                       \
    sp -= 2;                                                              \
    if ((stk[sp] CMP stk[sp + 1]) == (TAKEN_ON)) ITH_TAKEN_BRANCH(1);     \
    ip += 2;                                                              \
    ITH_DISPATCH();                                                       \
  }

#define ITH_FUSED_GUARD(CMP, TAKEN_ON)                                    \
  {                                                                       \
    account(ip[1]);                                                       \
    account(ip[2]);                                                       \
    account(ip[3]);                                                       \
    if ((loc[ip->a] CMP static_cast<std::int64_t>(ip[1].a)) == (TAKEN_ON)) \
      ITH_TAKEN_BRANCH(3);                                                \
    ip += 4;                                                              \
    ITH_DISPATCH();                                                       \
  }

      ITH_CASE(kFConstAdd) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) +
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFConstSub) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) -
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFConstMul) {
        account(ip[1]);
        stk[sp - 1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(stk[sp - 1]) *
                                                static_cast<std::uint64_t>(ip->a));
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadAdd) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) +
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadSub) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) -
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadMul) {
        account(ip[1]);
        account(ip[2]);
        stk[sp++] = static_cast<std::int64_t>(static_cast<std::uint64_t>(loc[ip->a]) *
                                              static_cast<std::uint64_t>(loc[ip[1].a]));
        ip += 3;
        ITH_DISPATCH();
      }
      // A kJz takes when the comparison was false, a kJnz when it was true.
      ITH_CASE(kFCmpLtJz) { ITH_FUSED_CMP_BRANCH(<, false); }
      ITH_CASE(kFCmpLtJnz) { ITH_FUSED_CMP_BRANCH(<, true); }
      ITH_CASE(kFCmpLeJz) { ITH_FUSED_CMP_BRANCH(<=, false); }
      ITH_CASE(kFCmpLeJnz) { ITH_FUSED_CMP_BRANCH(<=, true); }
      ITH_CASE(kFCmpEqJz) { ITH_FUSED_CMP_BRANCH(==, false); }
      ITH_CASE(kFCmpEqJnz) { ITH_FUSED_CMP_BRANCH(==, true); }
      ITH_CASE(kFCmpNeJz) { ITH_FUSED_CMP_BRANCH(!=, false); }
      ITH_CASE(kFCmpNeJnz) { ITH_FUSED_CMP_BRANCH(!=, true); }
      // The 4-long while-guard form never touches the operand stack: the
      // comparison reads the local and the immediate directly, and the two
      // transient pushes of the unfused form were dead on both paths.
      ITH_CASE(kFLoadConstCmpLtJz) { ITH_FUSED_GUARD(<, false); }
      ITH_CASE(kFLoadConstCmpLtJnz) { ITH_FUSED_GUARD(<, true); }
      ITH_CASE(kFLoadConstCmpLeJz) { ITH_FUSED_GUARD(<=, false); }
      ITH_CASE(kFLoadConstCmpLeJnz) { ITH_FUSED_GUARD(<=, true); }
      ITH_CASE(kFLoadConstCmpEqJz) { ITH_FUSED_GUARD(==, false); }
      ITH_CASE(kFLoadConstCmpEqJnz) { ITH_FUSED_GUARD(==, true); }
      ITH_CASE(kFLoadConstCmpNeJz) { ITH_FUSED_GUARD(!=, false); }
      ITH_CASE(kFLoadConstCmpNeJnz) { ITH_FUSED_GUARD(!=, true); }

      // ---- immediate-operand fused forms ----
      //
      // Same cost-conservation rule as above, but the per-component
      // accounting data comes from the window's side-pool record and the
      // operands from the head's own slots: a fused dispatch touches the
      // 40-byte head entry plus one pool record, never the interiors. The
      // interiors still exist with their mirror xops for control transfers
      // landing mid-window — they are retired from the hot path, not from
      // the body.

// Batched window accounting. Within a captured window every icache-probe
// decision is static: after component k-1's account the running line IS
// component k-1's line, so probe_mask == 0 proves no interior component can
// probe (and with no ICache attached nothing probes at all). When the budget
// also cannot trip inside the window (remaining > N), accounting reduces to
// N bare cost additions — applied to `cycles` one at a time, in the same
// IEEE order account_at would — plus ONE budget decrement. This batch is
// where the immediate forms beat the serial probe/trap-checked chain. Any
// other case takes the exact per-component path, so probes, cycle streams,
// and the budget trip point stay bit-identical to unfused execution.
#define ITH_ACCOUNT_WINDOW_1(W)                                                \
  if (ITH_LIKELY((ic == nullptr || (W).probe_mask == 0) && remaining > 1)) {   \
    cycles += (W).cost[0];                                                     \
    remaining -= 1;                                                            \
  } else {                                                                     \
    account_at((W).cost[0], (W).line[0]);                                      \
  }
#define ITH_ACCOUNT_WINDOW_2(W)                                                \
  if (ITH_LIKELY((ic == nullptr || (W).probe_mask == 0) && remaining > 2)) {   \
    cycles += (W).cost[0];                                                     \
    cycles += (W).cost[1];                                                     \
    remaining -= 2;                                                            \
  } else {                                                                     \
    account_at((W).cost[0], (W).line[0]);                                      \
    account_at((W).cost[1], (W).line[1]);                                      \
  }
#define ITH_ACCOUNT_WINDOW_3(W)                                                \
  if (ITH_LIKELY((ic == nullptr || (W).probe_mask == 0) && remaining > 3)) {   \
    cycles += (W).cost[0];                                                     \
    cycles += (W).cost[1];                                                     \
    cycles += (W).cost[2];                                                     \
    remaining -= 3;                                                            \
  } else {                                                                     \
    account_at((W).cost[0], (W).line[0]);                                      \
    account_at((W).cost[1], (W).line[1]);                                      \
    account_at((W).cost[2], (W).line[2]);                                      \
  }

// The mirror handlers' arithmetic, as expression macros so the statement
// forms below can't drift from them. Wrapping math runs in unsigned space
// (signed overflow would be UB); division is total. Operands must be
// side-effect-free lvalues — several expand more than once.
#define ITH_WRAP_ADD(L, R)                                                   \
  static_cast<std::int64_t>(static_cast<std::uint64_t>(L) +                  \
                            static_cast<std::uint64_t>(R))
#define ITH_WRAP_SUB(L, R)                                                   \
  static_cast<std::int64_t>(static_cast<std::uint64_t>(L) -                  \
                            static_cast<std::uint64_t>(R))
#define ITH_WRAP_MUL(L, R)                                                   \
  static_cast<std::int64_t>(static_cast<std::uint64_t>(L) *                  \
                            static_cast<std::uint64_t>(R))
#define ITH_TOTAL_DIV(L, R)                                                  \
  ((R) == 0 ? 0                                                              \
   : (R) == -1                                                               \
       ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(L))        \
       : (L) / (R))
#define ITH_TOTAL_MOD(L, R) (((R) == 0 || (R) == -1) ? 0 : (L) % (R))

#define ITH_FUSED_CMP_BRANCH_IMM(CMP, TAKEN_ON)                             \
  {                                                                         \
    const FusedWindow& w = pool[ip->imm];                                   \
    ITH_ACCOUNT_WINDOW_1(w);                                                \
    sp -= 2;                                                                \
    if ((stk[sp] CMP stk[sp + 1]) == (TAKEN_ON)) ITH_TAKEN_BRANCH_D(1, ip->b); \
    ip += 2;                                                                \
    ITH_DISPATCH();                                                         \
  }

#define ITH_FUSED_GUARD_IMM(CMP, TAKEN_ON)                                  \
  {                                                                         \
    const FusedWindow& w = pool[ip->imm];                                   \
    ITH_ACCOUNT_WINDOW_3(w);                                                \
    if ((loc[ip->a] CMP static_cast<std::int64_t>(ip->b)) == (TAKEN_ON))    \
      ITH_TAKEN_BRANCH_D(3, w.extra);                                       \
    ip += 4;                                                                \
    ITH_DISPATCH();                                                         \
  }

// `const k; cmp; branch` with the selector already on the stack: pop it,
// compare against the head's own operand, branch by the captured delta.
#define ITH_FUSED_K_CMP_BRANCH(CMP, TAKEN_ON)                               \
  {                                                                         \
    const FusedWindow& w = pool[ip->imm];                                   \
    ITH_ACCOUNT_WINDOW_2(w);                                                \
    --sp;                                                                   \
    if ((stk[sp] CMP static_cast<std::int64_t>(ip->a)) == (TAKEN_ON))       \
      ITH_TAKEN_BRANCH_D(2, ip->b);                                         \
    ip += 3;                                                                \
    ITH_DISPATCH();                                                         \
  }

      ITH_CASE(kFAddImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        stk[sp - 1] = ITH_WRAP_ADD(stk[sp - 1], ip->a);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFSubImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        stk[sp - 1] = ITH_WRAP_SUB(stk[sp - 1], ip->a);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFMulImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        stk[sp - 1] = ITH_WRAP_MUL(stk[sp - 1], ip->a);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadAddImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_ADD(loc[ip->a], loc[ip->b]);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadSubImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_SUB(loc[ip->a], loc[ip->b]);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadLoadMulImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_MUL(loc[ip->a], loc[ip->b]);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFCmpLtJzImm) { ITH_FUSED_CMP_BRANCH_IMM(<, false); }
      ITH_CASE(kFCmpLtJnzImm) { ITH_FUSED_CMP_BRANCH_IMM(<, true); }
      ITH_CASE(kFCmpLeJzImm) { ITH_FUSED_CMP_BRANCH_IMM(<=, false); }
      ITH_CASE(kFCmpLeJnzImm) { ITH_FUSED_CMP_BRANCH_IMM(<=, true); }
      ITH_CASE(kFCmpEqJzImm) { ITH_FUSED_CMP_BRANCH_IMM(==, false); }
      ITH_CASE(kFCmpEqJnzImm) { ITH_FUSED_CMP_BRANCH_IMM(==, true); }
      ITH_CASE(kFCmpNeJzImm) { ITH_FUSED_CMP_BRANCH_IMM(!=, false); }
      ITH_CASE(kFCmpNeJnzImm) { ITH_FUSED_CMP_BRANCH_IMM(!=, true); }
      ITH_CASE(kFLoadConstCmpLtJzImm) { ITH_FUSED_GUARD_IMM(<, false); }
      ITH_CASE(kFLoadConstCmpLtJnzImm) { ITH_FUSED_GUARD_IMM(<, true); }
      ITH_CASE(kFLoadConstCmpLeJzImm) { ITH_FUSED_GUARD_IMM(<=, false); }
      ITH_CASE(kFLoadConstCmpLeJnzImm) { ITH_FUSED_GUARD_IMM(<=, true); }
      ITH_CASE(kFLoadConstCmpEqJzImm) { ITH_FUSED_GUARD_IMM(==, false); }
      ITH_CASE(kFLoadConstCmpEqJnzImm) { ITH_FUSED_GUARD_IMM(==, true); }
      ITH_CASE(kFLoadConstCmpNeJzImm) { ITH_FUSED_GUARD_IMM(!=, false); }
      ITH_CASE(kFLoadConstCmpNeJnzImm) { ITH_FUSED_GUARD_IMM(!=, true); }
      // The counted-loop increment/decrement: loc[a] op= b with zero
      // operand-stack traffic. Accounting order (load, const, arith) runs
      // before the store's account, and the local is only written after all
      // four components are accounted — so a budget trap mid-window leaves
      // loc untouched, exactly like the unfused stream whose kStore is the
      // last component.
      ITH_CASE(kFIncLocal) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[ip->a] = ITH_WRAP_ADD(loc[ip->a], ip->b);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFDecLocal) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[ip->a] = ITH_WRAP_SUB(loc[ip->a], ip->b);
        ip += 4;
        ITH_DISPATCH();
      }
      // ---- statement forms ----
      //
      // Same discipline throughout: account the whole window first (batched
      // when legal, exact otherwise), then compute with the mirror handlers'
      // expressions, then write. Locals and globals are only mutated after
      // every component is accounted, so a budget trap mid-window observes
      // the same heap/locals state as the unfused stream whose writing
      // component is last.
      ITH_CASE(kFLoadAddK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_ADD(loc[ip->a], ip->b);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadSubK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_SUB(loc[ip->a], ip->b);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadMulK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        stk[sp++] = ITH_WRAP_MUL(loc[ip->a], ip->b);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadDivK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        const std::int64_t lhs = loc[ip->a];
        const std::int64_t rhs = ip->b;
        stk[sp++] = ITH_TOTAL_DIV(lhs, rhs);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLoadModK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_2(w);
        const std::int64_t lhs = loc[ip->a];
        const std::int64_t rhs = ip->b;
        stk[sp++] = ITH_TOTAL_MOD(lhs, rhs);
        ip += 3;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocAddK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_ADD(loc[ip->a], ip->b);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocSubK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_SUB(loc[ip->a], ip->b);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocMulK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_MUL(loc[ip->a], ip->b);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocDivK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        const std::int64_t lhs = loc[ip->a];
        const std::int64_t rhs = ip->b;
        loc[w.extra] = ITH_TOTAL_DIV(lhs, rhs);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocModK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        const std::int64_t lhs = loc[ip->a];
        const std::int64_t rhs = ip->b;
        loc[w.extra] = ITH_TOTAL_MOD(lhs, rhs);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocAddLoc) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_ADD(loc[ip->a], loc[ip->b]);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocSubLoc) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_SUB(loc[ip->a], loc[ip->b]);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFLocMulLoc) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_3(w);
        loc[w.extra] = ITH_WRAP_MUL(loc[ip->a], loc[ip->b]);
        ip += 4;
        ITH_DISPATCH();
      }
      ITH_CASE(kFAddStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        sp -= 2;
        loc[ip->b] = ITH_WRAP_ADD(stk[sp], stk[sp + 1]);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFSubStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        sp -= 2;
        loc[ip->b] = ITH_WRAP_SUB(stk[sp], stk[sp + 1]);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFMulStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        sp -= 2;
        loc[ip->b] = ITH_WRAP_MUL(stk[sp], stk[sp + 1]);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFDivStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        sp -= 2;
        const std::int64_t lhs = stk[sp];
        const std::int64_t rhs = stk[sp + 1];
        loc[ip->b] = ITH_TOTAL_DIV(lhs, rhs);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFModStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        sp -= 2;
        const std::int64_t lhs = stk[sp];
        const std::int64_t rhs = stk[sp + 1];
        loc[ip->b] = ITH_TOTAL_MOD(lhs, rhs);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFCopyLocal) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        loc[ip->b] = loc[ip->a];
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFConstStore) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        loc[ip->b] = ip->a;
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFGLoadK) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        if (gsize == 0) {
          stk[sp++] = 0;
        } else {
          const auto g = static_cast<std::int64_t>(gsize);
          const std::int64_t idx = ip->a;
          stk[sp++] = gbl[static_cast<std::size_t>(((idx % g) + g) % g)];
        }
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFDivImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        const std::int64_t lhs = stk[sp - 1];
        const std::int64_t rhs = ip->a;
        stk[sp - 1] = ITH_TOTAL_DIV(lhs, rhs);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFModImm) {
        const FusedWindow& w = pool[ip->imm];
        ITH_ACCOUNT_WINDOW_1(w);
        const std::int64_t lhs = stk[sp - 1];
        const std::int64_t rhs = ip->a;
        stk[sp - 1] = ITH_TOTAL_MOD(lhs, rhs);
        ip += 2;
        ITH_DISPATCH();
      }
      ITH_CASE(kFKCmpLtJz) { ITH_FUSED_K_CMP_BRANCH(<, false); }
      ITH_CASE(kFKCmpLtJnz) { ITH_FUSED_K_CMP_BRANCH(<, true); }
      ITH_CASE(kFKCmpLeJz) { ITH_FUSED_K_CMP_BRANCH(<=, false); }
      ITH_CASE(kFKCmpLeJnz) { ITH_FUSED_K_CMP_BRANCH(<=, true); }
      ITH_CASE(kFKCmpEqJz) { ITH_FUSED_K_CMP_BRANCH(==, false); }
      ITH_CASE(kFKCmpEqJnz) { ITH_FUSED_K_CMP_BRANCH(==, true); }
      ITH_CASE(kFKCmpNeJz) { ITH_FUSED_K_CMP_BRANCH(!=, false); }
      ITH_CASE(kFKCmpNeJnz) { ITH_FUSED_K_CMP_BRANCH(!=, true); }

#if !ITH_COMPUTED_GOTO
    }  // switch: every case dispatches or exits, control never falls out
  }
#endif

done:
  stats.instructions = budget_steps - remaining;
  stats.cycles = static_cast<std::uint64_t>(cycles);
  return stats;
}

#undef ITH_CASE
#undef ITH_DISPATCH
#undef ITH_NEXT
#undef ITH_TAKEN_BRANCH
#undef ITH_TAKEN_BRANCH_D
#undef ITH_FUSED_CMP_BRANCH
#undef ITH_FUSED_GUARD
#undef ITH_FUSED_CMP_BRANCH_IMM
#undef ITH_FUSED_GUARD_IMM
#undef ITH_FUSED_K_CMP_BRANCH
#undef ITH_ACCOUNT_WINDOW_1
#undef ITH_ACCOUNT_WINDOW_2
#undef ITH_ACCOUNT_WINDOW_3
#undef ITH_WRAP_ADD
#undef ITH_WRAP_SUB
#undef ITH_WRAP_MUL
#undef ITH_TOTAL_DIV
#undef ITH_TOTAL_MOD

}  // namespace ith::rt
