// FastInterpreter: the predecoded direct-threaded execution engine.
//
// Semantics and cost accounting are bit-identical to ReferenceInterpreter
// (enforced by tests/runtime/engine_equivalence_test.cpp and the fuzz
// oracle's engine-differential tier); only the mechanics differ:
//
//   * each CompiledMethod is predecoded once (predecode.hpp) into a dense
//     stream of {dispatch target, pre-folded cycle cost, icache line/addr,
//     operands} — the hot loop does no op_info() lookup and no divisions;
//   * dispatch is direct-threaded via computed goto on GCC/Clang (dense
//     switch fallback when ITH_COMPUTED_GOTO is 0);
//   * the frame / locals / operand-stack arenas are members reused across
//     run() calls, so repeated VirtualMachine::run iterations allocate
//     nothing on the hot path.
//
// Predecoded bodies are cached per method id, keyed by the CompiledMethod's
// address; recompilation (a new address in the slot) retires the old
// predecode, which stays alive because deeper frames may still execute it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/interpreter.hpp"
#include "runtime/predecode.hpp"

namespace ith::rt {

class FastInterpreter final : public Engine {
 public:
  FastInterpreter(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
                  ICache* icache, InterpreterOptions options);

  ExecStats run() override;

  const FusionStats* fusion_stats() const override { return &fusion_stats_; }

 private:
  /// An active frame. `resume` is only meaningful for suspended frames
  /// (callers): the instruction after their kCall.
  struct FastFrame {
    const PredecodedBody* pb;
    const PredecodedInsn* resume;
    std::size_t locals_base;  // into locals_
    std::size_t stack_floor;  // operand-stack watermark at entry (minus args)
  };

  /// Returns the predecode of `cm`, translating on first sight. Replacing a
  /// recompiled method's predecode moves the old one to retired_.
  PredecodedBody& body_for(const CompiledMethod& cm);

  /// The dispatch loop's register state after entering a frame. Slow paths
  /// (call, OSR) are out-of-line member functions that RETURN this instead
  /// of mutating the loop's locals through reference captures — a local
  /// whose address escapes into a non-inlined closure is memory-homed by
  /// the compiler, which would put a stack reload in every handler tail.
  struct EnterState {
    const PredecodedInsn* ip;
    std::int64_t* loc;
    std::int64_t* stk;
    std::size_t sp;
    /// The entered body's operand side-pool base (immediate fused forms
    /// index it by the head's 16-bit handle). Mirrored into the dispatch
    /// loop alongside ip/loc so imm handlers reach their window in one
    /// indexed load instead of chasing frames_.back().pb.
    const FusedWindow* pool;
  };

  /// body_for + lazy threading: fills dispatch targets from `labels`
  /// (the run() loop's label table; null in dense-switch mode).
  PredecodedBody& attach(const CompiledMethod& cm, const void* const* labels);

  /// Invokes `id`, pops `nargs` arguments into the callee's locals, pushes
  /// the callee frame, and returns the state to resume dispatch at its
  /// first instruction.
  EnterState call_into(bc::MethodId id, std::int32_t nargs, std::size_t sp, ExecStats& stats,
                       const void* const* labels);

  /// On-stack replacement attempt at the top frame's bytecode index
  /// `target` (same guards and transfer rules as the reference engine).
  /// On success fills `out` with the state to resume in the replacement.
  bool try_osr(std::size_t target, std::size_t sp, ExecStats& stats, const void* const* labels,
               EnterState& out);

  /// Grows the operand stack to at least `need` slots.
  void ensure_stack(std::size_t need);

  struct Slot {
    const CompiledMethod* cm = nullptr;
    std::unique_ptr<PredecodedBody> pb;
  };
  std::vector<Slot> predecoded_;  // indexed by method id
  std::vector<std::unique_ptr<PredecodedBody>> retired_;
  FusionStats fusion_stats_;  // accumulated across predecodes

  // Execution arenas, reused across run() calls.
  std::vector<FastFrame> frames_;
  std::vector<std::int64_t> locals_;
  std::vector<std::int64_t> stack_;  // capacity managed explicitly; sp is in run()

  // Failed OSR pair memo (reset per run): don't rescan a rejected
  // replacement on every loop iteration.
  const CompiledMethod* osr_failed_from_ = nullptr;
  const CompiledMethod* osr_failed_to_ = nullptr;
};

}  // namespace ith::rt
