#include "runtime/interpreter.hpp"

#include <algorithm>

#include "resilience/budget.hpp"
#include "runtime/fast_interpreter.hpp"
#include "support/error.hpp"

namespace ith::rt {

void CodeSource::on_back_edge(bc::MethodId) {}
const CompiledMethod* CodeSource::osr_replacement(const CompiledMethod&, std::size_t) {
  return nullptr;
}
void CodeSource::on_call_site(bc::MethodId, std::int32_t) {}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFast: return "fast";
    case EngineKind::kReference: return "reference";
  }
  return "?";
}

Engine::Engine(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
               ICache* icache, InterpreterOptions options)
    : prog_(prog), machine_(machine), source_(source), icache_(icache), options_(options) {
  globals_.assign(prog.globals_size(), 0);
}

void Engine::reset_globals() { globals_.assign(prog_.globals_size(), 0); }

std::unique_ptr<Engine> make_engine(const bc::Program& prog, const MachineModel& machine,
                                    CodeSource& source, ICache* icache,
                                    InterpreterOptions options) {
  switch (options.engine) {
    case EngineKind::kReference:
      return std::make_unique<ReferenceInterpreter>(prog, machine, source, icache, options);
    case EngineKind::kFast:
      break;
  }
  return std::make_unique<FastInterpreter>(prog, machine, source, icache, options);
}

Interpreter::Interpreter(const bc::Program& prog, const MachineModel& machine, CodeSource& source,
                         ICache* icache, InterpreterOptions options)
    : engine_(make_engine(prog, machine, source, icache, options)), kind_(options.engine) {}

namespace {

struct Frame {
  const CompiledMethod* cm;
  std::size_t pc;
  std::size_t locals_base;  // into the shared locals arena
  std::size_t stack_floor;  // operand-stack watermark at entry (minus args)
};

}  // namespace

ExecStats ReferenceInterpreter::run() {
  ExecStats stats;
  double cycles = 0.0;

  std::vector<Frame> frames;
  std::vector<std::int64_t> locals;
  std::vector<std::int64_t> stack;
  frames.reserve(64);
  locals.reserve(1024);
  stack.reserve(256);

  const std::size_t gsize = globals_.size();
  std::uint64_t current_line = ~0ULL;

  auto touch = [&](const CompiledMethod& cm, std::size_t pc) {
    if (icache_ == nullptr) return;
    const std::uint64_t addr =
        cm.code_base + static_cast<std::uint64_t>(cm.word_offset[pc]) *
                           static_cast<std::uint64_t>(machine_.bytes_per_word);
    const std::uint64_t line = addr / machine_.icache_line_bytes;
    if (line == current_line) return;
    current_line = line;
    ++stats.icache_probes;
    if (!icache_->probe(addr)) {
      ++stats.icache_misses;
      cycles += static_cast<double>(machine_.icache_miss_cycles);
    }
  };

  auto push_frame = [&](bc::MethodId id, int nargs) {
    const CompiledMethod& cm = source_.invoke(id);
    ITH_ASSERT(cm.word_offset.size() == cm.body.size() + 1, "compiled method not finalized");
    const std::size_t locals_base = locals.size();
    locals.resize(locals_base + static_cast<std::size_t>(cm.body.num_locals()), 0);
    // Arguments: top of stack is the last argument.
    ITH_CHECK(stack.size() >= static_cast<std::size_t>(nargs), "argument stack underflow");
    for (int i = nargs - 1; i >= 0; --i) {
      locals[locals_base + static_cast<std::size_t>(i)] = stack.back();
      stack.pop_back();
    }
    frames.push_back(Frame{&cm, 0, locals_base, stack.size()});
    stats.max_frame_depth = std::max(stats.max_frame_depth, frames.size());
    if (frames.size() > options_.max_frames) {
      throw resilience::BudgetExceededError(resilience::BudgetKind::kFrameDepth,
                                            "simulated stack overflow (recursion too deep)");
    }
    if (locals.size() + stack.size() > options_.max_arena_words) {
      throw resilience::BudgetExceededError(
          resilience::BudgetKind::kArena,
          "interpreter: arena budget exceeded (locals + operand stack)");
    }
  };

  const double cpi[3] = {machine_.baseline_cpi, machine_.mid_cpi, machine_.opt_cpi};

  // On-stack replacement: transfer the live top frame into a better
  // compilation at a loop header. Only from baseline frames (their locals
  // are exactly the original method locals, so slot meanings line up; the
  // replacement's extra inlinee slots start zeroed like a fresh frame).
  const CompiledMethod* osr_failed_from = nullptr;
  const CompiledMethod* osr_failed_to = nullptr;
  auto attempt_osr = [&](Frame& fr2, std::size_t target) -> bool {
    const CompiledMethod* repl = source_.osr_replacement(*fr2.cm, target);
    if (repl == nullptr || repl == fr2.cm) return false;
    if (fr2.cm->tier != Tier::kBaseline) return false;
    if (fr2.cm == osr_failed_from && repl == osr_failed_to) return false;

    const auto om = fr2.cm->origin.empty() ? fr2.cm->method_id : fr2.cm->origin[target].first;
    const auto opc = fr2.cm->origin.empty() ? static_cast<std::int32_t>(target)
                                            : fr2.cm->origin[target].second;
    const std::int64_t j = om < 0 ? -1 : repl->find_origin(om, opc);
    const auto runtime_depth = static_cast<int>(stack.size() - fr2.stack_floor);
    if (j < 0 || repl->stack_depth[static_cast<std::size_t>(j)] != runtime_depth) {
      osr_failed_from = fr2.cm;  // don't rescan this pair on every iteration
      osr_failed_to = repl;
      return false;
    }

    const auto old_locals = static_cast<std::size_t>(fr2.cm->body.num_locals());
    const auto new_locals = static_cast<std::size_t>(repl->body.num_locals());
    ITH_ASSERT(fr2.locals_base + old_locals == locals.size(), "OSR on a non-top frame");
    if (new_locals > old_locals) locals.resize(fr2.locals_base + new_locals, 0);
    fr2.cm = repl;
    fr2.pc = static_cast<std::size_t>(j);
    current_line = ~0ULL;
    ++stats.osr_transitions;
    return true;
  };

  push_frame(prog_.entry(), 0);

  bool halted = false;
  while (!frames.empty() && !halted) {
    Frame& fr = frames.back();
    const CompiledMethod& cm = *fr.cm;
    ITH_ASSERT(fr.pc < cm.body.size(), "pc fell off the end of a compiled body");

    touch(cm, fr.pc);
    const bc::Instruction insn = cm.body.code()[fr.pc];
    const bc::OpInfo& info = bc::op_info(insn.op);
    cycles += static_cast<double>(info.machine_words) * cpi[static_cast<int>(cm.tier)];
    ++stats.instructions;
    if (stats.instructions > options_.max_instructions) {
      throw resilience::BudgetExceededError(
          resilience::BudgetKind::kInstructions,
          "interpreter: instruction budget exceeded (runaway program?)");
    }

    const std::size_t l = fr.locals_base;
    switch (insn.op) {
      case bc::Op::kConst:
        stack.push_back(insn.a);
        ++fr.pc;
        break;
      case bc::Op::kLoad:
        stack.push_back(locals[l + static_cast<std::size_t>(insn.a)]);
        ++fr.pc;
        break;
      case bc::Op::kStore:
        locals[l + static_cast<std::size_t>(insn.a)] = stack.back();
        stack.pop_back();
        ++fr.pc;
        break;
      case bc::Op::kAdd:
      case bc::Op::kSub:
      case bc::Op::kMul:
      case bc::Op::kDiv:
      case bc::Op::kMod:
      case bc::Op::kCmpLt:
      case bc::Op::kCmpLe:
      case bc::Op::kCmpEq:
      case bc::Op::kCmpNe: {
        const std::int64_t rhs = stack.back();
        stack.pop_back();
        const std::int64_t lhs = stack.back();
        // Add/sub/mul wrap modulo 2^64 (computed in unsigned space: signed
        // overflow would be UB, and workload arithmetic may overflow).
        const auto ul = static_cast<std::uint64_t>(lhs);
        const auto ur = static_cast<std::uint64_t>(rhs);
        std::int64_t r = 0;
        switch (insn.op) {
          case bc::Op::kAdd: r = static_cast<std::int64_t>(ul + ur); break;
          case bc::Op::kSub: r = static_cast<std::int64_t>(ul - ur); break;
          case bc::Op::kMul: r = static_cast<std::int64_t>(ul * ur); break;
          // Division is total: by-zero yields 0, and INT64_MIN / -1 (which
          // would trap) is defined via the same wrap rule as negation.
          case bc::Op::kDiv:
            r = rhs == 0 ? 0
                : (rhs == -1) ? static_cast<std::int64_t>(0 - ul)
                              : lhs / rhs;
            break;
          case bc::Op::kMod: r = (rhs == 0 || rhs == -1) ? 0 : lhs % rhs; break;
          case bc::Op::kCmpLt: r = lhs < rhs ? 1 : 0; break;
          case bc::Op::kCmpLe: r = lhs <= rhs ? 1 : 0; break;
          case bc::Op::kCmpEq: r = lhs == rhs ? 1 : 0; break;
          case bc::Op::kCmpNe: r = lhs != rhs ? 1 : 0; break;
          default: break;
        }
        stack.back() = r;
        ++fr.pc;
        break;
      }
      case bc::Op::kNeg:
        stack.back() = static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(stack.back()));
        ++fr.pc;
        break;
      case bc::Op::kJmp: {
        const auto target = static_cast<std::size_t>(insn.a);
        if (target <= fr.pc) {
          source_.on_back_edge(cm.method_id);
          if (attempt_osr(fr, target)) break;
        }
        fr.pc = target;
        break;
      }
      case bc::Op::kJz:
      case bc::Op::kJnz: {
        const std::int64_t v = stack.back();
        stack.pop_back();
        const bool taken = (insn.op == bc::Op::kJz) ? (v == 0) : (v != 0);
        if (taken) {
          const auto target = static_cast<std::size_t>(insn.a);
          if (target <= fr.pc) {
            source_.on_back_edge(cm.method_id);
            if (attempt_osr(fr, target)) break;
          }
          fr.pc = target;
        } else {
          ++fr.pc;
        }
        break;
      }
      case bc::Op::kCall: {
        cycles += static_cast<double>(machine_.call_overhead_cycles);
        ++stats.calls;
        if (!cm.origin.empty()) {
          const auto& [om, opc] = cm.origin[fr.pc];
          source_.on_call_site(om, opc);
        }
        ++fr.pc;  // return address
        push_frame(insn.a, insn.b);
        current_line = ~0ULL;  // control transferred: next touch probes callee
        break;
      }
      case bc::Op::kRet: {
        const std::int64_t value = stack.back();
        stack.pop_back();
        ITH_ASSERT(stack.size() == fr.stack_floor, "operand stack unbalanced at return");
        locals.resize(fr.locals_base);
        frames.pop_back();
        stack.push_back(value);
        current_line = ~0ULL;
        if (frames.empty()) {
          stats.exit_value = value;  // entry method returned
        }
        break;
      }
      case bc::Op::kGLoad: {
        const std::int64_t idx = stack.back();
        const std::size_t slot =
            gsize == 0 ? 0
                       : static_cast<std::size_t>(((idx % static_cast<std::int64_t>(gsize)) +
                                                   static_cast<std::int64_t>(gsize)) %
                                                  static_cast<std::int64_t>(gsize));
        stack.back() = gsize == 0 ? 0 : globals_[slot];
        ++fr.pc;
        break;
      }
      case bc::Op::kGStore: {
        const std::int64_t value = stack.back();
        stack.pop_back();
        const std::int64_t idx = stack.back();
        stack.pop_back();
        if (gsize != 0) {
          const std::size_t slot =
              static_cast<std::size_t>(((idx % static_cast<std::int64_t>(gsize)) +
                                        static_cast<std::int64_t>(gsize)) %
                                       static_cast<std::int64_t>(gsize));
          globals_[slot] = value;
        }
        ++fr.pc;
        break;
      }
      case bc::Op::kPop:
        stack.pop_back();
        ++fr.pc;
        break;
      case bc::Op::kNop:
        ++fr.pc;
        break;
      case bc::Op::kHalt:
        stats.exit_value = stack.empty() ? 0 : stack.back();
        halted = true;
        break;
    }
  }

  stats.cycles = static_cast<std::uint64_t>(cycles);
  return stats;
}

}  // namespace ith::rt
