// Pass bisection: name the guilty pass for a divergence.
//
// Given a program the oracle reports divergent, re-runs the differential
// check with each enabled OptimizerOptions flag toggled off individually.
// A flag whose removal makes the divergence disappear is recorded as
// guilty; several flags can be guilty at once when passes interact (one
// pass creating the shape another miscompiles).
#pragma once

#include <string>
#include <vector>

#include "bytecode/program.hpp"
#include "fuzz/oracle.hpp"
#include "opt/optimizer.hpp"

namespace ith::fuzz {

/// One toggleable optimizer pass flag.
struct PassToggle {
  const char* name;
  bool opt::OptimizerOptions::* field;
};

/// All bisectable flags, in OptimizerOptions declaration order.
const std::vector<PassToggle>& pass_toggles();

struct BisectResult {
  /// Divergence confirmed under the oracle's full options before toggling.
  bool reproduced = false;
  /// Flags whose individual removal eliminates the divergence.
  std::vector<std::string> guilty;
  /// Set when every single-flag toggle still diverges (bug outside the
  /// scalar passes, or only reproducible with a pass *combination*).
  bool unresolved = false;

  std::string to_string() const;
};

BisectResult bisect_passes(const bc::Program& prog, const DifferentialOracle& oracle);

}  // namespace ith::fuzz
