// Adversarial program generator for differential fuzzing.
//
// Unlike wl::make_synthetic (well-behaved structured shapes for benchmark
// realism), this generator composes arbitrary *verified* control flow from a
// seeded grammar over the full opcode set: nested branches, bounded loops,
// irreducible-looking jump ladders (permutation trampolines whose emission
// order differs from their visit order), dispatcher chains, fuel-guarded
// direct/mutual recursion, unreachable "dead" regions holding otherwise
// illegal instruction sequences, and boundary constants (INT32 extremes).
//
// Termination is guaranteed by construction: every generated method's first
// argument is a fuel counter, every call site passes a strictly smaller
// fuel, every method opens with a fuel guard, and every loop counts a
// dedicated counter local down to zero. The verifier accepts every program
// this generator emits; a throw from generate_adversarial is a generator
// bug, not an input problem.
#pragma once

#include <cstdint>

#include "bytecode/program.hpp"

namespace ith::fuzz {

struct GeneratorSpec {
  std::uint64_t seed = 1;
  int min_methods = 3;        ///< callable methods, excluding the entry
  int max_methods = 7;
  int min_stmts = 3;          ///< top-level statements per method body
  int max_stmts = 9;
  int max_expr_depth = 4;     ///< recursion bound for expression trees
  int max_block_depth = 3;    ///< nesting bound for if/loop/ladder blocks
  int max_calls_per_body = 4; ///< static call sites per method body
  int max_loop_trip = 6;      ///< loop counters start in [1, max_loop_trip]
  std::int64_t min_fuel = 3;  ///< entry fuel (bounds every call chain)
  std::int64_t max_fuel = 7;
  std::size_t globals = 64;   ///< global data segment size
  bool allow_dead_regions = true;
};

/// Generates a verified adversarial program. Deterministic in `spec.seed`
/// (byte-identical output for equal specs; guarded by the determinism test).
bc::Program generate_adversarial(const GeneratorSpec& spec);

}  // namespace ith::fuzz
