#include "fuzz/bisect.hpp"

#include <sstream>

namespace ith::fuzz {

const std::vector<PassToggle>& pass_toggles() {
  static const std::vector<PassToggle> kToggles = {
      {"inlining", &opt::OptimizerOptions::enable_inlining},
      {"folding", &opt::OptimizerOptions::enable_folding},
      {"copyprop", &opt::OptimizerOptions::enable_copyprop},
      {"dce", &opt::OptimizerOptions::enable_dce},
      {"branch_simplify", &opt::OptimizerOptions::enable_branch_simplify},
      {"algebraic", &opt::OptimizerOptions::enable_algebraic},
      {"compare_fusion", &opt::OptimizerOptions::enable_compare_fusion},
      {"tail_recursion", &opt::OptimizerOptions::enable_tail_recursion},
  };
  return kToggles;
}

std::string BisectResult::to_string() const {
  if (!reproduced) return "not reproduced";
  if (unresolved) return "unresolved (no single pass flag explains the divergence)";
  std::ostringstream os;
  os << "guilty:";
  for (const std::string& g : guilty) os << " " << g;
  return os.str();
}

BisectResult bisect_passes(const bc::Program& prog, const DifferentialOracle& oracle) {
  BisectResult result;
  const opt::OptimizerOptions base = oracle.options();

  const OracleVerdict full = oracle.check_with_options(prog, base);
  if (full.reference_failed || !full.diverged) return result;
  result.reproduced = true;

  for (const PassToggle& toggle : pass_toggles()) {
    if (!(base.*(toggle.field))) continue;  // already off: cannot be guilty
    opt::OptimizerOptions opts = base;
    opts.*(toggle.field) = false;
    const OracleVerdict v = oracle.check_with_options(prog, opts);
    if (!v.reference_failed && !v.diverged) result.guilty.emplace_back(toggle.name);
  }
  result.unresolved = result.guilty.empty();
  return result;
}

}  // namespace ith::fuzz
