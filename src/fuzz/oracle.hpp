// Multi-tier differential execution oracle.
//
// Runs one program four ways that must agree on every observable —
// exit value, final global data segment, and verifier acceptance of every
// transformed body:
//
//   reference  — the unoptimized program, plain interpretation
//   O1         — every method statically optimized under the Jikes
//                heuristic with seed-randomized InlineParams and
//                seed-randomized OptimizerOptions, then interpreted
//   O2         — every method statically optimized under the
//                always-inline heuristic (maximal splicing) with the same
//                OptimizerOptions, then interpreted
//   adaptive   — the full VirtualMachine in the Adapt scenario with
//                seed-randomized tiering thresholds and OSR, two
//                iterations (exercises recompilation and frame transfer)
//
// plus an engine-differential tier: the unoptimized program is executed by
// both interpreter engines (reference switch dispatch and predecoded
// direct-threaded fast engine) with I-cache simulation on, and the complete
// ExecStats — cycles, instructions, calls, icache probes/misses, OSR
// transitions, max frame depth, exit value — must be bit-identical, along
// with the final globals. The optimized tiers themselves run under an
// engine chosen per seed, so both engines stay continuously fuzzed.
//
// A further budget-classification tier re-runs the unoptimized program on
// both engines under a deliberately tight RunBudget (half the reference
// run's instructions, half its frame depth) and asserts the engines agree
// on the resilience::EvalOutcome *classification* — same budget axis
// tripped, or both Ok with equal exit values. This pins down the guarded-
// evaluation layer the tuner depends on: an engine that trips the wrong
// budget (or none) under pressure corrupts penalized fitness silently.
//
// Finally a signature-equivalence tier guards the tuner's decision-
// signature cache (opt/decision_probe.hpp): it perturbs the seed's
// InlineParams a few times, and whenever a perturbed vector maps to the
// *same* decision signature as the original over this program, both are run
// through the full adaptive VM — every iteration's ExecStats, the compile
// statistics, and the final globals must be bit-identical. A divergence
// here means the signature is collapsing params that are in fact
// behaviourally different, i.e. the evaluation cache would return wrong
// fitness.
//
// The reference run also sets the dynamic-instruction budget for the other
// tiers, so a transformation that introduces non-termination is reported as
// a divergence rather than hanging the fuzzer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/program.hpp"
#include "heuristics/inline_params.hpp"
#include "opt/optimizer.hpp"
#include "runtime/interpreter.hpp"

namespace ith::fuzz {

/// Deliberate miscompilations the oracle can inject after optimization —
/// used only by tests to prove the fuzzer catches, bisects, and shrinks a
/// real bug. Each plant rides on one OptimizerOptions flag so pass
/// bisection has a well-defined correct answer.
enum class PlantedBug : std::uint8_t {
  kNone,
  /// Folds residual `const a; const b; add` triples (the overflow cases the
  /// real folder deliberately skips) by clamping the sum into the int32
  /// immediate field — wrong whenever the true sum does not fit. Active
  /// only when OptimizerOptions::enable_folding is set.
  kFoldOverflow,
};

struct OracleConfig {
  /// Seed for randomized InlineParams / OptimizerOptions / VM thresholds.
  std::uint64_t seed = 1;
  /// Dynamic-instruction budget for the reference run; a program exceeding
  /// it is reported as reference_failed (skip it, it is too hot to fuzz).
  std::uint64_t reference_budget = 8'000'000;
  /// Optimized tiers get reference_count * budget_slack + reference_budget/8
  /// instructions before being declared divergent (non-terminating).
  std::uint64_t budget_slack = 8;
  int vm_iterations = 2;
  PlantedBug planted_bug = PlantedBug::kNone;
  /// When set, overrides the seed-randomized optimizer options/params —
  /// used by the planted-bug tests to pin a known configuration.
  std::optional<opt::OptimizerOptions> forced_options;
  std::optional<heur::InlineParams> forced_params;
  /// When set, pins the execution engine for the optimized tiers instead of
  /// the seed-randomized coin flip. The engine-differential tier always
  /// runs both engines regardless.
  std::optional<rt::EngineKind> forced_engine;
};

enum class TierKind : std::uint8_t {
  kReference,
  kO1,
  kO2,
  kAdaptive,
  kEngineDiff,
  kBudgetDiff,
  kSigEquiv,
  /// PassManager-vs-legacy: every method optimized through the declarative
  /// pipeline (the Optimizer facade) must be bit-identical — body, per-
  /// instruction provenance, and OptStats — to the frozen reference_optimize
  /// orchestration under the same options/params.
  kPipelineDiff,
};

const char* tier_name(TierKind t);

/// One observed disagreement between the reference and an optimized tier.
struct Divergence {
  TierKind tier = TierKind::kReference;
  std::string detail;  ///< human-readable: what differed and how
};

struct OracleVerdict {
  bool reference_failed = false;  ///< reference itself trapped (skip seed)
  std::string reference_error;
  bool diverged = false;
  std::vector<Divergence> divergences;

  std::string summary() const;
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(OracleConfig config);

  /// Full four-tier differential check under this oracle's options.
  OracleVerdict check(const bc::Program& prog) const;

  /// Same check with explicit optimizer options (pass bisection hook).
  OracleVerdict check_with_options(const bc::Program& prog,
                                   const opt::OptimizerOptions& options) const;

  const opt::OptimizerOptions& options() const { return options_; }
  const heur::InlineParams& params() const { return params_; }
  const OracleConfig& config() const { return config_; }
  rt::EngineKind engine() const { return engine_; }

 private:
  OracleConfig config_;
  opt::OptimizerOptions options_;   // seed-randomized (or forced)
  heur::InlineParams params_;       // seed-randomized (or forced)
  std::uint64_t hot_method_threshold_ = 400;
  std::uint64_t hot_site_threshold_ = 300;
  std::uint64_t rehot_multiplier_ = 12;
  bool enable_osr_ = false;
  rt::EngineKind engine_ = rt::EngineKind::kFast;  // seed-randomized (or forced)
};

/// Applies `bug` to an optimized body (post-optimizer, pre-execution).
/// Exposed for the shrinker/bisection tests. No-op for kNone or when the
/// carrying pass flag is disabled.
std::size_t apply_planted_bug(bc::Method& body, PlantedBug bug,
                              const opt::OptimizerOptions& options);

}  // namespace ith::fuzz
