#include "fuzz/generator.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "bytecode/builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ith::fuzz {

namespace {

constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();
constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();

/// Signature of a generated method, fixed before any body is emitted so
/// call sites (including forward and mutual recursion) can be generated
/// against the full method table.
struct MethodPlan {
  std::string name;
  int num_args = 1;  // arg 0 is always the fuel counter
};

/// Emits one method body from the grammar. Local slot layout:
///   [0, num_args)                  arguments (arg 0 = fuel; entry: slot 0
///                                  is a pseudo-fuel local it initializes)
///   [general_lo, general_hi)      general slots, free for store statements
///   [ctrl_lo, ctrl_hi)            control slots: loop counters and
///                                  dispatcher selectors, allocated as a
///                                  stack so nested blocks never clobber an
///                                  enclosing block's counter
class BodyGen {
 public:
  BodyGen(bc::MethodBuilder& mb, const GeneratorSpec& spec, Pcg32 rng,
          const std::vector<MethodPlan>& plans, bool is_entry, int num_args, int general_lo,
          int general_hi, int ctrl_lo, int ctrl_hi)
      : mb_(mb),
        spec_(spec),
        rng_(rng),
        plans_(plans),
        is_entry_(is_entry),
        num_args_(num_args),
        general_lo_(general_lo),
        general_hi_(general_hi),
        ctrl_lo_(ctrl_lo),
        ctrl_next_(ctrl_lo),
        ctrl_hi_(ctrl_hi),
        calls_left_(spec.max_calls_per_body) {}

  void emit_body() {
    if (is_entry_) {
      // Entry has no arguments: materialize the fuel counter in slot 0.
      mb_.const_(rng_.range(spec_.min_fuel, spec_.max_fuel)).store(kFuelSlot);
    } else {
      // Fuel guard: fuel <= 0 returns a constant immediately, so every
      // call chain (including mutual recursion) is bounded by entry fuel.
      const std::string go = fresh_label("go");
      mb_.load(kFuelSlot).const_(0).cmple().jz(go);
      mb_.const_(small_const()).ret();
      mb_.label(go);
    }

    const int stmts = static_cast<int>(rng_.range(spec_.min_stmts, spec_.max_stmts));
    for (int i = 0; i < stmts; ++i) statement(0);

    if (is_entry_) {
      // Publish something observable (globals[k] = expr), then halt with an
      // expression result on the stack.
      mb_.const_(static_cast<std::int64_t>(rng_.bounded(static_cast<std::uint32_t>(
          std::max<std::size_t>(spec_.globals, 1)))));
      expression(2);
      mb_.gstore();
      expression(2);
      mb_.halt();
    } else {
      expression(static_cast<int>(rng_.range(1, spec_.max_expr_depth)));
      mb_.ret();
    }
  }

 private:
  static constexpr int kFuelSlot = 0;

  std::string fresh_label(const char* tag) {
    return std::string("L") + std::to_string(label_counter_++) + "_" + tag;
  }

  int general_slot() { return static_cast<int>(rng_.range(general_lo_, general_hi_ - 1)); }

  /// Boundary-biased constant pool.
  std::int64_t constant() {
    switch (rng_.bounded(10)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return -1;
      case 3: return kMax32;
      case 4: return kMin32;
      case 5: return kMax32 - 1;
      case 6: return kMin32 + 1;
      case 7: return rng_.range(-128, 127);
      case 8: return rng_.range(-65536, 65535);
      default: return rng_.range(kMin32, kMax32);
    }
  }

  std::int64_t small_const() { return rng_.range(-7, 7); }

  // --- expressions: net stack effect exactly +1 ---------------------------

  void expression(int depth) {
    if (depth <= 0) {
      terminal();
      return;
    }
    switch (rng_.bounded(10)) {
      case 0:
      case 1:
        terminal();
        break;
      case 2: {  // unary negation
        expression(depth - 1);
        mb_.neg();
        break;
      }
      case 3: {  // global load with computed index
        expression(depth - 1);
        mb_.gload();
        break;
      }
      case 4: {  // conditional expression: branches at non-zero stack depth
        const std::string other = fresh_label("else");
        const std::string join = fresh_label("join");
        expression(depth - 1);
        mb_.jz(other);
        expression(depth - 1);
        mb_.jmp(join);
        mb_.label(other);
        expression(depth - 1);
        mb_.label(join);
        break;
      }
      case 5: {  // call (fuel-decremented), if budget remains
        if (!call_expression(depth)) binary(depth);
        break;
      }
      default:
        binary(depth);
        break;
    }
  }

  void terminal() {
    switch (rng_.bounded(4)) {
      case 0:
        mb_.load(general_slot());
        break;
      case 1:
        if (num_args_ > 0 || is_entry_) {
          mb_.load(static_cast<int>(rng_.bounded(
              static_cast<std::uint32_t>(is_entry_ ? 1 : num_args_))));
          break;
        }
        [[fallthrough]];
      case 2:
        mb_.const_(constant());
        break;
      default:
        mb_.const_(constant()).gload();
        break;
    }
  }

  void binary(int depth) {
    expression(depth - 1);
    expression(depth - 1);
    switch (rng_.bounded(9)) {
      case 0: mb_.add(); break;
      case 1: mb_.sub(); break;
      case 2: mb_.mul(); break;
      case 3: mb_.div(); break;
      case 4: mb_.mod(); break;
      case 5: mb_.cmplt(); break;
      case 6: mb_.cmple(); break;
      case 7: mb_.cmpeq(); break;
      default: mb_.cmpne(); break;
    }
  }

  bool call_expression(int depth) {
    if (calls_left_ <= 0 || plans_.empty()) return false;
    --calls_left_;
    const auto& callee = plans_[rng_.bounded(static_cast<std::uint32_t>(plans_.size()))];
    // Fuel argument: strictly smaller than our fuel, so chains terminate.
    mb_.load(kFuelSlot).const_(1).sub();
    for (int i = 1; i < callee.num_args; ++i) expression(std::max(depth - 2, 0));
    mb_.call(callee.name, callee.num_args);
    return true;
  }

  // --- statements: enter and leave at stack depth 0 -----------------------

  void statement(int block_depth) {
    const bool can_nest = block_depth < spec_.max_block_depth && ctrl_next_ < ctrl_hi_;
    switch (rng_.bounded(can_nest ? 10 : 5)) {
      case 0:  // local store
        expression(static_cast<int>(rng_.range(1, spec_.max_expr_depth)));
        mb_.store(general_slot());
        break;
      case 1: {  // global store: index then value
        expression(1);
        expression(static_cast<int>(rng_.range(1, spec_.max_expr_depth)));
        mb_.gstore();
        break;
      }
      case 2:  // evaluate for effect, discard
        expression(static_cast<int>(rng_.range(1, spec_.max_expr_depth)));
        mb_.pop();
        break;
      case 3:
        mb_.nop();
        break;
      case 4:
        if (spec_.allow_dead_regions) {
          dead_region();
          break;
        }
        mb_.nop();
        break;
      case 5:
      case 6:
        if_statement(block_depth);
        break;
      case 7:
        loop_statement(block_depth);
        break;
      case 8:
        ladder_statement();
        break;
      default:
        dispatcher_statement(block_depth);
        break;
    }
  }

  /// A nested statement sequence (if/loop bodies).
  void block(int block_depth) {
    const int n = static_cast<int>(rng_.range(1, 3));
    for (int i = 0; i < n; ++i) statement(block_depth);
  }

  void if_statement(int block_depth) {
    const std::string other = fresh_label("ifelse");
    const std::string end = fresh_label("ifend");
    expression(2);
    mb_.jz(other);
    block(block_depth + 1);
    mb_.jmp(end);
    mb_.label(other);
    if (rng_.chance(0.6)) {
      block(block_depth + 1);
    } else {
      mb_.nop();
    }
    mb_.label(end);
  }

  void loop_statement(int block_depth) {
    const int counter = ctrl_next_++;
    const std::string head = fresh_label("head");
    const std::string end = fresh_label("end");
    mb_.const_(rng_.range(1, spec_.max_loop_trip)).store(counter);
    mb_.label(head);
    if (rng_.chance(0.5)) {
      // Variant A: exit when the counter hits zero.
      mb_.load(counter).jz(end);
    } else {
      // Variant B: exit when counter <= 0 (exercises cmple + jnz).
      mb_.load(counter).const_(0).cmple().jnz(end);
    }
    block(block_depth + 1);
    mb_.load(counter).const_(1).sub().store(counter);
    mb_.jmp(head);
    mb_.label(end);
    --ctrl_next_;
  }

  /// Irreducible-looking trampoline: blocks are emitted in index order but
  /// visited in a random permutation, so jumps criss-cross forwards and
  /// backwards. Each block is visited exactly once, so the ladder
  /// terminates.
  void ladder_statement() {
    const int k = static_cast<int>(rng_.range(3, 6));
    std::vector<int> order(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = k - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng_.bounded(static_cast<std::uint32_t>(i + 1))]);
    }
    std::vector<std::string> labels;
    labels.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) labels.push_back(fresh_label("rung"));
    const std::string exit = fresh_label("exit");

    mb_.jmp(labels[static_cast<std::size_t>(order[0])]);
    for (int b = 0; b < k; ++b) {
      mb_.label(labels[static_cast<std::size_t>(b)]);
      simple_statement();
      const auto pos = static_cast<std::size_t>(
          std::find(order.begin(), order.end(), b) - order.begin());
      mb_.jmp(pos + 1 < order.size() ? labels[static_cast<std::size_t>(order[pos + 1])] : exit);
    }
    mb_.label(exit);
  }

  /// Dispatcher chain: a selector local tested against consecutive
  /// constants, each arm running a statement then jumping out.
  void dispatcher_statement(int block_depth) {
    const int sel = ctrl_next_++;
    const std::string end = fresh_label("dend");
    expression(2);
    mb_.store(sel);
    const int ways = static_cast<int>(rng_.range(2, 4));
    for (int w = 0; w < ways; ++w) {
      const std::string next = fresh_label("darm");
      mb_.load(sel).const_(w).cmpeq().jz(next);
      statement(block_depth + 1);
      mb_.jmp(end);
      mb_.label(next);
    }
    simple_statement();  // default arm
    mb_.label(end);
    --ctrl_next_;
  }

  /// A statement with no nested control flow (ladder rungs, default arms).
  void simple_statement() {
    switch (rng_.bounded(4)) {
      case 0:
        expression(1);
        mb_.store(general_slot());
        break;
      case 1:
        expression(1);
        expression(1);
        mb_.gstore();
        break;
      case 2:
        expression(1);
        mb_.pop();
        break;
      default:
        mb_.nop();
        break;
    }
  }

  /// Unreachable region: a jump over instructions that only need pass-1
  /// validity (operands in range). The verifier's stack-shape analysis
  /// never visits them, so stack-underflowing sequences, stray returns and
  /// halts are all legal here — exactly the shapes that stress unreachable
  /// handling in the optimizer's passes.
  void dead_region() {
    const std::string skip = fresh_label("skip");
    mb_.jmp(skip);
    const int n = static_cast<int>(rng_.range(1, 5));
    for (int i = 0; i < n; ++i) {
      switch (rng_.bounded(10)) {
        case 0: mb_.add(); break;
        case 1: mb_.mul(); break;
        case 2: mb_.pop(); break;
        case 3: mb_.const_(constant()); break;
        case 4: mb_.store(general_slot()); break;
        case 5: mb_.ret(); break;
        case 6: mb_.jmp(skip); break;
        case 7: mb_.neg(); break;
        case 8: mb_.gload(); break;
        default: mb_.nop(); break;
      }
    }
    mb_.label(skip);
    // A label must bind to an emitted instruction; the region may be last in
    // the body, so land on a nop.
    mb_.nop();
  }

  bc::MethodBuilder& mb_;
  const GeneratorSpec& spec_;
  Pcg32 rng_;
  const std::vector<MethodPlan>& plans_;
  const bool is_entry_;
  const int num_args_;
  const int general_lo_;
  const int general_hi_;
  const int ctrl_lo_;
  int ctrl_next_;
  const int ctrl_hi_;
  int calls_left_ = 0;
  int label_counter_ = 0;
};

}  // namespace

bc::Program generate_adversarial(const GeneratorSpec& spec) {
  ITH_CHECK(spec.min_methods >= 1 && spec.max_methods >= spec.min_methods,
            "generator: bad method count range");
  ITH_CHECK(spec.min_fuel >= 1 && spec.max_fuel >= spec.min_fuel, "generator: bad fuel range");

  Pcg32 rng(spec.seed, /*seq=*/0x66757a7aULL);  // "fuzz" stream, fixed for determinism

  const int n_methods = static_cast<int>(rng.range(spec.min_methods, spec.max_methods));
  std::vector<MethodPlan> plans;
  plans.reserve(static_cast<std::size_t>(n_methods));
  for (int i = 0; i < n_methods; ++i) {
    plans.push_back(MethodPlan{"f" + std::to_string(i), static_cast<int>(rng.range(1, 3))});
  }

  bc::ProgramBuilder pb("adversarial_" + std::to_string(spec.seed), spec.globals);
  const int n_ctrl = spec.max_block_depth + 2;

  for (const MethodPlan& plan : plans) {
    const int n_general = static_cast<int>(rng.range(2, 4));
    const int general_lo = plan.num_args;
    const int general_hi = general_lo + n_general;
    const int num_locals = general_hi + n_ctrl;
    auto& mb = pb.method(plan.name, plan.num_args, num_locals);
    BodyGen gen(mb, spec, rng.split(), plans, /*is_entry=*/false, plan.num_args, general_lo,
                general_hi, general_hi, general_hi + n_ctrl);
    gen.emit_body();
  }

  {
    const int n_general = static_cast<int>(rng.range(2, 4));
    const int general_lo = 1;  // slot 0 = entry fuel
    const int general_hi = general_lo + n_general;
    const int num_locals = general_hi + n_ctrl;
    auto& mb = pb.method("main", 0, num_locals);
    BodyGen gen(mb, spec, rng.split(), plans, /*is_entry=*/true, 0, general_lo, general_hi,
                general_hi, general_hi + n_ctrl);
    gen.emit_body();
  }

  pb.entry("main");
  return pb.build();  // verified: a throw here is a generator bug
}

}  // namespace ith::fuzz
