#include "fuzz/oracle.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>

#include "bytecode/verifier.hpp"
#include "heuristics/heuristic.hpp"
#include "opt/decision_probe.hpp"
#include "resilience/budget.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/machine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace ith::fuzz {

const char* tier_name(TierKind t) {
  switch (t) {
    case TierKind::kReference: return "reference";
    case TierKind::kO1: return "O1";
    case TierKind::kO2: return "O2";
    case TierKind::kAdaptive: return "adaptive";
    case TierKind::kEngineDiff: return "engine-diff";
    case TierKind::kBudgetDiff: return "budget-diff";
    case TierKind::kSigEquiv: return "sig-equiv";
    case TierKind::kPipelineDiff: return "pipeline-diff";
  }
  return "?";
}

std::string OracleVerdict::summary() const {
  if (reference_failed) return "reference failed: " + reference_error;
  if (!diverged) return "ok";
  std::ostringstream os;
  os << divergences.size() << " divergence(s):";
  for (const Divergence& d : divergences) os << " [" << tier_name(d.tier) << "] " << d.detail;
  return os.str();
}

std::size_t apply_planted_bug(bc::Method& body, PlantedBug bug,
                              const opt::OptimizerOptions& options) {
  if (bug != PlantedBug::kFoldOverflow || !options.enable_folding) return 0;
  constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();
  constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();

  auto& code = body.mutable_code();
  std::size_t rewrites = 0;
  for (std::size_t pc = 0; pc + 2 < code.size(); ++pc) {
    if (code[pc].op != bc::Op::kConst || code[pc + 1].op != bc::Op::kConst ||
        code[pc + 2].op != bc::Op::kAdd) {
      continue;
    }
    // Only the overflow residue: sums that fit int32 were already folded by
    // the sound pass, and folding them here would be correct anyway.
    const std::int64_t sum = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(code[pc].a)) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(code[pc + 1].a)));
    if (sum >= kMin32 && sum <= kMax32) continue;
    // Keep the miscompilation deterministic: skip triples a branch lands in.
    bool branch_target_inside = false;
    for (const bc::Instruction& insn : code) {
      if (bc::op_info(insn.op).is_branch &&
          (insn.a == static_cast<std::int32_t>(pc + 1) ||
           insn.a == static_cast<std::int32_t>(pc + 2))) {
        branch_target_inside = true;
        break;
      }
    }
    if (branch_target_inside) continue;
    // The bug: clamp into the immediate field instead of skipping the fold.
    code[pc] = {bc::Op::kNop, 0, 0};
    code[pc + 1] = {bc::Op::kNop, 0, 0};
    code[pc + 2] = {bc::Op::kConst, static_cast<std::int32_t>(std::clamp(sum, kMin32, kMax32)), 0};
    ++rewrites;
  }
  return rewrites;
}

namespace {

/// Identity CodeSource: every method runs as-is (the reference tier and the
/// statically-optimized tiers share it; only the program differs).
class PlainSource final : public rt::CodeSource {
 public:
  explicit PlainSource(const bc::Program& prog) : prog_(prog), compiled_(prog.num_methods()) {}

  const rt::CompiledMethod& invoke(bc::MethodId id) override {
    auto& slot = compiled_[static_cast<std::size_t>(id)];
    if (!slot) {
      slot = std::make_unique<rt::CompiledMethod>();
      slot->body = prog_.method(id);
      slot->tier = rt::Tier::kOpt;
      slot->method_id = id;
      slot->code_base = 0x1000 + 0x10000 * static_cast<std::uint64_t>(id);
      slot->origin.resize(slot->body.size());
      for (std::size_t pc = 0; pc < slot->body.size(); ++pc) {
        slot->origin[pc] = {id, static_cast<std::int32_t>(pc)};
      }
      slot->finalize();
    }
    return *slot;
  }

 private:
  const bc::Program& prog_;
  std::vector<std::unique_ptr<rt::CompiledMethod>> compiled_;
};

struct TierOutcome {
  bool ok = false;
  std::string error;
  std::int64_t exit_value = 0;
  std::vector<std::int64_t> globals;
  std::uint64_t instructions = 0;
  rt::ExecStats stats;
};

const rt::MachineModel& oracle_machine() {
  static const rt::MachineModel machine = rt::pentium4_model();
  return machine;
}

/// One engine run under explicit interpreter options, every failure
/// classified into a structured EvalOutcome (the budget-diff tier compares
/// classifications, not error text).
struct ClassifiedOutcome {
  resilience::EvalOutcome outcome;
  std::int64_t exit_value = 0;
  std::vector<std::int64_t> globals;
};

ClassifiedOutcome run_classified(const bc::Program& prog, rt::InterpreterOptions iopts) {
  ClassifiedOutcome out;
  try {
    PlainSource source(prog);
    rt::Interpreter interp(prog, oracle_machine(), source, /*icache=*/nullptr, iopts);
    const rt::ExecStats stats = interp.run();
    out.outcome = resilience::EvalOutcome::make_ok();
    out.exit_value = stats.exit_value;
    out.globals = interp.globals();
  } catch (...) {
    out.outcome = resilience::classify_current_exception();
  }
  return out;
}

TierOutcome run_plain(const bc::Program& prog, std::uint64_t budget, rt::EngineKind engine,
                      bool with_icache = false) {
  TierOutcome out;
  try {
    PlainSource source(prog);
    rt::InterpreterOptions iopts;
    iopts.max_instructions = budget;
    iopts.engine = engine;
    const rt::MachineModel& machine = oracle_machine();
    std::unique_ptr<rt::ICache> icache;
    if (with_icache) {
      icache = std::make_unique<rt::ICache>(machine.icache_bytes, machine.icache_line_bytes,
                                            machine.icache_assoc);
    }
    rt::Interpreter interp(prog, machine, source, icache.get(), iopts);
    const rt::ExecStats stats = interp.run();
    out.ok = true;
    out.exit_value = stats.exit_value;
    out.globals = interp.globals();
    out.instructions = stats.instructions;
    out.stats = stats;
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

/// Field-by-field ExecStats comparison; empty string when bit-identical.
std::string diff_stats(const rt::ExecStats& ref, const rt::ExecStats& got) {
  std::ostringstream os;
  auto field = [&](const char* name, auto want, auto have) {
    if (want != have) os << " " << name << " " << have << " (want " << want << ")";
  };
  field("cycles", ref.cycles, got.cycles);
  field("instructions", ref.instructions, got.instructions);
  field("calls", ref.calls, got.calls);
  field("osr_transitions", ref.osr_transitions, got.osr_transitions);
  field("icache_probes", ref.icache_probes, got.icache_probes);
  field("icache_misses", ref.icache_misses, got.icache_misses);
  field("max_frame_depth", ref.max_frame_depth, got.max_frame_depth);
  field("exit_value", ref.exit_value, got.exit_value);
  return os.str();
}

std::string diff_globals(const std::vector<std::int64_t>& ref,
                         const std::vector<std::int64_t>& got) {
  if (ref.size() != got.size()) {
    return "globals size " + std::to_string(got.size()) + " vs " + std::to_string(ref.size());
  }
  std::size_t count = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] != got[i]) {
      if (count == 0) first = i;
      ++count;
    }
  }
  if (count == 0) return "";
  std::ostringstream os;
  os << count << " global slot(s) differ, first at [" << first << "]: " << got[first]
     << " (want " << ref[first] << ")";
  return os.str();
}

/// Bit-identity comparison of two optimization results for one method:
/// body, per-instruction provenance, and the complete OptStats. Empty
/// string when identical.
std::string diff_optimized(const std::string& method, const opt::OptimizeResult& want,
                           const opt::OptimizeResult& got) {
  const bc::Method& wm = want.body.method;
  const bc::Method& gm = got.body.method;
  std::ostringstream os;
  os << method << ":";
  if (wm.size() != gm.size()) {
    os << " body length " << gm.size() << " (want " << wm.size() << ")";
    return os.str();
  }
  if (wm.num_locals() != gm.num_locals()) {
    os << " num_locals " << gm.num_locals() << " (want " << wm.num_locals() << ")";
    return os.str();
  }
  for (std::size_t pc = 0; pc < wm.size(); ++pc) {
    const bc::Instruction& a = wm.code()[pc];
    const bc::Instruction& b = gm.code()[pc];
    if (a.op != b.op || a.a != b.a || a.b != b.b) {
      os << " instruction at pc " << pc << " differs";
      return os.str();
    }
    const opt::InstrMeta& ma = want.body.meta[pc];
    const opt::InstrMeta& mb = got.body.meta[pc];
    if (ma.depth != mb.depth || ma.origin_method != mb.origin_method ||
        ma.origin_pc != mb.origin_pc) {
      os << " provenance at pc " << pc << " differs";
      return os.str();
    }
  }
  bool any = false;
  const auto field = [&](const char* name, auto w, auto g) {
    if (w != g) {
      os << " " << name << " " << g << " (want " << w << ")";
      any = true;
    }
  };
  const opt::InlineStats& wi = want.stats.inline_stats;
  const opt::InlineStats& gi = got.stats.inline_stats;
  field("sites_considered", wi.sites_considered, gi.sites_considered);
  field("sites_inlined", wi.sites_inlined, gi.sites_inlined);
  field("sites_partially_inlined", wi.sites_partially_inlined, gi.sites_partially_inlined);
  field("sites_refused_by_heuristic", wi.sites_refused_by_heuristic,
        gi.sites_refused_by_heuristic);
  field("sites_refused_structural", wi.sites_refused_structural, gi.sites_refused_structural);
  field("max_depth_reached", wi.max_depth_reached, gi.max_depth_reached);
  field("size_before_words", wi.size_before_words, gi.size_before_words);
  field("size_after_words", wi.size_after_words, gi.size_after_words);
  field("folds", want.stats.folds, got.stats.folds);
  field("copyprops", want.stats.copyprops, got.stats.copyprops);
  field("dead_stores", want.stats.dead_stores, got.stats.dead_stores);
  field("branch_simplifications", want.stats.branch_simplifications,
        got.stats.branch_simplifications);
  field("algebraic_simplifications", want.stats.algebraic_simplifications,
        got.stats.algebraic_simplifications);
  field("compare_fusions", want.stats.compare_fusions, got.stats.compare_fusions);
  field("tail_calls_eliminated", want.stats.tail_calls_eliminated,
        got.stats.tail_calls_eliminated);
  field("unreachable_removed", want.stats.unreachable_removed, got.stats.unreachable_removed);
  field("instructions_compacted", want.stats.instructions_compacted,
        got.stats.instructions_compacted);
  field("iterations", want.stats.iterations, got.stats.iterations);
  return any ? os.str() : std::string();
}

}  // namespace

DifferentialOracle::DifferentialOracle(OracleConfig config) : config_(config) {
  Pcg32 rng(config_.seed, /*seq=*/0x6f7261636cULL);  // "oracl" stream
  const auto& ranges = heur::param_ranges();
  heur::InlineParams::Array arr{};
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    arr[i] = static_cast<int>(rng.range(ranges[i].lo, ranges[i].hi));
  }
  params_ = heur::InlineParams::from_array(arr);

  options_ = opt::OptimizerOptions{};
  options_.enable_inlining = rng.chance(0.85);
  options_.enable_folding = rng.chance(0.85);
  options_.enable_copyprop = rng.chance(0.85);
  options_.enable_dce = rng.chance(0.85);
  options_.enable_branch_simplify = rng.chance(0.85);
  options_.enable_algebraic = rng.chance(0.85);
  options_.enable_compare_fusion = rng.chance(0.85);
  options_.enable_tail_recursion = rng.chance(0.85);

  hot_method_threshold_ = static_cast<std::uint64_t>(rng.range(20, 800));
  hot_site_threshold_ = static_cast<std::uint64_t>(rng.range(10, 600));
  const std::uint64_t rehots[] = {0, 1, 2, 12};
  rehot_multiplier_ = rehots[rng.bounded(4)];
  enable_osr_ = rng.chance(0.5);
  // Per-seed engine coin flip: half the campaign fuzzes the optimized tiers
  // under the fast engine, half under the reference engine.
  engine_ = rng.chance(0.5) ? rt::EngineKind::kFast : rt::EngineKind::kReference;

  if (config_.forced_options) options_ = *config_.forced_options;
  if (config_.forced_params) params_ = *config_.forced_params;
  if (config_.forced_engine) engine_ = *config_.forced_engine;
}

OracleVerdict DifferentialOracle::check(const bc::Program& prog) const {
  return check_with_options(prog, options_);
}

OracleVerdict DifferentialOracle::check_with_options(const bc::Program& prog,
                                                     const opt::OptimizerOptions& options) const {
  OracleVerdict verdict;

  const TierOutcome ref = run_plain(prog, config_.reference_budget, rt::EngineKind::kReference);
  if (!ref.ok) {
    verdict.reference_failed = true;
    verdict.reference_error = ref.error;
    return verdict;
  }
  const std::uint64_t tier_budget =
      ref.instructions * config_.budget_slack + config_.reference_budget / 8 + 10'000;

  auto record = [&](TierKind tier, std::string detail) {
    verdict.diverged = true;
    verdict.divergences.push_back(Divergence{tier, std::move(detail)});
  };

  // Engine-differential tier: both engines execute the unoptimized program
  // with I-cache simulation on; the complete ExecStats and the final global
  // segment must be bit-identical.
  {
    const TierOutcome eref =
        run_plain(prog, tier_budget, rt::EngineKind::kReference, /*with_icache=*/true);
    const TierOutcome efast =
        run_plain(prog, tier_budget, rt::EngineKind::kFast, /*with_icache=*/true);
    if (eref.ok != efast.ok) {
      record(TierKind::kEngineDiff,
             std::string("engines disagree on trapping: reference ") +
                 (eref.ok ? "ok" : eref.error) + " vs fast " + (efast.ok ? "ok" : efast.error));
    } else if (eref.ok) {
      const std::string sd = diff_stats(eref.stats, efast.stats);
      if (!sd.empty()) record(TierKind::kEngineDiff, "ExecStats differ:" + sd);
      const std::string gd = diff_globals(eref.globals, efast.globals);
      if (!gd.empty()) record(TierKind::kEngineDiff, gd);
    }
  }

  // Budget-classification tier: both engines under a deliberately tight
  // budget (half the reference run's instructions and frame depth, floored
  // so trivial programs still run). The engines must agree on the
  // EvalOutcome classification — same budget axis, or both Ok with equal
  // exit values. Arena caps are engine-specific (the fast engine's operand
  // arena grows geometrically), so that axis is not differential-tested.
  {
    rt::InterpreterOptions tight;
    tight.max_instructions = std::max<std::uint64_t>(ref.instructions / 2, 64);
    tight.max_frames = std::max<std::size_t>(ref.stats.max_frame_depth / 2, 4);
    tight.engine = rt::EngineKind::kReference;
    const ClassifiedOutcome bref = run_classified(prog, tight);
    tight.engine = rt::EngineKind::kFast;
    const ClassifiedOutcome bfast = run_classified(prog, tight);
    if (!bref.outcome.same_classification(bfast.outcome)) {
      record(TierKind::kBudgetDiff, "engines classify tight-budget run differently: reference " +
                                        bref.outcome.to_string() + " vs fast " +
                                        bfast.outcome.to_string());
    } else if (bref.outcome.ok()) {
      if (bref.exit_value != bfast.exit_value) {
        record(TierKind::kBudgetDiff,
               "exit value under tight budget " + std::to_string(bfast.exit_value) + " (want " +
                   std::to_string(bref.exit_value) + ")");
      }
      const std::string gd = diff_globals(bref.globals, bfast.globals);
      if (!gd.empty()) record(TierKind::kBudgetDiff, gd);
    }
  }

  auto compare = [&](TierKind tier, const TierOutcome& got) {
    if (!got.ok) {
      record(tier, "trap: " + got.error);
      return;
    }
    if (got.exit_value != ref.exit_value) {
      record(tier, "exit value " + std::to_string(got.exit_value) + " (want " +
                       std::to_string(ref.exit_value) + ")");
    }
    const std::string gd = diff_globals(ref.globals, got.globals);
    if (!gd.empty()) record(tier, gd);
  };

  const opt::InlineLimits limits{.hard_depth_cap = 20,
                                 .max_recursive_occurrences = 1,
                                 .max_body_words = 20000};

  // Statically-optimized tiers: O1 under the (randomized) Jikes heuristic,
  // O2 under maximal inlining. Each transformed program must re-verify.
  auto static_tier = [&](TierKind tier, const heur::InlineHeuristic& h) {
    bc::Program optimized = prog;
    try {
      const opt::Optimizer optimizer(prog, h, opt::cold_site, options, limits);
      for (std::size_t i = 0; i < prog.num_methods(); ++i) {
        const auto id = static_cast<bc::MethodId>(i);
        bc::Method body = optimizer.optimize(id).body.method;
        apply_planted_bug(body, config_.planted_bug, options);
        optimized.mutable_method(id) = std::move(body);
      }
    } catch (const Error& e) {
      record(tier, std::string("optimizer trap: ") + e.what());
      return;
    }
    try {
      bc::verify_program(optimized);
    } catch (const Error& e) {
      record(tier, std::string("verifier rejected optimized program: ") + e.what());
      return;
    }
    compare(tier, run_plain(optimized, tier_budget, engine_));
  };

  {
    heur::JikesHeuristic o1(params_);
    static_tier(TierKind::kO1, o1);
    heur::AlwaysInlineHeuristic o2(/*depth_cap=*/8);
    static_tier(TierKind::kO2, o2);
  }

  // Pipeline-differential tier: the PassManager behind the Optimizer facade
  // must be bit-identical — bodies, provenance, and statistics — to the
  // frozen legacy orchestration for every method under these options.
  {
    heur::JikesHeuristic h(params_);
    try {
      const opt::Optimizer optimizer(prog, h, opt::cold_site, options, limits);
      for (std::size_t i = 0; i < prog.num_methods(); ++i) {
        const auto id = static_cast<bc::MethodId>(i);
        const opt::OptimizeResult got = optimizer.optimize(id);
        const opt::OptimizeResult want =
            opt::reference_optimize(prog, id, h, opt::cold_site, options, limits);
        const std::string d = diff_optimized(prog.method(id).name(), want, got);
        if (!d.empty()) {
          record(TierKind::kPipelineDiff, d);
          break;  // one witness per seed keeps reports readable
        }
      }
    } catch (const Error& e) {
      record(TierKind::kPipelineDiff, std::string("trap: ") + e.what());
    }
  }

  // One full adaptive-VM run (baseline -> O1 -> O2 ladder, profiling,
  // optional OSR) under explicit InlineParams; shared by the adaptive tier
  // and the signature-equivalence tier.
  struct AdaptiveOutcome {
    bool ok = false;
    std::string error;
    vm::RunResult rr;
    std::vector<std::int64_t> globals;
  };
  auto run_adaptive = [&](const heur::InlineParams& params) {
    AdaptiveOutcome out;
    try {
      vm::VmConfig cfg;
      cfg.scenario = vm::Scenario::kAdapt;
      cfg.hot_method_threshold = hot_method_threshold_;
      cfg.hot_site_threshold = hot_site_threshold_;
      cfg.rehot_multiplier = rehot_multiplier_;
      cfg.opt_options = options;
      cfg.inline_limits = limits;
      cfg.interp_options.max_instructions = tier_budget;
      cfg.interp_options.engine = engine_;
      cfg.simulate_icache = false;  // affects cycles only, not observables
      cfg.enable_osr = enable_osr_;
      heur::JikesHeuristic h(params);
      vm::VirtualMachine machine(prog, oracle_machine(), h, cfg);
      out.rr = machine.run(config_.vm_iterations);
      out.globals = machine.globals();
      out.ok = true;
    } catch (const Error& e) {
      out.error = e.what();
    }
    return out;
  };

  // Adaptive tier: exercises recompilation and live-frame transfer.
  {
    const AdaptiveOutcome ao = run_adaptive(params_);
    if (!ao.ok) {
      record(TierKind::kAdaptive, "trap: " + ao.error);
    } else {
      for (std::size_t i = 0; i < ao.rr.iterations.size(); ++i) {
        const std::int64_t exit = ao.rr.iterations[i].exec.exit_value;
        if (exit != ref.exit_value) {
          record(TierKind::kAdaptive, "iteration " + std::to_string(i + 1) + " exit value " +
                                          std::to_string(exit) + " (want " +
                                          std::to_string(ref.exit_value) + ")");
        }
      }
      const std::string gd = diff_globals(ref.globals, ao.globals);
      if (!gd.empty()) record(TierKind::kAdaptive, gd);
    }
  }

  // Signature-equivalence tier: perturb the params a few times; any variant
  // whose decision signature equals the original's must be completely
  // indistinguishable from it through the adaptive VM — same ExecStats on
  // every iteration, same compile counts and cycles, same globals. Only
  // meaningful when the inliner runs (with inlining off the heuristic is
  // never consulted).
  if (options.enable_inlining) {
    Pcg32 srng(config_.seed, /*seq=*/0x736967ULL);  // "sig" stream
    const auto& ranges = heur::param_ranges();
    opt::SignatureOptions sopts;
    sopts.adaptive = true;
    const std::uint64_t base_sig = opt::decision_signature(prog, params_, limits, sopts).value;
    std::optional<heur::InlineParams> aliased;
    for (int v = 0; v < 4 && !aliased; ++v) {
      heur::InlineParams::Array arr = params_.to_array();
      const auto k = static_cast<std::size_t>(srng.bounded(static_cast<std::uint32_t>(arr.size())));
      arr[k] = std::clamp(arr[k] + static_cast<int>(srng.bounded(5)) - 2,
                          ranges[k].lo, ranges[k].hi);
      if (arr == params_.to_array()) continue;
      const heur::InlineParams candidate = heur::InlineParams::from_array(arr);
      if (opt::decision_signature(prog, candidate, limits, sopts).value == base_sig) {
        aliased = candidate;
      }
    }
    if (aliased) {
      const AdaptiveOutcome a = run_adaptive(params_);
      const AdaptiveOutcome b = run_adaptive(*aliased);
      if (a.ok != b.ok) {
        record(TierKind::kSigEquiv,
               std::string("signature-equal params disagree on trapping: ") +
                   (a.ok ? "ok" : a.error) + " vs " + (b.ok ? "ok" : b.error));
      } else if (a.ok) {
        if (a.rr.iterations.size() != b.rr.iterations.size()) {
          record(TierKind::kSigEquiv, "iteration counts differ");
        } else {
          for (std::size_t i = 0; i < a.rr.iterations.size(); ++i) {
            const vm::IterationStats& ia = a.rr.iterations[i];
            const vm::IterationStats& ib = b.rr.iterations[i];
            const std::string sd = diff_stats(ia.exec, ib.exec);
            if (!sd.empty()) {
              record(TierKind::kSigEquiv,
                     "iteration " + std::to_string(i + 1) + " ExecStats differ:" + sd);
            }
            if (ia.compile_cycles != ib.compile_cycles ||
                ia.baseline_compiles != ib.baseline_compiles ||
                ia.opt_compiles != ib.opt_compiles) {
              record(TierKind::kSigEquiv,
                     "iteration " + std::to_string(i + 1) + " compile stats differ");
            }
          }
        }
        if (a.rr.total_cycles != b.rr.total_cycles ||
            a.rr.running_cycles != b.rr.running_cycles ||
            a.rr.compile_cycles_all != b.rr.compile_cycles_all ||
            a.rr.recompilations != b.rr.recompilations ||
            a.rr.code_words_emitted != b.rr.code_words_emitted) {
          record(TierKind::kSigEquiv, "aggregate run statistics differ");
        }
        const std::string gd = diff_globals(a.globals, b.globals);
        if (!gd.empty()) record(TierKind::kSigEquiv, gd);
      }
    }
  }

  return verdict;
}

}  // namespace ith::fuzz
