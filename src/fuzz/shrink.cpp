#include "fuzz/shrink.hpp"

#include <utility>

#include "bytecode/verifier.hpp"
#include "opt/annotated.hpp"
#include "opt/passes.hpp"
#include "support/error.hpp"

namespace ith::fuzz {

namespace {

bool verifies(const bc::Program& prog) {
  try {
    bc::verify_program(prog);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// True if method `id` can be deleted: not the entry, and no kCall from any
/// *other* method targets it (self-calls disappear with the method).
bool removable(const bc::Program& prog, bc::MethodId id) {
  if (id == prog.entry()) return false;
  for (std::size_t m = 0; m < prog.num_methods(); ++m) {
    if (static_cast<bc::MethodId>(m) == id) continue;
    for (const bc::Instruction& insn : prog.method(static_cast<bc::MethodId>(m)).code()) {
      if (insn.op == bc::Op::kCall && insn.a == id) return false;
    }
  }
  return true;
}

/// Rebuilds the program without method `id`, remapping call targets and the
/// entry id across the removed slot.
bc::Program remove_method(const bc::Program& prog, bc::MethodId id) {
  bc::Program out(prog.name(), prog.globals_size());
  for (std::size_t m = 0; m < prog.num_methods(); ++m) {
    if (static_cast<bc::MethodId>(m) == id) continue;
    bc::Method method = prog.method(static_cast<bc::MethodId>(m));
    for (bc::Instruction& insn : method.mutable_code()) {
      if (insn.op == bc::Op::kCall && insn.a > id) --insn.a;
    }
    out.add_method(std::move(method));
  }
  out.set_entry(prog.entry() > id ? prog.entry() - 1 : prog.entry());
  return out;
}

/// Removes kNops from method `id` (rebasing branches) via the optimizer's
/// own compaction, preserving the rest of the program.
bc::Program compact_method(const bc::Program& prog, bc::MethodId id) {
  opt::AnnotatedMethod am = opt::AnnotatedMethod::from_method(prog.method(id), id);
  opt::compact_nops(am);
  bc::Program out = prog;
  if (!am.method.empty()) out.mutable_method(id) = std::move(am.method);
  return out;
}

/// Stack-neutral simplification of one instruction: a replacement with the
/// same net stack effect but no real work, so the surrounding code still
/// verifies. Returns false for instructions with no such single-slot
/// stand-in (terminators, gstore, wide calls).
bool neutralize(const bc::Instruction& insn, bc::Instruction& out) {
  switch (insn.op) {
    case bc::Op::kLoad:
      out = {bc::Op::kConst, 0, 0};  // net +1
      return true;
    case bc::Op::kNeg:
    case bc::Op::kGLoad:
      out = {bc::Op::kNop, 0, 0};  // net 0
      return true;
    case bc::Op::kAdd:
    case bc::Op::kSub:
    case bc::Op::kMul:
    case bc::Op::kDiv:
    case bc::Op::kMod:
    case bc::Op::kCmpLt:
    case bc::Op::kCmpLe:
    case bc::Op::kCmpEq:
    case bc::Op::kCmpNe:
    case bc::Op::kStore:
    case bc::Op::kJz:
    case bc::Op::kJnz:
      out = {bc::Op::kPop, 0, 0};  // net -1
      return true;
    case bc::Op::kJmp:
      out = {bc::Op::kNop, 0, 0};  // fall through instead
      return true;
    case bc::Op::kCall:
      // Net effect is 1 - nargs; representable for 0..2 arguments.
      if (insn.b == 0) out = {bc::Op::kConst, 0, 0};
      else if (insn.b == 1) out = {bc::Op::kNop, 0, 0};
      else if (insn.b == 2) out = {bc::Op::kPop, 0, 0};
      else return false;
      return true;
    default:
      return false;
  }
}

/// Replaces the whole body of `id` with `const 0; ret` (or `halt` for the
/// entry) — the coarsest per-method candidate.
bc::Program stub_method(const bc::Program& prog, bc::MethodId id) {
  bc::Program out = prog;
  bc::Method& m = out.mutable_method(id);
  m.mutable_code().clear();
  m.append({bc::Op::kConst, 0, 0});
  m.append({id == prog.entry() ? bc::Op::kHalt : bc::Op::kRet, 0, 0});
  return out;
}

}  // namespace

bc::Program shrink_program(const bc::Program& prog, const ReproPredicate& still_fails,
                           ShrinkStats* stats) {
  ITH_CHECK(still_fails(prog), "shrink: input program does not reproduce the failure");

  ShrinkStats local;
  local.initial_instructions = prog.total_code_size();
  local.initial_methods = prog.num_methods();

  bc::Program current = prog;
  auto attempt = [&](bc::Program candidate) {
    ++local.candidates_tried;
    if (!verifies(candidate) || !still_fails(candidate)) return false;
    ++local.candidates_kept;
    current = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && local.rounds < 64) {
    progress = false;
    ++local.rounds;

    // 1. Whole methods, highest id first (stable remapping). Stubbing a
    //    body to `const 0; ret` both shrinks directly and turns its callees
    //    into removable methods for the next sweep.
    for (auto id = static_cast<bc::MethodId>(current.num_methods()) - 1; id >= 0; --id) {
      if (current.num_methods() > 1 && removable(current, id) &&
          attempt(remove_method(current, id))) {
        progress = true;
        continue;
      }
      if (current.method(id).size() > 2 && attempt(stub_method(current, id))) progress = true;
    }

    // 2. Individual instructions -> plain kNop (branch targets stay valid;
    //    anything that unbalances the stack or breaks the method is
    //    rejected by the verifier before the predicate ever runs).
    for (std::size_t m = 0; m < current.num_methods(); ++m) {
      const auto id = static_cast<bc::MethodId>(m);
      for (std::size_t pc = current.method(id).size(); pc-- > 0;) {
        if (current.method(id).code()[pc].op == bc::Op::kNop) continue;
        bc::Program candidate = current;
        candidate.mutable_method(id).mutable_code()[pc] = {bc::Op::kNop, 0, 0};
        if (attempt(std::move(candidate))) progress = true;
      }
    }

    // 2b. Stack-neutral simplification: swap an instruction for the
    //     cheapest stand-in with the same net stack effect, so deletions
    //     keep verifying even mid-expression.
    for (std::size_t m = 0; m < current.num_methods(); ++m) {
      const auto id = static_cast<bc::MethodId>(m);
      for (std::size_t pc = current.method(id).size(); pc-- > 0;) {
        const bc::Instruction& insn = current.method(id).code()[pc];
        bc::Instruction replacement;
        if (!neutralize(insn, replacement) || replacement == insn) continue;
        bc::Program candidate = current;
        candidate.mutable_method(id).mutable_code()[pc] = replacement;
        if (attempt(std::move(candidate))) progress = true;
      }
    }

    // 3. Squash accumulated kNops so the repro is genuinely short.
    for (std::size_t m = 0; m < current.num_methods(); ++m) {
      const auto id = static_cast<bc::MethodId>(m);
      if (attempt(compact_method(current, id))) progress = true;
    }

    // 4. Simplify surviving immediates toward zero.
    for (std::size_t m = 0; m < current.num_methods(); ++m) {
      const auto id = static_cast<bc::MethodId>(m);
      for (std::size_t pc = 0; pc < current.method(id).size(); ++pc) {
        const bc::Instruction& insn = current.method(id).code()[pc];
        if (insn.op != bc::Op::kConst || insn.a == 0) continue;
        bc::Program candidate = current;
        candidate.mutable_method(id).mutable_code()[pc].a = 0;
        if (attempt(std::move(candidate))) progress = true;
      }
    }
  }

  local.final_instructions = current.total_code_size();
  local.final_methods = current.num_methods();
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace ith::fuzz
