// Automatic repro shrinker.
//
// Greedily minimizes a divergent program while a caller-supplied predicate
// keeps reproducing the failure. Candidate edits, coarsest first:
//
//   1. delete an entire uncalled method (call targets are remapped)
//   2. replace a single instruction with kNop (branch targets stay valid)
//   3. compact a method's kNops away (rebasing branches via the optimizer's
//      own compaction) so the final repro is genuinely short, not nop-padded
//   4. zero a kConst immediate (smaller constants, simpler repro)
//
// Every candidate must still pass the verifier before the predicate is
// consulted; rounds repeat until a full sweep accepts nothing.
#pragma once

#include <cstddef>
#include <functional>

#include "bytecode/program.hpp"

namespace ith::fuzz {

/// Returns true while the candidate still reproduces the divergence.
using ReproPredicate = std::function<bool(const bc::Program&)>;

struct ShrinkStats {
  std::size_t initial_instructions = 0;
  std::size_t final_instructions = 0;
  std::size_t initial_methods = 0;
  std::size_t final_methods = 0;
  std::size_t candidates_tried = 0;
  std::size_t candidates_kept = 0;
  int rounds = 0;
};

/// Shrinks `prog` under `still_fails`. Requires still_fails(prog) to be
/// true on entry (throws otherwise: shrinking a non-repro is a caller bug).
bc::Program shrink_program(const bc::Program& prog, const ReproPredicate& still_fails,
                           ShrinkStats* stats = nullptr);

}  // namespace ith::fuzz
