// Fuzzing campaign driver: the orchestration layer behind the fuzz_vm CLI
// and the smoke-fuzz ctest target.
//
// A campaign replays the regression corpus (checked-in minimal .mbc repros
// plus the built-in hand-written edge cases), then walks a seed range:
// generate an adversarial program, run the four-tier differential oracle,
// and on divergence bisect the guilty pass, shrink a minimal repro, and
// (optionally) write it to the corpus directory as a .mbc file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "bytecode/program.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace ith::fuzz {

struct CampaignConfig {
  std::uint64_t seed_begin = 1;
  std::uint64_t seed_end = 100;          ///< inclusive
  double time_budget_seconds = 0;        ///< 0 = unbounded
  std::string corpus_dir;                ///< replay *.mbc from here; write repros here
  GeneratorSpec gen;                     ///< seed field overridden per iteration
  OracleConfig oracle;                   ///< seed field overridden per iteration
  bool bisect = true;
  bool shrink = true;
  bool write_repros = true;
  std::ostream* log = nullptr;           ///< per-seed progress (optional)
};

/// One divergence the campaign found, fully triaged.
struct FuzzFinding {
  std::uint64_t seed = 0;
  std::string divergence;                ///< oracle verdict summary
  std::vector<std::string> guilty;       ///< bisected pass names (may be empty)
  bc::Program shrunk;                    ///< minimal repro (original if !shrink)
  std::size_t shrunk_instructions = 0;
  std::string repro_path;                ///< written .mbc, if any
};

struct CampaignReport {
  std::uint64_t seeds_run = 0;
  std::size_t corpus_replayed = 0;
  std::size_t total_instructions_generated = 0;
  std::size_t reference_budget_skips = 0;  ///< seeds too hot to fuzz
  bool budget_exhausted = false;
  std::vector<FuzzFinding> findings;

  bool clean() const { return findings.empty(); }
};

CampaignReport run_campaign(const CampaignConfig& config);

/// Hand-written regression edge cases every campaign replays: an
/// empty-body-equivalent leaf (two-instruction constant return), a
/// max-stack boundary tower, and a self-recursive inline candidate.
std::vector<std::pair<std::string, bc::Program>> builtin_edge_cases();

/// Loads every *.mbc program in `dir` (sorted by filename). Missing or
/// empty directories load zero entries; a malformed file throws.
std::vector<std::pair<std::string, bc::Program>> load_corpus(const std::string& dir);

/// Serializes `prog` to `<dir>/<stem>.mbc`, creating `dir` if needed.
/// Returns the written path.
std::string write_corpus_entry(const std::string& dir, const std::string& stem,
                               const bc::Program& prog);

}  // namespace ith::fuzz
