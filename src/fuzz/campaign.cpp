#include "fuzz/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>

#include "bytecode/binary.hpp"
#include "bytecode/builder.hpp"
#include "fuzz/bisect.hpp"
#include "fuzz/shrink.hpp"
#include "support/error.hpp"

namespace ith::fuzz {

namespace fs = std::filesystem;

std::vector<std::pair<std::string, bc::Program>> builtin_edge_cases() {
  std::vector<std::pair<std::string, bc::Program>> cases;

  {
    // Minimal leaf: the smallest legal body (const; ret). Exercises the
    // always-inline path and zero-work splices.
    bc::ProgramBuilder pb("edge_empty_body_leaf", 8);
    pb.method("leaf", 0, 0).ret_const(7);
    pb.method("main", 0, 0).call("leaf", 0).call("leaf", 0).add().halt();
    pb.entry("main");
    cases.emplace_back("edge_empty_body_leaf", pb.build());
  }

  {
    // Max-stack boundary: a 64-deep operand tower summed pairwise, probing
    // the verifier's max_stack accounting and the interpreter's operand
    // stack through every tier.
    bc::ProgramBuilder pb("edge_max_stack_boundary", 8);
    auto& m = pb.method("main", 0, 0);
    constexpr int kDepth = 64;
    for (int i = 0; i < kDepth; ++i) m.const_(i + 1);
    for (int i = 0; i < kDepth - 1; ++i) m.add();
    m.halt();  // 64*65/2 = 2080
    pb.entry("main");
    cases.emplace_back("edge_max_stack_boundary", pb.build());
  }

  {
    // Self-recursive inline candidate: sum(n) = n<=0 ? 0 : n + sum(n-1).
    // The inliner may splice one self-occurrence and the tail-recursion
    // pass may rewrite the rest; semantics must hold either way.
    bc::ProgramBuilder pb("edge_self_recursive", 8);
    auto& f = pb.method("sum", 1, 1);
    f.load(0).const_(0).cmple().jz("rec");
    f.ret_const(0);
    f.label("rec");
    f.load(0).load(0).const_(1).sub().call("sum", 1).add().ret();
    pb.method("main", 0, 0).const_(9).call("sum", 1).halt();  // 45
    pb.entry("main");
    cases.emplace_back("edge_self_recursive", pb.build());
  }

  return cases;
}

std::vector<std::pair<std::string, bc::Program>> load_corpus(const std::string& dir) {
  std::vector<std::pair<std::string, bc::Program>> corpus;
  if (dir.empty() || !fs::exists(dir)) return corpus;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".mbc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    std::ifstream is(p, std::ios::binary);
    ITH_CHECK(is.good(), "corpus: cannot open " + p.string());
    // Stem only, symmetric with write_corpus_entry's `stem` parameter.
    corpus.emplace_back(p.stem().string(), bc::read_binary(is));
  }
  return corpus;
}

std::string write_corpus_entry(const std::string& dir, const std::string& stem,
                               const bc::Program& prog) {
  fs::create_directories(dir);
  const fs::path path = fs::path(dir) / (stem + ".mbc");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ITH_CHECK(os.good(), "corpus: cannot write " + path.string());
  bc::write_binary(prog, os);
  return path.string();
}

namespace {

void triage(FuzzFinding& finding, const bc::Program& prog, const OracleVerdict& verdict,
            const DifferentialOracle& oracle, const CampaignConfig& config) {
  finding.divergence = verdict.summary();

  if (config.bisect) {
    finding.guilty = bisect_passes(prog, oracle).guilty;
  }

  finding.shrunk = prog;
  if (config.shrink) {
    const auto still_fails = [&oracle](const bc::Program& candidate) {
      const OracleVerdict v = oracle.check(candidate);
      return !v.reference_failed && v.diverged;
    };
    finding.shrunk = shrink_program(prog, still_fails);
  }
  finding.shrunk_instructions = finding.shrunk.total_code_size();

  if (config.write_repros && !config.corpus_dir.empty()) {
    finding.repro_path = write_corpus_entry(
        config.corpus_dir, "repro_seed" + std::to_string(finding.seed), finding.shrunk);
  }
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config) {
  ITH_CHECK(config.seed_end >= config.seed_begin, "campaign: bad seed range");
  CampaignReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (config.time_budget_seconds <= 0) return false;
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    return elapsed.count() >= config.time_budget_seconds;
  };

  // Phase 1: regression replay — built-in edge cases plus the checked-in
  // corpus. These must never diverge; a corpus regression is a finding
  // with the pseudo-seed 0.
  std::vector<std::pair<std::string, bc::Program>> replay = builtin_edge_cases();
  for (auto& entry : load_corpus(config.corpus_dir)) replay.push_back(std::move(entry));
  for (const auto& [name, prog] : replay) {
    OracleConfig ocfg = config.oracle;
    ocfg.seed = config.seed_begin;
    const DifferentialOracle oracle(ocfg);
    const OracleVerdict verdict = oracle.check(prog);
    ++report.corpus_replayed;
    if (verdict.reference_failed) {
      ++report.reference_budget_skips;
      continue;
    }
    if (verdict.diverged) {
      FuzzFinding finding;
      finding.seed = 0;
      CampaignConfig no_write = config;
      no_write.write_repros = false;  // never clobber the checked-in corpus
      triage(finding, prog, verdict, oracle, no_write);
      finding.divergence = "[corpus " + name + "] " + verdict.summary();
      report.findings.push_back(std::move(finding));
      if (config.log != nullptr) {
        *config.log << "corpus " << name << ": " << verdict.summary() << "\n";
      }
    }
  }

  // Phase 2: the seed walk.
  for (std::uint64_t seed = config.seed_begin; seed <= config.seed_end; ++seed) {
    if (out_of_budget()) {
      report.budget_exhausted = true;
      break;
    }
    GeneratorSpec gspec = config.gen;
    gspec.seed = seed;
    const bc::Program prog = generate_adversarial(gspec);
    report.total_instructions_generated += prog.total_code_size();

    OracleConfig ocfg = config.oracle;
    ocfg.seed = seed;
    const DifferentialOracle oracle(ocfg);
    const OracleVerdict verdict = oracle.check(prog);
    ++report.seeds_run;

    if (verdict.reference_failed) {
      ++report.reference_budget_skips;
      continue;
    }
    if (verdict.diverged) {
      FuzzFinding finding;
      finding.seed = seed;
      triage(finding, prog, verdict, oracle, config);
      if (config.log != nullptr) {
        *config.log << "seed " << seed << ": " << finding.divergence << " -> "
                    << finding.shrunk_instructions << " instruction repro";
        if (!finding.guilty.empty()) {
          *config.log << " (guilty:";
          for (const std::string& g : finding.guilty) *config.log << " " << g;
          *config.log << ")";
        }
        *config.log << "\n";
      }
      report.findings.push_back(std::move(finding));
    } else if (config.log != nullptr && seed % 100 == 0) {
      *config.log << "seed " << seed << ": ok\n";
    }
  }

  return report;
}

}  // namespace ith::fuzz
