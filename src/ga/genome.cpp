#include "ga/genome.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace ith::ga {

GenomeSpace::GenomeSpace(std::vector<GeneSpec> genes) : genes_(std::move(genes)) {
  ITH_CHECK(!genes_.empty(), "genome space needs at least one gene");
  for (const GeneSpec& g : genes_) {
    ITH_CHECK(g.lo <= g.hi, "gene '" + g.name + "' has an empty range");
  }
}

const GeneSpec& GenomeSpace::gene(std::size_t i) const {
  ITH_CHECK(i < genes_.size(), "gene index out of range");
  return genes_[i];
}

Genome GenomeSpace::random(Pcg32& rng) const {
  Genome g(genes_.size());
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    g[i] = static_cast<int>(rng.range(genes_[i].lo, genes_[i].hi));
  }
  return g;
}

void GenomeSpace::clamp(Genome& g) const {
  ITH_CHECK(g.size() == genes_.size(), "genome arity mismatch");
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    g[i] = std::clamp(g[i], genes_[i].lo, genes_[i].hi);
  }
}

bool GenomeSpace::valid(const Genome& g) const {
  if (g.size() != genes_.size()) return false;
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    if (g[i] < genes_[i].lo || g[i] > genes_[i].hi) return false;
  }
  return true;
}

double GenomeSpace::cardinality() const {
  double card = 1.0;
  for (const GeneSpec& g : genes_) {
    card *= static_cast<double>(g.hi - g.lo + 1);
  }
  return card;
}

}  // namespace ith::ga
