// Integer-vector genomes over bounded gene ranges — the representation the
// paper uses with ECJ: one gene per inlining parameter, Table 1 ranges.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace ith::ga {

using Genome = std::vector<int>;

struct GeneSpec {
  std::string name;
  int lo = 0;
  int hi = 0;  ///< inclusive
};

class GenomeSpace {
 public:
  explicit GenomeSpace(std::vector<GeneSpec> genes);

  std::size_t size() const { return genes_.size(); }
  const GeneSpec& gene(std::size_t i) const;
  const std::vector<GeneSpec>& genes() const { return genes_; }

  /// Uniformly random genome.
  Genome random(Pcg32& rng) const;

  /// Clamps every gene into its range.
  void clamp(Genome& g) const;

  /// True if g has the right arity and every gene is in range.
  bool valid(const Genome& g) const;

  /// Product of gene spans — the size of the search space (the paper quotes
  /// ~3x10^11 for Table 1).
  double cardinality() const;

 private:
  std::vector<GeneSpec> genes_;
};

}  // namespace ith::ga
