// Genetic operators: selection, crossover and mutation over integer genomes.
// All take an explicit RNG so runs are reproducible.
#pragma once

#include <span>

#include "ga/genome.hpp"

namespace ith::ga {

enum class CrossoverKind { kOnePoint, kTwoPoint, kUniform };
enum class MutationKind {
  kReset,     ///< mutated gene redrawn uniformly from its range
  kGaussian,  ///< mutated gene perturbed by N(0, range/10), clamped
};

/// Recombines two parents into one child.
Genome crossover(const Genome& a, const Genome& b, CrossoverKind kind, Pcg32& rng);

/// Mutates each gene independently with probability `per_gene_prob`.
void mutate(Genome& g, const GenomeSpace& space, MutationKind kind, double per_gene_prob,
            Pcg32& rng);

/// Tournament selection for *minimization*: draws k contestants uniformly
/// and returns the index of the fittest (lowest fitness).
std::size_t tournament_select(std::span<const double> fitness, int k, Pcg32& rng);

/// Roulette-wheel selection for minimization: probability proportional to
/// (worst - f + eps) so the best individual gets the largest share.
std::size_t roulette_select(std::span<const double> fitness, Pcg32& rng);

}  // namespace ith::ga
