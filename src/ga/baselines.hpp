// Non-evolutionary search baselines with the same interface and evaluation
// budget as the GA, used by the ablation bench to show the GA earns its
// keep (the paper argues GA over exhaustive search; we additionally compare
// against random sampling and local search).
#pragma once

#include <cstdint>

#include "ga/ga.hpp"

namespace ith::ga {

struct SearchResult {
  Genome best;
  double best_fitness = 0.0;
  std::size_t evaluations = 0;
  /// best_fitness after each evaluation (anytime curve).
  std::vector<double> trajectory;
};

/// Uniform random sampling of `budget` genomes.
SearchResult random_search(const GenomeSpace& space, const FitnessFn& fitness, std::size_t budget,
                           std::uint64_t seed);

/// Steepest-ascent-style stochastic hill climbing with restarts: perturbs
/// one gene at a time (reset mutation); restarts from a random genome after
/// `stall_limit` non-improving probes. Runs until `budget` evaluations.
SearchResult hill_climb(const GenomeSpace& space, const FitnessFn& fitness, std::size_t budget,
                        std::uint64_t seed, int stall_limit = 25);

}  // namespace ith::ga
