// GeneticAlgorithm: the off-line search driver (the role ECJ plays in the
// paper). Generational GA with elitism, tournament or roulette selection,
// configurable crossover/mutation, fitness memoization and optional
// thread-pool evaluation. Fitness is minimized.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ga/genome.hpp"
#include "ga/operators.hpp"
#include "obs/context.hpp"

namespace ith::resilience {
struct GaCheckpoint;  // resilience/checkpoint.hpp
}

namespace ith::ga {

/// Fitness function; lower is better. Must be pure (memoization assumes it)
/// and thread-safe when GaConfig::threads != 1.
using FitnessFn = std::function<double(const Genome&)>;

enum class SelectionKind { kTournament, kRoulette };

struct GaConfig {
  int population = 20;    ///< the paper's population size
  int generations = 500;  ///< the paper's generation count (usually overridden)
  SelectionKind selection = SelectionKind::kTournament;
  int tournament_k = 3;
  CrossoverKind crossover = CrossoverKind::kTwoPoint;
  double crossover_rate = 0.9;
  MutationKind mutation = MutationKind::kReset;
  double mutation_prob = 0.1;  ///< per gene
  int elites = 2;              ///< individuals copied unchanged each generation
  std::uint64_t seed = 42;
  int threads = 1;             ///< 0 = hardware concurrency
  bool memoize = true;         ///< cache fitness by genome (fitness must be pure)
  /// Stop after this many generations without improvement (0 = disabled).
  int patience = 0;
  /// Individuals injected into the initial population (e.g. the compiler's
  /// default parameters), replacing random ones.
  std::vector<Genome> seed_individuals;
  /// Observability context. Non-owning, may be null (= tracing off, zero
  /// cost); must outlive the GA run. Category kGa: one instant per
  /// generation with best/mean/worst fitness and population diversity,
  /// plus evaluation/cache-hit counters.
  obs::Context* obs = nullptr;
  /// Checkpoint journal: when set, invoked with the complete search state
  /// after every `checkpoint_every`-th completed generation (the typical
  /// callback is resilience::save_checkpoint to a path). The GA only
  /// *builds* checkpoints; persistence lives in the resilience layer, so
  /// ith_ga takes no new link dependency.
  std::function<void(const resilience::GaCheckpoint&)> journal;
  int checkpoint_every = 1;
  /// When non-null, run() continues from this checkpoint instead of a fresh
  /// population — bit-identically to never having stopped, provided the
  /// config and genome space match (enforced via the fingerprint). Non-
  /// owning; must outlive run().
  const resilience::GaCheckpoint* resume_from = nullptr;
  /// Source of the evaluator's quarantine set, snapshotted into every
  /// checkpoint so a resumed run skips known-bad genomes immediately.
  std::function<std::vector<std::vector<int>>()> quarantine_source;
  /// When set, invoked while assembling each per-generation "ga.generation"
  /// trace instant; append extra obs::Args to enrich the event (the tuner
  /// adds signature-collapse statistics this way). Only called when obs is
  /// non-null and kGa tracing is enabled.
  std::function<void(std::vector<obs::Arg>&)> generation_args;
};

struct GenerationStats {
  int generation = 0;
  double best = 0.0;
  double mean = 0.0;
  double worst = 0.0;
  /// Distinct genomes divided by population size, in (0, 1]: 1.0 = every
  /// individual unique, 1/population = total convergence.
  double diversity = 0.0;
  Genome best_genome;
};

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  std::vector<GenerationStats> history;
  std::size_t evaluations = 0;  ///< fitness-function invocations (cache misses)
  std::size_t cache_hits = 0;
};

class GeneticAlgorithm {
 public:
  GeneticAlgorithm(GenomeSpace space, FitnessFn fitness, GaConfig config);

  /// Per-generation progress callback (invoked on the driver thread).
  void set_progress(std::function<void(const GenerationStats&)> cb);

  GaResult run();

  /// Hash of the search-defining configuration (space, operators, seed,
  /// population). Stored in every checkpoint; resume refuses a mismatch.
  std::uint64_t fingerprint() const;

 private:
  std::vector<double> evaluate(const std::vector<Genome>& pop, GaResult& result);

  GenomeSpace space_;
  FitnessFn fitness_;
  GaConfig config_;
  std::function<void(const GenerationStats&)> progress_;
  std::map<Genome, double> cache_;
};

}  // namespace ith::ga
