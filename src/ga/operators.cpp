#include "ga/operators.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace ith::ga {

Genome crossover(const Genome& a, const Genome& b, CrossoverKind kind, Pcg32& rng) {
  ITH_CHECK(a.size() == b.size() && !a.empty(), "crossover arity mismatch");
  const std::size_t n = a.size();
  Genome child(n);
  switch (kind) {
    case CrossoverKind::kOnePoint: {
      // Cut in [1, n-1] so both parents contribute (for n == 1, copy a).
      const std::size_t cut = n == 1 ? 1 : 1 + rng.bounded(static_cast<std::uint32_t>(n - 1));
      for (std::size_t i = 0; i < n; ++i) child[i] = i < cut ? a[i] : b[i];
      break;
    }
    case CrossoverKind::kTwoPoint: {
      std::size_t lo = rng.bounded(static_cast<std::uint32_t>(n));
      std::size_t hi = rng.bounded(static_cast<std::uint32_t>(n));
      if (lo > hi) std::swap(lo, hi);
      for (std::size_t i = 0; i < n; ++i) child[i] = (i >= lo && i <= hi) ? b[i] : a[i];
      break;
    }
    case CrossoverKind::kUniform: {
      for (std::size_t i = 0; i < n; ++i) child[i] = rng.chance(0.5) ? a[i] : b[i];
      break;
    }
  }
  return child;
}

void mutate(Genome& g, const GenomeSpace& space, MutationKind kind, double per_gene_prob,
            Pcg32& rng) {
  ITH_CHECK(g.size() == space.size(), "mutate arity mismatch");
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (!rng.chance(per_gene_prob)) continue;
    const GeneSpec& spec = space.gene(i);
    switch (kind) {
      case MutationKind::kReset:
        g[i] = static_cast<int>(rng.range(spec.lo, spec.hi));
        break;
      case MutationKind::kGaussian: {
        const double sigma = std::max(1.0, static_cast<double>(spec.hi - spec.lo) / 10.0);
        const double v = static_cast<double>(g[i]) + rng.gaussian() * sigma;
        g[i] = std::clamp(static_cast<int>(std::lround(v)), spec.lo, spec.hi);
        break;
      }
    }
  }
}

std::size_t tournament_select(std::span<const double> fitness, int k, Pcg32& rng) {
  ITH_CHECK(!fitness.empty(), "selection over empty population");
  ITH_CHECK(k >= 1, "tournament size must be >= 1");
  std::size_t best = rng.bounded(static_cast<std::uint32_t>(fitness.size()));
  for (int round = 1; round < k; ++round) {
    const std::size_t contender = rng.bounded(static_cast<std::uint32_t>(fitness.size()));
    if (fitness[contender] < fitness[best]) best = contender;
  }
  return best;
}

std::size_t roulette_select(std::span<const double> fitness, Pcg32& rng) {
  ITH_CHECK(!fitness.empty(), "selection over empty population");
  const double worst = *std::max_element(fitness.begin(), fitness.end());
  constexpr double kEps = 1e-9;
  double total = 0.0;
  for (double f : fitness) total += (worst - f) + kEps;
  double ticket = rng.uniform() * total;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    ticket -= (worst - fitness[i]) + kEps;
    if (ticket <= 0.0) return i;
  }
  return fitness.size() - 1;
}

}  // namespace ith::ga
