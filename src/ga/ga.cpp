#include "ga/ga.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <set>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace ith::ga {

GeneticAlgorithm::GeneticAlgorithm(GenomeSpace space, FitnessFn fitness, GaConfig config)
    : space_(std::move(space)), fitness_(std::move(fitness)), config_(config) {
  ITH_CHECK(fitness_ != nullptr, "GA requires a fitness function");
  ITH_CHECK(config_.population >= 2, "population must be >= 2");
  ITH_CHECK(config_.generations >= 1, "need at least one generation");
  ITH_CHECK(config_.elites >= 0 && config_.elites < config_.population,
            "elites must be in [0, population)");
  ITH_CHECK(config_.crossover_rate >= 0.0 && config_.crossover_rate <= 1.0,
            "crossover rate out of [0,1]");
  ITH_CHECK(config_.mutation_prob >= 0.0 && config_.mutation_prob <= 1.0,
            "mutation probability out of [0,1]");
  for (const Genome& g : config_.seed_individuals) {
    ITH_CHECK(space_.valid(g), "seed individual outside the genome space");
  }
}

void GeneticAlgorithm::set_progress(std::function<void(const GenerationStats&)> cb) {
  progress_ = std::move(cb);
}

std::vector<double> GeneticAlgorithm::evaluate(const std::vector<Genome>& pop, GaResult& result) {
  std::vector<double> fitness(pop.size());
  std::vector<std::size_t> todo;  // indices not answered by the cache

  if (config_.memoize) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const auto it = cache_.find(pop[i]);
      if (it != cache_.end()) {
        fitness[i] = it->second;
        ++result.cache_hits;
      } else {
        todo.push_back(i);
      }
    }
  } else {
    todo.resize(pop.size());
    std::iota(todo.begin(), todo.end(), 0);
  }

  // Within one generation, duplicate uncached genomes are evaluated once.
  std::map<Genome, std::vector<std::size_t>> groups;
  for (std::size_t i : todo) groups[pop[i]].push_back(i);

  std::vector<const Genome*> uniques;
  uniques.reserve(groups.size());
  for (const auto& [g, _] : groups) uniques.push_back(&g);

  std::vector<double> values(uniques.size());
  if (config_.threads == 1 || uniques.size() <= 1) {
    for (std::size_t u = 0; u < uniques.size(); ++u) values[u] = fitness_(*uniques[u]);
  } else {
    ThreadPool pool(config_.threads == 0 ? 0 : static_cast<std::size_t>(config_.threads));
    pool.parallel_for(uniques.size(),
                      [&](std::size_t u) { values[u] = fitness_(*uniques[u]); });
  }
  result.evaluations += uniques.size();

  for (std::size_t u = 0; u < uniques.size(); ++u) {
    const Genome& g = *uniques[u];
    if (config_.memoize) cache_[g] = values[u];
    for (std::size_t i : groups[g]) fitness[i] = values[u];
  }
  return fitness;
}

GaResult GeneticAlgorithm::run() {
  Pcg32 rng(config_.seed, 0x6a11);
  GaResult result;

  // Initial population: seed individuals first, random fill.
  std::vector<Genome> pop;
  pop.reserve(static_cast<std::size_t>(config_.population));
  for (const Genome& g : config_.seed_individuals) {
    if (pop.size() < static_cast<std::size_t>(config_.population)) pop.push_back(g);
  }
  while (pop.size() < static_cast<std::size_t>(config_.population)) {
    pop.push_back(space_.random(rng));
  }

  std::vector<double> fitness = evaluate(pop, result);

  double best_ever = fitness[0];
  Genome best_genome = pop[0];
  int stale = 0;

  auto record_generation = [&](int gen) {
    GenerationStats gs;
    gs.generation = gen;
    gs.best = *std::min_element(fitness.begin(), fitness.end());
    gs.worst = *std::max_element(fitness.begin(), fitness.end());
    gs.mean = std::accumulate(fitness.begin(), fitness.end(), 0.0) /
              static_cast<double>(fitness.size());
    gs.diversity = static_cast<double>(std::set<Genome>(pop.begin(), pop.end()).size()) /
                   static_cast<double>(pop.size());
    const auto bi = static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
    gs.best_genome = pop[bi];
    result.history.push_back(gs);
    if (config_.obs != nullptr && config_.obs->enabled(obs::Category::kGa)) {
      config_.obs->instant(obs::Category::kGa, "ga.generation", obs::Domain::kHost,
                           config_.obs->host_now_us(),
                           {{"generation", gs.generation},
                            {"best", gs.best},
                            {"mean", gs.mean},
                            {"worst", gs.worst},
                            {"diversity", gs.diversity},
                            {"evaluations", result.evaluations},
                            {"cache_hits", result.cache_hits}});
    }
    if (progress_) progress_(gs);

    if (gs.best < best_ever) {
      best_ever = gs.best;
      best_genome = pop[bi];
      stale = 0;
    } else {
      ++stale;
    }
  };

  record_generation(0);

  for (int gen = 1; gen < config_.generations; ++gen) {
    if (config_.patience > 0 && stale >= config_.patience) break;

    // Elitism: carry over the best individuals unchanged.
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });

    std::vector<Genome> next;
    next.reserve(pop.size());
    for (int e = 0; e < config_.elites; ++e) next.push_back(pop[order[static_cast<std::size_t>(e)]]);

    while (next.size() < pop.size()) {
      const std::size_t pa = config_.selection == SelectionKind::kTournament
                                 ? tournament_select(fitness, config_.tournament_k, rng)
                                 : roulette_select(fitness, rng);
      const std::size_t pb = config_.selection == SelectionKind::kTournament
                                 ? tournament_select(fitness, config_.tournament_k, rng)
                                 : roulette_select(fitness, rng);
      Genome child = rng.chance(config_.crossover_rate)
                         ? crossover(pop[pa], pop[pb], config_.crossover, rng)
                         : pop[pa];
      mutate(child, space_, config_.mutation, config_.mutation_prob, rng);
      space_.clamp(child);
      next.push_back(std::move(child));
    }

    pop = std::move(next);
    fitness = evaluate(pop, result);
    record_generation(gen);
  }

  result.best = best_genome;
  result.best_fitness = best_ever;
  if (config_.obs != nullptr) {
    config_.obs->counter("ga.evaluations").add(result.evaluations);
    config_.obs->counter("ga.cache_hits").add(result.cache_hits);
    config_.obs->flush();
  }
  return result;
}

}  // namespace ith::ga
