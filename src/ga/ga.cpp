#include "ga/ga.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <set>

#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace ith::ga {

GeneticAlgorithm::GeneticAlgorithm(GenomeSpace space, FitnessFn fitness, GaConfig config)
    : space_(std::move(space)), fitness_(std::move(fitness)), config_(config) {
  ITH_CHECK(fitness_ != nullptr, "GA requires a fitness function");
  ITH_CHECK(config_.population >= 2, "population must be >= 2");
  ITH_CHECK(config_.generations >= 1, "need at least one generation");
  ITH_CHECK(config_.elites >= 0 && config_.elites < config_.population,
            "elites must be in [0, population)");
  ITH_CHECK(config_.crossover_rate >= 0.0 && config_.crossover_rate <= 1.0,
            "crossover rate out of [0,1]");
  ITH_CHECK(config_.mutation_prob >= 0.0 && config_.mutation_prob <= 1.0,
            "mutation probability out of [0,1]");
  for (const Genome& g : config_.seed_individuals) {
    ITH_CHECK(space_.valid(g), "seed individual outside the genome space");
  }
}

void GeneticAlgorithm::set_progress(std::function<void(const GenerationStats&)> cb) {
  progress_ = std::move(cb);
}

std::uint64_t GeneticAlgorithm::fingerprint() const {
  using resilience::hash_string;
  using resilience::mix_keys;
  std::uint64_t h = hash_string("ith-ga-fingerprint");
  h = mix_keys(h, static_cast<std::uint64_t>(config_.population));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.generations));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.selection));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.tournament_k));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.crossover));
  h = mix_keys(h, hash_string(std::to_string(config_.crossover_rate)));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.mutation));
  h = mix_keys(h, hash_string(std::to_string(config_.mutation_prob)));
  h = mix_keys(h, static_cast<std::uint64_t>(config_.elites));
  h = mix_keys(h, config_.seed);
  h = mix_keys(h, static_cast<std::uint64_t>(config_.patience));
  h = mix_keys(h, config_.memoize ? 1 : 0);
  for (const GeneSpec& gs : space_.genes()) {
    h = mix_keys(h, hash_string(gs.name));
    h = mix_keys(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(gs.lo)));
    h = mix_keys(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(gs.hi)));
  }
  for (const Genome& g : config_.seed_individuals) {
    for (const int x : g) h = mix_keys(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
    h = mix_keys(h, 0x5eedu);
  }
  return h;
}

std::vector<double> GeneticAlgorithm::evaluate(const std::vector<Genome>& pop, GaResult& result) {
  std::vector<double> fitness(pop.size());
  std::vector<std::size_t> todo;  // indices not answered by the cache

  if (config_.memoize) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const auto it = cache_.find(pop[i]);
      if (it != cache_.end()) {
        fitness[i] = it->second;
        ++result.cache_hits;
      } else {
        todo.push_back(i);
      }
    }
  } else {
    todo.resize(pop.size());
    std::iota(todo.begin(), todo.end(), 0);
  }

  // Within one generation, duplicate uncached genomes are evaluated once.
  std::map<Genome, std::vector<std::size_t>> groups;
  for (std::size_t i : todo) groups[pop[i]].push_back(i);

  std::vector<const Genome*> uniques;
  uniques.reserve(groups.size());
  for (const auto& [g, _] : groups) uniques.push_back(&g);

  std::vector<double> values(uniques.size());
  if (config_.threads == 1 || uniques.size() <= 1) {
    for (std::size_t u = 0; u < uniques.size(); ++u) values[u] = fitness_(*uniques[u]);
  } else {
    ThreadPool pool(config_.threads == 0 ? 0 : static_cast<std::size_t>(config_.threads));
    pool.parallel_for(uniques.size(),
                      [&](std::size_t u) { values[u] = fitness_(*uniques[u]); });
  }
  result.evaluations += uniques.size();

  for (std::size_t u = 0; u < uniques.size(); ++u) {
    const Genome& g = *uniques[u];
    if (config_.memoize) cache_[g] = values[u];
    for (std::size_t i : groups[g]) fitness[i] = values[u];
  }
  return fitness;
}

GaResult GeneticAlgorithm::run() {
  Pcg32 rng(config_.seed, 0x6a11);
  GaResult result;
  const std::uint64_t fp = fingerprint();

  std::vector<Genome> pop;
  std::vector<double> fitness;
  double best_ever = 0.0;
  Genome best_genome;
  int stale = 0;
  int gen0 = 0;

  auto journal = [&](int gen) {
    if (!config_.journal) return;
    if (config_.checkpoint_every > 1 && gen % config_.checkpoint_every != 0) return;
    resilience::GaCheckpoint cp;
    cp.fingerprint = fp;
    cp.generation = gen;
    cp.rng_state = rng.raw_state();
    cp.rng_inc = rng.raw_inc();
    cp.evaluations = result.evaluations;
    cp.cache_hits = result.cache_hits;
    cp.best_ever = best_ever;
    cp.best_genome = best_genome;
    cp.stale = stale;
    cp.population = pop;
    cp.fitness = fitness;
    cp.cache.reserve(cache_.size());
    for (const auto& [g, f] : cache_) cp.cache.emplace_back(g, f);
    cp.history = result.history;
    if (config_.quarantine_source) cp.quarantine = config_.quarantine_source();
    config_.journal(cp);
  };

  // Ordering matters for crash consistency: best/stale are updated *before*
  // the journal runs (so the checkpoint reflects the completed generation)
  // and the progress callback comes *last* — a kill inside progress (the
  // chaos tests' kill point) always leaves a checkpoint for this generation.
  auto record_generation = [&](int gen) {
    GenerationStats gs;
    gs.generation = gen;
    gs.best = *std::min_element(fitness.begin(), fitness.end());
    gs.worst = *std::max_element(fitness.begin(), fitness.end());
    gs.mean = std::accumulate(fitness.begin(), fitness.end(), 0.0) /
              static_cast<double>(fitness.size());
    gs.diversity = static_cast<double>(std::set<Genome>(pop.begin(), pop.end()).size()) /
                   static_cast<double>(pop.size());
    const auto bi = static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
    gs.best_genome = pop[bi];
    result.history.push_back(gs);
    if (config_.obs != nullptr && config_.obs->enabled(obs::Category::kGa)) {
      std::vector<obs::Arg> args{{"generation", gs.generation},
                                 {"best", gs.best},
                                 {"mean", gs.mean},
                                 {"worst", gs.worst},
                                 {"diversity", gs.diversity},
                                 {"evaluations", result.evaluations},
                                 {"cache_hits", result.cache_hits}};
      if (config_.generation_args) config_.generation_args(args);
      config_.obs->instant(obs::Category::kGa, "ga.generation", obs::Domain::kHost,
                           config_.obs->host_now_us(), std::move(args));
    }

    if (gs.best < best_ever) {
      best_ever = gs.best;
      best_genome = pop[bi];
      stale = 0;
    } else {
      ++stale;
    }
    journal(gen);
    if (progress_) progress_(gs);
  };

  if (config_.resume_from != nullptr) {
    const resilience::GaCheckpoint& cp = *config_.resume_from;
    ITH_CHECK(cp.fingerprint == fp,
              "checkpoint does not match this GA configuration (fingerprint mismatch)");
    ITH_CHECK(cp.population.size() == static_cast<std::size_t>(config_.population) &&
                  cp.fitness.size() == cp.population.size(),
              "checkpoint population size mismatch");
    rng.restore(cp.rng_state, cp.rng_inc);
    pop = cp.population;
    fitness = cp.fitness;
    best_ever = cp.best_ever;
    best_genome = cp.best_genome;
    stale = cp.stale;
    result.evaluations = cp.evaluations;
    result.cache_hits = cp.cache_hits;
    result.history = cp.history;
    if (config_.memoize) {
      for (const auto& [g, f] : cp.cache) cache_[g] = f;
    }
    gen0 = cp.generation;
  } else {
    // Initial population: seed individuals first, random fill.
    pop.reserve(static_cast<std::size_t>(config_.population));
    for (const Genome& g : config_.seed_individuals) {
      if (pop.size() < static_cast<std::size_t>(config_.population)) pop.push_back(g);
    }
    while (pop.size() < static_cast<std::size_t>(config_.population)) {
      pop.push_back(space_.random(rng));
    }

    fitness = evaluate(pop, result);
    best_ever = fitness[0];
    best_genome = pop[0];
    record_generation(0);
  }

  for (int gen = gen0 + 1; gen < config_.generations; ++gen) {
    if (config_.patience > 0 && stale >= config_.patience) break;

    // Elitism: carry over the best individuals unchanged.
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });

    std::vector<Genome> next;
    next.reserve(pop.size());
    for (int e = 0; e < config_.elites; ++e) next.push_back(pop[order[static_cast<std::size_t>(e)]]);

    while (next.size() < pop.size()) {
      const std::size_t pa = config_.selection == SelectionKind::kTournament
                                 ? tournament_select(fitness, config_.tournament_k, rng)
                                 : roulette_select(fitness, rng);
      const std::size_t pb = config_.selection == SelectionKind::kTournament
                                 ? tournament_select(fitness, config_.tournament_k, rng)
                                 : roulette_select(fitness, rng);
      Genome child = rng.chance(config_.crossover_rate)
                         ? crossover(pop[pa], pop[pb], config_.crossover, rng)
                         : pop[pa];
      mutate(child, space_, config_.mutation, config_.mutation_prob, rng);
      space_.clamp(child);
      next.push_back(std::move(child));
    }

    pop = std::move(next);
    fitness = evaluate(pop, result);
    record_generation(gen);
  }

  result.best = best_genome;
  result.best_fitness = best_ever;
  if (config_.obs != nullptr) {
    config_.obs->counter("ga.evaluations").add(result.evaluations);
    config_.obs->counter("ga.cache_hits").add(result.cache_hits);
    config_.obs->flush();
  }
  return result;
}

}  // namespace ith::ga
