#include "ga/baselines.hpp"

#include "support/error.hpp"

namespace ith::ga {

SearchResult random_search(const GenomeSpace& space, const FitnessFn& fitness, std::size_t budget,
                           std::uint64_t seed) {
  ITH_CHECK(budget >= 1, "random search needs a positive budget");
  Pcg32 rng(seed, 0x9a2d);
  SearchResult result;
  result.trajectory.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i) {
    Genome g = space.random(rng);
    const double f = fitness(g);
    ++result.evaluations;
    if (i == 0 || f < result.best_fitness) {
      result.best_fitness = f;
      result.best = std::move(g);
    }
    result.trajectory.push_back(result.best_fitness);
  }
  return result;
}

SearchResult hill_climb(const GenomeSpace& space, const FitnessFn& fitness, std::size_t budget,
                        std::uint64_t seed, int stall_limit) {
  ITH_CHECK(budget >= 1, "hill climbing needs a positive budget");
  ITH_CHECK(stall_limit >= 1, "stall limit must be positive");
  Pcg32 rng(seed, 0x811c);
  SearchResult result;
  result.trajectory.reserve(budget);

  Genome current = space.random(rng);
  double current_f = fitness(current);
  ++result.evaluations;
  result.best = current;
  result.best_fitness = current_f;
  result.trajectory.push_back(result.best_fitness);
  int stall = 0;

  while (result.evaluations < budget) {
    Genome probe = current;
    // One-gene move: redraw a single coordinate.
    const std::size_t i = rng.bounded(static_cast<std::uint32_t>(space.size()));
    probe[i] = static_cast<int>(rng.range(space.gene(i).lo, space.gene(i).hi));

    const double f = fitness(probe);
    ++result.evaluations;
    if (f < current_f) {
      current = std::move(probe);
      current_f = f;
      stall = 0;
    } else {
      ++stall;
    }
    if (current_f < result.best_fitness) {
      result.best_fitness = current_f;
      result.best = current;
    }
    if (stall >= stall_limit) {  // restart from a fresh random point
      current = space.random(rng);
      current_f = fitness(current);
      ++result.evaluations;
      if (current_f < result.best_fitness) {
        result.best_fitness = current_f;
        result.best = current;
      }
      stall = 0;
    }
    result.trajectory.push_back(result.best_fitness);
  }
  return result;
}

}  // namespace ith::ga
