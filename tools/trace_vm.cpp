// trace_vm: run one workload through the VM with tracing on and write the
// trace — the smallest end-to-end demonstration of the observability layer.
//
//   trace_vm --workload=compress --scenario=adapt --trace=out.json \
//            --trace-format=chrome
//
// The chrome format opens directly in chrome://tracing or
// https://ui.perfetto.dev. Process 1 is the simulated-cycle timeline
// (compile spans whose durations sum exactly to the run's compile cycles,
// promotions, hot-site trips, code installs); process 2 is the host
// wall-clock timeline (optimizer passes, inlining decisions).
//
// Flags:
//   --workload=NAME    workload to run (default compress; see workloads/)
//   --scenario=S       adapt (default) or opt
//   --arch=A           x86 (default) or ppc
//   --iterations=N     VM iterations (default 2)
//   --trace=PATH       output file (default trace.json)
//   --trace-format=F   chrome (default) or jsonl
//   --trace-cats=CSV   category filter (default all)
//   --inline-report    print the structured inline report (every method
//                      compiled once through a cold-profile PassManager)
//   --partial=N        PARTIAL_MAX_HEAD_SIZE for the report's heuristic
//                      (default 0 = partial inlining off)
#include <fstream>
#include <iostream>
#include <memory>

#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "opt/pipeline.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "vm/vm.hpp"
#include "workloads/suite.hpp"

using namespace ith;

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    const std::string workload = cli.get_or("workload", "compress");
    const std::string scenario = cli.get_or("scenario", "adapt");
    const std::string arch = cli.get_or("arch", "x86");
    const int iterations = static_cast<int>(cli.get_int_or("iterations", 2));
    const std::string path = cli.get_or("trace", "trace.json");
    const std::string format = cli.get_or("trace-format", "chrome");
    const std::uint32_t cats = obs::category_mask_from_string(cli.get_or("trace-cats", "all"));

    ITH_CHECK(scenario == "adapt" || scenario == "opt", "--scenario must be adapt or opt");
    ITH_CHECK(arch == "x86" || arch == "ppc", "--arch must be x86 or ppc");
    ITH_CHECK(format == "chrome" || format == "jsonl", "--trace-format must be chrome or jsonl");

    std::ofstream out(path);
    ITH_CHECK(out.is_open(), "cannot open " + path);
    std::unique_ptr<obs::TraceSink> sink;
    if (format == "chrome") {
      sink = std::make_unique<obs::ChromeTraceSink>(out);
    } else {
      sink = std::make_unique<obs::JsonlSink>(out);
    }
    obs::Context ctx(sink.get(), cats);

    const wl::Workload w = wl::make_workload(workload);
    const rt::MachineModel machine = arch == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
    heur::JikesHeuristic heuristic(heur::default_params());
    vm::VmConfig cfg;
    cfg.scenario = scenario == "adapt" ? vm::Scenario::kAdapt : vm::Scenario::kOpt;
    cfg.obs = &ctx;

    vm::VirtualMachine machine_vm(w.program, machine, heuristic, cfg);
    const vm::RunResult rr = machine_vm.run(iterations);
    ctx.flush();
    sink.reset();  // chrome sink closes its JSON array here

    std::cout << "workload " << w.name << " (" << scenario << ", " << arch << ", " << iterations
              << " iterations)\n"
              << "  total cycles (iter 1): " << rr.total_cycles << "\n"
              << "  running cycles (best): " << rr.running_cycles << "\n"
              << "  compile cycles (all):  " << rr.compile_cycles_all << "\n"
              << "  compiles: " << rr.methods_baseline_compiled << " baseline, "
              << rr.methods_opt_compiled << " opt (" << rr.recompilations << " recompilations)\n"
              << "trace written to " << path << " (" << format << ")\n";
    if (format == "chrome") {
      std::cout << "open in chrome://tracing or https://ui.perfetto.dev\n";
    }

    if (cli.has("inline-report")) {
      // Structured inline report: one cold-profile compilation per method
      // through a fresh PassManager (profiles from the traced run above do
      // not apply — the report is a static what-would-the-inliner-do dump).
      heur::InlineParams p = heur::default_params();
      p.partial_max_head_size =
          static_cast<int>(cli.get_int_or("partial", p.partial_max_head_size));
      heur::JikesHeuristic h(p);
      opt::PassManager pm(w.program, h);
      opt::InlineReport report;
      for (std::size_t i = 0; i < w.program.num_methods(); ++i) {
        pm.run(static_cast<bc::MethodId>(i), &report);
      }
      std::cout << "\ninline report (" << p.to_string() << "):\n"
                << opt::format_inline_report(w.program, report);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
