// trace_report: summarize a trace produced by the observability layer.
//
//   trace_report trace.jsonl                  # phase/span/counter summary
//   trace_report trace.json --validate        # schema-check every event
//   trace_report trace.jsonl --ga-csv=ga.csv  # per-generation fitness CSV
//
// Accepts both sink formats: JSONL (one event per line) and the Chrome
// trace_event JSON ({"traceEvents":[...]}). The summary separates the two
// timebases: process 1 events are in simulated cycles (compile-time
// attribution that matches the VM's RunResult exactly), process 2 events
// are host wall-clock microseconds.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/schema.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

using namespace ith;

namespace {

/// Loads every event object from a JSONL or Chrome-format trace file.
std::vector<JsonValue> load_events(const std::string& path) {
  std::ifstream in(path);
  ITH_CHECK(in.is_open(), "cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t first = text.find_first_not_of(" \t\r\n");
  ITH_CHECK(first != std::string::npos, path + " is empty");

  std::vector<JsonValue> events;
  if (text.compare(first, 14, "{\"traceEvents\"") == 0) {
    JsonValue doc = parse_json(text);
    for (auto& [key, value] : doc.members) {
      if (key == "traceEvents") {
        ITH_CHECK(value.kind == JsonValue::Kind::kArray, path + ": traceEvents is not an array");
        events = std::move(value.items);
        return events;
      }
    }
    throw Error(path + ": traceEvents missing");
  } else {
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        events.push_back(parse_json(line));
      } catch (const Error& e) {
        throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
      }
    }
  }
  return events;
}

std::string get_str(const JsonValue& e, const char* key) {
  const JsonValue* v = e.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->str : std::string();
}

std::int64_t get_int(const JsonValue& e, const char* key) {
  const JsonValue* v = e.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->as_int() : 0;
}

double get_num(const JsonValue& e, const char* key, double fallback) {
  const JsonValue* v = e.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number : fallback;
}

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    ITH_CHECK(!cli.positional().empty(),
              "usage: trace_report TRACE [--validate] [--ga-csv=PATH]");
    const std::string path = cli.positional().front();
    const std::vector<JsonValue> events = load_events(path);

    if (cli.has("validate")) {
      std::size_t bad = 0;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (const auto err = obs::validate_event(events[i])) {
          std::cerr << "event " << i << ": " << *err << "\n";
          ++bad;
        }
      }
      if (bad != 0) {
        std::cerr << bad << "/" << events.size() << " events failed schema validation\n";
        return 1;
      }
      std::cout << events.size() << " events OK\n";
      if (!cli.has("ga-csv") && cli.positional().size() == 1) return 0;
    }

    if (cli.has("ga-csv")) {
      const std::string csv_path = cli.get_or("ga-csv", "");
      ITH_CHECK(!csv_path.empty(), "--ga-csv needs a path");
      std::ofstream csv(csv_path);
      ITH_CHECK(csv.is_open(), "cannot open " + csv_path);
      csv << "generation,best,mean,worst,diversity\n";
      std::size_t rows = 0;
      for (const JsonValue& e : events) {
        if (get_str(e, "name") != "ga.generation") continue;
        const JsonValue* args = e.find("args");
        if (args == nullptr) continue;
        csv << get_int(*args, "generation") << "," << get_num(*args, "best", 0.0) << ","
            << get_num(*args, "mean", 0.0) << "," << get_num(*args, "worst", 0.0) << ","
            << get_num(*args, "diversity", 0.0) << "\n";
        ++rows;
      }
      std::cout << rows << " generations written to " << csv_path << "\n";
      return 0;
    }

    // Phase attribution: complete spans by name, split by timebase.
    std::map<std::string, SpanAgg> sim_spans, host_spans;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, std::int64_t> counters;
    for (const JsonValue& e : events) {
      const std::string name = get_str(e, "name");
      const std::string ph = get_str(e, "ph");
      if (ph == "X") {
        auto& agg = get_int(e, "pid") == 1 ? sim_spans[name] : host_spans[name];
        ++agg.count;
        agg.total += static_cast<std::uint64_t>(get_int(e, "dur"));
      } else if (ph == "i") {
        ++instants[name];
      } else if (ph == "C") {
        // Counter events carry {counter_name: value} args; the last sample
        // wins (counters are cumulative).
        const JsonValue* args = e.find("args");
        if (args != nullptr) {
          for (const auto& [key, value] : args->members) counters[key] = value.as_int();
        }
      }
    }

    std::cout << events.size() << " events from " << path << "\n\n";

    if (!sim_spans.empty()) {
      std::uint64_t all = 0;
      for (const auto& [_, agg] : sim_spans) all += agg.total;
      Table t({"sim-domain span", "count", "cycles", "share"});
      for (const auto& [name, agg] : sim_spans) {
        t.add_row({name, std::to_string(agg.count), std::to_string(agg.total),
                   cell(100.0 * static_cast<double>(agg.total) / static_cast<double>(all), 1) +
                       "%"});
      }
      std::cout << "Simulated-cycle attribution (pid 1):\n";
      t.render(std::cout);
      std::cout << "\n";
    }

    if (!host_spans.empty()) {
      Table t({"host-domain span", "count", "total us"});
      for (const auto& [name, agg] : host_spans) {
        t.add_row({name, std::to_string(agg.count), std::to_string(agg.total)});
      }
      std::cout << "Host wall-clock spans (pid 2):\n";
      t.render(std::cout);
      std::cout << "\n";
    }

    if (!instants.empty()) {
      Table t({"instant event", "count"});
      for (const auto& [name, n] : instants) t.add_row({name, std::to_string(n)});
      std::cout << "Instant events:\n";
      t.render(std::cout);
      std::cout << "\n";
    }

    if (!counters.empty()) {
      Table t({"counter", "value"});
      for (const auto& [name, v] : counters) t.add_row({name, std::to_string(v)});
      std::cout << "Counters (final values):\n";
      t.render(std::cout);
    }

    // Signature cache: the decision-probe layer's counters (probe activity,
    // hit/miss traffic at the signature-keyed result cache) plus the
    // tuner's collapse totals, summarized so a tuning trace answers "how
    // many suite runs did the cache save" at a glance.
    std::map<std::string, std::int64_t> sig_counters;
    for (const auto& [name, v] : counters) {
      if (name.rfind("sig.", 0) == 0 || name.rfind("ga.distinct_", 0) == 0 ||
          name == "ga.evaluations_saved") {
        sig_counters[name] = v;
      }
    }
    if (!sig_counters.empty()) {
      Table t({"signature counter", "value"});
      for (const auto& [name, v] : sig_counters) t.add_row({name, std::to_string(v)});
      std::cout << "\nSignature cache (decision-probe collapse):\n";
      t.render(std::cout);
      auto val = [&](const char* k) {
        return sig_counters.count(k) ? sig_counters[k] : std::int64_t{0};
      };
      const std::int64_t hits = val("sig.hits");
      const std::int64_t misses = val("sig.misses");
      if (hits + misses > 0) {
        std::cout << "signature cache hit rate: " << hits << "/" << (hits + misses) << " ("
                  << cell(100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses),
                          1)
                  << "%)\n";
      }
      const std::int64_t dp = val("ga.distinct_params");
      const std::int64_t ds = val("ga.distinct_signatures");
      if (ds > 0) {
        std::cout << "collapse: " << dp << " distinct params -> " << ds << " signatures ("
                  << cell(static_cast<double>(dp) / static_cast<double>(ds), 2)
                  << "x fewer suite runs)\n";
      }
      const std::int64_t probes = val("sig.probes");
      if (probes > 0) {
        std::cout << "probe cost: " << val("sig.probe_us") << " us over " << probes
                  << " probes\n";
      }
    }

    // Passes: the pass manager's per-pass run/change totals plus the
    // analysis cache's hit/miss/invalidation traffic, so a traced tune
    // answers "which passes do the work, and does the cached-analysis layer
    // actually avoid recomputation" at a glance.
    std::map<std::string, std::int64_t> opt_counters;
    for (const auto& [name, v] : counters) {
      if (name.rfind("opt.", 0) == 0) opt_counters[name] = v;
    }
    if (!opt_counters.empty()) {
      std::cout << "\nPasses (pass manager):\n";
      const std::string pass_prefix = "opt.pass.";
      std::map<std::string, std::pair<std::int64_t, std::int64_t>> per_pass;
      for (const auto& [name, v] : opt_counters) {
        if (name.rfind(pass_prefix, 0) != 0) continue;
        const std::string rest = name.substr(pass_prefix.size());
        const std::size_t dot = rest.rfind('.');
        if (dot == std::string::npos) continue;
        const std::string kind = rest.substr(dot + 1);
        if (kind == "runs") {
          per_pass[rest.substr(0, dot)].first = v;
        } else if (kind == "changes") {
          per_pass[rest.substr(0, dot)].second = v;
        }
      }
      if (!per_pass.empty()) {
        Table t({"pass", "runs", "changes"});
        for (const auto& [name, rc] : per_pass) {
          t.add_row({name, std::to_string(rc.first), std::to_string(rc.second)});
        }
        t.render(std::cout);
      }
      auto oval = [&](const char* k) {
        return opt_counters.count(k) ? opt_counters[k] : std::int64_t{0};
      };
      const std::int64_t ahits = oval("opt.analysis_hits");
      const std::int64_t amisses = oval("opt.analysis_misses");
      if (ahits + amisses > 0) {
        std::cout << "analysis cache: " << ahits << "/" << (ahits + amisses) << " hits ("
                  << cell(100.0 * static_cast<double>(ahits) /
                              static_cast<double>(ahits + amisses),
                          1)
                  << "%), " << oval("opt.analysis_invalidations") << " invalidations\n";
      }
    }

    // Serving: the serving tier's counters (request/SLO accounting, fleet
    // installs) plus the online controller's retune verdicts, aggregated
    // from serve.retune instants so a serving trace answers "did the tuner
    // converge, and what did each proposal cost" at a glance.
    std::map<std::string, std::int64_t> serving;
    for (const auto& [name, v] : counters) {
      if (name.rfind("serve.", 0) == 0) serving[name] = v;
    }
    std::map<std::string, std::int64_t> retune_actions;
    for (const JsonValue& e : events) {
      if (get_str(e, "name") != "serve.retune") continue;
      const JsonValue* args = e.find("args");
      if (args == nullptr) continue;
      const std::string action = get_str(*args, "action");
      if (!action.empty()) ++retune_actions[action];
    }
    if (!serving.empty() || !retune_actions.empty()) {
      std::cout << "\nServing:\n";
      if (!serving.empty()) {
        Table t({"serving counter", "value"});
        for (const auto& [name, v] : serving) t.add_row({name, std::to_string(v)});
        t.render(std::cout);
      }
      if (!retune_actions.empty()) {
        Table t({"retune verdict", "count"});
        for (const auto& [name, n] : retune_actions) t.add_row({name, std::to_string(n)});
        t.render(std::cout);
      }
      const std::int64_t reqs = serving.count("serve.requests") ? serving["serve.requests"] : 0;
      const std::int64_t viol =
          serving.count("serve.slo_violations") ? serving["serve.slo_violations"] : 0;
      if (reqs > 0) {
        std::cout << "SLO: " << (reqs - viol) << "/" << reqs << " requests within envelope ("
                  << cell(100.0 * static_cast<double>(reqs - viol) / static_cast<double>(reqs), 1)
                  << "%)\n";
      }
    }

    // Evaluation service: the daemon's svc.* counters (connection/request
    // traffic, single-flight waits, snapshot activity) plus the lease
    // ledger, with the leak invariant checked inline — a fleet trace
    // answers "did every lease come home" at a glance.
    std::map<std::string, std::int64_t> service;
    for (const auto& [name, v] : counters) {
      if (name.rfind("svc.", 0) == 0) service[name] = v;
    }
    if (!service.empty()) {
      auto sval = [&](const char* k) {
        return service.count(k) ? service[k] : std::int64_t{0};
      };
      std::cout << "\nEvaluation service:\n";
      Table t({"service counter", "value"});
      for (const auto& [name, v] : service) t.add_row({name, std::to_string(v)});
      t.render(std::cout);
      const std::int64_t granted = sval("svc.leases_granted");
      const std::int64_t published = sval("svc.leases_published");
      const std::int64_t reclaimed = sval("svc.leases_reclaimed");
      if (granted > 0) {
        std::cout << "leases: " << granted << " granted = " << published << " published + "
                  << reclaimed << " reclaimed ("
                  << (granted == published + reclaimed ? "balanced, no leaks"
                                                       : "UNBALANCED — leaked leases")
                  << ")\n";
      }
      const std::int64_t hits = sval("svc.hits");
      const std::int64_t remote = sval("svc.client_remote_hits");
      if (hits + granted > 0) {
        std::cout << "sharing: " << hits << " served from the federated repository ("
                  << remote << " landed in clients), " << sval("svc.waits")
                  << " single-flight waits\n";
      }
    }

    // Fusion: the fast engine's superinstruction-fusion counters (bodies
    // rewritten, rules fired, dynamic-stream instructions eliminated) with
    // per-rule hit counts, so a trace answers "which patterns actually fire
    // on this workload" without rerunning the benchmark.
    std::map<std::string, std::int64_t> fusion;
    for (const auto& [name, v] : counters) {
      if (name.rfind("rt.fused", 0) == 0) fusion[name] = v;
    }
    if (!fusion.empty()) {
      auto fval = [&](const char* k) {
        return fusion.count(k) ? fusion[k] : std::int64_t{0};
      };
      std::cout << "\nFusion (superinstruction predecode):\n";
      Table t({"fusion counter", "value"});
      for (const auto& [name, v] : fusion) {
        if (name.rfind("rt.fused_rule.", 0) != 0 && name.rfind("rt.fused_imm_rule.", 0) != 0) {
          t.add_row({name, std::to_string(v)});
        }
      }
      t.render(std::cout);
      // Per-rule table: total sites rewritten alongside the immediate-form
      // subset, so a trace answers "which windows got their operands
      // captured" next to "which patterns fire at all".
      std::map<std::string, std::int64_t> rule_hits, rule_hits_imm;
      for (const auto& [name, v] : fusion) {
        if (name.rfind("rt.fused_imm_rule.", 0) == 0) {
          rule_hits_imm[name.substr(std::string("rt.fused_imm_rule.").size())] = v;
        } else if (name.rfind("rt.fused_rule.", 0) == 0) {
          rule_hits[name.substr(std::string("rt.fused_rule.").size())] = v;
        }
      }
      if (!rule_hits.empty() || !rule_hits_imm.empty()) {
        Table rt_table({"fusion rule", "sites rewritten", "immediate form"});
        for (const auto& [name, v] : rule_hits) {
          const auto imm = rule_hits_imm.find(name);
          rt_table.add_row({name, std::to_string(v),
                            std::to_string(imm == rule_hits_imm.end() ? 0 : imm->second)});
        }
        // Imm-only rules (no pool-less fallback) may publish only the imm
        // counter; surface them too instead of silently dropping the row.
        for (const auto& [name, v] : rule_hits_imm) {
          if (rule_hits.count(name) == 0) rt_table.add_row({name, "0", std::to_string(v)});
        }
        rt_table.render(std::cout);
      }
      const std::int64_t fired = fval("rt.fused_rules_fired");
      const std::int64_t eliminated = fval("rt.fused_insns_eliminated");
      if (fired > 0) {
        std::cout << "fusion: " << fired << " sites rewritten across "
                  << fval("rt.fused_bodies") << " bodies, " << eliminated
                  << " static dispatches eliminated ("
                  << cell(static_cast<double>(eliminated) / static_cast<double>(fired), 2)
                  << " insns folded per site); " << fval("rt.fused_imm_windows")
                  << " windows operand-captured, " << fval("rt.fused_imm_pool_overflows")
                  << " side-pool overflows\n";
      }
    }

    // Failures: the resilience layer's counters (guarded-run outcomes by
    // kind, retries, quarantine activity), pulled out of the counter table
    // into their own section so a chaos campaign's survival story is
    // readable at a glance.
    std::map<std::string, std::int64_t> failures;
    for (const auto& [name, v] : counters) {
      if (name.rfind("resil.", 0) == 0) failures[name] = v;
    }
    if (!failures.empty()) {
      const std::int64_t ok = failures.count("resil.outcome.ok") ? failures["resil.outcome.ok"] : 0;
      std::int64_t failed = 0;
      for (const char* k : {"resil.outcome.budget", "resil.outcome.trap", "resil.outcome.crash"}) {
        if (failures.count(k)) failed += failures[k];
      }
      Table t({"failure counter", "value"});
      for (const auto& [name, v] : failures) t.add_row({name, std::to_string(v)});
      std::cout << "\nFailures (guarded evaluation):\n";
      t.render(std::cout);
      const std::int64_t runs = ok + failed;
      if (runs > 0) {
        std::cout << "survival: " << ok << "/" << runs << " benchmark runs ok ("
                  << cell(100.0 * static_cast<double>(ok) / static_cast<double>(runs), 1)
                  << "%)\n";
      }
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
