// fleet_tune: N concurrent tuning clients sharing one evaluation daemon —
// the tuning-as-a-service end-to-end harness (and the CI fleet job's
// driver).
//
//   fleet_tune --clients=3 --verify-solo
//   fleet_tune --clients=3 --fault-rate=0.1 --fault-sites=svc
//   fleet_tune --clients=3 --kill-daemon-at=1 --snapshot=fleet.evc
//
// The daemon is spawned in-process (same binary, own threads) so one
// command orchestrates the whole fleet deterministically. Each client runs
// a full GA tune (seed --seed + client index) with the shared repository as
// its evaluation backend. The tool prints, and its exit code asserts, the
// two fleet-level properties:
//
//   - WINNER lines: with --verify-solo, each client's fleet winner must be
//     bit-identical to the same tune run standalone — sharing results can
//     make tuning cheaper, never different.
//   - FLEET/SOLO lines: the fleet's total real suite evaluations must be
//     strictly fewer than the standalone total.
//   - LEASES line: every lease granted is published or reclaimed (no leaks),
//     even under injected faults and a mid-flight daemon kill.
//
// Flags (chaos_tune-style defaults):
//   --clients=N            fleet size (default 3)
//   --workloads=CSV        benchmark names or a suite name (default compress,db)
//   --scenario=S           adapt (default) or opt
//   --arch=A               x86 (default) or ppc
//   --goal=G               running | total (default) | balance
//   --generations=N        GA generations per client (default 4)
//   --pop=N                population per client (default 6)
//   --seed=N               base GA seed (default 7)
//   --seed-stride=K        client i tunes with seed N+i*K. Default 0: the
//                          whole fleet runs one campaign and the daemon
//                          collapses its suite runs; non-zero = a
//                          heterogeneous fleet (sharing only where
//                          signature spaces collide)
//   --iterations=N         VM iterations per benchmark (default 2)
//   --retries=N            guarded retries per benchmark (default 2)
//   --socket=PATH          daemon socket (default fleet_tune.sock)
//   --snapshot=PATH        daemon ITHEVC1 persistence (default none)
//   --snapshot-every=N     publishes between periodic snapshots (default 4)
//   --import=CSV           foreign snapshots federated in at start
//   --fault-rate=R         fault probability (default 0)
//   --fault-seed=N         fault-plan seed (default 1)
//   --fault-sites=CSV      any mix of eval sites (vm,compile,eval,sink) and
//                          service sites (accept,read,write,dispatch,
//                          snapshot / svc / all); the mask is split — eval
//                          sites arm the evaluators (identically on every
//                          client AND in the solo reruns, so winners stay
//                          comparable), service sites arm the daemon
//                          (default svc)
//   --kill-daemon-at=G     kill the daemon after client 0's generation G;
//                          restart it one generation later (chaos fleet
//                          mode; -1 = never)
//   --no-restart           degrade-only chaos: never restart after the kill
//   --verify-solo          rerun each client standalone and diff winners
//   --timeout-ms=N         per-request client deadline (default 30000)
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "resilience/fault.hpp"
#include "service/fleet.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "tuner/fitness.hpp"
#include "workloads/suite.hpp"

using namespace ith;

namespace {

std::vector<wl::Workload> parse_workloads(const std::string& spec) {
  if (spec == "specjvm98" || spec == "dacapo+jbb" || spec == "all") {
    return wl::make_suite(spec);
  }
  std::vector<wl::Workload> suite;
  std::istringstream names(spec);
  std::string name;
  while (std::getline(names, name, ',')) {
    if (!name.empty()) suite.push_back(wl::make_workload(name));
  }
  ITH_CHECK(!suite.empty(), "--workloads named no benchmarks: " + spec);
  return suite;
}

tuner::Goal parse_goal(const std::string& s) {
  if (s == "running") return tuner::Goal::kRunning;
  if (s == "total") return tuner::Goal::kTotal;
  if (s == "balance") return tuner::Goal::kBalance;
  throw Error("--goal must be running, total or balance");
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::istringstream items(spec);
  std::string item;
  while (std::getline(items, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    const std::string scenario = cli.get_or("scenario", "adapt");
    const std::string arch = cli.get_or("arch", "x86");
    ITH_CHECK(scenario == "adapt" || scenario == "opt", "--scenario must be adapt or opt");
    ITH_CHECK(arch == "x86" || arch == "ppc", "--arch must be x86 or ppc");

    // One --fault-* flag set, split across the two independent planes: eval
    // sites change what suite runs *measure* (and are fingerprinted), so
    // they arm every evaluator identically; service sites are pure
    // infrastructure chaos, so they arm only the daemon.
    const double fault_rate = cli.get_double_or("fault-rate", 0.0);
    ITH_CHECK(fault_rate >= 0.0 && fault_rate <= 1.0, "--fault-rate out of [0,1]");
    const std::uint64_t fault_seed = static_cast<std::uint64_t>(cli.get_int_or("fault-seed", 1));
    const std::uint32_t sites =
        resilience::FaultPlan::parse_sites(cli.get_or("fault-sites", "svc"));

    resilience::FaultPlan eval_plan;
    eval_plan.rate = fault_rate;
    eval_plan.seed = fault_seed;
    eval_plan.sites = sites & resilience::FaultPlan::eval_sites();

    svc::FleetConfig fc;
    fc.service_faults.rate = fault_rate;
    fc.service_faults.seed = fault_seed;
    fc.service_faults.sites = sites & resilience::FaultPlan::service_sites();

    fc.suite = parse_workloads(cli.get_or("workloads", "compress,db"));
    fc.eval.machine = arch == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
    fc.eval.scenario = scenario == "adapt" ? vm::Scenario::kAdapt : vm::Scenario::kOpt;
    fc.eval.iterations = static_cast<int>(cli.get_int_or("iterations", 2));
    fc.eval.max_retries = static_cast<int>(cli.get_int_or("retries", 2));
    if (eval_plan.armed()) fc.eval.vm_config.faults = &eval_plan;

    fc.clients = static_cast<int>(cli.get_int_or("clients", 3));
    fc.generations = static_cast<int>(cli.get_int_or("generations", 4));
    fc.population = static_cast<int>(cli.get_int_or("pop", 6));
    fc.goal = parse_goal(cli.get_or("goal", "total"));
    fc.base_seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
    fc.seed_stride = static_cast<std::uint64_t>(cli.get_int_or("seed-stride", 0));
    fc.socket_path = cli.get_or("socket", "fleet_tune.sock");
    fc.snapshot_path = cli.get_or("snapshot", "");
    fc.snapshot_every = static_cast<std::uint64_t>(cli.get_int_or("snapshot-every", 4));
    fc.import_paths = split_csv(cli.get_or("import", ""));
    fc.kill_daemon_at = static_cast<int>(cli.get_int_or("kill-daemon-at", -1));
    fc.restart_daemon = !cli.has("no-restart");
    fc.verify_solo = cli.has("verify-solo");
    fc.request_timeout_ms = static_cast<int>(cli.get_int_or("timeout-ms", 30'000));
    ITH_CHECK(fc.kill_daemon_at < 0 || !fc.snapshot_path.empty() || !fc.restart_daemon,
              "--kill-daemon-at with restart needs --snapshot=PATH (the restarted daemon "
              "reloads its last periodic snapshot)");

    obs::Context ctx(nullptr);  // counters only; shared fleet-wide
    fc.obs = &ctx;

    const svc::FleetReport report = svc::run_fleet(fc);

    std::cout << "fleet: " << fc.clients << " clients x " << fc.generations << " generations, "
              << "fingerprint=" << report.fingerprint << ", daemon instances="
              << report.daemon_instances << "\n";
    for (std::size_t i = 0; i < report.clients.size(); ++i) {
      const svc::FleetClientReport& c = report.clients[i];
      std::cout << "client " << i << ": real_evals=" << c.real_evaluations
                << " ga_evals=" << c.ga_evaluations << " fitness=" << c.fitness
                << (c.fatally_degraded ? " FATALLY-DEGRADED" : "")
                << (c.pending_unflushed > 0
                        ? " pending_unflushed=" + std::to_string(c.pending_unflushed)
                        : "")
                << "\n";
      std::cout << "  best " << c.winner << "\n";
      if (fc.verify_solo) {
        std::cout << "WINNER client=" << i << " match=" << (c.solo_match ? "yes" : "NO")
                  << " solo_real_evals=" << c.solo_real_evaluations << "\n";
        if (!c.solo_match) std::cout << "  solo best " << c.solo_winner << "\n";
      }
    }

    const svc::DaemonStats& d = report.daemon;
    std::cout << "FLEET real_evals=" << report.fleet_real_evaluations
              << " clients=" << fc.clients << " federated_entries=" << report.federated_entries
              << " federated_quarantine=" << report.federated_quarantine << "\n";
    if (fc.verify_solo) {
      std::cout << "SOLO real_evals=" << report.solo_real_evaluations << " winners_match="
                << (report.winners_match ? "yes" : "NO") << "\n";
    }
    std::cout << "LEASES granted=" << d.leases_granted << " published=" << d.leases_published
              << " reclaimed=" << d.leases_reclaimed << " outstanding=" << d.leases_outstanding
              << " balanced=" << (report.leases_balanced ? "yes" : "NO") << "\n";
    std::cout << "daemon: connections=" << d.connections_accepted
              << " (dropped=" << d.connections_dropped << ") requests=" << d.requests
              << " hits=" << d.hits << " waits=" << d.waits
              << " publish_dedup=" << d.publishes_dedup << "\n";
    std::cout << "daemon: snapshots=" << d.snapshots_written
              << " (skipped=" << d.snapshots_skipped << ") imports=" << d.imports
              << " faults_injected=" << d.faults_injected
              << " frames_rejected=" << d.frames_rejected << "\n";
    std::cout << "svc counters:\n";
    for (const auto& [name, value] : ctx.counter_values()) {
      if (name.rfind("svc.", 0) == 0) std::cout << "  " << name << " = " << value << "\n";
    }

    bool ok = report.leases_balanced;
    if (fc.verify_solo) {
      ok = ok && report.winners_match &&
           report.fleet_real_evaluations < report.solo_real_evaluations;
      if (report.fleet_real_evaluations >= report.solo_real_evaluations) {
        std::cout << "FAIL: fleet performed no fewer real evaluations than standalone\n";
      }
      if (!report.winners_match) std::cout << "FAIL: a fleet winner diverged from standalone\n";
    }
    if (!report.leases_balanced) std::cout << "FAIL: lease accounting does not balance\n";
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
