#!/usr/bin/env python3
"""Regenerates the recorded Table-4 parameter values in bench/common.cpp
from a fresh run of bench/table4_tuned_params (see EXPERIMENTS.md)."""
import re, subprocess, sys, os

gens = os.environ.get("ITH_GA_GENERATIONS", "60")
out = subprocess.run(["./build/bench/table4_tuned_params"], capture_output=True, text=True,
                     env={**os.environ, "ITH_GA_GENERATIONS": gens}).stdout
vals = re.findall(r"\[CALLEE_MAX_SIZE=(\d+), ALWAYS_INLINE_SIZE=(\d+), MAX_INLINE_DEPTH=(\d+), "
                  r"CALLER_MAX_SIZE=(\d+), HOT_CALLEE_MAX_SIZE=(\d+)\]",
                  out.split("Recorded values")[1])
assert len(vals) == 5, out
labels = ["Adapt        ", "Opt:Bal      ", "Opt:Tot      ", "Adapt (PPC)  ", "Opt:Bal (PPC)"]
lines = "".join(f"      /* {labels[i]}*/ make_params({', '.join(vals[i])}),\n" for i in range(5))
src = open("bench/common.cpp").read()
start = src.index("      /* Adapt        */")
end = src.index("  };", start)
open("bench/common.cpp", "w").write(src[:start] + lines + src[end:])
print("recorded:")
print(lines)
