#!/usr/bin/env python3
"""Regenerates the recorded Table-4 parameter values in bench/common.cpp
from a fresh run of bench/table4_tuned_params (see EXPERIMENTS.md)."""
import re, subprocess, sys, os

# Paths this script must never count as its own output when reporting what
# changed. The fuzz corpus holds binary .mbc repros regenerated only by
# `fuzz_vm --emit-edge-corpus` / shrunk findings, never by this script.
IGNORED_DIRS = ("tests/fuzz/corpus",)
# Runtime litter from a local evaluation daemon / fleet run (sockets,
# ITHEVC1 snapshots with their tmp+rename staging files, corrupt
# snapshots the daemon quarantined aside at start): never this script's
# output either.
IGNORED_SUFFIXES = (".sock", ".evc", ".evc.tmp", ".bin.tmp", ".tmp", ".corrupt")

gens = os.environ.get("ITH_GA_GENERATIONS", "60")
out = subprocess.run(["./build/bench/table4_tuned_params"], capture_output=True, text=True,
                     env={**os.environ, "ITH_GA_GENERATIONS": gens}).stdout
vals = re.findall(r"\[CALLEE_MAX_SIZE=(\d+), ALWAYS_INLINE_SIZE=(\d+), MAX_INLINE_DEPTH=(\d+), "
                  r"CALLER_MAX_SIZE=(\d+), HOT_CALLEE_MAX_SIZE=(\d+)\]",
                  out.split("Recorded values")[1])
assert len(vals) == 5, out
labels = ["Adapt        ", "Opt:Bal      ", "Opt:Tot      ", "Adapt (PPC)  ", "Opt:Bal (PPC)"]
lines = "".join(f"      /* {labels[i]}*/ make_params({', '.join(vals[i])}),\n" for i in range(5))
src = open("bench/common.cpp").read()
start = src.index("      /* Adapt        */")
end = src.index("  };", start)
open("bench/common.cpp", "w").write(src[:start] + lines + src[end:])
print("recorded:")
print(lines)

# Report every modified file so the run is easy to review, ignoring
# directories other tools own (see IGNORED_DIRS above).
status = subprocess.run(["git", "status", "--porcelain"], capture_output=True, text=True)
if status.returncode == 0:
    dirty = [line for line in status.stdout.splitlines()
             if line[3:] and not line[3:].startswith(IGNORED_DIRS)
             and not line[3:].endswith(IGNORED_SUFFIXES)]
    if dirty:
        print("modified:")
        print("\n".join(dirty))
