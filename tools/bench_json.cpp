// Writes the interpreter perf-trajectory data point: runs the dispatch
// micro-benchmark over both engines and emits BENCH_interpreter.json
// (instructions/sec and ns/instruction per engine, fixed workloads, pinned
// seed). CI uploads the file as an artifact; committing a refreshed copy at
// the repo root records the trajectory commit-over-commit.
//
//   bench_json [OUTPUT_PATH]     (default: BENCH_interpreter.json)
#include <fstream>
#include <iostream>
#include <string>

#include "dispatch_bench.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_interpreter.json";
  try {
    ith::bench::DispatchBenchConfig config;
    const auto results = ith::bench::run_dispatch_bench(config);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_json: cannot write " << path << "\n";
      return 1;
    }
    ith::bench::write_bench_json(out, config, results);
    std::cout << "wrote " << path << " (geomean fast/reference speedup "
              << ith::bench::geomean_speedup(results) << "x)\n";
  } catch (const ith::Error& e) {
    std::cerr << "bench_json: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
