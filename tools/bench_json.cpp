// Writes perf-trajectory data points. Two modes:
//
//   bench_json [OUTPUT_PATH]
//     Runs the dispatch micro-benchmark over the three engine variants
//     (fast, fast with fusion off, reference) and emits
//     BENCH_interpreter.json (instructions/sec and ns/instruction per
//     variant, fixed workloads, pinned seed, fused + unfused geomeans).
//
//   bench_json --tuning [OUTPUT_PATH]
//     Times one cold and one warm tuning run (default GA config, fixed
//     seed) and emits BENCH_tuning.json: tune wall-clock for each, the
//     signature-collapse statistics, and how many real suite evaluations
//     the two cache levels saved. The warm run restores the cold run's
//     evaluation-cache snapshot, so it must perform zero real suite
//     executions and land on the identical winner — both are recorded.
//
//   bench_json --serving [OUTPUT_PATH]
//     Runs the serving tier (online re-tuning on, fixed seed/load) and
//     emits BENCH_serving.json: exact p50/p95/p99 request latency in
//     simulated cycles per workload, SLO violations, fleet installs, and
//     the tuned genome each service converged to.
//
//   bench_json --fleet [OUTPUT_PATH]
//     Runs three concurrent tunes against one in-process evaluation daemon
//     (fixed seeds, --verify-solo semantics) and emits BENCH_fleet.json:
//     fleet vs standalone real suite evaluations, the sharing ratio, lease
//     accounting, and whether every fleet winner matched its standalone
//     run. Exit status enforces winners_match, strictly fewer fleet
//     evaluations, and balanced leases.
//
// CI uploads the files as artifacts; committing a refreshed copy at the
// repo root records the trajectory commit-over-commit.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "dispatch_bench.hpp"
#include "service/fleet.hpp"
#include "serving/driver.hpp"
#include "support/error.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

namespace {

struct TuneSample {
  double seconds = 0.0;
  std::uint64_t params_seen = 0;
  std::uint64_t distinct_signatures = 0;
  std::uint64_t real_evaluations = 0;
  std::string winner;
  double fitness = 0.0;
};

TuneSample timed_tune(ith::tuner::SuiteEvaluator& evaluator, const ith::ga::GaConfig& ga_cfg) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const ith::tuner::TuneResult result =
      ith::tuner::tune(evaluator, ith::tuner::Goal::kTotal, ga_cfg, {});
  const auto t1 = clock::now();
  TuneSample s;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  s.params_seen = evaluator.params_seen();
  s.distinct_signatures = evaluator.signatures_seen();
  s.real_evaluations = evaluator.evaluations_performed();
  s.winner = result.best.to_string();
  s.fitness = result.best_fitness;
  return s;
}

int run_tuning_bench(const std::string& path) {
  constexpr int kGenerations = 8;
  constexpr std::uint64_t kSeed = 42;
  const std::string suite_name = "specjvm98";

  ith::ga::GaConfig ga_cfg = ith::tuner::default_ga_config(kGenerations, kSeed);
  ga_cfg.seed_individuals.push_back(
      ith::tuner::genome_from_params(ith::heur::default_params(), /*include_hot=*/true));

  ith::tuner::EvalConfig ec;  // defaults: Pentium-4 model, Adapt, 2 iterations
  ith::tuner::SuiteEvaluator cold_eval(ith::wl::make_suite(suite_name), ec);
  const TuneSample cold = timed_tune(cold_eval, ga_cfg);

  ith::tuner::SuiteEvaluator warm_eval(ith::wl::make_suite(suite_name), ec);
  warm_eval.restore(cold_eval.snapshot());
  const TuneSample warm = timed_tune(warm_eval, ga_cfg);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    return 1;
  }
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  out << "{\n"
      << "  \"benchmark\": \"tuning_eval_cache\",\n"
      << "  \"unit\": \"seconds per tuning run\",\n"
      << "  \"config\": {\"suite\": \"" << suite_name << "\", \"generations\": " << kGenerations
      << ", \"population\": " << ga_cfg.population << ", \"seed\": " << kSeed << "},\n"
      << "  \"cold\": {\"seconds\": " << num(cold.seconds)
      << ", \"params_seen\": " << cold.params_seen
      << ", \"distinct_signatures\": " << cold.distinct_signatures
      << ", \"real_evaluations\": " << cold.real_evaluations << "},\n"
      << "  \"warm\": {\"seconds\": " << num(warm.seconds)
      << ", \"real_evaluations\": " << warm.real_evaluations << "},\n"
      << "  \"evaluations_saved_by_collapse\": " << (cold.params_seen - cold.distinct_signatures)
      << ",\n"
      << "  \"evaluations_saved_by_persistence\": "
      << (warm.distinct_signatures - warm.real_evaluations) << ",\n"
      << "  \"warm_speedup\": " << num(warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0)
      << ",\n"
      << "  \"winners_match\": " << (cold.winner == warm.winner ? "true" : "false") << ",\n"
      << "  \"winner\": \"" << cold.winner << "\"\n"
      << "}\n";
  std::cout << "wrote " << path << " (cold " << num(cold.seconds) << "s, warm "
            << num(warm.seconds) << "s, " << cold.real_evaluations << " real evaluations for "
            << cold.params_seen << " params; warm real evaluations " << warm.real_evaluations
            << ", winners " << (cold.winner == warm.winner ? "match" : "DIFFER") << ")\n";
  return cold.winner == warm.winner && warm.real_evaluations == 0 ? 0 : 1;
}

int run_serving_bench(const std::string& path) {
  ith::serving::ServingConfig config;
  config.seed = 1;
  config.instances = 2;
  config.requests = 384;
  config.load = 0.7;
  config.online_tune = true;
  config.ga_generations = 4;
  config.ga_population = 8;
  config.ga_seed = 7;

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const ith::serving::ServeReport report = ith::serving::run_serving(config);
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    return 1;
  }
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  out << "{\n  \"benchmark\": \"serving_latency\",\n"
      << "  \"unit\": \"simulated cycles per request\",\n"
      << "  \"config\": {\"seed\": " << config.seed << ", \"instances\": " << config.instances
      << ", \"requests\": " << config.requests << ", \"load\": " << num(config.load)
      << ", \"generations\": " << config.ga_generations
      << ", \"population\": " << config.ga_population << "},\n"
      << "  \"wall_seconds\": " << num(seconds) << ",\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < report.workloads.size(); ++i) {
    const ith::serving::WorkloadServeReport& w = report.workloads[i];
    out << "    {\"name\": \"" << w.name << "\", \"p50\": " << w.digest.p50()
        << ", \"p95\": " << w.digest.p95() << ", \"p99\": " << w.digest.p99()
        << ", \"mean\": " << w.digest.mean() << ", \"slo_violations\": " << w.slo_violations
        << ", \"installs\": " << w.installs << ", \"final_fitness\": " << num(w.final_fitness)
        << ", \"final_params\": \"" << w.final_params.to_string() << "\"}"
        << (i + 1 < report.workloads.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << " (" << num(seconds) << "s";
  for (const ith::serving::WorkloadServeReport& w : report.workloads) {
    std::cout << "; " << w.name << " p99=" << w.digest.p99();
  }
  std::cout << ")\n";
  return 0;
}

int run_fleet_bench(const std::string& path) {
  ith::svc::FleetConfig fc;
  fc.suite = ith::wl::make_suite("specjvm98");
  fc.clients = 3;
  fc.generations = 4;
  fc.population = 6;
  fc.base_seed = 42;
  fc.socket_path = "bench_fleet.sock";
  fc.snapshot_every = 4;
  fc.verify_solo = true;

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const ith::svc::FleetReport report = ith::svc::run_fleet(fc);
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    return 1;
  }
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  const double ratio =
      report.fleet_real_evaluations > 0
          ? static_cast<double>(report.solo_real_evaluations) /
                static_cast<double>(report.fleet_real_evaluations)
          : 0.0;
  out << "{\n"
      << "  \"benchmark\": \"fleet_tuning_service\",\n"
      << "  \"unit\": \"real suite evaluations per fleet\",\n"
      << "  \"config\": {\"suite\": \"specjvm98\", \"clients\": " << fc.clients
      << ", \"generations\": " << fc.generations << ", \"population\": " << fc.population
      << ", \"base_seed\": " << fc.base_seed << "},\n"
      << "  \"wall_seconds\": " << num(seconds) << ",\n"
      << "  \"fleet_real_evaluations\": " << report.fleet_real_evaluations << ",\n"
      << "  \"solo_real_evaluations\": " << report.solo_real_evaluations << ",\n"
      << "  \"sharing_ratio\": " << num(ratio) << ",\n"
      << "  \"federated_entries\": " << report.federated_entries << ",\n"
      << "  \"winners_match\": " << (report.winners_match ? "true" : "false") << ",\n"
      << "  \"leases\": {\"granted\": " << report.daemon.leases_granted
      << ", \"published\": " << report.daemon.leases_published
      << ", \"reclaimed\": " << report.daemon.leases_reclaimed
      << ", \"balanced\": " << (report.leases_balanced ? "true" : "false") << "},\n"
      << "  \"daemon\": {\"requests\": " << report.daemon.requests
      << ", \"hits\": " << report.daemon.hits << ", \"waits\": " << report.daemon.waits << "},\n"
      << "  \"clients\": [\n";
  for (std::size_t i = 0; i < report.clients.size(); ++i) {
    const ith::svc::FleetClientReport& c = report.clients[i];
    out << "    {\"real_evaluations\": " << c.real_evaluations
        << ", \"solo_real_evaluations\": " << c.solo_real_evaluations
        << ", \"winner_matches_solo\": " << (c.solo_match ? "true" : "false")
        << ", \"fitness\": " << num(c.fitness) << ", \"winner\": \"" << c.winner << "\"}"
        << (i + 1 < report.clients.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  const bool ok = report.winners_match && report.leases_balanced &&
                  report.fleet_real_evaluations < report.solo_real_evaluations;
  std::cout << "wrote " << path << " (" << num(seconds) << "s; fleet "
            << report.fleet_real_evaluations << " vs solo " << report.solo_real_evaluations
            << " real evaluations, " << num(ratio) << "x sharing; winners "
            << (report.winners_match ? "match" : "DIFFER") << "; leases "
            << (report.leases_balanced ? "balanced" : "UNBALANCED") << ")\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "--tuning") {
      return run_tuning_bench(argc > 2 ? argv[2] : "BENCH_tuning.json");
    }
    if (argc > 1 && std::string(argv[1]) == "--serving") {
      return run_serving_bench(argc > 2 ? argv[2] : "BENCH_serving.json");
    }
    if (argc > 1 && std::string(argv[1]) == "--fleet") {
      return run_fleet_bench(argc > 2 ? argv[2] : "BENCH_fleet.json");
    }
    const std::string path = argc > 1 ? argv[1] : "BENCH_interpreter.json";
    ith::bench::DispatchBenchConfig config;
    const auto results = ith::bench::run_dispatch_bench(config);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_json: cannot write " << path << "\n";
      return 1;
    }
    ith::bench::write_bench_json(out, config, results);
    std::cout << "wrote " << path << " (geomean fast/reference speedup "
              << ith::bench::geomean_speedup(results) << "x)\n";
  } catch (const ith::Error& e) {
    std::cerr << "bench_json: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
