// chaos_tune: run a tuning campaign under deterministic fault injection,
// with checkpoint/resume and an optional mid-run kill — the resilience
// layer's end-to-end harness.
//
//   chaos_tune --generations=6 --fault-rate=0.1 --checkpoint=cp.bin
//   chaos_tune --generations=6 --checkpoint=cp.bin --kill-at=2   # exits 3
//   chaos_tune --generations=6 --checkpoint=cp.bin --resume      # continues
//
// Because fault decisions are pure hashes of (seed, site, key) and the GA
// checkpoints after every generation, the three-command sequence above
// (killed run + resumed run) must print the same BEST line as a single
// straight-through run — the property the CI chaos job asserts.
//
// Flags:
//   --workloads=CSV        benchmark names or a suite name (default compress,db)
//   --scenario=S           adapt (default) or opt
//   --arch=A               x86 (default) or ppc
//   --goal=G               running | total (default) | balance
//   --generations=N        GA generations (default 6)
//   --pop=N                population size (default 8)
//   --seed=N               GA seed (default 7)
//   --iterations=N         VM iterations per benchmark (default 2)
//   --retries=N            guarded retries per benchmark (default 2)
//   --fault-rate=R         per-opportunity injection probability (default 0)
//   --fault-seed=N         fault-plan seed (default 1)
//   --fault-sites=CSV      vm,compile,eval,sink or all (default all)
//   --compile-inflation=X  compile-cycle multiplier for compile faults
//   --budget-cycles=N      sim-cycle cap per benchmark run (0 = unlimited)
//   --budget-compile=N     compile-cycle cap (auto-derived from the default
//                          heuristic when compile faults are armed and this
//                          is unset, so inflated compiles are caught)
//   --budget-instructions=N  dynamic-instruction cap per iteration
//   --budget-frames=N      simulated frame-depth cap
//   --budget-wall-ms=N     host wall-clock deadline per run
//   --checkpoint=PATH      journal GA state here after every generation
//   --checkpoint-every=N   journal cadence (default 1)
//   --resume               continue from --checkpoint instead of starting over
//   --kill-at=G            exit(3) right after generation G's checkpoint lands
//   --trace=PATH           write a JSONL trace (feed it to trace_report)
//   --eval-cache=PATH      persistent evaluation cache: load it before the
//                          tune (cold start if absent; warn and start cold on
//                          corruption/fingerprint mismatch) and save the
//                          merged cache back after. A warm cache whose
//                          configuration matches performs zero real suite
//                          executions. Composes with --resume.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "heuristics/heuristic.hpp"
#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "resilience/fault.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/parameter_space.hpp"
#include "tuner/tuner.hpp"
#include "workloads/suite.hpp"

using namespace ith;

namespace {

/// "compress,db" -> individual workloads; "specjvm98"/"dacapo+jbb"/"all"
/// expand to the whole suite.
std::vector<wl::Workload> parse_workloads(const std::string& spec) {
  if (spec == "specjvm98" || spec == "dacapo+jbb" || spec == "all") {
    return wl::make_suite(spec);
  }
  std::vector<wl::Workload> suite;
  std::istringstream names(spec);
  std::string name;
  while (std::getline(names, name, ',')) {
    if (!name.empty()) suite.push_back(wl::make_workload(name));
  }
  ITH_CHECK(!suite.empty(), "--workloads named no benchmarks: " + spec);
  return suite;
}

tuner::Goal parse_goal(const std::string& s) {
  if (s == "running") return tuner::Goal::kRunning;
  if (s == "total") return tuner::Goal::kTotal;
  if (s == "balance") return tuner::Goal::kBalance;
  throw Error("--goal must be running, total or balance");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    const std::string scenario = cli.get_or("scenario", "adapt");
    const std::string arch = cli.get_or("arch", "x86");
    ITH_CHECK(scenario == "adapt" || scenario == "opt", "--scenario must be adapt or opt");
    ITH_CHECK(arch == "x86" || arch == "ppc", "--arch must be x86 or ppc");

    resilience::FaultPlan plan;
    plan.rate = cli.get_double_or("fault-rate", 0.0);
    ITH_CHECK(plan.rate >= 0.0 && plan.rate <= 1.0, "--fault-rate out of [0,1]");
    plan.seed = static_cast<std::uint64_t>(cli.get_int_or("fault-seed", 1));
    plan.sites = resilience::FaultPlan::parse_sites(cli.get_or("fault-sites", "all"));
    plan.compile_inflation = cli.get_double_or("compile-inflation", plan.compile_inflation);

    resilience::RunBudget budget;
    budget.max_sim_cycles = static_cast<std::uint64_t>(cli.get_int_or("budget-cycles", 0));
    budget.max_compile_cycles = static_cast<std::uint64_t>(cli.get_int_or("budget-compile", 0));
    budget.max_instructions = static_cast<std::uint64_t>(cli.get_int_or("budget-instructions", 0));
    budget.max_frame_depth = static_cast<std::size_t>(cli.get_int_or("budget-frames", 0));
    budget.max_wall_ms = static_cast<std::uint64_t>(cli.get_int_or("budget-wall-ms", 0));

    const std::string trace_path = cli.get_or("trace", "");
    std::ofstream trace_out;
    std::unique_ptr<obs::TraceSink> sink;
    if (!trace_path.empty()) {
      trace_out.open(trace_path);
      ITH_CHECK(trace_out.is_open(), "cannot open " + trace_path);
      sink = std::make_unique<obs::JsonlSink>(trace_out);
    }
    obs::Context ctx(sink.get());  // null sink: events drop, counters still count

    tuner::EvalConfig ec;
    ec.machine = arch == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
    ec.scenario = scenario == "adapt" ? vm::Scenario::kAdapt : vm::Scenario::kOpt;
    ec.iterations = static_cast<int>(cli.get_int_or("iterations", 2));
    ec.max_retries = static_cast<int>(cli.get_int_or("retries", 2));
    ec.obs = &ctx;

    std::vector<wl::Workload> suite = parse_workloads(cli.get_or("workloads", "compress,db"));

    // A compile-inflation fault only *helps* chaos testing if it trips the
    // compile-cycle budget (and is retried with a fresh fault key) instead of
    // silently distorting fitness. When compile faults are armed but no cap
    // was given, derive one from a fault-free probe of the default heuristic:
    // 50x its worst per-benchmark compile bill passes every legitimate
    // candidate while any 1000x-inflated compile trips immediately.
    if (plan.armed() && plan.enabled(resilience::FaultSite::kCompileInflate) &&
        budget.max_compile_cycles == 0) {
      tuner::SuiteEvaluator probe(suite, ec);
      std::uint64_t worst = 0;
      for (const tuner::BenchmarkResult& r : *probe.default_results()) {
        worst = std::max(worst, r.compile_cycles);
      }
      budget.max_compile_cycles = 50 * std::max<std::uint64_t>(worst, 1);
      std::cout << "derived --budget-compile=" << budget.max_compile_cycles
                << " (50x default-heuristic worst case)\n";
    }

    ec.vm_config.budget = budget;
    if (plan.armed()) ec.vm_config.faults = &plan;
    tuner::SuiteEvaluator evaluator(std::move(suite), ec);

    const std::string eval_cache_path = cli.get_or("eval-cache", "");
    if (!eval_cache_path.empty()) {
      if (std::ifstream(eval_cache_path).good()) {
        try {
          evaluator.restore(tuner::load_eval_cache(eval_cache_path));
          std::cout << "eval-cache: warm start from " << eval_cache_path << " ("
                    << evaluator.cache_size() << " cached suite evaluations)\n";
        } catch (const Error& e) {
          // A stale or corrupt cache costs re-evaluation, never correctness.
          std::cerr << "warning: ignoring evaluation cache: " << e.what() << "\n";
        }
      } else {
        std::cout << "eval-cache: cold start (no file at " << eval_cache_path << ")\n";
      }
    }

    ga::GaConfig ga_cfg;
    ga_cfg.population = static_cast<int>(cli.get_int_or("pop", 8));
    ga_cfg.generations = static_cast<int>(cli.get_int_or("generations", 6));
    ga_cfg.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
    ga_cfg.threads = 1;
    ga_cfg.memoize = true;
    ga_cfg.obs = &ctx;
    const bool include_hot = ec.scenario == vm::Scenario::kAdapt;
    ga_cfg.seed_individuals.push_back(
        tuner::genome_from_params(heur::default_params(), include_hot));

    tuner::TuneCheckpointOptions checkpoint;
    checkpoint.path = cli.get_or("checkpoint", "");
    checkpoint.resume = cli.has("resume");
    checkpoint.every = static_cast<int>(cli.get_int_or("checkpoint-every", 1));
    ITH_CHECK(!checkpoint.resume || !checkpoint.path.empty(), "--resume needs --checkpoint=PATH");

    const bool kill_armed = cli.has("kill-at");
    const int kill_at = static_cast<int>(cli.get_int_or("kill-at", -1));
    ITH_CHECK(!kill_armed || !checkpoint.path.empty(), "--kill-at needs --checkpoint=PATH");
    checkpoint.on_generation = [&](const ga::GenerationStats& stats) {
      std::cout << "gen " << stats.generation << " best=" << stats.best
                << " mean=" << stats.mean << " diversity=" << stats.diversity << "\n";
      if (kill_armed && stats.generation == kill_at) {
        // The checkpoint for this generation is already on disk (the GA
        // journals before invoking progress), so dying here simulates a
        // crash at the worst defensible moment.
        std::cout << "killed after generation " << kill_at << " (checkpoint "
                  << checkpoint.path << " is complete); rerun with --resume\n";
        ctx.flush();
        std::exit(3);
      }
    };

    const tuner::TuneResult result =
        tuner::tune(evaluator, parse_goal(cli.get_or("goal", "total")), ga_cfg, checkpoint);

    ctx.flush();
    sink.reset();

    if (!eval_cache_path.empty()) {
      tuner::save_eval_cache(eval_cache_path, evaluator.snapshot());
      std::cout << "eval-cache: saved " << evaluator.cache_size() << " suite evaluations to "
                << eval_cache_path << "\n";
    }

    std::cout << "BEST " << result.best.to_string() << " fitness=" << result.best_fitness << "\n";
    std::cout << "evaluations=" << result.ga.evaluations << " cache_hits=" << result.ga.cache_hits
              << " generations_run=" << result.ga.history.size() << "\n";
    const std::uint64_t params_seen = evaluator.params_seen();
    const std::uint64_t sigs_seen = evaluator.signatures_seen();
    const std::uint64_t real_evals = evaluator.evaluations_performed();
    std::cout << "eval-cache: params_seen=" << params_seen << " distinct_signatures=" << sigs_seen
              << " real_evaluations=" << real_evals
              << " saved_by_collapse=" << (params_seen - sigs_seen)
              << " saved_by_persistence=" << (sigs_seen - std::min(sigs_seen, real_evals)) << "\n";

    std::uint64_t ok = 0, failed = 0;
    std::cout << "resilience counters:\n";
    for (const auto& [name, value] : ctx.counter_values()) {
      if (name.rfind("resil.", 0) != 0) continue;
      std::cout << "  " << name << " = " << value << "\n";
      if (name == "resil.outcome.ok") ok = value;
      if (name == "resil.outcome.budget" || name == "resil.outcome.trap" ||
          name == "resil.outcome.crash") {
        failed += value;
      }
    }
    if (ok + failed > 0) {
      std::cout << "survival: " << ok << "/" << (ok + failed) << " benchmark runs ok\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
