// fuzz_vm: differential fuzzing CLI.
//
//   fuzz_vm --seeds=1..500                 # walk a seed range
//   fuzz_vm --seeds=1..0 --budget=30       # time-budgeted (seconds) walk
//   fuzz_vm --corpus=tests/fuzz/corpus     # replay + write shrunk repros
//   fuzz_vm --emit-edge-corpus=DIR         # (re)write the built-in edge cases
//   fuzz_vm --replay=FILE.mbc [--oracle-seed=N] [--dump]   # triage a repro
//
// Exit status: 0 when every seed and corpus entry agrees across all tiers,
// 1 when any divergence was found, 2 on usage errors.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "bytecode/binary.hpp"
#include "bytecode/serializer.hpp"
#include "fuzz/bisect.hpp"
#include "fuzz/campaign.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

namespace {

bool parse_seed_range(const std::string& text, std::uint64_t& begin, std::uint64_t& end) {
  const auto dots = text.find("..");
  try {
    if (dots == std::string::npos) {
      begin = end = std::stoull(text);
      return true;
    }
    begin = std::stoull(text.substr(0, dots));
    end = std::stoull(text.substr(dots + 2));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ith::CliParser cli(argc, argv);

  if (cli.has("help")) {
    std::cout << "usage: fuzz_vm [--seeds=A..B] [--budget=SECONDS] [--corpus=DIR]\n"
                 "               [--no-shrink] [--no-bisect] [--no-write] [--quiet]\n"
                 "               [--emit-edge-corpus=DIR]\n"
                 "       fuzz_vm --replay=FILE.mbc [--oracle-seed=N] [--dump]\n";
    return 0;
  }

  if (cli.has("replay")) {
    try {
      std::ifstream is(*cli.get("replay"), std::ios::binary);
      if (!is.good()) {
        std::cerr << "fuzz_vm: cannot open " << *cli.get("replay") << "\n";
        return 2;
      }
      const ith::bc::Program prog = ith::bc::read_binary(is);
      if (cli.has("dump")) std::cout << ith::bc::dump_program(prog);
      ith::fuzz::OracleConfig ocfg;
      ocfg.seed = static_cast<std::uint64_t>(cli.get_int_or("oracle-seed", 1));
      const ith::fuzz::DifferentialOracle oracle(ocfg);
      const ith::fuzz::OracleVerdict verdict = oracle.check(prog);
      std::cout << "verdict: " << verdict.summary() << "\n";
      if (verdict.diverged) {
        std::cout << "bisect: " << ith::fuzz::bisect_passes(prog, oracle).to_string() << "\n";
        return 1;
      }
      return 0;
    } catch (const ith::Error& e) {
      std::cerr << "fuzz_vm: replay failed: " << e.what() << "\n";
      return 2;
    }
  }

  if (cli.has("emit-edge-corpus")) {
    const std::string dir = *cli.get("emit-edge-corpus");
    for (const auto& [name, prog] : ith::fuzz::builtin_edge_cases()) {
      std::cout << "wrote " << ith::fuzz::write_corpus_entry(dir, name, prog) << "\n";
    }
    return 0;
  }

  ith::fuzz::CampaignConfig config;
  const std::string seeds = cli.get_or("seeds", "1..100");
  if (!parse_seed_range(seeds, config.seed_begin, config.seed_end)) {
    std::cerr << "fuzz_vm: bad --seeds range '" << seeds << "' (want A..B)\n";
    return 2;
  }
  // A budget with an open-ended walk: run until the clock says stop.
  config.time_budget_seconds = cli.get_double_or("budget", 0.0);
  if (config.time_budget_seconds > 0 && config.seed_end < config.seed_begin) {
    config.seed_end = config.seed_begin + 1'000'000'000ULL;
  }
  config.corpus_dir = cli.get_or("corpus", "");
  config.shrink = !cli.has("no-shrink");
  config.bisect = !cli.has("no-bisect");
  config.write_repros = !cli.has("no-write");
  if (!cli.has("quiet")) config.log = &std::cout;

  try {
    const ith::fuzz::CampaignReport report = ith::fuzz::run_campaign(config);

    std::cout << "fuzz_vm: " << report.seeds_run << " seed(s), " << report.corpus_replayed
              << " corpus entrie(s), " << report.total_instructions_generated
              << " instructions generated, " << report.reference_budget_skips << " skip(s)"
              << (report.budget_exhausted ? ", time budget exhausted" : "") << "\n";

    if (report.clean()) {
      std::cout << "fuzz_vm: no divergences\n";
      return 0;
    }
    std::cout << "fuzz_vm: " << report.findings.size() << " divergence(s)\n";
    for (const auto& f : report.findings) {
      std::cout << "  seed " << f.seed << ": " << f.divergence << "\n    shrunk to "
                << f.shrunk_instructions << " instruction(s)";
      if (!f.guilty.empty()) {
        std::cout << "; guilty:";
        for (const auto& g : f.guilty) std::cout << " " << g;
      }
      if (!f.repro_path.empty()) std::cout << "; repro: " << f.repro_path;
      std::cout << "\n";
    }
    return 1;
  } catch (const ith::Error& e) {
    std::cerr << "fuzz_vm: fatal: " << e.what() << "\n";
    return 2;
  }
}
