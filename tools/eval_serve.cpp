// eval_serve: run the evaluation daemon standalone.
//
//   eval_serve --socket=eval.sock --snapshot=cache.evc
//   eval_serve --socket=eval.sock --import=a.evc,b.evc   # federate first
//   eval_serve --socket=eval.sock --fault-rate=0.1 --fault-sites=svc
//
// The daemon coordinates a fleet of tuning clients (chaos_tune-compatible
// configuration flags pick the evaluator fingerprint it will accept): it
// answers acquire requests from the shared repository, grants leases on
// misses, parks concurrent askers behind the leaseholder (cross-process
// single-flight), and persists the repository as an ITHEVC1 snapshot that
// any tuning tool (or another daemon) can import.
//
// Runs until SIGINT/SIGTERM (graceful: final snapshot) or --run-seconds.
//
// Flags:
//   --socket=PATH          unix domain socket to bind (required)
//   --workloads=CSV        evaluator config, matching the clients' (default
//   --scenario=S           compress,db / adapt / x86 / 2 / 2 — the same
//   --arch=A               defaults as chaos_tune, so default daemons and
//   --iterations=N         default clients agree on the fingerprint)
//   --retries=N
//   --eval-fault-rate=R    eval-site fault plan, part of the fingerprint —
//   --eval-fault-seed=N    must mirror the clients' --fault-* eval settings
//   --eval-fault-sites=CSV (vm,compile,eval,sink)
//   --snapshot=PATH        ITHEVC1 persistence (loaded at start if present)
//   --snapshot-every=N     publishes between periodic snapshots (default 8)
//   --import=CSV           foreign snapshots to federate in at start
//   --fault-rate=R         *service*-site fault plan (accept,read,write,
//   --fault-seed=N         dispatch,snapshot) — infrastructure chaos,
//   --fault-sites=CSV      default svc
//   --run-seconds=N        exit after N seconds (0 = until signal)
//   --trace=PATH           JSONL trace (svc.* counters for trace_report)
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "resilience/fault.hpp"
#include "service/daemon.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "tuner/eval_cache.hpp"
#include "tuner/evaluator.hpp"
#include "workloads/suite.hpp"

using namespace ith;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

std::vector<wl::Workload> parse_workloads(const std::string& spec) {
  if (spec == "specjvm98" || spec == "dacapo+jbb" || spec == "all") {
    return wl::make_suite(spec);
  }
  std::vector<wl::Workload> suite;
  std::istringstream names(spec);
  std::string name;
  while (std::getline(names, name, ',')) {
    if (!name.empty()) suite.push_back(wl::make_workload(name));
  }
  ITH_CHECK(!suite.empty(), "--workloads named no benchmarks: " + spec);
  return suite;
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::istringstream items(spec);
  std::string item;
  while (std::getline(items, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    const std::string socket_path = cli.get_or("socket", "");
    ITH_CHECK(!socket_path.empty(), "--socket=PATH is required");

    const std::string scenario = cli.get_or("scenario", "adapt");
    const std::string arch = cli.get_or("arch", "x86");
    ITH_CHECK(scenario == "adapt" || scenario == "opt", "--scenario must be adapt or opt");
    ITH_CHECK(arch == "x86" || arch == "ppc", "--arch must be x86 or ppc");

    const std::string trace_path = cli.get_or("trace", "");
    std::ofstream trace_out;
    std::unique_ptr<obs::TraceSink> sink;
    if (!trace_path.empty()) {
      trace_out.open(trace_path);
      ITH_CHECK(trace_out.is_open(), "cannot open " + trace_path);
      sink = std::make_unique<obs::JsonlSink>(trace_out);
    }
    obs::Context ctx(sink.get());

    // The evaluator configuration determines the fingerprint this daemon
    // accepts — it must match the clients' exactly, eval-site fault plan
    // included (that plan changes what suite runs measure, so it is part of
    // the fingerprint; the *service* fault plan below is not).
    resilience::FaultPlan eval_plan;
    eval_plan.rate = cli.get_double_or("eval-fault-rate", 0.0);
    eval_plan.seed = static_cast<std::uint64_t>(cli.get_int_or("eval-fault-seed", 1));
    eval_plan.sites = resilience::FaultPlan::parse_sites(cli.get_or("eval-fault-sites", ""));

    tuner::EvalConfig ec;
    ec.machine = arch == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
    ec.scenario = scenario == "adapt" ? vm::Scenario::kAdapt : vm::Scenario::kOpt;
    ec.iterations = static_cast<int>(cli.get_int_or("iterations", 2));
    ec.max_retries = static_cast<int>(cli.get_int_or("retries", 2));
    if (eval_plan.armed()) ec.vm_config.faults = &eval_plan;
    const std::uint64_t fingerprint =
        tuner::SuiteEvaluator(parse_workloads(cli.get_or("workloads", "compress,db")), ec)
            .cache_fingerprint();

    svc::DaemonConfig dc;
    dc.socket_path = socket_path;
    dc.fingerprint = fingerprint;
    dc.snapshot_path = cli.get_or("snapshot", "");
    dc.snapshot_every = static_cast<std::uint64_t>(cli.get_int_or("snapshot-every", 8));
    dc.faults.rate = cli.get_double_or("fault-rate", 0.0);
    ITH_CHECK(dc.faults.rate >= 0.0 && dc.faults.rate <= 1.0, "--fault-rate out of [0,1]");
    dc.faults.seed = static_cast<std::uint64_t>(cli.get_int_or("fault-seed", 1));
    dc.faults.sites = resilience::FaultPlan::parse_sites(cli.get_or("fault-sites", "svc"));
    dc.obs = &ctx;

    svc::EvalDaemon daemon(dc);
    daemon.start();
    std::cout << "eval_serve: listening on " << socket_path << " fingerprint=" << fingerprint
              << (dc.snapshot_path.empty() ? "" : " snapshot=" + dc.snapshot_path) << "\n";

    for (const std::string& path : split_csv(cli.get_or("import", ""))) {
      const tuner::SnapshotMergeStats merged =
          daemon.import_snapshot(tuner::load_eval_cache(path));
      std::cout << "import " << path << ": +" << merged.added << " entries, "
                << merged.duplicates << " duplicates, " << merged.conflicts
                << " conflicts resolved\n";
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const int run_seconds = static_cast<int>(cli.get_int_or("run-seconds", 0));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(run_seconds);
    while (g_stop == 0) {
      if (run_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    daemon.stop();
    const svc::DaemonStats s = daemon.stats();
    std::cout << "eval_serve: connections=" << s.connections_accepted
              << " requests=" << s.requests << " hits=" << s.hits << " waits=" << s.waits
              << "\n"
              << "leases: granted=" << s.leases_granted << " published=" << s.leases_published
              << " reclaimed=" << s.leases_reclaimed << " outstanding=" << s.leases_outstanding
              << " balanced=" << (s.leases_balanced() ? "yes" : "NO") << "\n"
              << "snapshots: written=" << s.snapshots_written
              << " skipped=" << s.snapshots_skipped << " imports=" << s.imports
              << " faults_injected=" << s.faults_injected << "\n";
    ctx.flush();
    return s.leases_balanced() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
