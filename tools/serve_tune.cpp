// serve_tune: drive the latency-critical serving tier, optionally re-tuning
// the inline heuristic online while it serves.
//
//   serve_tune --workload=kv_server --requests=512
//   serve_tune --online --generations=4 --latency-out=lat.txt
//   serve_tune --online --fault-rate=0.02 --trace=serve.jsonl
//
// Everything is simulated and seeded, so two invocations with the same
// flags print identical numbers and write byte-identical --latency-out
// files — across thread counts and across both interpreter engines. That
// property is what the CI serving job diffs.
//
// Flags:
//   --workload=NAME     kv_server | query_dispatch | text_pipe | all (default)
//   --seed=N            arrival/request seed (default 1)
//   --instances=N       fleet size (default 4)
//   --requests=N        measured requests per workload (default 1024)
//   --load=R            offered load vs calibrated capacity (default 0.7)
//   --scenario=S        adapt (default) or opt
//   --arch=A            x86 (default) or ppc
//   --engine=E          fast (default) or reference
//   --threads=N         serving worker threads (0 = hardware, default)
//   --online            enable online re-tuning (off by default)
//   --generations=N     shadow GA generations == retune epochs (default 6)
//   --pop=N             shadow GA population (default 12)
//   --ga-seed=N         shadow GA seed (default 7)
//   --goal=G            running | total | balance (default)
//   --slo-mult=X        SLO = X * calibrated mean service (default 32; 0 = off)
//   --rollout=R         rolling (default) or all
//   --no-quarantine-retry  disable the online quarantine release path
//   --fault-rate=R --fault-seed=N --fault-sites=CSV --compile-inflation=X
//                       deterministic fault injection (as chaos_tune)
//   --latency-out=PATH  per-request latency vector, one "id latency" per line
//   --json=PATH         summary JSON (percentiles, installs, final genome)
//   --trace=PATH        JSONL trace (feed it to trace_report)
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "obs/sink.hpp"
#include "resilience/fault.hpp"
#include "serving/driver.hpp"
#include "serving/workloads.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

using namespace ith;

namespace {

tuner::Goal parse_goal(const std::string& s) {
  if (s == "running") return tuner::Goal::kRunning;
  if (s == "total") return tuner::Goal::kTotal;
  if (s == "balance") return tuner::Goal::kBalance;
  throw Error("--goal must be running, total or balance");
}

void write_json(std::ostream& out, const serving::ServingConfig& config,
                const serving::ServeReport& report) {
  out << "{\n  \"benchmark\": \"serving\",\n"
      << "  \"config\": {\"seed\": " << config.seed << ", \"instances\": " << config.instances
      << ", \"requests\": " << config.requests << ", \"load\": " << config.load
      << ", \"online\": " << (config.online_tune ? "true" : "false")
      << ", \"engine\": \"" << rt::engine_name(config.engine) << "\"},\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < report.workloads.size(); ++i) {
    const serving::WorkloadServeReport& w = report.workloads[i];
    out << "    {\"name\": \"" << w.name << "\", \"requests\": " << w.digest.count()
        << ", \"p50\": " << w.digest.p50() << ", \"p95\": " << w.digest.p95()
        << ", \"p99\": " << w.digest.p99() << ", \"max\": " << w.digest.max()
        << ", \"mean\": " << w.digest.mean() << ", \"slo_cycles\": " << w.slo_cycles
        << ", \"slo_violations\": " << w.slo_violations << ", \"faults\": " << w.faulted_requests
        << ", \"installs\": " << w.installs << ", \"final_fitness\": " << w.final_fitness
        << ", \"final_signature\": " << w.final_signature << ", \"final_params\": \""
        << w.final_params.to_string() << "\"}" << (i + 1 < report.workloads.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliParser cli(argc, argv);
    const std::string scenario = cli.get_or("scenario", "adapt");
    const std::string arch = cli.get_or("arch", "x86");
    const std::string engine = cli.get_or("engine", "fast");
    const std::string rollout = cli.get_or("rollout", "rolling");
    ITH_CHECK(scenario == "adapt" || scenario == "opt", "--scenario must be adapt or opt");
    ITH_CHECK(arch == "x86" || arch == "ppc", "--arch must be x86 or ppc");
    ITH_CHECK(engine == "fast" || engine == "reference", "--engine must be fast or reference");
    ITH_CHECK(rollout == "rolling" || rollout == "all", "--rollout must be rolling or all");

    const std::string trace_path = cli.get_or("trace", "");
    std::ofstream trace_out;
    std::unique_ptr<obs::TraceSink> sink;
    if (!trace_path.empty()) {
      trace_out.open(trace_path);
      ITH_CHECK(trace_out.is_open(), "cannot open " + trace_path);
      sink = std::make_unique<obs::JsonlSink>(trace_out);
    }
    obs::Context ctx(sink.get());

    resilience::FaultPlan plan;
    plan.rate = cli.get_double_or("fault-rate", 0.0);
    ITH_CHECK(plan.rate >= 0.0 && plan.rate <= 1.0, "--fault-rate out of [0,1]");
    plan.seed = static_cast<std::uint64_t>(cli.get_int_or("fault-seed", 1));
    plan.sites = resilience::FaultPlan::parse_sites(cli.get_or("fault-sites", "all"));
    plan.compile_inflation = cli.get_double_or("compile-inflation", plan.compile_inflation);

    serving::ServingConfig config;
    config.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));
    config.instances = static_cast<int>(cli.get_int_or("instances", 4));
    config.requests = static_cast<std::size_t>(cli.get_int_or("requests", 1024));
    config.load = cli.get_double_or("load", 0.7);
    config.scenario = scenario == "adapt" ? vm::Scenario::kAdapt : vm::Scenario::kOpt;
    config.machine = arch == "ppc" ? rt::ppc_g4_model() : rt::pentium4_model();
    config.engine = engine == "fast" ? rt::EngineKind::kFast : rt::EngineKind::kReference;
    config.threads = static_cast<std::size_t>(cli.get_int_or("threads", 0));
    config.online_tune = cli.get_bool_or("online", false);
    config.ga_generations = static_cast<int>(cli.get_int_or("generations", 6));
    config.ga_population = static_cast<int>(cli.get_int_or("pop", 12));
    config.ga_seed = static_cast<std::uint64_t>(cli.get_int_or("ga-seed", 7));
    config.goal = parse_goal(cli.get_or("goal", "balance"));
    config.slo_multiplier = cli.get_double_or("slo-mult", 32.0);
    config.rollout = rollout == "all" ? serving::Rollout::kAll : serving::Rollout::kRolling;
    config.retry_quarantined = !cli.get_bool_or("no-quarantine-retry", false);
    if (plan.armed()) config.faults = &plan;
    config.fault_seed = plan.seed;
    config.obs = &ctx;

    const std::string workload = cli.get_or("workload", "all");
    serving::ServeReport report;
    if (workload == "all") {
      report = serving::run_serving(config);
    } else {
      report.workloads.push_back(serving::serve_workload(workload, config));
    }

    for (const serving::WorkloadServeReport& w : report.workloads) {
      std::cout << w.name << ": " << w.digest.count() << " requests, p50=" << w.digest.p50()
                << " p95=" << w.digest.p95() << " p99=" << w.digest.p99()
                << " cycles, slo_violations=" << w.slo_violations << "/" << w.digest.count()
                << ", faults=" << w.faulted_requests << ", installs=" << w.installs << "\n";
      if (config.online_tune) {
        std::cout << "  retune: considered=" << w.retune.considered
                  << " installed=" << w.retune.installed
                  << " skipped_sig=" << w.retune.skipped_signature
                  << " skipped_worse=" << w.retune.skipped_worse
                  << " rejected_slo=" << w.retune.rejected_slo
                  << " rejected_fault=" << w.retune.rejected_fault
                  << " quarantine_released=" << w.retune.quarantine_released << "\n";
      }
      std::cout << "  final: fitness=" << w.final_fitness << " signature=" << w.final_signature
                << " params=" << w.final_params.to_string() << "\n";
    }

    const std::string latency_path = cli.get_or("latency-out", "");
    if (!latency_path.empty()) {
      std::ofstream lat(latency_path);
      ITH_CHECK(lat.is_open(), "cannot open " + latency_path);
      for (const serving::WorkloadServeReport& w : report.workloads) {
        for (std::size_t id = 0; id < w.records.size(); ++id) {
          lat << w.name << " " << id << " " << w.records[id].latency << "\n";
        }
      }
      std::cout << "wrote " << latency_path << "\n";
    }

    const std::string json_path = cli.get_or("json", "");
    if (!json_path.empty()) {
      std::ofstream js(json_path);
      ITH_CHECK(js.is_open(), "cannot open " + json_path);
      write_json(js, config, report);
      std::cout << "wrote " << json_path << "\n";
    }

    ctx.flush();
    return 0;
  } catch (const Error& e) {
    std::cerr << "serve_tune: " << e.what() << "\n";
    return 1;
  }
}
