// OSR ablation ("future work" variant): Jikes RVM 2.3.3 — the paper's
// system — had no on-stack replacement, so a hot loop's current activation
// kept running old code after recompilation; only the next invocation
// benefited. This bench enables our OSR implementation (live baseline
// frames transfer into recompiled code at loop headers) and measures how
// much of the adaptive scenario's iteration-1 penalty it recovers.
//
// Expected shape: total time (iteration 1) improves, most on long-running
// loop-dominated programs (compress); steady-state running time is
// unchanged (OSR only affects the warm-up).

#include <iostream>

#include "common.hpp"
#include "heuristics/heuristic.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"

using namespace ith;

int main() {
  bench::print_header("ablation_osr",
                      "future-work variant: on-stack replacement for the Adapt scenario");

  const rt::MachineModel machine = bench::machine_for(false);
  std::cout << "Adapt scenario, default heuristic, with/without OSR:\n";
  Table t({"benchmark", "total w/o OSR", "total w/ OSR", "total red.", "running red.",
           "OSR transfers"});
  std::vector<double> total_ratios;
  for (const wl::Workload& w : wl::make_suite("all")) {
    vm::RunResult results[2];
    for (const bool osr : {false, true}) {
      heur::JikesHeuristic h;
      vm::VmConfig cfg;
      cfg.scenario = vm::Scenario::kAdapt;
      cfg.enable_osr = osr;
      vm::VirtualMachine m(w.program, machine, h, cfg);
      results[osr ? 1 : 0] = m.run(2);
    }
    const double total_ratio = static_cast<double>(results[1].total_cycles) /
                               static_cast<double>(results[0].total_cycles);
    const double running_ratio = static_cast<double>(results[1].running_cycles) /
                                 static_cast<double>(results[0].running_cycles);
    total_ratios.push_back(total_ratio);
    t.add_row({w.name, cell(static_cast<long long>(results[0].total_cycles)),
               cell(static_cast<long long>(results[1].total_cycles)),
               cell_percent(percent_reduction(total_ratio)),
               cell_percent(percent_reduction(running_ratio)),
               cell(static_cast<long long>(results[1].iterations[0].exec.osr_transitions))});
  }
  t.add_rule();
  t.add_row({"average", "", "", cell_percent(percent_reduction(mean(total_ratios))), "", ""});
  t.render(std::cout);
  std::cout << "\nReading: OSR recovers a large part of the adaptive warm-up cost\n"
               "(iteration-1 total) on programs whose first iteration is one long loop\n"
               "activation. Side effects are real and visible: transferring earlier\n"
               "shifts when profile counters accumulate, which can change which call\n"
               "sites are hot at recompile time and therefore the generated code — a\n"
               "few programs regress, exactly the deployment risk that made OSR a\n"
               "later addition to production VMs.\n";
  return 0;
}
