// Reproduces Figure 6 — Optimizing scenario tuned for balance on x86 (Opt:Bal).
// Panels: (a) SPECjvm98 (training suite), (b) DaCapo+JBB (unseen test
// suite); tuned heuristic normalized to the Jikes RVM default.
// Uses the recorded Table-4 parameters; set ITH_RETUNE=1 to re-run the GA.

#include "common.hpp"

using namespace ith;

int main() {
  bench::print_header("fig6_optbal_x86", "Figure 6 — Optimizing scenario tuned for balance on x86 (Opt:Bal)");
  const bench::ScenarioSpec& spec = bench::table4_scenarios()[1];
  bench::print_figure_panels(spec, bench::tuned_params_for(1));
  return 0;
}
