// Reproduces Table 5: "Average Performance of Genetically Tuned Heuristic"
// — the average running/total reductions of the tuned heuristic versus the
// default, for both suites, across all five scenario columns.
//
// Shape to reproduce: tuned always improves the training suite; the largest
// total-time wins land on the unseen suite under Opt:Tot (paper: 37%) at
// the cost of a small running-time regression; PPC wins are smaller.

#include <iostream>

#include "harness.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

using namespace ith;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "table5_summary", "Table 5",
                           [](bench::BenchContext& bx) {

  Table t({"Compilation Scenario", "SPECjvm98 Running", "SPECjvm98 Total", "DaCapo+JBB Running",
           "DaCapo+JBB Total"});

  for (std::size_t s = 0; s < bench::table4_scenarios().size(); ++s) {
    const bench::ScenarioSpec& spec = bench::table4_scenarios()[s];
    const heur::InlineParams tuned = bx.tuned_params_for(s);
    std::vector<std::string> row = {spec.label};
    for (const char* suite : {"specjvm98", "dacapo+jbb"}) {
      tuner::SuiteEvaluator eval(wl::make_suite(suite), bx.eval_config_for(spec));
      const auto rows = tuner::compare_results(*eval.evaluate(tuned), *eval.default_results());
      const tuner::ComparisonRow avg = tuner::average_row(rows);
      row.push_back(cell_percent(percent_reduction(avg.running_ratio)));
      row.push_back(cell_percent(percent_reduction(avg.total_ratio)));
    }
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nPaper's Table 5 (for reference): Adapt 6%/3% 0%/29%; Opt:Bal 4%/16% 3%/26%;\n"
               "Opt:Tot 1%/17% -4%/37%; Adapt(PPC) 5%/1% -1%/6%; Opt:Bal(PPC) 0%/6% 4%/9%.\n";
  return 0;
  });
}
