#include "common.hpp"

#include <iostream>

#include "support/env.hpp"
#include "tuner/parameter_space.hpp"

namespace ith::bench {

const std::vector<ScenarioSpec>& table4_scenarios() {
  static const std::vector<ScenarioSpec> kScenarios = {
      {"Adapt", vm::Scenario::kAdapt, tuner::Goal::kBalance, false},
      {"Opt:Bal", vm::Scenario::kOpt, tuner::Goal::kBalance, false},
      {"Opt:Tot", vm::Scenario::kOpt, tuner::Goal::kTotal, false},
      {"Adapt (PPC)", vm::Scenario::kAdapt, tuner::Goal::kBalance, true},
      {"Opt:Bal (PPC)", vm::Scenario::kOpt, tuner::Goal::kBalance, true},
  };
  return kScenarios;
}

rt::MachineModel machine_for(bool ppc) { return ppc ? rt::ppc_g4_model() : rt::pentium4_model(); }

tuner::EvalConfig eval_config_for(const ScenarioSpec& spec) {
  tuner::EvalConfig cfg;
  cfg.machine = machine_for(spec.ppc);
  cfg.scenario = spec.scenario;
  return cfg;
}

ga::GaConfig ga_config_from_env() {
  ga::GaConfig cfg = tuner::default_ga_config(
      static_cast<int>(env_int_or("ITH_GA_GENERATIONS", 40)),
      static_cast<std::uint64_t>(env_int_or("ITH_GA_SEED", 42)));
  cfg.population = static_cast<int>(env_int_or("ITH_GA_POP", 20));
  return cfg;
}

namespace {

heur::InlineParams make_params(int callee, int always, int depth, int caller, int hot) {
  heur::InlineParams p;
  p.callee_max_size = callee;
  p.always_inline_size = always;
  p.max_inline_depth = depth;
  p.caller_max_size = caller;
  p.hot_callee_max_size = hot;
  return p;
}

}  // namespace

// Values produced by `ITH_GA_GENERATIONS=60 ./bench/table4_tuned_params`
// (seed 42) on this simulator; see EXPERIMENTS.md. Regenerate after any
// cost-model or workload change.
const std::vector<heur::InlineParams>& recorded_tuned_params() {
  static const std::vector<heur::InlineParams> kRecorded = {
      /* Adapt        */ make_params(6, 13, 7, 3992, 37),
      /* Opt:Bal      */ make_params(49, 9, 6, 308, 135),
      /* Opt:Tot      */ make_params(47, 6, 3, 128, 135),
      /* Adapt (PPC)  */ make_params(10, 13, 2, 2942, 44),
      /* Opt:Bal (PPC)*/ make_params(48, 4, 6, 236, 135),
  };
  return kRecorded;
}

// Values produced by `./bench/fig10_per_program` with ITH_RETUNE=1 and the
// default budget; see EXPERIMENTS.md.
const std::vector<std::pair<std::string, heur::InlineParams>>& recorded_fig10_params() {
  static const std::vector<std::pair<std::string, heur::InlineParams>> kRecorded = {
      {"compress", make_params(33, 13, 7, 600, 135)},
      {"jess", make_params(36, 12, 15, 1924, 135)},
      {"db", make_params(36, 12, 7, 187, 135)},
      {"javac", make_params(24, 14, 7, 187, 135)},
      {"mpegaudio", make_params(39, 14, 7, 187, 135)},
      {"raytrace", make_params(49, 23, 2, 2813, 135)},
      {"jack", make_params(33, 13, 7, 600, 135)},
      {"antlr", make_params(28, 1, 7, 902, 135)},
      {"fop", make_params(36, 12, 15, 1924, 135)},
      {"jython", make_params(33, 13, 7, 600, 135)},
      {"pmd", make_params(36, 12, 15, 1924, 135)},
      {"ps", make_params(47, 12, 15, 187, 135)},
      {"ipsixql", make_params(36, 12, 15, 1924, 135)},
      {"pseudojbb", make_params(39, 1, 6, 600, 135)},
  };
  return kRecorded;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n";
  std::cout << title << "\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  std::cout << "==============================================================\n\n";
}

}  // namespace ith::bench
