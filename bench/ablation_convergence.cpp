// GA convergence ablation: the paper ran population 20 for 500 generations
// against noisy wall-clock fitness. On our deterministic simulator the
// search converges orders of magnitude earlier; this bench prints the
// best-fitness-per-generation curve for each scenario so EXPERIMENTS.md's
// reduced-budget claim is backed by data, and reports the generation at
// which the final value was first reached.

#include <iostream>

#include "common.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "tuner/parameter_space.hpp"

using namespace ith;

int main() {
  bench::print_header("ablation_convergence",
                      "methodology: pop 20 x 500 generations (section 3.1) vs observed convergence");

  ga::GaConfig cfg = bench::ga_config_from_env();
  cfg.patience = 0;  // run the full budget so the curve's tail is visible
  cfg.generations = static_cast<int>(env_int_or("ITH_GA_GENERATIONS", 40));

  for (std::size_t s = 0; s < bench::table4_scenarios().size(); ++s) {
    const bench::ScenarioSpec& spec = bench::table4_scenarios()[s];
    tuner::SuiteEvaluator train(wl::make_suite("specjvm98"), bench::eval_config_for(spec));
    ga::GaConfig scenario_cfg = cfg;
    scenario_cfg.seed = cfg.seed + 1000 * s;
    ga::GenomeSpace space =
        tuner::inline_param_space(spec.scenario == vm::Scenario::kAdapt);
    ga::GeneticAlgorithm algo(space, tuner::make_fitness(train, spec.goal), scenario_cfg);
    const ga::GaResult r = algo.run();

    int converged_at = 0;
    for (std::size_t g = 0; g < r.history.size(); ++g) {
      if (r.history[g].best <= r.best_fitness + 1e-12) {
        converged_at = r.history[g].generation;
        break;
      }
    }

    std::cout << spec.label << ": best " << cell(r.best_fitness, 4) << " first reached at generation "
              << converged_at << " of " << r.history.size() << " (" << r.evaluations
              << " suite evaluations)\n";
    Table t({"generation", "best", "mean", "worst"});
    for (std::size_t g = 0; g < r.history.size();
         g += std::max<std::size_t>(1, r.history.size() / 10)) {
      const ga::GenerationStats& gs = r.history[g];
      t.add_row({cell(static_cast<long long>(gs.generation)), cell(gs.best, 4), cell(gs.mean, 4),
                 cell(gs.worst, 4)});
    }
    const ga::GenerationStats& last = r.history.back();
    t.add_row({cell(static_cast<long long>(last.generation)), cell(last.best, 4),
               cell(last.mean, 4), cell(last.worst, 4)});
    t.render(std::cout);
    std::cout << "\n";
  }
  return 0;
}
