// Reproduces Figure 8 — Adaptive scenario tuned for balance on PPC (Adapt:PPC).
// Panels: (a) SPECjvm98 (training suite), (b) DaCapo+JBB (unseen test
// suite); tuned heuristic normalized to the Jikes RVM default.
// Uses the recorded Table-4 parameters; set ITH_RETUNE=1 to re-run the GA.

#include "common.hpp"

using namespace ith;

int main() {
  bench::print_header("fig8_adapt_ppc", "Figure 8 — Adaptive scenario tuned for balance on PPC (Adapt:PPC)");
  const bench::ScenarioSpec& spec = bench::table4_scenarios()[3];
  bench::print_figure_panels(spec, bench::tuned_params_for(3));
  return 0;
}
