// 2-D parameter-landscape sweep: total-time fitness over a
// CALLEE_MAX_SIZE x MAX_INLINE_DEPTH grid (other parameters at defaults),
// SPECjvm98 under Opt/x86. Makes the tuning landscape visible: broad
// plateaus of equivalent settings separated by threshold cliffs — the
// structure behind ablation_search's finding that GA, random search and
// hill climbing all reach the same optimum.
//
// ITH_CSV_DIR=<dir> additionally writes the grid as CSV for plotting.

#include <fstream>
#include <iostream>

#include "common.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace ith;

int main() {
  bench::print_header("sweep_heatmap",
                      "landscape structure: total-time fitness over CALLEE x DEPTH");

  tuner::EvalConfig cfg;
  cfg.machine = bench::machine_for(false);
  cfg.scenario = vm::Scenario::kOpt;
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), cfg);
  const auto defaults = eval.default_results();

  const int callee_values[] = {1, 5, 10, 17, 23, 31, 40, 50};
  const int depth_values[] = {1, 2, 3, 5, 8, 12, 15};

  std::vector<std::string> headers = {"CALLEE \\ DEPTH"};
  for (int d : depth_values) headers.push_back(std::to_string(d));
  Table t(headers);

  std::vector<std::vector<std::string>> csv_rows;
  for (int c : callee_values) {
    std::vector<std::string> row = {std::to_string(c)};
    for (int d : depth_values) {
      heur::InlineParams p = heur::default_params();
      p.callee_max_size = c;
      p.max_inline_depth = d;
      const double f = tuner::suite_fitness(tuner::Goal::kTotal, *eval.evaluate(p), *defaults);
      row.push_back(cell(f, 4));
      csv_rows.push_back({std::to_string(c), std::to_string(d), cell(f, 6)});
    }
    t.add_row(std::move(row));
  }
  std::cout << "normalized total-time fitness (1.0 = default heuristic, lower is better),\n"
               "SPECjvm98, Opt, x86; other parameters at defaults:\n";
  t.render(std::cout);

  const std::string csv_dir = env_or("ITH_CSV_DIR", "");
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/heatmap_callee_depth.csv";
    std::ofstream out(path);
    if (out) {
      CsvWriter csv(out);
      csv.write_row({"callee_max_size", "max_inline_depth", "total_fitness"});
      for (const auto& r : csv_rows) csv.write_row(r);
      std::cout << "[csv written to " << path << "]\n";
    }
  }
  std::cout << "\nReading: whole rows/columns share values once a threshold stops binding —\n"
               "the plateaus any search strategy finds quickly.\n";
  return 0;
}
