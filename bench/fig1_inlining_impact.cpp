// Reproduces Figure 1: "Relative time reduction with inlining" — the Jikes
// RVM default heuristic versus no inlining, for the Opt (a) and Adapt (b)
// scenarios, on the SPECjvm98 suite, x86. Values are normalized to the
// no-inlining run; bars below 1 are improvements.
//
// Shape to reproduce: under Opt the default heuristic improves running time
// substantially (paper: 24% average) but *degrades total time on average*
// (paper: -3%) because of compile-time blowup on some programs; under Adapt
// it improves both (paper: 23% running, 8% total).

#include <iostream>

#include "harness.hpp"
#include "heuristics/heuristic.hpp"
#include "support/statistics.hpp"

using namespace ith;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig1_inlining_impact", "Figure 1 (a: Opt, b: Adapt)",
                           [](bench::BenchContext& bx) {
    const char* panel = "ab";
    const vm::Scenario scenarios[2] = {vm::Scenario::kOpt, vm::Scenario::kAdapt};
    for (int i = 0; i < 2; ++i) {
      tuner::EvalConfig cfg;
      cfg.machine = bench::machine_for(false);
      cfg.scenario = scenarios[i];
      cfg.obs = bx.obs();
      tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), cfg);

      heur::NeverInlineHeuristic never;
      const auto no_inlining = eval.evaluate_heuristic(never);
      const auto with_default = eval.default_results();

      std::cout << "(" << panel[i] << ") " << vm::scenario_name(scenarios[i])
                << " scenario — default heuristic normalized to NO inlining:\n";
      tuner::comparison_table(tuner::compare_results(*with_default, no_inlining)).render(std::cout);
      std::cout << "\n";
    }

    std::cout << "Expected shape (paper): Opt improves running but hurts average total;\n"
                 "Adapt improves both.\n";
    return 0;
  });
}
