// Ablation bench (beyond the paper's evaluation, probing its design
// choices): under an equal evaluation budget, compare the genetic algorithm
// against random search and hill climbing on the Adapt/balance tuning
// problem, and quantify the effect of fitness memoization.
//
// Honest finding on this simulator: the five-threshold landscape has broad
// plateau optima (many parameter settings induce identical inlining
// decisions), so at realistic budgets all three strategies reach the same
// fitness — the GA's value here is robustness, not superiority. The paper
// never compared against simpler search; this bench documents that a
// simpler tuner would likely have worked too, which strengthens rather
// than weakens its automation thesis.

#include <iostream>

#include "common.hpp"
#include "ga/baselines.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "tuner/parameter_space.hpp"

using namespace ith;

int main() {
  bench::print_header("ablation_search",
                      "design-choice ablation: GA vs random vs hill climbing; memoization");

  const bench::ScenarioSpec& spec = bench::table4_scenarios()[0];  // Adapt x86, balance
  tuner::SuiteEvaluator eval(wl::make_suite("specjvm98"), bench::eval_config_for(spec));
  const ga::FitnessFn fitness = tuner::make_fitness(eval, spec.goal);
  const ga::GenomeSpace space = tuner::inline_param_space(true);

  ga::GaConfig ga_cfg = bench::ga_config_from_env();
  ga_cfg.generations = static_cast<int>(env_int_or("ITH_GA_GENERATIONS", 20));
  ga_cfg.patience = 0;  // fixed budget for a fair comparison

  // --- GA ---------------------------------------------------------------
  ga::GeneticAlgorithm algo(space, fitness, ga_cfg);
  const ga::GaResult ga_result = algo.run();
  const std::size_t budget = ga_result.evaluations;  // unique evaluations spent

  // --- Baselines under the same number of fitness evaluations -----------
  const ga::SearchResult rnd = ga::random_search(space, fitness, budget, ga_cfg.seed);
  const ga::SearchResult hc = ga::hill_climb(space, fitness, budget, ga_cfg.seed);

  Table t({"search strategy", "evaluations", "best fitness", "best params"});
  t.add_row({"genetic algorithm", cell(static_cast<long long>(ga_result.evaluations)),
             cell(ga_result.best_fitness, 4),
             tuner::params_from_genome(ga_result.best).to_string()});
  t.add_row({"random search", cell(static_cast<long long>(rnd.evaluations)),
             cell(rnd.best_fitness, 4), tuner::params_from_genome(rnd.best).to_string()});
  t.add_row({"hill climbing", cell(static_cast<long long>(hc.evaluations)),
             cell(hc.best_fitness, 4), tuner::params_from_genome(hc.best).to_string()});
  t.render(std::cout);
  std::cout << "(fitness is normalized Perf(S); 1.0 = default heuristic; lower is better)\n\n";

  // --- Memoization effect -------------------------------------------------
  std::cout << "fitness-cache effect over the GA run:\n";
  Table m({"metric", "value"});
  const std::size_t nominal =
      static_cast<std::size_t>(ga_cfg.population) * static_cast<std::size_t>(ga_result.history.size());
  m.add_row({"nominal evaluations (pop x generations)", cell(static_cast<long long>(nominal))});
  m.add_row({"actual fitness evaluations", cell(static_cast<long long>(ga_result.evaluations))});
  m.add_row({"cache hits", cell(static_cast<long long>(ga_result.cache_hits))});
  m.add_row({"suite runs avoided (%)",
             cell(100.0 * (1.0 - static_cast<double>(ga_result.evaluations) /
                                     static_cast<double>(nominal)),
                  1)});
  m.render(std::cout);

  // --- GA operator variants ------------------------------------------------
  std::cout << "\nGA operator ablation (same budget, seed " << ga_cfg.seed << "):\n";
  Table o({"variant", "best fitness"});
  for (const auto& [label, mutate_config] :
       std::vector<std::pair<std::string, ga::GaConfig>>{
           {"two-point crossover + reset mutation (default)", ga_cfg},
           [&] {
             ga::GaConfig c = ga_cfg;
             c.crossover = ga::CrossoverKind::kUniform;
             return std::pair<std::string, ga::GaConfig>{"uniform crossover", c};
           }(),
           [&] {
             ga::GaConfig c = ga_cfg;
             c.mutation = ga::MutationKind::kGaussian;
             return std::pair<std::string, ga::GaConfig>{"gaussian mutation", c};
           }(),
           [&] {
             ga::GaConfig c = ga_cfg;
             c.selection = ga::SelectionKind::kRoulette;
             return std::pair<std::string, ga::GaConfig>{"roulette selection", c};
           }(),
           [&] {
             ga::GaConfig c = ga_cfg;
             c.elites = 0;
             return std::pair<std::string, ga::GaConfig>{"no elitism", c};
           }()}) {
    ga::GeneticAlgorithm variant(space, fitness, mutate_config);
    o.add_row({label, cell(variant.run().best_fitness, 4)});
  }
  o.render(std::cout);
  return 0;
}
