// Reproduces Figure 7 — Optimizing scenario tuned for total time on x86 (Opt:Tot).
// Panels: (a) SPECjvm98 (training suite), (b) DaCapo+JBB (unseen test
// suite); tuned heuristic normalized to the Jikes RVM default.
// Uses the recorded Table-4 parameters; set ITH_RETUNE=1 to re-run the GA.

#include "common.hpp"

using namespace ith;

int main() {
  bench::print_header("fig7_opttot_x86", "Figure 7 — Optimizing scenario tuned for total time on x86 (Opt:Tot)");
  const bench::ScenarioSpec& spec = bench::table4_scenarios()[2];
  bench::print_figure_panels(spec, bench::tuned_params_for(2));
  return 0;
}
