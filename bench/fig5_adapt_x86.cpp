// Reproduces Figure 5 — Adaptive scenario tuned for balance on x86.
// Panels: (a) SPECjvm98 (training suite), (b) DaCapo+JBB (unseen test
// suite); tuned heuristic normalized to the Jikes RVM default.
// Uses the recorded Table-4 parameters; pass --retune (or ITH_RETUNE=1) to
// re-run the GA. See bench/harness.hpp for the full flag set (--trace etc.).

#include "harness.hpp"

using namespace ith;

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig5_adapt_x86", "Figure 5 — Adaptive scenario tuned for balance on x86",
                           [](bench::BenchContext& bx) {
    bx.print_figure_panels(bench::table4_scenarios()[0], bx.tuned_params_for(0));
    return 0;
  });
}
